//! End-to-end tests of the multiplicity extension (Section 5, Appendix C),
//! each scenario under every scheduler kind (FSYNC, SSYNC, ASYNC).

mod common;

use apf::geometry::{Configuration, Point, Tol};
use apf::prelude::*;
use common::for_each_scheduler;

#[test]
fn forms_pattern_with_doubled_points() {
    let n = 8;
    let initial = apf::patterns::asymmetric_configuration(n, 3);
    let target = apf::patterns::pattern_with_multiplicity(n, 6, 17);
    for_each_scheduler(|kind| {
        let mut world = SimulationBuilder::new(initial.clone(), target.clone())
            .scheduler(kind)
            .seed(2)
            .multiplicity_detection(true)
            .build()
            .unwrap();
        let o = world.run(3_000_000);
        assert!(o.formed, "{:?}", o.reason);
        let groups = Configuration::new(o.final_positions).multiplicity_groups(&Tol::default());
        assert_eq!(groups.len(), 6, "two doubled positions expected");
    });
}

#[test]
fn forms_pattern_with_center_multiplicity() {
    // Two pattern points at c(F): exercised via the F̃ detour + gather step.
    let n = 8;
    let mut target = apf::patterns::random_pattern(n, 23);
    let c = Configuration::new(target.clone()).sec().center;
    let mut by_r: Vec<usize> = (0..n).collect();
    by_r.sort_by(|&a, &b| target[a].dist(c).partial_cmp(&target[b].dist(c)).unwrap());
    target[by_r[0]] = c;
    target[by_r[1]] = c;
    let initial = apf::patterns::asymmetric_configuration(n, 5);

    for_each_scheduler(|kind| {
        let mut world = SimulationBuilder::new(initial.clone(), target.clone())
            .scheduler(kind)
            .seed(4)
            .multiplicity_detection(true)
            .build()
            .unwrap();
        let o = world.run(4_000_000);
        assert!(o.formed, "{:?}", o.reason);
        let cfg = Configuration::new(o.final_positions.clone());
        let center = cfg.sec().center;
        let at_center = o.final_positions.iter().filter(|p| p.dist(center) < 1e-4).count();
        assert_eq!(at_center, 2, "two robots must gather at the center");
    });
}

#[test]
fn multiplicity_under_every_scheduler() {
    let n = 8;
    let initial = apf::patterns::asymmetric_configuration(n, 7);
    let target = apf::patterns::pattern_with_multiplicity(n, 7, 19);
    for_each_scheduler(|kind| {
        let mut world = SimulationBuilder::new(initial.clone(), target.clone())
            .scheduler(kind)
            .seed(6)
            .multiplicity_detection(true)
            .build()
            .unwrap();
        let o = world.run(4_000_000);
        assert!(o.formed, "{:?}", o.reason);
    });
}

#[test]
fn multiplicity_from_symmetric_start() {
    let n = 8;
    let initial = apf::patterns::symmetric_configuration(n, 4, 9);
    let target = apf::patterns::pattern_with_multiplicity(n, 6, 29);
    for_each_scheduler(|kind| {
        let mut world = SimulationBuilder::new(initial.clone(), target.clone())
            .scheduler(kind)
            .seed(8)
            .multiplicity_detection(true)
            .build()
            .unwrap();
        let o = world.run(4_000_000);
        assert!(o.formed, "{:?}", o.reason);
    });
}

#[test]
fn single_center_point_is_supported_without_detection() {
    // A pattern containing c(F) exactly once: the F̃ detour also covers this
    // (no multiplicity involved, so detection is not required).
    let n = 8;
    let mut target = apf::patterns::random_pattern(n, 33);
    let c = Configuration::new(target.clone()).sec().center;
    let mut by_r: Vec<usize> = (0..n).collect();
    by_r.sort_by(|&a, &b| target[a].dist(c).partial_cmp(&target[b].dist(c)).unwrap());
    target[by_r[0]] = c;
    let initial = apf::patterns::asymmetric_configuration(n, 11);

    for_each_scheduler(|kind| {
        let mut world = SimulationBuilder::new(initial.clone(), target.clone())
            .scheduler(kind)
            .seed(10)
            .build()
            .unwrap();
        let o = world.run(4_000_000);
        assert!(o.formed, "{:?}", o.reason);
        let cfg = Configuration::new(o.final_positions.clone());
        let center = cfg.sec().center;
        let at_center = o.final_positions.iter().filter(|p| p.dist(center) < 1e-4).count();
        assert_eq!(at_center, 1);
    });
}

#[test]
fn multiplicity_collisions_are_only_at_pattern_points() {
    // Along the whole run, any transient multiplicity must coincide with a
    // multiplicity point of the (possibly transformed) pattern — robots
    // never collide by accident.
    let n = 8;
    let initial = apf::patterns::asymmetric_configuration(n, 13);
    let target = apf::patterns::pattern_with_multiplicity(n, 6, 47);
    for_each_scheduler(|kind| {
        let mut world = SimulationBuilder::new(initial.clone(), target.clone())
            .scheduler(kind)
            .seed(12)
            .multiplicity_detection(true)
            .record_trace(true)
            .build()
            .unwrap();
        let o = world.run(3_000_000);
        assert!(o.formed);
        let tol = Tol::default();
        for (t, cfg) in world.trace().iter().enumerate() {
            let c = Configuration::new(cfg.clone());
            for (_, members) in c.multiplicity_groups(&tol) {
                assert!(
                    members.len() <= 2,
                    "unexpected multiplicity {} at step {t}",
                    members.len()
                );
            }
        }
    });
    let _ = Point::ORIGIN;
}
