//! The headline model claim: **no common chirality, no common North**.
//!
//! Robots observe the world through private frames with random rotation,
//! scale and handedness; the algorithm's global behavior must not depend on
//! them. These tests compare runs with shared vs randomized frames and
//! verify mirror-invariance of the geometric core — each simulation-driving
//! scenario under every scheduler kind (FSYNC, SSYNC, ASYNC).

mod common;

use apf::geometry::{Frame, Point, Tol};
use apf::prelude::*;
use apf::sim::Snapshot;
use apf_sim::{Decision, NullBits, RobotAlgorithm};
use common::for_each_scheduler;

#[test]
fn random_frames_do_not_affect_success() {
    // Frames may legitimately change *which* of two mirror-equivalent
    // choices a robot makes (e.g. the similarity witness used for the final
    // move), so trajectories are not bit-identical — but success, and the
    // fact that the final configuration realizes the pattern, must be
    // frame-independent.
    let initial = apf::patterns::asymmetric_configuration(8, 7);
    let target = apf::patterns::random_pattern(8, 8);
    for_each_scheduler(|kind| {
        for randomize in [false, true] {
            let mut w = SimulationBuilder::new(initial.clone(), target.clone())
                .scheduler(kind)
                .seed(99)
                .randomize_frames(randomize)
                .build()
                .unwrap();
            let o = w.run(2_000_000);
            assert!(o.formed, "randomize_frames={randomize}: {:?}", o.reason);
            assert!(apf::geometry::are_similar(&o.final_positions, &target, &Tol::default()));
        }
    });
}

#[test]
fn every_robot_agrees_under_arbitrary_frames() {
    // For a fixed global configuration, compute each robot's decision under
    // wildly different frames (rotations, scales, mirror) and check that at
    // most the *acting* robot moves — i.e. all frames agree on who acts.
    let pts = apf::patterns::asymmetric_configuration(9, 17);
    let target = apf::patterns::random_pattern(9, 18);
    let alg = apf::core::FormPattern::new();

    let mut movers = Vec::new();
    for me in 0..pts.len() {
        let mut decisions = Vec::new();
        for (rot, scale, mirrored) in
            [(0.0, 1.0, false), (1.1, 0.6, false), (2.7, 1.9, true), (4.0, 1.0, true)]
        {
            let frame = Frame::new(pts[me], rot, scale, mirrored);
            let local: Vec<Point> = pts.iter().map(|&p| frame.to_local(p)).collect();
            let snap = Snapshot::new(local, target.clone(), false, Tol::default());
            let mut bits = NullBits;
            let d = alg.compute(&snap, &mut bits).expect("compute");
            // Map a movement decision back to a global destination.
            let dest = match &d {
                Decision::Stay => None,
                Decision::Move(p) => Some(frame.to_global(p.destination())),
            };
            decisions.push(dest);
        }
        // All frames agree on this robot's global action.
        let first = decisions[0];
        for d in &decisions[1..] {
            match (first, d) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert!(a.approx_eq(*b, &Tol::new(1e-6)), "{a} vs {b} for robot {me}")
                }
                other => panic!("frame-dependent decision for robot {me}: {other:?}"),
            }
        }
        if first.is_some() {
            movers.push(me);
        }
    }
    assert_eq!(movers.len(), 1, "exactly one robot acts in the Qc branch: {movers:?}");
}

#[test]
fn mirrored_world_runs_equivalently() {
    // Mirror the entire instance (initial + pattern): the run must succeed
    // identically — formation is chirality-free end-to-end.
    let initial = apf::patterns::symmetric_configuration(8, 2, 27);
    let target = apf::patterns::random_pattern(8, 28);
    let mirror =
        |pts: &[Point]| -> Vec<Point> { pts.iter().map(|p| Point::new(p.x, -p.y)).collect() };
    for_each_scheduler(|kind| {
        let mut straight = SimulationBuilder::new(initial.clone(), target.clone())
            .scheduler(kind)
            .seed(31)
            .build()
            .unwrap();
        let mut mirrored = SimulationBuilder::new(mirror(&initial), mirror(&target))
            .scheduler(kind)
            .seed(31)
            .build()
            .unwrap();
        let a = straight.run(3_000_000);
        let b = mirrored.run(3_000_000);
        assert!(a.formed && b.formed);
    });
}

#[test]
fn pattern_can_be_formed_as_mirror_image() {
    // The similarity relation ≈ includes reflection: a chiral pattern (no
    // axis of symmetry) may legitimately be formed as its own mirror image.
    let initial = apf::patterns::asymmetric_configuration(8, 37);
    let target = apf::patterns::random_pattern(8, 38);
    for_each_scheduler(|kind| {
        let mut w = SimulationBuilder::new(initial.clone(), target.clone())
            .scheduler(kind)
            .seed(41)
            .build()
            .unwrap();
        let o = w.run(3_000_000);
        assert!(o.formed);
        assert!(apf::geometry::are_similar(&o.final_positions, &target, &Tol::default()));
    });
}
