//! End-to-end integration: the paper's headline theorem exercised across
//! schedulers, initial symmetries, pattern shapes, and sizes — with safety
//! invariants checked along the entire execution, not just at the end.

use apf::geometry::{Configuration, Point, Tol};
use apf::prelude::*;

fn run_checked(
    initial: Vec<Point>,
    pattern: Vec<Point>,
    kind: SchedulerKind,
    seed: u64,
    budget: u64,
) -> Outcome {
    let n = initial.len();
    let mut world = SimulationBuilder::new(initial, pattern)
        .scheduler(kind)
        .seed(seed)
        .record_trace(true)
        .build()
        .expect("valid instance");
    let outcome = world.run(budget);
    // Safety invariants over the whole trace:
    let tol = Tol::default();
    for (t, cfg) in world.trace().iter().enumerate() {
        assert_eq!(cfg.len(), n, "robot count changed at step {t}");
        // No two robots may ever collide (the pattern here has no
        // multiplicity, so any coincidence is a bug).
        let c = Configuration::new(cfg.clone());
        assert!(!c.has_multiplicity(&tol), "robots collided at step {t} (seed {seed}, {kind})");
    }
    outcome
}

#[test]
fn forms_from_asymmetric_under_every_scheduler() {
    for kind in [
        SchedulerKind::Fsync,
        SchedulerKind::Ssync,
        SchedulerKind::Async,
        SchedulerKind::RoundRobin,
    ] {
        let o = run_checked(
            apf::patterns::asymmetric_configuration(8, 10),
            apf::patterns::random_pattern(8, 20),
            kind,
            3,
            2_000_000,
        );
        assert!(o.formed, "{kind}: {:?}", o.reason);
    }
}

#[test]
fn forms_from_symmetric_under_every_scheduler() {
    for kind in [
        SchedulerKind::Fsync,
        SchedulerKind::Ssync,
        SchedulerKind::Async,
        SchedulerKind::RoundRobin,
    ] {
        let o = run_checked(
            apf::patterns::symmetric_configuration(8, 4, 30),
            apf::patterns::random_pattern(8, 40),
            kind,
            5,
            3_000_000,
        );
        assert!(o.formed, "{kind}: {:?}", o.reason);
        assert!(o.metrics.random_bits() > 0, "{kind}: the election must flip coins");
    }
}

#[test]
fn forms_structured_patterns() {
    // Line, grid-row subset, star — structured (non-random) target shapes.
    let shapes: Vec<(&str, Vec<Point>)> = vec![
        ("line", apf::patterns::line(8)),
        ("grid", apf::patterns::grid(2, 4)),
        ("star", apf::patterns::star(4, 2.0, 1.0)),
    ];
    for (name, pattern) in shapes {
        let o = run_checked(
            apf::patterns::asymmetric_configuration(8, 50),
            pattern,
            SchedulerKind::RoundRobin,
            7,
            3_000_000,
        );
        assert!(o.formed, "pattern {name}: {:?}", o.reason);
    }
}

#[test]
fn forms_symmetric_target_from_asymmetric_start() {
    // ρ(F) = 8 target (regular polygon) from a ρ(I) = 1 start.
    let o = run_checked(
        apf::patterns::asymmetric_configuration(8, 60),
        apf::patterns::regular_polygon(8, 1.0, 0.3),
        SchedulerKind::RoundRobin,
        9,
        3_000_000,
    );
    assert!(o.formed, "{:?}", o.reason);
}

#[test]
fn forms_when_rho_i_does_not_divide_rho_f() {
    // ρ(I) = 4, ρ(F) = 1: impossible deterministically, done here.
    let o = run_checked(
        apf::patterns::symmetric_configuration(8, 4, 70),
        apf::patterns::random_pattern(8, 80),
        SchedulerKind::RoundRobin,
        11,
        3_000_000,
    );
    assert!(o.formed, "{:?}", o.reason);
}

#[test]
fn biangular_initial_configuration() {
    let o = run_checked(
        apf::patterns::biangular(4, 1.0, 0.4, 0.15),
        apf::patterns::random_pattern(8, 90),
        SchedulerKind::RoundRobin,
        13,
        3_000_000,
    );
    assert!(o.formed, "{:?}", o.reason);
}

#[test]
fn regular_polygon_initial_configuration() {
    // Maximal symmetry: ρ(I) = n.
    let o = run_checked(
        apf::patterns::regular_polygon(8, 1.0, 0.1),
        apf::patterns::random_pattern(8, 100),
        SchedulerKind::RoundRobin,
        17,
        3_000_000,
    );
    assert!(o.formed, "{:?}", o.reason);
}

#[test]
fn larger_instance_forms() {
    let o = run_checked(
        apf::patterns::asymmetric_configuration(16, 110),
        apf::patterns::random_pattern(16, 120),
        SchedulerKind::RoundRobin,
        19,
        4_000_000,
    );
    assert!(o.formed, "{:?}", o.reason);
}

#[test]
fn formed_configuration_is_stationary() {
    // Termination awareness: after forming, no robot would move.
    let mut world = SimulationBuilder::new(
        apf::patterns::asymmetric_configuration(8, 130),
        apf::patterns::random_pattern(8, 140),
    )
    .scheduler(SchedulerKind::RoundRobin)
    .seed(21)
    .build()
    .unwrap();
    let o = world.run(2_000_000);
    assert!(o.formed);
    assert!(
        !world.would_any_move().expect("compute must succeed"),
        "a formed configuration must be terminal"
    );
    // And it stays formed under further scheduling.
    for _ in 0..200 {
        world.step().unwrap();
    }
    assert!(world.is_formed());
}

#[test]
fn seeds_are_reproducible() {
    let run = || {
        let mut w = SimulationBuilder::new(
            apf::patterns::symmetric_configuration(8, 2, 150),
            apf::patterns::random_pattern(8, 160),
        )
        .scheduler(SchedulerKind::Async)
        .seed(23)
        .build()
        .unwrap();
        let o = w.run(2_000_000);
        (o.formed, o.metrics.steps, o.metrics.random_bits(), o.final_positions)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    for (p, q) in a.3.iter().zip(b.3.iter()) {
        assert!(p.approx_eq(*q, &Tol::new(1e-12)));
    }
}
