//! Exit-code contract for `apf-cli`: every malformed invocation exits
//! nonzero (2) with usage on stderr, across every subcommand's parser.
//!
//! Regression focus: flags that *act and exit* while the command line is
//! still being parsed (historically `lint --list-rules`) must not mask
//! trailing garbage — the whole invocation has to validate before anything
//! succeeds with exit 0. `--help` is the one documented exception: it is an
//! explicit request for usage and short-circuits by convention.
//!
//! Also covers the `job-digest` subcommand end to end: its stdout must be
//! exactly the per-trial FNV digests of the spec's campaign, which is the
//! local reference half of the service's bit-for-bit reproduction check.

use std::path::PathBuf;
use std::process::{Command, Output};

fn apf_cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_apf-cli")).args(args).output().expect("spawn apf-cli")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Asserts the invocation failed with the usage exit code (2) and said why
/// on stderr.
fn assert_usage_error(args: &[&str]) {
    let out = apf_cli(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "apf-cli {args:?} should exit 2, got {:?}\nstdout: {}\nstderr: {}",
        out.status.code(),
        stdout_of(&out),
        stderr_of(&out)
    );
    let err = stderr_of(&out);
    assert!(err.contains("error:"), "apf-cli {args:?} stderr lacks an error line: {err}");
}

#[test]
fn list_rules_with_trailing_garbage_exits_nonzero() {
    // The regression: --list-rules used to print and exit 0 mid-parse,
    // silently accepting anything after it.
    let out = apf_cli(&["lint", "--list-rules", "--bogus"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("unknown flag --bogus"));

    // The flag itself still works once the whole line parses.
    let ok = apf_cli(&["lint", "--list-rules"]);
    assert_eq!(ok.status.code(), Some(0), "stderr: {}", stderr_of(&ok));
    assert!(stdout_of(&ok).contains("D1"), "rule listing missing: {}", stdout_of(&ok));
}

#[test]
fn malformed_invocations_exit_nonzero_with_usage() {
    // Default mode.
    assert_usage_error(&["--bogus"]);
    assert_usage_error(&["bogus-subcommand"]);
    assert_usage_error(&["--seed"]); // missing value
    assert_usage_error(&["--scheduler", "warp"]);
    // trace
    assert_usage_error(&["trace"]); // missing FILE
    assert_usage_error(&["trace", "--bogus"]);
    assert_usage_error(&["trace", "a.jsonl", "b.jsonl"]);
    // conformance
    assert_usage_error(&["conformance"]);
    assert_usage_error(&["conformance", "warp"]);
    assert_usage_error(&["conformance", "fuzz", "--schedules", "nope"]);
    assert_usage_error(&["conformance", "fuzz", "--bogus"]);
    // lint
    assert_usage_error(&["lint", "--bogus"]);
    assert_usage_error(&["lint", "--root"]); // missing value
    assert_usage_error(&["lint", "--explain"]); // missing value
    assert_usage_error(&["lint", "--baseline"]); // missing value
    assert_usage_error(&["lint", "--write-baseline"]); // missing value
    assert_usage_error(&["lint", "--json", "--sarif"]); // mutually exclusive
    assert_usage_error(&["lint", "--explain", "no-such-rule"]);
    assert_usage_error(&["lint", "--baseline", "/nonexistent/baseline.txt"]);
    // serve
    assert_usage_error(&["serve", "--bogus"]);
    assert_usage_error(&["serve", "--jobs"]); // missing value
    assert_usage_error(&["serve", "--jobs", "many"]); // not a number
    assert_usage_error(&["serve", "--jobs", "0"]);
    assert_usage_error(&["serve", "--queue-depth", "0"]);
    // job-digest
    assert_usage_error(&["job-digest"]); // missing FILE
    assert_usage_error(&["job-digest", "--bogus"]);
    assert_usage_error(&["job-digest", "/nonexistent/spec.json"]);
}

#[test]
fn help_short_circuits_with_exit_zero() {
    for args in [
        vec!["--help"],
        vec!["trace", "--help"],
        vec!["conformance", "--help"],
        vec!["lint", "--help"],
        vec!["serve", "--help"],
        vec!["job-digest", "--help"],
    ] {
        let out = apf_cli(&args);
        assert_eq!(out.status.code(), Some(0), "apf-cli {args:?}: {}", stderr_of(&out));
        assert!(!stdout_of(&out).is_empty(), "apf-cli {args:?} printed no usage");
    }
}

#[test]
fn lint_explain_resolves_rules_by_name_and_code() {
    // By name and by D-code, both exit 0 with the rationale page.
    let by_name = apf_cli(&["lint", "--explain", "panic-reachability"]);
    assert_eq!(by_name.status.code(), Some(0), "stderr: {}", stderr_of(&by_name));
    assert!(stdout_of(&by_name).contains("D13"), "{}", stdout_of(&by_name));

    let by_code = apf_cli(&["lint", "--explain", "D10"]);
    assert_eq!(by_code.status.code(), Some(0), "stderr: {}", stderr_of(&by_code));
    assert!(stdout_of(&by_code).contains("digest-purity-taint"), "{}", stdout_of(&by_code));
}

#[test]
fn lint_sarif_emits_a_2_1_0_log_on_the_clean_tree() {
    let out = apf_cli(&["lint", "--sarif"]);
    assert_eq!(out.status.code(), Some(0), "clean tree exits 0; stderr: {}", stderr_of(&out));
    let log = stdout_of(&out);
    assert!(log.contains("\"version\":\"2.1.0\""), "{log}");
    assert!(log.contains("\"name\":\"apf-lint\""), "{log}");
}

#[test]
fn lint_baseline_gates_drift_in_both_directions() {
    // Against the checked-in (empty) baseline the clean tree passes.
    let clean = apf_cli(&["lint", "--baseline", "lint-baseline.txt"]);
    assert_eq!(clean.status.code(), Some(0), "stderr: {}", stderr_of(&clean));

    // A baseline accepting a finding the tree no longer produces is drift
    // too: exit 1 and a "fixed" line telling the reviewer to prune it.
    let dir = std::env::temp_dir().join(format!("apf-cli-baseline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let stale = dir.join("stale-baseline.txt");
    std::fs::write(&stale, "src/lib.rs\tpanic-policy\tphantom accepted finding\n").unwrap();
    let out = apf_cli(&["lint", "--baseline", stale.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("baseline drift (fixed"), "{}", stderr_of(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn job_digest_rejects_malformed_specs() {
    let dir = std::env::temp_dir().join(format!("apf-cli-exit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = |name: &str, body: &str| -> PathBuf {
        let p = dir.join(name);
        std::fs::write(&p, body).unwrap();
        p
    };
    let not_json = bad("not-json.json", "{");
    let unknown_field = bad("unknown-field.json", r#"{"trials":2,"frobnicate":1}"#);
    let out_of_range = bad("out-of-range.json", r#"{"n":3}"#);
    for p in [&not_json, &unknown_field, &out_of_range] {
        let out = apf_cli(&["job-digest", p.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(2), "{}: {}", p.display(), stderr_of(&out));
        assert!(stderr_of(&out).contains("error:"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn job_digest_matches_direct_engine_run() {
    let dir = std::env::temp_dir().join(format!("apf-cli-digest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("spec.json");
    let body = r#"{"name":"cli-parity","seed":1,"trials":3,"n":8,"rho":4,"budget":2000000}"#;
    std::fs::write(&spec_path, body).unwrap();

    let out = apf_cli(&["job-digest", spec_path.to_str().unwrap(), "--jobs", "2"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    let printed: Vec<u64> =
        stdout_of(&out).lines().map(|l| l.parse().expect("digest lines are decimal u64")).collect();

    let spec = apf_serve::JobSpec::from_json_bytes(body.as_bytes()).unwrap();
    let report = apf_bench::engine::Engine::new().trace_digests(true).run(&spec.to_campaign());
    let expected = report.digests.expect("trace_digests(true) fills digests");
    assert_eq!(printed, expected, "CLI digests drifted from the engine's");
    std::fs::remove_dir_all(&dir).ok();
}
