//! Shared helpers for the end-to-end suites.

use apf::prelude::*;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The scheduler matrix the simulation-driving e2e scenarios run under:
/// every synchrony model of the paper, from fully synchronous rounds to the
/// fully asynchronous adversary.
pub const SCHEDULER_MATRIX: [SchedulerKind; 3] =
    [SchedulerKind::Fsync, SchedulerKind::Ssync, SchedulerKind::Async];

/// Runs `scenario` once per scheduler kind in [`SCHEDULER_MATRIX`],
/// reporting which kind failed before propagating the panic. Scenarios stay
/// scheduler-agnostic: anything that must hold for the algorithm holds for
/// every synchrony model, so a scenario passing under FSYNC but not ASYNC
/// is a finding, not a flake.
pub fn for_each_scheduler(scenario: impl Fn(SchedulerKind)) {
    for kind in SCHEDULER_MATRIX {
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| scenario(kind))) {
            eprintln!("scenario failed under the {kind:?} scheduler");
            resume_unwind(panic);
        }
    }
}
