//! Full asynchrony stress: the ASYNC adversary pauses robots mid-move
//! (making them observable at stale positions) and cuts Move phases at the
//! minimum progress δ. The algorithm still forms the pattern — the paper's
//! "robots really are fully asynchronous" claim.
//!
//! ```text
//! cargo run --release --example async_adversary
//! ```

use apf::prelude::*;
use apf::scheduler::{AsyncConfig, SchedulerKind};
use apf::sim::WorldConfig;

fn main() {
    let n = 8;
    for (label, pause_prob, delta) in [
        ("gentle   (no pauses, large δ)", 0.0, 0.1),
        ("standard (25% pauses)        ", 0.25, 1e-3),
        ("hostile  (75% pauses, tiny δ)", 0.75, 1e-4),
    ] {
        let initial = apf::patterns::symmetric_configuration(n, 4, 5);
        let target = apf::patterns::random_pattern(n, 11);
        let scheduler = SchedulerKind::Async
            .build_with_async_config(99, AsyncConfig { pause_prob, ..AsyncConfig::default() });
        let mut world = World::new(
            initial,
            target,
            Box::new(apf::core::FormPattern::new()),
            scheduler,
            WorldConfig { delta, ..WorldConfig::default() },
            99,
        );
        let o = world.run(5_000_000);
        println!(
            "{label} -> formed={} cycles={} interrupted moves={} bits={}",
            o.formed,
            o.metrics.cycles(),
            o.metrics.interrupted_moves(),
            o.metrics.random_bits()
        );
        assert!(o.formed, "the adversary must not prevent formation");
    }
}
