//! Quickstart: seven oblivious robots with no common North, no common
//! chirality, and one random bit per cycle form an arbitrary pattern under
//! the fully asynchronous scheduler.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use apf::prelude::*;
use apf::render::ascii_plot;

fn main() {
    // An arbitrary asymmetric starting configuration and an arbitrary
    // 7-point target pattern (both deterministic in their seeds).
    let initial = apf::patterns::asymmetric_configuration(7, 42);
    let target = apf::patterns::random_pattern(7, 7);

    println!("initial configuration:");
    println!("{}", ascii_plot(&initial, 49, 17));
    println!("target pattern (up to translation/rotation/scaling/reflection):");
    println!("{}", ascii_plot(&target, 49, 17));

    let mut world = SimulationBuilder::new(initial, target)
        .scheduler(SchedulerKind::Async)
        .seed(1)
        .build()
        .expect("valid instance");

    let outcome = world.run(2_000_000);

    println!("final configuration:");
    println!("{}", ascii_plot(&outcome.final_positions, 49, 17));
    println!(
        "formed = {} | {} LCM cycles, {} random bits, total distance {:.2}",
        outcome.formed,
        outcome.metrics.cycles(),
        outcome.metrics.random_bits(),
        outcome.metrics.distance()
    );
    assert!(outcome.formed, "the pattern must be formed with probability 1");
}
