//! The probabilistic election in action: start from a rotationally
//! symmetric configuration (`ρ(I) = 4`) — a situation in which *no
//! deterministic algorithm can form an asymmetric pattern* — and watch the
//! single-random-bit election break the symmetry.
//!
//! ```text
//! cargo run --release --example symmetry_breaking
//! ```

use apf::core::analysis::Analysis;
use apf::geometry::{Point, Tol};
use apf::prelude::*;
use apf::sim::Snapshot;

fn main() {
    let n = 8;
    let initial = apf::patterns::symmetric_configuration(n, 4, 2024);
    let target = apf::patterns::random_pattern(n, 99);

    {
        let cfg = Configuration::new(initial.clone());
        let tol = Tol::default();
        let rho = apf::geometry::symmetry::symmetricity(&cfg, cfg.sec().center, &tol);
        println!("initial symmetricity rho(I) = {rho} (deterministically unbreakable)");
    }

    let mut world = SimulationBuilder::new(initial, target.clone())
        .scheduler(SchedulerKind::RoundRobin)
        .seed(7)
        .record_trace(true)
        .build()
        .expect("valid instance");

    let outcome = world.run(2_000_000);
    assert!(outcome.formed);

    // Post-hoc: find the first configuration of the trace with a selected
    // robot (the election's finish line).
    let mut selected_at = None;
    for (t, cfg) in world.trace().iter().enumerate() {
        let local: Vec<Point> = cfg.iter().map(|&p| (p - cfg[0]).to_point()).collect();
        let snap = Snapshot::new(local, target.clone(), false, Tol::default());
        if let Ok(a) = Analysis::new(&snap) {
            if a.selected().is_some() {
                selected_at = Some(t);
                break;
            }
        }
    }
    println!(
        "election won at engine step {:?} of {}; {} random bits drawn in total ({:.3} per cycle)",
        selected_at,
        outcome.metrics.steps,
        outcome.metrics.random_bits(),
        outcome.metrics.bits_per_cycle()
    );
    println!("pattern formed = {} after {} cycles", outcome.formed, outcome.metrics.cycles());
}
