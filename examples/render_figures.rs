//! Regenerates the paper's illustrative figures as SVGs, plus an execution
//! trace rendering, into `target/figures/`.
//!
//! * `fig1a_selected.svg` — a configuration with a selected robot;
//! * `fig1b_regular.svg` — a 5-regular (equiangular) set;
//! * `fig1c_biangular.svg` — a bi-angled 4-pair set;
//! * `fig1d_shifted.svg` — a shifted regular set (shift ε = 1/8);
//! * `trace_formation.svg` — trajectories of a full formation run.
//!
//! ```text
//! cargo run --release --example render_figures
//! ```

use apf::geometry::symmetry::find_shifted_regular;
use apf::geometry::{Circle, Configuration, Point, Tol};
use apf::prelude::*;
use apf::render::{Style, SvgScene};
use std::f64::consts::TAU;
use std::fs;

fn save(name: &str, svg: String) {
    let dir = std::path::Path::new("target/figures");
    fs::create_dir_all(dir).expect("create target/figures");
    let path = dir.join(name);
    fs::write(&path, svg).expect("write figure");
    println!("wrote {}", path.display());
}

fn main() {
    let tol = Tol::default();

    // Figure 1a: a selected robot (inside D(l_F/2), alone in D(2|r|)).
    {
        let mut scene = SvgScene::new();
        let mut pts = apf::patterns::regular_polygon(6, 1.0, 0.2);
        pts.push(Point::new(0.12, 0.05));
        scene.configuration(&pts, "#d33");
        let r = pts[6].dist(Point::ORIGIN);
        scene.circle(&Circle::new(Point::ORIGIN, 2.0 * r), &Style::outline("#3a3"));
        scene.label(Point::new(0.0, -1.15), "selected robot: alone in D(2|r|)", 0.08);
        save("fig1a_selected.svg", scene.finish());
    }

    // Figure 1b: a 5-regular set (equal angles, arbitrary radii).
    {
        let mut scene = SvgScene::new();
        let radii = [1.0, 0.7, 1.2, 0.55, 0.9];
        let pts: Vec<Point> = (0..5)
            .map(|i| {
                let a = TAU * i as f64 / 5.0 + 0.4;
                Point::new(radii[i] * a.cos(), radii[i] * a.sin())
            })
            .collect();
        for &p in &pts {
            scene.segment(Point::ORIGIN, p, &Style::outline("#99c"));
        }
        scene.configuration(&pts, "#d33");
        scene.label(Point::new(-0.6, -1.3), "5-regular set (equal angles)", 0.08);
        save("fig1b_regular.svg", scene.finish());
    }

    // Figure 1c: a bi-angled set (alternating angles α, β).
    {
        let mut scene = SvgScene::new();
        let pts = apf::patterns::biangular(4, 1.0, 0.35, 0.1);
        for &p in &pts {
            scene.segment(Point::ORIGIN, p, &Style::outline("#99c"));
        }
        scene.configuration(&pts, "#d33");
        scene.label(Point::new(-0.7, -1.3), "bi-angled set (angles alternate)", 0.08);
        save("fig1c_biangular.svg", scene.finish());
    }

    // Figure 1d: a shifted regular set, detected by the symmetry engine.
    {
        let mut scene = SvgScene::new();
        let alpha = TAU / 8.0;
        let pts: Vec<Point> = (0..8)
            .map(|i| {
                let mut a = alpha * i as f64 + 0.3;
                if i == 2 {
                    a += alpha / 8.0; // the ε = 1/8 shift
                }
                Point::new(a.cos(), a.sin())
            })
            .collect();
        let cfg = Configuration::new(pts.clone());
        let sh = find_shifted_regular(&cfg, &tol).expect("shifted set");
        for &p in &pts {
            scene.segment(sh.center, p, &Style::outline("#99c"));
        }
        scene.configuration(&pts, "#d33");
        // Mark the shifted robot and its associated regular position.
        scene.point(pts[sh.shifted_robot], 0.035, &Style::dot("#33d"));
        scene.point(sh.associated_position, 0.025, &Style::outline("#33d"));
        scene.label(
            Point::new(-0.9, -1.3),
            &format!("shifted regular set, eps = {:.3}", sh.epsilon),
            0.08,
        );
        save("fig1d_shifted.svg", scene.finish());
    }

    // A full formation run: initial (red), trajectories (blue), final (green).
    {
        let initial = apf::patterns::asymmetric_configuration(8, 42);
        let target = apf::patterns::star(4, 1.0, 0.45);
        let mut world = SimulationBuilder::new(initial.clone(), target)
            .scheduler(SchedulerKind::RoundRobin)
            .seed(3)
            .record_trace(true)
            .build()
            .expect("valid instance");
        let o = world.run(2_000_000);
        assert!(o.formed);
        let mut scene = SvgScene::new();
        let trace = world.trace();
        for robot in 0..8 {
            let path: Vec<Point> = trace.iter().map(|cfg| cfg[robot]).collect();
            scene.trajectory(&path, "#88f");
        }
        scene.configuration(&initial, "#d33");
        for &p in &o.final_positions {
            scene.point(p, 0.03, &Style::dot("#3a3"));
        }
        scene.label(Point::new(-1.0, -1.4), "red: initial, green: final (a 4-star)", 0.07);
        save("trace_formation.svg", scene.finish());
    }
}
