//! Multiplicity-point patterns (Section 5 / Appendix C): with multiplicity
//! detection, robots may share destinations — including the pattern center,
//! which is formed via the `F̃` detour and a final gather step.
//!
//! ```text
//! cargo run --release --example multiplicity
//! ```

use apf::geometry::{Configuration, Point, Tol};
use apf::prelude::*;

fn main() {
    let n = 8;
    let tol = Tol::default();

    // Case 1: doubled points away from the center.
    let initial = apf::patterns::asymmetric_configuration(n, 3);
    let target = apf::patterns::pattern_with_multiplicity(n, 6, 17);
    let mut world = SimulationBuilder::new(initial, target)
        .scheduler(SchedulerKind::RoundRobin)
        .seed(2)
        .multiplicity_detection(true)
        .build()
        .expect("valid instance");
    let o = world.run(2_000_000);
    let groups = Configuration::new(o.final_positions.clone()).multiplicity_groups(&tol);
    println!(
        "off-center multiplicity: formed={} ({} robots on {} distinct points)",
        o.formed,
        n,
        groups.len()
    );
    assert!(o.formed);

    // Case 2: a multiplicity point at the pattern center.
    let initial = apf::patterns::asymmetric_configuration(n, 5);
    let mut target = apf::patterns::random_pattern(n, 23);
    // Send two pattern points to the center of the pattern's enclosing
    // circle.
    let c = Configuration::new(target.clone()).sec().center;
    // Pick two non-extremal points to relocate.
    let mut by_r: Vec<usize> = (0..n).collect();
    by_r.sort_by(|&a, &b| target[a].dist(c).partial_cmp(&target[b].dist(c)).unwrap());
    target[by_r[0]] = c;
    target[by_r[1]] = c;

    let mut world = SimulationBuilder::new(initial, target)
        .scheduler(SchedulerKind::RoundRobin)
        .seed(4)
        .multiplicity_detection(true)
        .build()
        .expect("valid instance");
    let o = world.run(3_000_000);
    let final_cfg = Configuration::new(o.final_positions.clone());
    let center = final_cfg.sec().center;
    let at_center = o.final_positions.iter().filter(|p| p.dist(center) < 1e-4).count();
    println!("center multiplicity: formed={} ({} robots gathered at c(F))", o.formed, at_center);
    assert!(o.formed);
    assert_eq!(at_center, 2, "two robots must share the center");
    let _ = Point::ORIGIN;
}
