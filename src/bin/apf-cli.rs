//! Command-line simulation runner and trace inspector.
//!
//! ```text
//! apf-cli [--n 8] [--sym RHO | --asym] [--pattern random|line|grid|star|polygon]
//!         [--scheduler fsync|ssync|async|rr] [--seed S] [--budget STEPS]
//!         [--delta D] [--multiplicity] [--svg PATH] [--trace PATH] [--quiet]
//! apf-cli trace FILE [--replay] [--robot N]
//! ```
//!
//! Runs one pattern-formation simulation and reports the outcome; with
//! `--svg` it also renders the trajectories, with `--trace` it streams the
//! run's full event trace as JSONL.
//!
//! The `trace` subcommand inspects a JSONL trace (as written by `--trace`
//! or the harness's `--trace-out`): by default it prints a summary —
//! per-phase cycle/bit tallies including the paper's ≤ 1 bit/cycle check,
//! per-robot timelines, and any legality violations; with `--replay` it
//! prints every event as a human-readable line (optionally for one robot
//! only). Exit codes: 0 clean, 1 violations found, 2 malformed JSONL.
//!
//! The `conformance` subcommand drives the golden-trace corpus and the
//! adversarial schedule fuzzer (`apf-conformance`):
//!
//! ```text
//! apf-cli conformance corpus [--dir DIR]
//! apf-cli conformance regen  [--dir DIR]
//! apf-cli conformance fuzz   [--schedules N] [--seed S] [--jobs J]
//!                            [--dump-dir DIR] [--no-formation-check]
//! ```
//!
//! `corpus` replays every golden and fails (exit 1) on digest drift,
//! printing the event diff at the first divergence; `regen` rewrites the
//! goldens and manifest from the current engine (run it when drift is
//! intentional, and review the diff); `fuzz` runs a seeded campaign of
//! pathological schedules, shrinking any violation to a minimal reproducer
//! (written under `--dump-dir`). Exit codes: 0 clean, 1 findings, 2 usage
//! or I/O errors.
//!
//! The `lint` subcommand runs the workspace's own determinism &
//! randomness-budget static analysis (`apf-lint`):
//!
//! ```text
//! apf-cli lint [--json] [--root DIR] [--config PATH] [--list-rules]
//! ```
//!
//! It scans every workspace crate's sources against the rules configured in
//! `lint.toml` (unseeded entropy, random draws outside ψ_RSB, wall clocks in
//! simulation crates, hash containers / float↔int casts / unstable sorts in
//! digest paths, exact float comparisons, unjustified unwrap/expect) and
//! prints findings as
//! `file:line:col · rule · message` (or JSON with `--json`). Exit codes:
//! 0 clean, 1 findings, 2 config or I/O errors.
//!
//! The `serve` subcommand runs the long-running campaign service
//! (`apf-serve`): a JSON job API over the deterministic trial engine plus a
//! Prometheus-text `/metrics` endpoint:
//!
//! ```text
//! apf-cli serve [--addr HOST:PORT] [--jobs N] [--queue-depth N]
//!               [--engine-jobs N] [--max-jobs N] [--quiet]
//!               [--backend HOST:PORT]... [--shards-per-backend N]
//!               [--cache-dir DIR] [--cache-entries N] [--cache-verify N]
//!               [--quota N]
//! apf-cli job-digest FILE [--jobs N] [--report]
//! apf-cli spec-digest FILE
//! apf-cli perf-snapshot [--out PATH] [--jobs N]
//! ```
//!
//! `serve` prints the bound address (`--addr 127.0.0.1:0` picks an
//! ephemeral port) and runs until SIGTERM/SIGINT, draining in-flight trials
//! before exiting 0. With one or more `--backend` flags it runs as a
//! *coordinator*: each campaign is split into trial-range shards, fanned
//! out to the backend `apf-serve` processes, and merged bit-identically to
//! a single-process run. The content-addressed result cache answers
//! repeated specs without re-running them (`--cache-dir` persists it;
//! every `--cache-verify`'th hit is replayed against the engine and
//! compared). `job-digest` runs a job-spec file (the same JSON body
//! `POST /v1/jobs` accepts) straight through the engine and prints one
//! per-trial FNV trace digest per line (`--report`: the deterministic
//! aggregate as JSON) — submitting the same spec to the service must
//! reproduce exactly these digests, which `scripts/check.sh` verifies over
//! a real socket. `spec-digest` prints a spec's canonical JSON and content
//! address without running it.
//!
//! The `perf-snapshot` subcommand runs the fixed perf workload (the E2
//! randomness-budget campaigns plus the E9 geometry kernels) and emits one
//! JSON object of throughput numbers; `scripts/check.sh` diffs a fresh
//! snapshot's trials/sec and per-kernel µs against the committed
//! `BENCH_<PR>.json` with a tolerance band so slowdowns fail loudly instead
//! of accruing silently.
//!
//! The `profile` subcommand records wall-time spans (LCM phases + analysis
//! kernels) while running a campaign — or hammers the kernels directly with
//! `--kernels N` — prints per-kernel latency statistics, and exports
//! collapsed-stacks fold files for flamegraph rendering:
//!
//! ```text
//! apf-cli profile [--spec FILE] [--jobs N] [--report-out PATH]
//!                 [--kernels N] [--reps R] [--fold PATH] [--json PATH]
//! ```
//!
//! Span recording is structurally segregated from trace digesting, so a
//! profiled campaign's digests and aggregates are bit-identical to an
//! unprofiled run (`--report-out` emits exactly the `job-digest --report`
//! object; check.sh diffs the two).

use apf::prelude::*;
use apf::render::{Style, SvgScene};
use apf::scheduler::SchedulerKind;
use apf::trace::{describe, parse_line, JsonlSink, TraceSummary};

struct Args {
    n: usize,
    rho: Option<usize>,
    pattern: String,
    scheduler: SchedulerKind,
    seed: u64,
    budget: u64,
    delta: f64,
    multiplicity: bool,
    svg: Option<String>,
    trace: Option<String>,
    quiet: bool,
}

/// The `trace` subcommand: summarize or replay a JSONL trace file.
fn trace_main(args: &[String]) -> ! {
    let mut file: Option<String> = None;
    let mut replay = false;
    let mut robot: Option<u32> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--replay" => replay = true,
            "--robot" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("error: --robot needs a value");
                    std::process::exit(2);
                });
                robot = Some(v.parse().unwrap_or_else(|e| {
                    eprintln!("error: --robot: {e}");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!(
                    "apf-cli trace FILE [--replay] [--robot N]\n\
                     summarize (default) or replay a JSONL event trace\n\
                     exit codes: 0 clean, 1 violations, 2 malformed"
                );
                std::process::exit(0);
            }
            f if f.starts_with('-') => {
                eprintln!("error: unknown flag {f} (try --help)");
                std::process::exit(2);
            }
            _ if file.is_none() => file = Some(arg.clone()),
            _ => {
                eprintln!("error: more than one trace file given");
                std::process::exit(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("error: trace needs a FILE (try --help)");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("error: cannot read {file}: {e}");
        std::process::exit(2);
    });
    if replay {
        for (i, line) in text.lines().enumerate() {
            let event = parse_line(line).unwrap_or_else(|e| {
                eprintln!("error: {file}:{}: {e}", i + 1);
                std::process::exit(2);
            });
            if robot.is_none_or(|r| event.robot() == Some(r)) {
                println!("{:>8}  {}", i + 1, describe(&event));
            }
        }
    }
    let summary = match TraceSummary::from_lines(text.lines()) {
        Ok(s) => s,
        Err((line_no, e)) => {
            eprintln!("error: {file}:{line_no}: {e}");
            std::process::exit(2);
        }
    };
    print!("{}", summary.render());
    std::process::exit(if summary.is_clean() { 0 } else { 1 });
}

/// The `lint` subcommand: the apf-lint determinism & randomness-budget
/// static-analysis pass over the workspace sources.
fn lint_main(args: &[String]) -> ! {
    let usage = "apf-cli lint [--json|--sarif] [--root DIR] [--config PATH] [--list-rules]\n\
                 \x20            [--explain RULE] [--baseline PATH] [--write-baseline PATH]\n\
                 static analysis: determinism & randomness-budget rules (D1-D13, P1);\n\
                 D10-D13 are inter-procedural (workspace call graph)\n\
                 --explain RULE         print the long-form rationale for one rule\n\
                 --baseline PATH        gate on drift against a checked-in baseline\n\
                 --write-baseline PATH  write current findings as the new baseline\n\
                 exit codes: 0 clean, 1 findings/drift, 2 config or I/O errors";
    let mut json = false;
    let mut sarif = false;
    let mut root = String::from(".");
    let mut config: Option<String> = None;
    let mut list_rules = false;
    let mut explain: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--root" => root = value(),
            "--config" => config = Some(value()),
            // Deferred until the whole command line has parsed, so trailing
            // garbage after --list-rules still exits 2 instead of 0.
            "--list-rules" => list_rules = true,
            "--explain" => explain = Some(value()),
            "--baseline" => baseline_path = Some(value()),
            "--write-baseline" => write_baseline = Some(value()),
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if json && sarif {
        eprintln!("error: --json and --sarif are mutually exclusive");
        std::process::exit(2);
    }
    if list_rules {
        print!("{}", apf_lint::report::render_rules());
        std::process::exit(0);
    }
    if let Some(rule) = explain {
        match apf_lint::report::render_explain(&rule) {
            Some(page) => {
                print!("{page}");
                std::process::exit(0);
            }
            None => {
                eprintln!("error: unknown rule `{rule}` (try --list-rules)");
                std::process::exit(2);
            }
        }
    }
    let root = std::path::PathBuf::from(root);
    let findings =
        match apf_lint::lint_with_config_file(&root, config.as_deref().map(std::path::Path::new)) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
    if let Some(path) = write_baseline {
        if let Err(e) = std::fs::write(&path, apf_lint::baseline::render(&findings)) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("apf-lint: wrote {} finding(s) to {path}", findings.len());
        std::process::exit(0);
    }
    if sarif {
        print!("{}", apf_lint::report::render_sarif(&findings));
    } else if json {
        print!("{}", apf_lint::report::render_json(&findings));
    } else {
        print!("{}", apf_lint::report::render_text(&findings));
    }
    if let Some(path) = baseline_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: reading {path}: {e}");
                std::process::exit(2);
            }
        };
        let accepted = match apf_lint::baseline::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            }
        };
        let drift = apf_lint::baseline::diff(&findings, &accepted);
        for (file, rule, msg) in &drift.new {
            eprintln!("baseline drift (new): {file} · {rule} · {msg}");
        }
        for (file, rule, msg) in &drift.fixed {
            eprintln!("baseline drift (fixed, remove from baseline): {file} · {rule} · {msg}");
        }
        std::process::exit(i32::from(!drift.is_clean()));
    }
    std::process::exit(if findings.is_empty() { 0 } else { 1 });
}

/// The `conformance` subcommand: corpus verification/regeneration and the
/// schedule fuzzer.
fn conformance_main(args: &[String]) -> ! {
    let usage = "apf-cli conformance corpus|regen [--dir DIR]\n\
                 apf-cli conformance fuzz [--schedules N] [--seed S] [--jobs J]\n\
                 \x20                        [--dump-dir DIR] [--no-formation-check]\n\
                 apf-cli conformance geo-fuzz [--cases N | --budget SECS] [--seed S]\n\
                 \x20                            [--jobs J] [--robots N] [--dump-dir DIR]\n\
                 \n\
                 The fuzzer checks the *dynamic* invariants: movement legality,\n\
                 phase-transition legality, the <= 1 random bit per election cycle\n\
                 budget, and (unless --no-formation-check) eventual formation.\n\
                 Freedom from ambient entropy and draws outside the psi_RSB module\n\
                 is guaranteed *statically* by `apf-cli lint` (rules D1/D2) and is\n\
                 not re-checked here.\n\
                 \n\
                 geo-fuzz explores *geometry* space instead of schedule space:\n\
                 seeded degenerate instance families (epsilon-perturbed symmetry,\n\
                 collinear, SEC-boundary, near-multiplicity) are checked against\n\
                 the symmetricity/SEC classifiers and then run under the\n\
                 FSYNC/SSYNC/ASYNC matrix; violations shrink over both geometry\n\
                 and schedules. --budget runs until the wall-clock budget expires\n\
                 instead of a fixed case count.";
    let Some(mode) = args.first().map(String::as_str) else {
        eprintln!("error: conformance needs a mode\n{usage}");
        std::process::exit(2);
    };
    if matches!(mode, "--help" | "-h") {
        println!("{usage}");
        std::process::exit(0);
    }
    let mut dir = apf_conformance::default_corpus_dir();
    let mut schedules: u64 = 16;
    let mut cases: u64 = 64;
    let mut budget: Option<u64> = None;
    let mut robots: usize = 8;
    let mut seed: u64 = 0xC0FFEE;
    let mut jobs: usize = 1;
    let mut dump_dir: Option<String> = None;
    let mut formation_check = true;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            })
        };
        let parse_fail = |e: &dyn std::fmt::Display| -> ! {
            eprintln!("error: {flag}: {e}");
            std::process::exit(2);
        };
        match flag.as_str() {
            "--dir" => dir = value().into(),
            "--schedules" => {
                schedules = value().parse().unwrap_or_else(|e| parse_fail(&e));
            }
            "--cases" => cases = value().parse().unwrap_or_else(|e| parse_fail(&e)),
            "--budget" => budget = Some(value().parse().unwrap_or_else(|e| parse_fail(&e))),
            "--robots" => robots = value().parse().unwrap_or_else(|e| parse_fail(&e)),
            "--seed" => seed = value().parse().unwrap_or_else(|e| parse_fail(&e)),
            "--jobs" => jobs = value().parse().unwrap_or_else(|e| parse_fail(&e)),
            "--dump-dir" => dump_dir = Some(value()),
            "--no-formation-check" => formation_check = false,
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    match mode {
        "corpus" => {
            let reports = apf_conformance::verify(&dir).unwrap_or_else(|e| {
                eprintln!("error: reading corpus in {}: {e}", dir.display());
                std::process::exit(2);
            });
            let mut drifted = 0;
            for r in &reports {
                if r.ok() {
                    println!("ok    {} ({:016x}, {} events)", r.name, r.live_digest, r.live_events);
                } else {
                    drifted += 1;
                    println!(
                        "DRIFT {} manifest={} file={} live={:016x}",
                        r.name,
                        r.manifest_digest.map_or("missing".into(), |d| format!("{d:016x}")),
                        r.file_digest.map_or("missing".into(), |d| format!("{d:016x}")),
                        r.live_digest
                    );
                    print!("{}", r.diff);
                }
            }
            if drifted > 0 {
                println!(
                    "{drifted}/{} cases drifted; regenerate with `apf-cli conformance regen` \
                     if intentional",
                    reports.len()
                );
            }
            std::process::exit(if drifted == 0 { 0 } else { 1 });
        }
        "regen" => {
            let entries = apf_conformance::regenerate(&dir).unwrap_or_else(|e| {
                eprintln!("error: writing corpus in {}: {e}", dir.display());
                std::process::exit(2);
            });
            for e in &entries {
                println!("wrote {} ({:016x}, {} events)", e.name, e.digest, e.events);
            }
            println!("manifest: {}", dir.join("manifest.txt").display());
            std::process::exit(0);
        }
        "fuzz" => {
            let cfg = apf_conformance::FuzzConfig {
                require_formation: formation_check,
                ..apf_conformance::FuzzConfig::default()
            };
            let report = apf_conformance::fuzz_campaign(&cfg, seed, schedules, jobs);
            println!(
                "fuzz: {} schedules, {} clean, {} counterexamples (seed {seed:#x})",
                report.schedules,
                report.clean,
                report.counterexamples.len()
            );
            for ce in &report.counterexamples {
                println!(
                    "  schedule {}: {} ({} batches, shrunk from {})",
                    ce.schedule_index,
                    ce.violations.iter().map(|v| v.kind).collect::<Vec<_>>().join(","),
                    ce.script.len(),
                    ce.original_len
                );
                for v in &ce.violations {
                    println!("    [{}] {}", v.kind, v.detail);
                }
                if let Some(dump) = &dump_dir {
                    match apf_conformance::dump_counterexample(std::path::Path::new(dump), ce) {
                        Ok(p) => println!("    reproducer: {}", p.display()),
                        Err(e) => {
                            eprintln!("error: writing reproducer: {e}");
                            std::process::exit(2);
                        }
                    }
                }
            }
            std::process::exit(if report.is_clean() { 0 } else { 1 });
        }
        "geo-fuzz" => {
            let cfg = apf_conformance::GeoFuzzConfig {
                robots,
                ..apf_conformance::GeoFuzzConfig::default()
            };
            let oracle = apf_conformance::GeoOracle::default();
            let report = match budget {
                Some(secs) => apf_conformance::geo_fuzz_timed(
                    &cfg,
                    &oracle,
                    seed,
                    std::time::Duration::from_secs(secs),
                    jobs,
                ),
                None => apf_conformance::geo_fuzz_campaign(&cfg, &oracle, seed, cases, jobs),
            };
            println!(
                "geo-fuzz: {} cases, {} clean, {} counterexamples, {} shrink steps (seed \
                 {seed:#x})",
                report.cases,
                report.clean,
                report.counterexamples.len(),
                report.shrink_steps
            );
            for ce in &report.counterexamples {
                println!(
                    "  case {} [{}] under {}: {} ({} robots, shrunk from {})",
                    ce.case_index,
                    ce.family,
                    ce.scheduler.map_or("geometry-oracle".to_string(), |s| s.to_string()),
                    ce.violations.iter().map(|v| v.kind).collect::<Vec<_>>().join(","),
                    ce.positions.len(),
                    ce.original_robots
                );
                for v in &ce.violations {
                    println!("    [{}] {}", v.kind, v.detail);
                }
                if let Some(dump) = &dump_dir {
                    match apf_conformance::dump_geo_counterexample(std::path::Path::new(dump), ce) {
                        Ok(p) => println!("    reproducer: {}", p.display()),
                        Err(e) => {
                            eprintln!("error: writing reproducer: {e}");
                            std::process::exit(2);
                        }
                    }
                }
            }
            std::process::exit(if report.is_clean() { 0 } else { 1 });
        }
        other => {
            eprintln!("error: unknown conformance mode {other}\n{usage}");
            std::process::exit(2);
        }
    }
}

/// The `serve` subcommand: the long-running campaign service (`apf-serve`).
fn serve_main(args: &[String]) -> ! {
    let usage = "apf-cli serve [--addr HOST:PORT] [--jobs N] [--queue-depth N]\n\
                 \x20             [--engine-jobs N] [--max-jobs N] [--quiet]\n\
                 \x20             [--backend HOST:PORT]... [--shards-per-backend N]\n\
                 \x20             [--cache-dir DIR] [--cache-entries N] [--cache-verify N]\n\
                 \x20             [--quota N] [--soak SECS]\n\
                 campaign service: versioned JSON job API + Prometheus /metrics\n\
                 --soak self-submits a timed geometry-fuzz soak campaign at startup\n\
                 (same job type as POST /v1/soak); progress appears as apf_soak_*\n\
                 metrics and the job drains cleanly on SIGTERM\n\
                 --backend (repeatable) switches on coordinator mode: campaigns are\n\
                 sharded across the given backend apf-serve processes and merged\n\
                 bit-identically to a single-process run\n\
                 --cache-dir persists the content-addressed result cache; every\n\
                 --cache-verify'th hit is re-verified against a fresh engine run\n\
                 exit codes: 0 clean shutdown, 2 usage or bind errors";
    let mut cfg =
        apf_serve::ServerConfig { log_requests: true, ..apf_serve::ServerConfig::default() };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            })
        };
        let parse_fail = |e: &dyn std::fmt::Display| -> ! {
            eprintln!("error: {flag}: {e}");
            std::process::exit(2);
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value(),
            "--jobs" => cfg.workers = value().parse().unwrap_or_else(|e| parse_fail(&e)),
            "--queue-depth" => {
                cfg.queue_depth = value().parse().unwrap_or_else(|e| parse_fail(&e));
            }
            "--engine-jobs" => {
                cfg.engine_jobs = value().parse().unwrap_or_else(|e| parse_fail(&e));
            }
            "--max-jobs" => cfg.max_jobs = value().parse().unwrap_or_else(|e| parse_fail(&e)),
            "--backend" => cfg.coordinator.backends.push(value()),
            "--shards-per-backend" => {
                cfg.coordinator.shards_per_backend =
                    value().parse().unwrap_or_else(|e| parse_fail(&e));
            }
            "--cache-dir" => cfg.cache.dir = Some(value().into()),
            "--cache-entries" => {
                cfg.cache.max_entries = value().parse().unwrap_or_else(|e| parse_fail(&e));
            }
            "--cache-verify" => {
                cfg.cache.verify_every = value().parse().unwrap_or_else(|e| parse_fail(&e));
            }
            "--quota" => {
                cfg.quota_per_minute = value().parse().unwrap_or_else(|e| parse_fail(&e));
            }
            "--soak" => cfg.soak_seconds = value().parse().unwrap_or_else(|e| parse_fail(&e)),
            "--quiet" => cfg.log_requests = false,
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if cfg.workers == 0 || cfg.queue_depth == 0 {
        eprintln!("error: --jobs and --queue-depth must be >= 1\n{usage}");
        std::process::exit(2);
    }
    apf_serve::signal::install_handlers();
    let server = match apf_serve::Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: bind: {e}");
            std::process::exit(2);
        }
    };
    // The smoke harness parses this line to discover the ephemeral port.
    println!("apf-serve listening on http://{}", server.local_addr());
    match server.run() {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("error: serve: {e}");
            std::process::exit(1);
        }
    }
}

/// The `job-digest` subcommand: run a service job spec directly through the
/// engine and print its per-trial FNV trace digests. This is the local half
/// of the bit-for-bit reproduction check: the same spec submitted to
/// `apf-cli serve` must report exactly these digests.
/// A campaign's deterministic aggregate rendered as the service's result
/// JSON object (minus the timing-noisy wall clock). Shared by
/// `job-digest --report` and `profile --report-out` so the two renderings
/// are byte-comparable: `diff` between them proves span recording changed
/// no digest and no aggregate byte.
fn job_report_json(report: &apf_bench::engine::CampaignReport) -> apf_serve::Json {
    use apf_serve::Json;
    let agg = report.aggregate();
    Json::obj([
        ("trials", Json::usize(report.trials)),
        ("requested", Json::usize(report.requested)),
        ("formed", Json::u64(report.stats.formed())),
        ("success", Json::f64(agg.success)),
        ("mean_cycles", Json::f64(agg.mean_cycles)),
        ("median_cycles", Json::f64(agg.median_cycles)),
        ("p95_cycles", Json::f64(agg.p95_cycles)),
        ("mean_bits", Json::f64(agg.mean_bits)),
        ("bits_per_cycle", Json::f64(agg.bits_per_cycle)),
        (
            "digests",
            Json::Arr(
                report
                    .digests
                    .as_deref()
                    .unwrap_or_default()
                    .iter()
                    .map(|&d| Json::u64(d))
                    .collect(),
            ),
        ),
    ])
}

fn job_digest_main(args: &[String]) -> ! {
    let usage = "apf-cli job-digest FILE [--jobs N] [--report]\n\
                 run a job spec (JSON, as POSTed to /v1/jobs) locally and print\n\
                 one FNV-1a trace digest per trial, in trial order; --report\n\
                 instead prints the deterministic aggregate as one JSON object\n\
                 (the /v1/jobs result minus timing), for bit-exact comparison\n\
                 against a service or coordinator run of the same spec\n\
                 exit codes: 0 ok, 2 bad spec or I/O errors";
    let mut file: Option<String> = None;
    let mut jobs: usize = 1;
    let mut report_json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("error: --jobs needs a value");
                    std::process::exit(2);
                });
                jobs = v.parse().unwrap_or_else(|e| {
                    eprintln!("error: --jobs: {e}");
                    std::process::exit(2);
                });
            }
            "--report" => report_json = true,
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            f if f.starts_with('-') => {
                eprintln!("error: unknown flag {f}\n{usage}");
                std::process::exit(2);
            }
            _ if file.is_none() => file = Some(arg.clone()),
            _ => {
                eprintln!("error: more than one spec file given");
                std::process::exit(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("error: job-digest needs a FILE\n{usage}");
        std::process::exit(2);
    };
    let body = std::fs::read(&file).unwrap_or_else(|e| {
        eprintln!("error: cannot read {file}: {e}");
        std::process::exit(2);
    });
    let spec = apf_serve::JobSpec::from_json_bytes(&body).unwrap_or_else(|e| {
        eprintln!("error: {file}: {e}");
        std::process::exit(2);
    });
    let report = apf_bench::engine::Engine::new()
        .jobs(jobs.max(1))
        .trace_digests(true)
        .run(&spec.to_campaign());
    if report_json {
        // The same fields and renderer as the service's result JSON, minus
        // the timing-noisy wall clock — so `diff` against a served result
        // (with "wall_secs" stripped) is a bitwise aggregate comparison.
        println!("{}", job_report_json(&report).render());
    } else {
        for d in report.digests.as_deref().unwrap_or_default() {
            println!("{d}");
        }
    }
    std::process::exit(0);
}

/// The `spec-digest` subcommand: canonicalize a job spec and print its
/// content address — the digest the result cache keys on and the
/// `GET /v1/spec-digest` endpoint reports — without running anything.
fn spec_digest_main(args: &[String]) -> ! {
    let usage = "apf-cli spec-digest FILE\n\
                 canonicalize a job spec (JSON, as POSTed to /v1/jobs) and print\n\
                 its 16-hex FNV-1a content address, then the canonical JSON\n\
                 exit codes: 0 ok, 2 bad spec or I/O errors";
    let mut file: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            f if f.starts_with('-') => {
                eprintln!("error: unknown flag {f}\n{usage}");
                std::process::exit(2);
            }
            _ if file.is_none() => file = Some(arg.clone()),
            _ => {
                eprintln!("error: more than one spec file given");
                std::process::exit(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("error: spec-digest needs a FILE\n{usage}");
        std::process::exit(2);
    };
    let body = std::fs::read(&file).unwrap_or_else(|e| {
        eprintln!("error: cannot read {file}: {e}");
        std::process::exit(2);
    });
    let spec = apf_serve::JobSpec::from_json_bytes(&body).unwrap_or_else(|e| {
        eprintln!("error: {file}: {e}");
        std::process::exit(2);
    });
    println!("{:016x}", spec.canonical.digest());
    println!("{}", spec.canonical.canonical_json());
    std::process::exit(0);
}

/// The `profile` subcommand: wall-time span profiling with collapsed-stacks
/// (flamegraph) export. Two modes:
///
/// * campaign mode (default, or `--spec FILE`): run a campaign through the
///   engine with span recording on — digests and aggregates stay
///   bit-identical to an unprofiled run (`--report-out` writes exactly the
///   `job-digest --report` object so check.sh can diff the two);
/// * `--kernels N` mode: hammer the five E9 analysis kernels directly on an
///   asymmetric n-robot configuration (`--reps R` times), the quickest way
///   to see where analysis wall time goes at a given scale.
fn profile_main(args: &[String]) -> ! {
    use apf_bench::engine::{Campaign, Engine, RunSpec};
    use apf_bench::profile::{fmt_ns, SpanProfile};
    let usage = "apf-cli profile [--spec FILE] [--jobs N] [--report-out PATH]\n\
                 \x20           [--kernels N] [--reps R]\n\
                 \x20           [--fold PATH] [--json PATH]\n\
                 record wall-time spans (phases + analysis kernels) and print\n\
                 per-kernel latency stats; --fold writes collapsed-stacks lines\n\
                 (`a;b;c self_ns`, feed to inferno/flamegraph.pl), --json the\n\
                 full profile; campaign mode runs --spec (a /v1/jobs JSON body)\n\
                 or a small built-in campaign, and --report-out writes the\n\
                 job-digest --report object for bitwise digest comparison;\n\
                 --kernels N times the five analysis kernels at size N instead\n\
                 exit codes: 0 ok, 2 usage, bad spec, or I/O errors";
    let mut spec_file: Option<String> = None;
    let mut jobs: usize = 2;
    let mut kernels_n: Option<usize> = None;
    let mut reps: usize = 20;
    let mut fold: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut report_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {arg} needs a value");
                std::process::exit(2);
            })
        };
        let parse_fail = |e: &dyn std::fmt::Display| -> ! {
            eprintln!("error: {arg}: {e}");
            std::process::exit(2);
        };
        match arg.as_str() {
            "--spec" => spec_file = Some(value()),
            "--jobs" => jobs = value().parse().unwrap_or_else(|e| parse_fail(&e)),
            "--kernels" => kernels_n = Some(value().parse().unwrap_or_else(|e| parse_fail(&e))),
            "--reps" => reps = value().parse().unwrap_or_else(|e| parse_fail(&e)),
            "--fold" => fold = Some(value()),
            "--json" => json_out = Some(value()),
            "--report-out" => report_out = Some(value()),
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown argument {other}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if kernels_n.is_some() && (spec_file.is_some() || report_out.is_some()) {
        eprintln!("error: --kernels runs no campaign; drop --spec/--report-out\n{usage}");
        std::process::exit(2);
    }

    let profile: SpanProfile = if let Some(n) = kernels_n {
        // Kernel mode: the kernels run on this thread, so install here.
        let n = n.max(3);
        let handle = std::sync::Arc::new(std::sync::Mutex::new(SpanProfile::new()));
        drop(apf::trace::span::install(Box::new(std::sync::Arc::clone(&handle))));
        let pts = apf::patterns::asymmetric_configuration(n, 17_000 + n as u64);
        let cfg = apf::geometry::Configuration::new(pts.clone());
        let tol = apf::geometry::Tol::default();
        let center = cfg.sec().center;
        for _ in 0..reps.max(1) {
            let _ = apf::geometry::smallest_enclosing_circle(&pts);
            let _ = apf::geometry::symmetry::symmetricity(&cfg, center, &tol);
            let _ = apf::geometry::symmetry::ViewAnalysis::compute(&cfg, center, &tol);
            let _ = apf::geometry::symmetry::regular_set_of(&cfg, &tol);
            let _ = apf::geometry::symmetry::find_shifted_regular(&cfg, &tol);
        }
        drop(apf::trace::span::take());
        let p = handle.lock().unwrap_or_else(|_| {
            eprintln!("error: span profile lock poisoned");
            std::process::exit(2);
        });
        p.clone()
    } else {
        let campaign = match &spec_file {
            Some(file) => {
                let body = std::fs::read(file).unwrap_or_else(|e| {
                    eprintln!("error: cannot read {file}: {e}");
                    std::process::exit(2);
                });
                let spec = apf_serve::JobSpec::from_json_bytes(&body).unwrap_or_else(|e| {
                    eprintln!("error: {file}: {e}");
                    std::process::exit(2);
                });
                spec.to_campaign()
            }
            None => {
                // A small built-in campaign: quick-forming symmetric
                // instances, enough steps to exercise every kernel.
                let mut c = Campaign::new("profile", 2);
                c.add_trials(8, |i, _| {
                    RunSpec::new(
                        apf::patterns::symmetric_configuration(8, 4, 3000 + i),
                        apf::patterns::random_pattern(8, 4000 + i),
                    )
                    .scheduler(SchedulerKind::RoundRobin)
                    .budget(100_000)
                });
                c
            }
        };
        let report =
            Engine::new().jobs(jobs.max(1)).trace_digests(true).profile_spans(true).run(&campaign);
        if let Some(path) = &report_out {
            let doc = format!("{}\n", job_report_json(&report).render());
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            }
        }
        report.profile.unwrap_or_else(|| {
            eprintln!("error: engine returned no profile");
            std::process::exit(2);
        })
    };

    println!("span profile (wall time, hottest first):");
    for k in profile.rows() {
        println!(
            "  {:<10} count {:>10}  mean {:>9}  p50 {:>9}  p95 {:>9}  max {:>9}  self {:>9}",
            k.label.label(),
            k.count,
            fmt_ns(k.mean_ns),
            fmt_ns(k.p50_ns as f64),
            fmt_ns(k.p95_ns as f64),
            fmt_ns(k.max_ns as f64),
            fmt_ns(k.self_ns as f64),
        );
    }
    if let Some(hot) = profile.hottest_leaf() {
        println!("hottest frame: {}", hot.label());
    }
    if profile.truncated() > 0 {
        eprintln!("warning: {} spans exceeded the depth limit", profile.truncated());
    }
    if let Some(path) = &fold {
        let mut buf = Vec::new();
        profile.write_folded(&mut buf).unwrap_or_else(|e| {
            eprintln!("error: folding: {e}");
            std::process::exit(2);
        });
        if let Err(e) = std::fs::write(path, buf) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("folded stacks written to {path}");
    }
    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, format!("{}\n", profile.to_json())) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("profile JSON written to {path}");
    }
    std::process::exit(0);
}

/// The `perf-snapshot` subcommand: run the fixed perf workload — the E2
/// randomness-budget campaigns (quick subset) through the trial engine plus
/// the E9 geometry kernels — and print one JSON object of throughput
/// numbers. `scripts/check.sh` regenerates a snapshot each run and diffs its
/// trials/sec against the committed `BENCH_<PR>.json` inside a tolerance
/// band, making speed a regression-gated invariant (ROADMAP "perf
/// trajectory tracking"). The numbers are machine-dependent by nature;
/// regenerate the committed snapshot with `--out` when the workload or the
/// reference machine changes, never by hand-editing.
fn perf_snapshot_main(args: &[String]) -> ! {
    use apf_bench::engine::{AlgorithmSpec, Campaign, Engine, RunSpec};
    let usage = "apf-cli perf-snapshot [--out PATH] [--jobs N]\n\
                 run the fixed perf workload (E2 campaigns + E9 kernels) and\n\
                 write the snapshot JSON to PATH (default: stdout); --jobs\n\
                 fixes the engine worker count (default 2, for snapshots\n\
                 comparable across differently-sized hosts)\n\
                 exit codes: 0 ok, 2 usage or I/O errors";
    let mut out: Option<String> = None;
    let mut jobs: usize = 2;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {arg} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out = Some(value()),
            "--jobs" => {
                jobs = value().parse().unwrap_or_else(|e| {
                    eprintln!("error: --jobs: {e}");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown argument {other}\n{usage}");
                std::process::exit(2);
            }
        }
    }

    // The E2 quick subset, verbatim: symmetric starts, round-robin
    // scheduler, 2M-step budget, 16 trials per n — ours vs YY-style.
    let campaign = |name: &str, alg: AlgorithmSpec| {
        let mut c = Campaign::new(name, 2);
        for n in [8usize, 12] {
            let rho = if n % 4 == 0 { 4 } else { 3 };
            c.add_trials(16, |i, _| {
                RunSpec::new(
                    apf::patterns::symmetric_configuration(n, rho, 3000 + i),
                    apf::patterns::random_pattern(n, 4000 + i),
                )
                .scheduler(SchedulerKind::RoundRobin)
                .budget(2_000_000)
                .algorithm(alg)
            });
        }
        c
    };
    let engine = Engine::new().jobs(jobs.max(1));
    let mut campaigns = Vec::new();
    for (key, alg) in [("e2_ours", AlgorithmSpec::FormPattern), ("e2_yy", AlgorithmSpec::YyStyle)] {
        let report = engine.run(&campaign(key, alg));
        campaigns.push((
            key,
            apf_serve::Json::obj([
                ("trials", apf_serve::Json::usize(report.trials)),
                ("wall_secs", apf_serve::Json::f64(report.wall.as_secs_f64())),
                ("trials_per_sec", apf_serve::Json::f64(report.trials_per_sec())),
            ]),
        ));
    }

    // The E9 kernel microbenches at two fixed sizes (µs per call).
    let mut kernels = Vec::new();
    for n in [32usize, 128] {
        let pts = apf::patterns::asymmetric_configuration(n, 17_000 + n as u64);
        let cfg = apf::geometry::Configuration::new(pts.clone());
        let tol = apf::geometry::Tol::default();
        let time = |f: &mut dyn FnMut()| {
            let reps = 20;
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                f();
            }
            t0.elapsed().as_secs_f64() / f64::from(reps) * 1e6
        };
        let center = cfg.sec().center;
        let fields = [
            (
                "sec_us",
                time(&mut || {
                    let _ = apf::geometry::smallest_enclosing_circle(&pts);
                }),
            ),
            (
                "rho_us",
                time(&mut || {
                    let _ = apf::geometry::symmetry::symmetricity(&cfg, center, &tol);
                }),
            ),
            (
                "views_us",
                time(&mut || {
                    let _ = apf::geometry::symmetry::ViewAnalysis::compute(&cfg, center, &tol);
                }),
            ),
            (
                "regular_us",
                time(&mut || {
                    let _ = apf::geometry::symmetry::regular_set_of(&cfg, &tol);
                }),
            ),
            (
                "shifted_us",
                time(&mut || {
                    let _ = apf::geometry::symmetry::find_shifted_regular(&cfg, &tol);
                }),
            ),
        ];
        kernels.push((
            format!("n{n}"),
            apf_serve::Json::obj(fields.map(|(k, v)| (k, apf_serve::Json::f64(v)))),
        ));
    }

    let doc = apf_serve::Json::obj([
        ("schema", apf_serve::Json::usize(1)),
        ("engine_jobs", apf_serve::Json::usize(jobs.max(1))),
        ("campaigns", apf_serve::Json::obj(campaigns)),
        ("kernels", apf_serve::Json::Obj(kernels.into_iter().collect())),
    ]);
    let rendered = format!("{}\n", doc.render());
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, rendered) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("perf snapshot written to {path}");
        }
        None => print!("{rendered}"),
    }
    std::process::exit(0);
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 8,
        rho: None,
        pattern: "random".into(),
        scheduler: SchedulerKind::Async,
        seed: 0,
        budget: 2_000_000,
        delta: 1e-3,
        multiplicity: false,
        svg: None,
        trace: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = |it: &mut dyn Iterator<Item = String>| {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--n" => args.n = value(&mut it)?.parse().map_err(|e| format!("--n: {e}"))?,
            "--sym" => args.rho = Some(value(&mut it)?.parse().map_err(|e| format!("--sym: {e}"))?),
            "--asym" => args.rho = None,
            "--pattern" => args.pattern = value(&mut it)?,
            "--scheduler" => {
                args.scheduler = match value(&mut it)?.as_str() {
                    "fsync" => SchedulerKind::Fsync,
                    "ssync" => SchedulerKind::Ssync,
                    "async" => SchedulerKind::Async,
                    "rr" | "round-robin" => SchedulerKind::RoundRobin,
                    other => return Err(format!("unknown scheduler {other}")),
                }
            }
            "--seed" => args.seed = value(&mut it)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--budget" => {
                args.budget = value(&mut it)?.parse().map_err(|e| format!("--budget: {e}"))?
            }
            "--delta" => {
                args.delta = value(&mut it)?.parse().map_err(|e| format!("--delta: {e}"))?
            }
            "--multiplicity" => args.multiplicity = true,
            "--svg" => args.svg = Some(value(&mut it)?),
            "--trace" => args.trace = Some(value(&mut it)?),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "apf-cli: run one pattern-formation simulation\n\
                     flags: --n N --sym RHO|--asym --pattern random|line|grid|star|polygon\n\
                     \x20      --scheduler fsync|ssync|async|rr --seed S --budget STEPS\n\
                     \x20      --delta D --multiplicity --svg PATH --trace PATH --quiet\n\
                     subcommands: trace FILE [--replay] [--robot N]  inspect a JSONL trace\n\
                     \x20            conformance corpus|regen|fuzz      golden traces & fuzzing\n\
                     \x20            lint [--json] [--list-rules]       determinism static analysis\n\
                     \x20            serve [--addr A] [--backend A]...  campaign service (HTTP)\n\
                     \x20            job-digest FILE [--report]         job spec -> digests/aggregate\n\
                     \x20            spec-digest FILE                   job spec -> content address\n\
                     \x20            perf-snapshot [--out PATH]         fixed perf workload -> JSON\n\
                     \x20            profile [--spec FILE] [--fold PATH] wall-time span profiling"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn pattern_for(args: &Args) -> Result<Vec<apf::geometry::Point>, String> {
    Ok(match args.pattern.as_str() {
        "random" => apf::patterns::random_pattern(args.n, args.seed ^ 0xBEEF),
        "line" => apf::patterns::line(args.n),
        "grid" => {
            let cols = (args.n as f64).sqrt().ceil() as usize;
            let rows = args.n.div_ceil(cols);
            let mut g = apf::patterns::grid(rows, cols);
            g.truncate(args.n);
            if g.len() != args.n {
                return Err("grid cannot realize this n".into());
            }
            g
        }
        "star" => {
            if !args.n.is_multiple_of(2) || args.n < 4 {
                return Err("star needs an even n >= 4".into());
            }
            apf::patterns::star(args.n / 2, 2.0, 1.0)
        }
        "polygon" => apf::patterns::regular_polygon(args.n, 1.0, 0.1),
        "multiplicity" => {
            apf::patterns::pattern_with_multiplicity(args.n, args.n - 2, args.seed ^ 0xF00D)
        }
        other => return Err(format!("unknown pattern {other}")),
    })
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("trace") {
        trace_main(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("conformance") {
        conformance_main(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("lint") {
        lint_main(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("serve") {
        serve_main(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("job-digest") {
        job_digest_main(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("spec-digest") {
        spec_digest_main(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("perf-snapshot") {
        perf_snapshot_main(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("profile") {
        profile_main(&raw[1..]);
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            std::process::exit(2);
        }
    };
    let initial = match args.rho {
        Some(rho) => apf::patterns::symmetric_configuration(args.n, rho, args.seed ^ 0xAB),
        None => apf::patterns::asymmetric_configuration(args.n, args.seed ^ 0xAB),
    };
    let pattern = match pattern_for(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut world = match SimulationBuilder::new(initial.clone(), pattern)
        .scheduler(args.scheduler)
        .seed(args.seed)
        .delta(args.delta)
        .multiplicity_detection(args.multiplicity)
        .record_trace(args.svg.is_some())
        .build()
    {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    if let Some(path) = &args.trace {
        match std::fs::File::create(path) {
            Ok(f) => world.set_sink(Box::new(JsonlSink::new(std::io::BufWriter::new(f)))),
            Err(e) => {
                eprintln!("error: cannot create trace file {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    let outcome = world.run(args.budget);
    if let Some(path) = &args.trace {
        // The run flushed the sink; dropping it here flushes the BufWriter.
        drop(world.take_sink());
        if !args.quiet {
            println!("wrote trace {path}");
        }
    }
    if !args.quiet {
        println!(
            "formed = {} ({:?})\nmetrics: {}",
            outcome.formed, outcome.reason, outcome.metrics
        );
    }
    if let Some(path) = &args.svg {
        let mut scene = SvgScene::new();
        for robot in 0..args.n {
            let traj: Vec<apf::geometry::Point> =
                world.trace().iter().map(|cfg| cfg[robot]).collect();
            scene.trajectory(&traj, "#88f");
        }
        scene.configuration(&initial, "#d33");
        for &p in &outcome.final_positions {
            scene.point(p, 0.03, &Style::dot("#3a3"));
        }
        if let Err(e) = std::fs::write(path, scene.finish()) {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        }
        if !args.quiet {
            println!("wrote {path}");
        }
    }
    std::process::exit(if outcome.formed { 0 } else { 1 });
}
