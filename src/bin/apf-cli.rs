//! Command-line simulation runner.
//!
//! ```text
//! apf-cli [--n 8] [--sym RHO | --asym] [--pattern random|line|grid|star|polygon]
//!         [--scheduler fsync|ssync|async|rr] [--seed S] [--budget STEPS]
//!         [--delta D] [--multiplicity] [--svg PATH] [--quiet]
//! ```
//!
//! Runs one pattern-formation simulation and reports the outcome; with
//! `--svg` it also renders the trajectories.

use apf::prelude::*;
use apf::render::{Style, SvgScene};
use apf::scheduler::SchedulerKind;

struct Args {
    n: usize,
    rho: Option<usize>,
    pattern: String,
    scheduler: SchedulerKind,
    seed: u64,
    budget: u64,
    delta: f64,
    multiplicity: bool,
    svg: Option<String>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 8,
        rho: None,
        pattern: "random".into(),
        scheduler: SchedulerKind::Async,
        seed: 0,
        budget: 2_000_000,
        delta: 1e-3,
        multiplicity: false,
        svg: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = |it: &mut dyn Iterator<Item = String>| {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--n" => args.n = value(&mut it)?.parse().map_err(|e| format!("--n: {e}"))?,
            "--sym" => args.rho = Some(value(&mut it)?.parse().map_err(|e| format!("--sym: {e}"))?),
            "--asym" => args.rho = None,
            "--pattern" => args.pattern = value(&mut it)?,
            "--scheduler" => {
                args.scheduler = match value(&mut it)?.as_str() {
                    "fsync" => SchedulerKind::Fsync,
                    "ssync" => SchedulerKind::Ssync,
                    "async" => SchedulerKind::Async,
                    "rr" | "round-robin" => SchedulerKind::RoundRobin,
                    other => return Err(format!("unknown scheduler {other}")),
                }
            }
            "--seed" => args.seed = value(&mut it)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--budget" => {
                args.budget = value(&mut it)?.parse().map_err(|e| format!("--budget: {e}"))?
            }
            "--delta" => {
                args.delta = value(&mut it)?.parse().map_err(|e| format!("--delta: {e}"))?
            }
            "--multiplicity" => args.multiplicity = true,
            "--svg" => args.svg = Some(value(&mut it)?),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "apf-cli: run one pattern-formation simulation\n\
                     flags: --n N --sym RHO|--asym --pattern random|line|grid|star|polygon\n\
                     \x20      --scheduler fsync|ssync|async|rr --seed S --budget STEPS\n\
                     \x20      --delta D --multiplicity --svg PATH --quiet"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn pattern_for(args: &Args) -> Result<Vec<apf::geometry::Point>, String> {
    Ok(match args.pattern.as_str() {
        "random" => apf::patterns::random_pattern(args.n, args.seed ^ 0xBEEF),
        "line" => apf::patterns::line(args.n),
        "grid" => {
            let cols = (args.n as f64).sqrt().ceil() as usize;
            let rows = args.n.div_ceil(cols);
            let mut g = apf::patterns::grid(rows, cols);
            g.truncate(args.n);
            if g.len() != args.n {
                return Err("grid cannot realize this n".into());
            }
            g
        }
        "star" => {
            if !args.n.is_multiple_of(2) || args.n < 4 {
                return Err("star needs an even n >= 4".into());
            }
            apf::patterns::star(args.n / 2, 2.0, 1.0)
        }
        "polygon" => apf::patterns::regular_polygon(args.n, 1.0, 0.1),
        "multiplicity" => {
            apf::patterns::pattern_with_multiplicity(args.n, args.n - 2, args.seed ^ 0xF00D)
        }
        other => return Err(format!("unknown pattern {other}")),
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            std::process::exit(2);
        }
    };
    let initial = match args.rho {
        Some(rho) => apf::patterns::symmetric_configuration(args.n, rho, args.seed ^ 0xAB),
        None => apf::patterns::asymmetric_configuration(args.n, args.seed ^ 0xAB),
    };
    let pattern = match pattern_for(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut world = match SimulationBuilder::new(initial.clone(), pattern)
        .scheduler(args.scheduler)
        .seed(args.seed)
        .delta(args.delta)
        .multiplicity_detection(args.multiplicity)
        .record_trace(args.svg.is_some())
        .build()
    {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let outcome = world.run(args.budget);
    if !args.quiet {
        println!(
            "formed = {} ({:?})\nmetrics: {}",
            outcome.formed, outcome.reason, outcome.metrics
        );
    }
    if let Some(path) = &args.svg {
        let mut scene = SvgScene::new();
        for robot in 0..args.n {
            let traj: Vec<apf::geometry::Point> =
                world.trace().iter().map(|cfg| cfg[robot]).collect();
            scene.trajectory(&traj, "#88f");
        }
        scene.configuration(&initial, "#d33");
        for &p in &outcome.final_positions {
            scene.point(p, 0.03, &Style::dot("#3a3"));
        }
        if let Err(e) = std::fs::write(path, scene.finish()) {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        }
        if !args.quiet {
            println!("wrote {path}");
        }
    }
    std::process::exit(if outcome.formed { 0 } else { 1 });
}
