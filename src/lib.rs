//! # APF — Probabilistic Asynchronous Arbitrary Pattern Formation
//!
//! A complete Rust reproduction of *"Brief Announcement: Probabilistic
//! Asynchronous Arbitrary Pattern Formation"* (Bramas & Tixeuil, PODC 2016;
//! full version: "Asynchronous Pattern Formation without Chirality",
//! arXiv:1508.03714): oblivious, anonymous mobile robots in the fully
//! asynchronous Look-Compute-Move model form **any** pattern with
//! probability 1, with **no common North, no common chirality**, and **one
//! random bit per robot per cycle**.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`geometry`] — points, circles, paths, frames, smallest enclosing
//!   circle, Weber points, and the symmetry engine (views, ρ, regular and
//!   shifted-regular sets);
//! * [`scheduler`] — adversarial FSYNC / SSYNC / ASYNC schedulers;
//! * [`sim`] — the Look-Compute-Move robot simulator;
//! * [`core`] — the paper's algorithm (`ψ_RSB` + `ψ_DPF`);
//! * [`patterns`] — pattern and initial-configuration generators;
//! * [`baselines`] — comparison algorithms;
//! * [`render`] — SVG/ASCII rendering of configurations and traces;
//! * [`trace`] — structured event tracing: typed events, sinks (JSONL,
//!   ring buffer, hashing), and the trace inspector.
//!
//! # Quickstart
//!
//! ```
//! use apf::prelude::*;
//!
//! // Seven robots in an arbitrary asymmetric configuration...
//! let initial = apf::patterns::asymmetric_configuration(7, 42);
//! // ...must form an arbitrary 7-point pattern.
//! let target = apf::patterns::random_pattern(7, 7);
//!
//! let mut runner = SimulationBuilder::new(initial, target)
//!     .scheduler(SchedulerKind::Async)
//!     .seed(1)
//!     .build()
//!     .expect("valid instance");
//! let outcome = runner.run(200_000);
//! assert!(outcome.formed, "pattern must be formed");
//! ```

#![forbid(unsafe_code)]

pub use apf_baselines as baselines;
pub use apf_core as core;
pub use apf_geometry as geometry;
pub use apf_patterns as patterns;
pub use apf_render as render;
pub use apf_scheduler as scheduler;
pub use apf_sim as sim;
pub use apf_trace as trace;

/// Convenient re-exports for examples and downstream users.
pub mod prelude {
    pub use apf_core::{FormPattern, SimulationBuilder};
    pub use apf_geometry::{Configuration, Point, Tol};
    pub use apf_scheduler::SchedulerKind;
    pub use apf_sim::{Outcome, World};
}
