#!/usr/bin/env bash
# Regenerates the golden-trace conformance corpus (tests/corpus/) from the
# current engine, then re-verifies it.
#
# Run this ONLY when a behavioral change is intentional: the diff of
# tests/corpus/ in the resulting commit is the reviewable record of what
# drifted. `apf-cli conformance corpus` prints the event-level diff before
# you regenerate — read it first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> current drift (informational; fails only on I/O errors)"
cargo run -q --release --bin apf-cli -- conformance corpus || true

echo "==> regenerating tests/corpus/"
cargo run -q --release --bin apf-cli -- conformance regen

echo "==> re-verifying"
cargo run -q --release --bin apf-cli -- conformance corpus

echo "OK — review 'git diff tests/corpus/' before committing"
