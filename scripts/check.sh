#!/usr/bin/env bash
# Repo gate: formatting, lints, tests, and a smoke run of the experiment
# harness on the parallel engine. CI and pre-push both run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> apf-lint (determinism & randomness-budget static analysis)"
# Rules and per-crate scopes live in lint.toml at the repo root; suppress a
# single line with `// apf-lint: allow(<rule>) — <reason>`. Nonzero exit on
# any finding, so this gates before clippy.
cargo run -q --release --bin apf-cli -- lint --json

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> conformance: golden corpus digest check"
cargo run -q --release --bin apf-cli -- conformance corpus

echo "==> conformance: fixed-seed fuzzer smoke"
# Deterministic in the seed for any --jobs value; any counterexample is
# shrunk and dumped as a replayable script.
FUZZ_DIR="$(mktemp -d)"
trap 'rm -rf "$FUZZ_DIR" "${TRACE_DIR:-}"' EXIT
cargo run -q --release --bin apf-cli -- conformance fuzz \
    --schedules 16 --seed 12648430 --jobs 2 --dump-dir "$FUZZ_DIR"

echo "==> harness --quick --jobs 2 e1"
cargo run -q --release -p apf-bench --bin harness -- --quick --jobs 2 e1

echo "==> trace smoke: harness --trace-out + apf-cli trace"
# E6's deterministic baseline always stalls on symmetric configs, so the
# harness is guaranteed to dump failure traces; each must be well-formed
# JSONL that the inspector replays without legality violations.
TRACE_DIR="$(mktemp -d)"
cargo run -q --release -p apf-bench --bin harness -- --quick --jobs 2 --trace-out "$TRACE_DIR" e6
found=0
for f in "$TRACE_DIR"/*.jsonl; do
    [ -e "$f" ] || break
    found=1
    cargo run -q --release --bin apf-cli -- trace "$f" > /dev/null \
        || { echo "trace inspection failed: $f"; exit 1; }
done
[ "$found" = 1 ] || { echo "harness --trace-out produced no traces"; exit 1; }

echo "OK"
