#!/usr/bin/env bash
# Repo gate: formatting, lints, tests, and a smoke run of the experiment
# harness on the parallel engine. CI and pre-push both run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> apf-lint (determinism & randomness-budget static analysis)"
# Rules and per-crate scopes live in lint.toml at the repo root; suppress a
# single line with `// apf-lint: allow(<rule>) — <reason>`. The run gates on
# drift against the checked-in baseline (both directions: new findings AND
# findings the baseline still lists but the tree no longer produces), so
# this fails before clippy. Exit 1 = findings/drift, 2 = config error.
cargo run -q --release --bin apf-cli -- lint --json --baseline lint-baseline.txt
# Publish the same run as a SARIF 2.1.0 artifact for code-scanning UIs.
mkdir -p target
./target/release/apf-cli lint --sarif > target/apf-lint.sarif
echo "    SARIF artifact: target/apf-lint.sarif"
# --explain smoke: every registered rule must resolve to a rationale page.
./target/release/apf-cli lint --list-rules \
    | awk '$1 ~ /^[A-Z][0-9]+$/ { print $2 }' \
    | while read -r rule; do
        ./target/release/apf-cli lint --explain "$rule" > /dev/null \
            || { echo "lint --explain $rule failed"; exit 1; }
    done

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> conformance: golden corpus digest check"
cargo run -q --release --bin apf-cli -- conformance corpus

echo "==> conformance: fixed-seed fuzzer smoke"
# Deterministic in the seed for any --jobs value; any counterexample is
# shrunk and dumped as a replayable script.
FUZZ_DIR="$(mktemp -d)"
SERVE_PIDS=()
trap 'rm -rf "$FUZZ_DIR" "${TRACE_DIR:-}" "${SERVE_DIR:-}";
      for p in ${SERVE_PIDS[@]+"${SERVE_PIDS[@]}"}; do kill "$p" 2>/dev/null || true; done' EXIT
cargo run -q --release --bin apf-cli -- conformance fuzz \
    --schedules 16 --seed 12648430 --jobs 2 --dump-dir "$FUZZ_DIR"

echo "==> conformance: geometry-space fuzzer (30s budget, zero violations)"
# Seeded degenerate instance families (epsilon-perturbed symmetricity,
# collinear, SEC-boundary, near-multiplicity) checked against the real
# classifiers and the scheduler matrix until the wall-clock budget runs out.
# Any violation is shrunk over geometry and schedules and dumped.
cargo run -q --release --bin apf-cli -- conformance geo-fuzz \
    --budget 30 --seed 48879 --jobs 2 --dump-dir "$FUZZ_DIR"

echo "==> harness --quick --jobs 2 e1"
cargo run -q --release -p apf-bench --bin harness -- --quick --jobs 2 e1

echo "==> trace smoke: harness --trace-out + apf-cli trace"
# E6's deterministic baseline always stalls on symmetric configs, so the
# harness is guaranteed to dump failure traces; each must be well-formed
# JSONL that the inspector replays without legality violations.
TRACE_DIR="$(mktemp -d)"
cargo run -q --release -p apf-bench --bin harness -- --quick --jobs 2 --trace-out "$TRACE_DIR" e6
found=0
for f in "$TRACE_DIR"/*.jsonl; do
    [ -e "$f" ] || break
    found=1
    cargo run -q --release --bin apf-cli -- trace "$f" > /dev/null \
        || { echo "trace inspection failed: $f"; exit 1; }
done
[ "$found" = 1 ] || { echo "harness --trace-out produced no traces"; exit 1; }

# Starts an apf-serve process on an ephemeral port with the given extra
# flags, logging to $1; sets ADDR to the bound host:port and records the PID
# in SERVE_PIDS for the exit trap.
start_serve() {
    local log="$1"; shift
    ./target/release/apf-cli serve --addr 127.0.0.1:0 "$@" \
        > "$log" 2> "$log.err" &
    SERVE_PIDS+=("$!")
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR="$(sed -n 's#^apf-serve listening on http://##p' "$log")"
        [ -n "$ADDR" ] && break
        sleep 0.1
    done
    [ -n "$ADDR" ] || { echo "serve never reported its address ($log)"; exit 1; }
}

# Polls GET /v1/jobs/$2 on $1 until the job reaches a terminal state; fails
# the gate unless that state is "done".
wait_job_done() {
    local addr="$1" id="$2" status=""
    for _ in $(seq 1 600); do
        status="$(curl -fsS "http://$addr/v1/jobs/$id" \
            | sed -n 's/.*"status":"\([a-z]*\)".*/\1/p')"
        case "$status" in
            done) return 0 ;;
            failed|cancelled) echo "job $id ended $status"; exit 1 ;;
            *) sleep 0.1 ;;
        esac
    done
    echo "job $id never finished (last status: $status)"
    exit 1
}

# Unwraps the `{"id":N,"result":{...},"status":"..."}` job envelope and
# drops the timing-noisy / transport-only fields, so what remains is exactly
# the deterministic aggregate `job-digest --report` prints (both sides
# render sorted keys via the same Json type). awk so the output always ends
# in a newline, matching the CLI's println.
strip_noise() {
    awk '{
        sub(/^\{"id":[0-9]+,"result":/, "");
        sub(/,"status":"[a-z]+"\}$/, "");
        gsub(/,"wall_secs":[0-9.eE+-]*/, "");
        gsub(/"cached":true,/, "");
        print
    }'
}

echo "==> serve smoke: /v1 API, legacy 308s, digest parity, result cache"
# Start the campaign service on an ephemeral port, submit a tiny E1-shaped
# job over a real socket, and require its per-trial digests and aggregate to
# match a direct `job-digest` run of the same spec bit for bit. Then submit
# the identical spec again: the content-addressed cache must answer it
# without re-running, and (with --cache-verify 1) the hit must trigger a
# re-verification replay that compares clean. SIGTERM must drain and exit 0.
SERVE_DIR="$(mktemp -d)"
SPEC='{"name":"smoke","seed":1,"trials":3,"n":8,"rho":4,"budget":2000000}'
printf '%s' "$SPEC" > "$SERVE_DIR/spec.json"
cargo run -q --release --bin apf-cli -- job-digest "$SERVE_DIR/spec.json" \
    > "$SERVE_DIR/expected.txt"
./target/release/apf-cli job-digest --report "$SERVE_DIR/spec.json" \
    > "$SERVE_DIR/expected_report.json"
start_serve "$SERVE_DIR/serve.log" --jobs 1 --queue-depth 8 --cache-verify 1
curl -fsS "http://$ADDR/healthz" > /dev/null
curl -fsS "http://$ADDR/v1/healthz" > /dev/null
# Capture before grepping: `curl | grep -q` trips pipefail once the body
# outgrows the pipe buffer (grep exits at the first match, curl gets EPIPE).
curl -fsS "http://$ADDR/metrics" > "$SERVE_DIR/metrics0.txt"
grep -q '^apf_jobs_total' "$SERVE_DIR/metrics0.txt" \
    || { echo "/metrics scrape missing apf_jobs_total"; exit 1; }
# The unversioned paths answer 308 Permanent Redirect pointing into /v1/.
REDIRECT="$(curl -sS -o /dev/null -D - -X POST \
    --data-binary @"$SERVE_DIR/spec.json" "http://$ADDR/jobs")"
printf '%s' "$REDIRECT" | grep -q '^HTTP/1.1 308' \
    || { echo "legacy POST /jobs did not answer 308: $REDIRECT"; exit 1; }
printf '%s' "$REDIRECT" | grep -qi '^Location: /v1/jobs' \
    || { echo "308 missing Location: /v1/jobs: $REDIRECT"; exit 1; }
JOB_ID="$(curl -fsS -D "$SERVE_DIR/submit_hdrs.txt" -X POST \
    --data-binary @"$SERVE_DIR/spec.json" "http://$ADDR/v1/jobs" \
    | sed -n 's/.*"id":\([0-9]*\).*/\1/p')"
[ -n "$JOB_ID" ] || { echo "job submission returned no id"; exit 1; }
# Every submission response carries the request id that threads through the
# access log and, on coordinators, onward to the backends.
grep -qi '^X-Apf-Request-Id: ' "$SERVE_DIR/submit_hdrs.txt" \
    || { echo "submission response missing X-Apf-Request-Id"; exit 1; }
wait_job_done "$ADDR" "$JOB_ID"
curl -fsS "http://$ADDR/v1/jobs/$JOB_ID/result" > "$SERVE_DIR/result.json"
tr -d ' ' < "$SERVE_DIR/result.json" \
    | sed -n 's/.*"digests":\[\([0-9,]*\)\].*/\1\n/p' | tr ',' '\n' \
    > "$SERVE_DIR/served.txt"
diff -u "$SERVE_DIR/expected.txt" "$SERVE_DIR/served.txt" \
    || { echo "served digests diverge from the direct engine run"; exit 1; }
strip_noise < "$SERVE_DIR/result.json" > "$SERVE_DIR/served_report.json"
diff -u "$SERVE_DIR/expected_report.json" "$SERVE_DIR/served_report.json" \
    || { echo "served aggregate diverges from the direct engine run"; exit 1; }
# The latency histograms must be live: at least one HTTP request handled and
# one job queued and executed by now.
HMETRICS="$(curl -fsS "http://$ADDR/metrics")"
for h in apf_http_request_seconds apf_job_queue_wait_seconds apf_job_exec_seconds; do
    printf '%s\n' "$HMETRICS" | grep -q "^# TYPE $h histogram" \
        || { echo "/metrics missing histogram $h"; exit 1; }
done
printf '%s\n' "$HMETRICS" | grep -q '^apf_job_exec_seconds_count [1-9]' \
    || { echo "job execution histogram never observed a job"; exit 1; }
printf '%s\n' "$HMETRICS" \
    | grep -q '^apf_http_request_seconds_bucket{le="+Inf"} [1-9]' \
    || { echo "request latency histogram never observed a request"; exit 1; }
# Same spec again: must be answered from the cache, bit-identically.
RESP2="$(curl -fsS -X POST --data-binary @"$SERVE_DIR/spec.json" \
    "http://$ADDR/v1/jobs")"
printf '%s' "$RESP2" | grep -q '"cached":true' \
    || { echo "repeat submission was not a cache hit: $RESP2"; exit 1; }
JOB2="$(printf '%s' "$RESP2" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')"
curl -fsS "http://$ADDR/v1/jobs/$JOB2/result" | strip_noise \
    > "$SERVE_DIR/cached_report.json"
diff -u "$SERVE_DIR/expected_report.json" "$SERVE_DIR/cached_report.json" \
    || { echo "cached aggregate diverges from the direct engine run"; exit 1; }
# --cache-verify 1 replays every hit against the engine in the background;
# wait for the verification to land and require it to have compared clean.
VERIFIED=""
for _ in $(seq 1 600); do
    METRICS="$(curl -fsS "http://$ADDR/metrics")"
    printf '%s\n' "$METRICS" \
        | grep -q '^apf_cache_total{event="verify_fail"} 0$' \
        || { echo "cache re-verification FAILED:"; printf '%s\n' "$METRICS" \
             | grep '^apf_cache_total'; exit 1; }
    if printf '%s\n' "$METRICS" \
        | grep -q '^apf_cache_total{event="verify_ok"} [1-9]'; then
        VERIFIED=1
        break
    fi
    sleep 0.1
done
[ -n "$VERIFIED" ] || { echo "cache re-verification never ran"; exit 1; }
SMOKE_PID="${SERVE_PIDS[0]}"
kill -TERM "$SMOKE_PID"
wait "$SMOKE_PID" || { echo "serve did not exit 0 on SIGTERM"; exit 1; }
SERVE_PIDS=()

echo "==> coordinator: sharded fan-out merges bit-identical to a direct run"
# Two backend workers plus a coordinator fanning trial-range shards out to
# them; the merged digests and aggregate must equal the direct engine run of
# the same spec bit for bit (the "determinism => distributability" gate).
CSPEC='{"name":"coord-smoke","seed":7,"trials":6,"n":8,"rho":4,"budget":2000000}'
printf '%s' "$CSPEC" > "$SERVE_DIR/cspec.json"
./target/release/apf-cli job-digest --report "$SERVE_DIR/cspec.json" \
    > "$SERVE_DIR/cexpected.json"
start_serve "$SERVE_DIR/b1.log" --jobs 1 --queue-depth 8
B1_ADDR="$ADDR"
start_serve "$SERVE_DIR/b2.log" --jobs 1 --queue-depth 8
B2_ADDR="$ADDR"
start_serve "$SERVE_DIR/coord.log" --jobs 1 --queue-depth 8 \
    --backend "$B1_ADDR" --backend "$B2_ADDR" --shards-per-backend 2
COORD_ADDR="$ADDR"
CJOB="$(curl -fsS -X POST --data-binary @"$SERVE_DIR/cspec.json" \
    "http://$COORD_ADDR/v1/jobs" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')"
[ -n "$CJOB" ] || { echo "coordinator job submission returned no id"; exit 1; }
wait_job_done "$COORD_ADDR" "$CJOB"
curl -fsS "http://$COORD_ADDR/v1/jobs/$CJOB/result" | strip_noise \
    > "$SERVE_DIR/cserved.json"
diff -u "$SERVE_DIR/cexpected.json" "$SERVE_DIR/cserved.json" \
    || { echo "coordinator merge diverges from the direct engine run"; exit 1; }
curl -fsS "http://$COORD_ADDR/metrics" > "$SERVE_DIR/coord_metrics.txt"
grep -q '^apf_shards_total{event="dispatched"} [1-9]' \
    "$SERVE_DIR/coord_metrics.txt" \
    || { echo "coordinator reported no dispatched shards"; exit 1; }
grep -q '^apf_shard_roundtrip_seconds_count [1-9]' \
    "$SERVE_DIR/coord_metrics.txt" \
    || { echo "coordinator recorded no shard round-trip latencies"; exit 1; }
for p in "${SERVE_PIDS[@]}"; do kill -TERM "$p"; done
for p in "${SERVE_PIDS[@]}"; do
    wait "$p" || { echo "a serve process did not exit 0 on SIGTERM"; exit 1; }
done
SERVE_PIDS=()

echo "==> soak smoke: --soak self-submission, apf_soak_* metrics, SIGTERM drain"
# `serve --soak 60` self-submits a timed geometry-fuzz soak through the
# normal queue. The gate waits for the soak counters to move, then SIGTERMs
# mid-campaign: the soak job must drain cooperatively and the process exit 0
# long before the 60 s budget elapses.
start_serve "$SERVE_DIR/soak.log" --jobs 1 --queue-depth 8 --soak 60
SOAKED=""
for _ in $(seq 1 600); do
    curl -fsS "http://$ADDR/metrics" > "$SERVE_DIR/soak_metrics.txt" || true
    if grep -q '^apf_soak_cases_total [1-9]' "$SERVE_DIR/soak_metrics.txt"; then
        SOAKED=1
        break
    fi
    sleep 0.1
done
[ -n "$SOAKED" ] || { echo "soak campaign never counted a case"; exit 1; }
grep -q '^apf_soak_violations_total 0$' "$SERVE_DIR/soak_metrics.txt" \
    || { echo "soak campaign found violations:"; \
         grep '^apf_soak' "$SERVE_DIR/soak_metrics.txt"; exit 1; }
for m in apf_soak_cases_total apf_soak_violations_total \
         apf_soak_shrink_steps_total apf_soak_wall_seconds_total; do
    grep -q "^$m " "$SERVE_DIR/soak_metrics.txt" \
        || { echo "/metrics missing $m"; exit 1; }
done
SOAK_PID="${SERVE_PIDS[0]}"
kill -TERM "$SOAK_PID"
wait "$SOAK_PID" || { echo "serve did not exit 0 on SIGTERM mid-soak"; exit 1; }
SERVE_PIDS=()

echo "==> profile smoke: collapsed stacks + digest identity with spans on"
# Span profiling must be observationally free: running the smoke spec with
# the profiler installed must reproduce `job-digest --report` byte for byte.
# The folded output must be non-empty, well-formed collapsed stacks
# (`frame;frame;... self_ns`), and on the kernel workload the heaviest
# frame must be the known-dominant kernel: shifted-pattern matching.
./target/release/apf-cli profile --spec "$SERVE_DIR/spec.json" --jobs 2 \
    --fold "$SERVE_DIR/prof.folded" \
    --report-out "$SERVE_DIR/prof_report.json" > /dev/null
diff -u "$SERVE_DIR/expected_report.json" "$SERVE_DIR/prof_report.json" \
    || { echo "profiling changed the campaign aggregate"; exit 1; }
[ -s "$SERVE_DIR/prof.folded" ] \
    || { echo "profile wrote an empty fold file"; exit 1; }
if grep -qvE '^[a-z_]+(;[a-z_]+)* [0-9]+$' "$SERVE_DIR/prof.folded"; then
    echo "malformed collapsed-stacks line(s):"
    grep -vE '^[a-z_]+(;[a-z_]+)* [0-9]+$' "$SERVE_DIR/prof.folded"
    exit 1
fi
./target/release/apf-cli profile --kernels 64 --reps 3 \
    --fold "$SERVE_DIR/kern.folded" > /dev/null
TOP_STACK="$(sort -t' ' -k2 -rn "$SERVE_DIR/kern.folded" | head -1 \
    | cut -d' ' -f1)"
[ "${TOP_STACK##*;}" = "shifted" ] \
    || { echo "hottest kernel frame is '${TOP_STACK##*;}', expected shifted"
         exit 1; }

echo "==> perf snapshot vs committed BENCH_*.json (tolerance band)"
# Regenerate the fixed perf workload and compare campaign throughput against
# the newest committed snapshot. Wall-clock numbers are machine- and
# load-dependent, so the band stays loose — but several PRs of history (see
# scripts/bench_trend.sh) show run-to-run noise well under 40%, so the gate
# is tightened from the original 2.5x to 1.8x: only a >1.8x slowdown fails.
# Regenerate the committed snapshot via
# `apf-cli perf-snapshot --out BENCH_<PR>.json` when the workload changes.
PREV="$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1 || true)"
tps() {
    sed -n "s/.*\"$2\":{\"trials\":[0-9]*,\"trials_per_sec\":\([0-9.eE+-]*\),.*/\1/p" "$1"
}
kus() {
    sed -n "s/.*\"$2\":{\([^}]*\)}.*/\1/p" "$1" \
        | sed -n "s/.*\"$3\":\([0-9.eE+-]*\).*/\1/p"
}
# Compares one snapshot against $PREV; subshell body, so `exit 1` only
# fails this attempt, not the whole script.
perf_band_check() (
    snap="$1"
    for c in e2_ours e2_yy; do
        OLD="$(tps "$PREV" "$c")"
        NEW="$(tps "$snap" "$c")"
        [ -n "$OLD" ] && [ -n "$NEW" ] \
            || { echo "perf snapshot missing campaign $c"; exit 1; }
        awk -v old="$OLD" -v new="$NEW" -v c="$c" -v snap="$PREV" 'BEGIN {
            ratio = new / old;
            printf "    %-8s %8.2f -> %8.2f trials/s (x%.2f vs %s)\n",
                   c, old, new, ratio, snap;
            if (ratio < 0.555) {
                printf "perf regression: %s dropped to x%.2f of %s\n",
                       c, ratio, snap;
                exit 1;
            }
        }' || exit 1
    done
    # Kernel-level latencies (µs — LOWER is better, so the band flips):
    # only a >1.8x slowdown on an instrumented kernel fails the gate.
    for nk in n32 n128; do
        for k in sec_us rho_us views_us regular_us shifted_us; do
            OLD="$(kus "$PREV" "$nk" "$k")"
            NEW="$(kus "$snap" "$nk" "$k")"
            [ -n "$OLD" ] && [ -n "$NEW" ] \
                || { echo "perf snapshot missing kernels.$nk.$k"; exit 1; }
            awk -v old="$OLD" -v new="$NEW" -v k="$nk.$k" -v snap="$PREV" \
                'BEGIN {
                ratio = new / old;
                printf "    %-20s %10.2f -> %10.2f us (x%.2f vs %s)\n",
                       k, old, new, ratio, snap;
                if (ratio > 1.8) {
                    printf "perf regression: kernel %s slowed to x%.2f of %s\n",
                           k, ratio, snap;
                    exit 1;
                }
            }' || exit 1
        done
    done
)
if [ -n "$PREV" ]; then
    # The sub-10µs kernels can catch a bad scheduling slice right after the
    # heavy soak stages; a genuine regression reproduces, noise does not.
    # Best-of-3: each attempt takes a fresh snapshot, any in-band run passes.
    ATTEMPT=1
    while :; do
        ./target/release/apf-cli perf-snapshot --out "$SERVE_DIR/perf.json"
        perf_band_check "$SERVE_DIR/perf.json" && break
        [ "$ATTEMPT" -lt 3 ] \
            || { echo "perf regression persisted across $ATTEMPT snapshots"; exit 1; }
        ATTEMPT=$((ATTEMPT + 1))
        echo "    out-of-band sample; re-measuring (attempt $ATTEMPT/3)"
    done
else
    echo "    no committed BENCH_*.json yet; skipping the diff"
fi

echo "OK"
