#!/usr/bin/env bash
# Repo gate: formatting, lints, tests, and a smoke run of the experiment
# harness on the parallel engine. CI and pre-push both run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> harness --quick --jobs 2 e1"
cargo run -q --release -p apf-bench --bin harness -- --quick --jobs 2 e1

echo "OK"
