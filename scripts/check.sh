#!/usr/bin/env bash
# Repo gate: formatting, lints, tests, and a smoke run of the experiment
# harness on the parallel engine. CI and pre-push both run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> apf-lint (determinism & randomness-budget static analysis)"
# Rules and per-crate scopes live in lint.toml at the repo root; suppress a
# single line with `// apf-lint: allow(<rule>) — <reason>`. Nonzero exit on
# any finding, so this gates before clippy.
cargo run -q --release --bin apf-cli -- lint --json

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> conformance: golden corpus digest check"
cargo run -q --release --bin apf-cli -- conformance corpus

echo "==> conformance: fixed-seed fuzzer smoke"
# Deterministic in the seed for any --jobs value; any counterexample is
# shrunk and dumped as a replayable script.
FUZZ_DIR="$(mktemp -d)"
trap 'rm -rf "$FUZZ_DIR" "${TRACE_DIR:-}" "${SERVE_DIR:-}";
      [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null || true' EXIT
cargo run -q --release --bin apf-cli -- conformance fuzz \
    --schedules 16 --seed 12648430 --jobs 2 --dump-dir "$FUZZ_DIR"

echo "==> harness --quick --jobs 2 e1"
cargo run -q --release -p apf-bench --bin harness -- --quick --jobs 2 e1

echo "==> trace smoke: harness --trace-out + apf-cli trace"
# E6's deterministic baseline always stalls on symmetric configs, so the
# harness is guaranteed to dump failure traces; each must be well-formed
# JSONL that the inspector replays without legality violations.
TRACE_DIR="$(mktemp -d)"
cargo run -q --release -p apf-bench --bin harness -- --quick --jobs 2 --trace-out "$TRACE_DIR" e6
found=0
for f in "$TRACE_DIR"/*.jsonl; do
    [ -e "$f" ] || break
    found=1
    cargo run -q --release --bin apf-cli -- trace "$f" > /dev/null \
        || { echo "trace inspection failed: $f"; exit 1; }
done
[ "$found" = 1 ] || { echo "harness --trace-out produced no traces"; exit 1; }

echo "==> serve smoke: HTTP campaign reproduces direct engine digests"
# Start the campaign service on an ephemeral port, submit a tiny E1-shaped
# job over a real socket, and require its per-trial digests to match a
# direct `job-digest` run of the same spec bit for bit; then SIGTERM must
# drain and exit 0.
SERVE_DIR="$(mktemp -d)"
SPEC='{"name":"smoke","seed":1,"trials":3,"n":8,"rho":4,"budget":2000000}'
printf '%s' "$SPEC" > "$SERVE_DIR/spec.json"
cargo run -q --release --bin apf-cli -- job-digest "$SERVE_DIR/spec.json" \
    > "$SERVE_DIR/expected.txt"
./target/release/apf-cli serve --addr 127.0.0.1:0 --jobs 1 --queue-depth 4 \
    > "$SERVE_DIR/serve.log" 2> "$SERVE_DIR/serve.err" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's#^apf-serve listening on http://##p' "$SERVE_DIR/serve.log")"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve never reported its address"; exit 1; }
curl -fsS "http://$ADDR/healthz" > /dev/null
curl -fsS "http://$ADDR/metrics" | grep -q '^apf_jobs_total' \
    || { echo "/metrics scrape missing apf_jobs_total"; exit 1; }
JOB_ID="$(curl -fsS -X POST --data-binary @"$SERVE_DIR/spec.json" "http://$ADDR/jobs" \
    | sed -n 's/.*"id":\([0-9]*\).*/\1/p')"
[ -n "$JOB_ID" ] || { echo "job submission returned no id"; exit 1; }
STATUS=""
for _ in $(seq 1 600); do
    STATUS="$(curl -fsS "http://$ADDR/jobs/$JOB_ID" \
        | sed -n 's/.*"status":"\([a-z]*\)".*/\1/p')"
    case "$STATUS" in
        done) break ;;
        failed|cancelled) echo "job ended $STATUS"; exit 1 ;;
        *) sleep 0.1 ;;
    esac
done
[ "$STATUS" = done ] || { echo "job never finished (last status: $STATUS)"; exit 1; }
curl -fsS "http://$ADDR/jobs/$JOB_ID/result" | tr -d ' ' \
    | sed -n 's/.*"digests":\[\([0-9,]*\)\].*/\1\n/p' | tr ',' '\n' \
    > "$SERVE_DIR/served.txt"
diff -u "$SERVE_DIR/expected.txt" "$SERVE_DIR/served.txt" \
    || { echo "served digests diverge from the direct engine run"; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "serve did not exit 0 on SIGTERM"; exit 1; }
SERVE_PID=""

echo "OK"
