#!/usr/bin/env bash
# Per-metric perf trajectory across every committed BENCH_*.json snapshot.
#
# Prints one row per metric (campaign throughput in trials/s, kernel
# latencies in µs) with one column per snapshot in version order, plus the
# oldest→newest ratio so drift that stays inside the check.sh band on every
# single hop is still visible when it compounds across PRs.
#
# Usage: scripts/bench_trend.sh [BENCH_a.json BENCH_b.json ...]
#   With no arguments, all BENCH_*.json at the repo root, sorted -V.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "$#" -gt 0 ]; then
    SNAPS=("$@")
else
    mapfile -t SNAPS < <(ls BENCH_*.json 2>/dev/null | sort -V)
fi
[ "${#SNAPS[@]}" -ge 1 ] || { echo "no BENCH_*.json snapshots found"; exit 1; }
for s in "${SNAPS[@]}"; do
    [ -r "$s" ] || { echo "cannot read snapshot $s"; exit 1; }
done

# Campaign throughput: higher is better.
tps() {
    sed -n "s/.*\"$2\":{\"trials\":[0-9]*,\"trials_per_sec\":\([0-9.eE+-]*\),.*/\1/p" "$1"
}
# Kernel latency: lower is better. $2 = n32|n128, $3 = metric key.
kus() {
    sed -n "s/.*\"$2\":{\([^}]*\)}.*/\1/p" "$1" \
        | sed -n "s/.*\"$3\":\([0-9.eE+-]*\).*/\1/p"
}

# Header.
printf '%-22s' "metric"
for s in "${SNAPS[@]}"; do
    name="${s#BENCH_}"
    printf ' %12s' "${name%.json}"
done
printf ' %10s %s\n' "old->new" "direction"

row() {
    local label="$1" direction="$2"; shift 2
    local first="" last="" v
    printf '%-22s' "$label"
    for v in "$@"; do
        if [ -n "$v" ]; then
            printf ' %12.3f' "$v"
            [ -n "$first" ] || first="$v"
            last="$v"
        else
            printf ' %12s' "-"
        fi
    done
    if [ -n "$first" ] && [ -n "$last" ]; then
        awk -v a="$first" -v b="$last" -v d="$direction" 'BEGIN {
            printf "    x%.2f    %s\n", b / a, d
        }'
    else
        printf ' %10s %s\n' "-" "$direction"
    fi
}

for c in e2_ours e2_yy; do
    vals=()
    for s in "${SNAPS[@]}"; do vals+=("$(tps "$s" "$c")"); done
    row "campaign.$c" "trials/s, higher better" "${vals[@]}"
done
for nk in n32 n128; do
    for k in sec_us rho_us views_us regular_us shifted_us; do
        vals=()
        for s in "${SNAPS[@]}"; do vals+=("$(kus "$s" "$nk" "$k")"); done
        row "kernel.$nk.$k" "us, lower better" "${vals[@]}"
    done
done
