//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no crates-io access, so the workspace vendors
//! the thin slice of `rand` it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] sampling helpers
//! (`gen`, `gen_range`, `gen_bool`). The generator is xoshiro256++ seeded
//! through splitmix64 — statistically solid for simulation workloads and
//! fully deterministic per seed, which is all the experiment suite relies
//! on. Streams differ from upstream `StdRng` (ChaCha12); nothing in this
//! repository depends on upstream bit streams.

/// Raw 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly from a generator (stand-in for the `Standard`
/// distribution of upstream `rand`).
pub trait UniformSample {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}

impl UniformSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`] (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny widths
                // used here make the residual bias immaterial, but this is
                // unbiased enough for any realistic width.
                let v = (u128::from(rng.next_u64()).wrapping_mul(width) >> 64) as $t;
                self.start + v
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as u128) - (lo as u128) + 1;
                let v = (u128::from(rng.next_u64()).wrapping_mul(width) >> 64) as $t;
                lo + v
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()).wrapping_mul(width) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128 + 1) as u128;
                let v = (u128::from(rng.next_u64()).wrapping_mul(width) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
signed_sample_range!(i64, i32, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Floating rounding can land exactly on `end`; clamp into [lo, hi).
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Sampling helpers over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value.
    fn gen<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1], got {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman–Vigna),
    /// seeded via splitmix64. Deterministic per seed; not upstream's ChaCha
    /// stream (see the crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot emit
            // four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(0..7usize);
            assert!(i < 7);
            let g = r.gen_range(0.0..=0.6);
            assert!((0.0..=0.6).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes_and_fairness() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
        let ones = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&ones), "biased: {ones}");
    }

    #[test]
    fn unit_f64_has_spread() {
        let mut r = StdRng::seed_from_u64(3);
        let mut lo = 0;
        let mut hi = 0;
        for _ in 0..10_000 {
            let v: f64 = r.gen_range(0.0..1.0);
            if v < 0.25 {
                lo += 1;
            }
            if v > 0.75 {
                hi += 1;
            }
        }
        assert!((2000..3000).contains(&lo), "low quartile {lo}");
        assert!((2000..3000).contains(&hi), "high quartile {hi}");
    }
}
