//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates-io access, so the workspace vendors
//! the slice of proptest its property tests use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`/`prop_filter`, range and tuple
//! strategies, [`arbitrary::any`], [`collection::vec`], the `prop_assert*`
//! macros, and [`test_runner::Config`] (`ProptestConfig`).
//!
//! Differences from upstream: cases are sampled from a fixed per-test seed
//! (derived from the test name, so failures reproduce deterministically),
//! and there is **no shrinking** — a failure reports the case number and
//! message only.

pub mod test_runner {
    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!`/`prop_filter` rejected the inputs; try another case.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Creates a rejection with a reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Outcome of one test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (subset of upstream `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
        /// Give up after this many consecutive rejections.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_global_rejects: 65_536 }
        }
    }

    impl Config {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases, ..Config::default() }
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Sampling failed: the strategy (or a filter on it) rejected the draw.
    #[derive(Debug, Clone)]
    pub struct Reject(pub &'static str);

    /// A generator of random values (subset of upstream `Strategy`; no
    /// shrinking, so a strategy is just a sampler).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value, or rejects.
        ///
        /// # Errors
        ///
        /// Returns [`Reject`] when a filter refuses the draw; the runner
        /// retries with fresh randomness.
        fn sample(&self, rng: &mut StdRng) -> Result<Self::Value, Reject>;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `pred`.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, whence, pred }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> Result<O, Reject> {
            self.inner.sample(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn sample(&self, rng: &mut StdRng) -> Result<S::Value, Reject> {
            let v = self.inner.sample(rng)?;
            if (self.pred)(&v) {
                Ok(v)
            } else {
                Err(Reject(self.whence))
            }
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> Result<T, Reject> {
            self.0.sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> Result<T, Reject> {
            Ok(self.0.clone())
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> Result<$t, Reject> {
                    Ok(rng.gen_range(self.clone()))
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> Result<$t, Reject> {
                    Ok(rng.gen_range(self.clone()))
                }
            }
        )*};
    }
    range_strategy!(f64, usize, u8, u16, u32, u64, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Result<Self::Value, Reject> {
                    Ok(($(self.$idx.sample(rng)?,)+))
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod arbitrary {
    use super::strategy::{Reject, Strategy};
    use rand::rngs::StdRng;
    use rand::{Rng, UniformSample};

    /// Uniform full-domain strategy for primitives (subset of `Arbitrary`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: UniformSample> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> Result<T, Reject> {
            Ok(rng.gen())
        }
    }

    /// The canonical strategy for `T` (upstream `any::<T>()`).
    pub fn any<T: UniformSample>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::{Reject, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Result<Vec<S::Value>, Reject> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[doc(hidden)]
pub mod runner_impl {
    use crate::strategy::{Reject, Strategy};
    use crate::test_runner::{Config, TestCaseError};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// FNV-1a over the test name: a stable per-test seed so failures
    /// reproduce without a seed file.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drives one property: samples inputs and invokes `case` until
    /// `config.cases` successes.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on assertion failure or
    /// when the rejection budget is exhausted.
    pub fn run<S: Strategy>(
        name: &str,
        config: &Config,
        strategy: &S,
        mut case: impl FnMut(S::Value) -> Result<(), TestCaseError>,
    ) {
        let mut rng = StdRng::seed_from_u64(seed_for(name));
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        while passed < config.cases {
            let input = match strategy.sample(&mut rng) {
                Ok(v) => v,
                Err(Reject(whence)) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.max_global_rejects,
                        "{name}: too many strategy rejections ({rejected}), last: {whence}"
                    );
                    continue;
                }
            };
            match case(input) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.max_global_rejects,
                        "{name}: too many rejections ({rejected}), last: {why}"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: property failed at case #{}: {msg}", passed + 1)
                }
            }
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let strategy = ( $( $strat, )+ );
            $crate::runner_impl::run(
                stringify!($name),
                &config,
                &strategy,
                |( $( $arg, )+ )| -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property body (returns a failure instead of
/// panicking, as upstream does).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: both sides are {:?}", a);
    }};
}

/// Skips the current case when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0..100usize, (a, b) in (0.0..1.0f64, 0.0..1.0f64)) {
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&a) && (0.0..1.0).contains(&b));
        }

        #[test]
        fn map_filter_and_vec(v in prop::collection::vec((0..10u32).prop_map(|x| x * 2), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for x in v {
                prop_assert!(x % 2 == 0 && x < 20);
            }
        }

        #[test]
        fn assume_rejects_gracefully(x in 0..100u64) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn any_bool_takes_both_values(bits in prop::collection::vec(any::<bool>(), 64..65)) {
            // 64 fair coins are astronomically unlikely to agree.
            prop_assert!(bits.iter().any(|b| *b) && bits.iter().any(|b| !*b));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_case_number() {
        let config = ProptestConfig::with_cases(8);
        crate::runner_impl::run(
            "always_fails",
            &config,
            &(0..10u32,),
            |(_x,)| -> crate::test_runner::TestCaseResult {
                prop_assert!(false, "boom");
                #[allow(unreachable_code)]
                Ok(())
            },
        );
    }
}
