//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no crates-io access, so the workspace vendors
//! the slice of criterion its benches use: `criterion_group!`/
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_with_input`,
//! `bench_function`, [`Bencher::iter`], [`BenchmarkId`], and [`black_box`].
//!
//! Timing is a plain mean over `sample_size` timed batches after one warmup
//! batch — no outlier analysis, no HTML reports. Output is one line per
//! benchmark: `group/name/param    time: <mean> <unit>/iter (<samples>)`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId { name: name.into(), param: param.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.param.is_empty() {
            f.write_str(&self.name)
        } else {
            write!(f, "{}/{}", self.name, self.param)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_string(), param: String::new() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name, param: String::new() }
    }
}

/// Passed to the measured closure; collects iteration timings.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, running one warmup batch then `sample_size` timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup (also forces lazy setup)
        self.elapsed.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.elapsed.push(t0.elapsed());
        }
    }

    fn mean(&self) -> Duration {
        if self.elapsed.is_empty() {
            return Duration::ZERO;
        }
        self.elapsed.iter().sum::<Duration>() / self.elapsed.len() as u32
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named family of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: core::marker::PhantomData<&'a mut Criterion>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, elapsed: Vec::new() };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, elapsed: Vec::new() };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        println!(
            "{}/{:<40} time: {:>12}/iter  ({} samples)",
            self.name,
            id.to_string(),
            human(b.mean()),
            b.elapsed.len()
        );
    }

    /// Ends the group (prints nothing extra; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Benchmark driver (subset of upstream `Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: core::marker::PhantomData,
            sample_size: self.sample_size,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(BenchmarkId::from(name), f);
        self
    }
}

/// Declares a benchmark group function, matching both upstream forms:
/// `criterion_group!(name, target, ...)` and
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n) * black_box(n))
        });
        group.bench_function(BenchmarkId::from("noop"), |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from("g").to_string(), "g");
    }

    #[test]
    fn human_units() {
        assert!(human(Duration::from_nanos(5)).ends_with("ns"));
        assert!(human(Duration::from_micros(50)).ends_with("µs"));
        assert!(human(Duration::from_millis(50)).ends_with("ms"));
        assert!(human(Duration::from_secs(50)).ends_with(" s"));
    }
}
