//! Baseline algorithms for the experiment harness.
//!
//! Three comparison points frame the paper's contribution:
//!
//! * [`YyStyleFormation`] — a Yamauchi–Yamashita-style *randomized* pattern
//!   formation: symmetry is broken by drawing a point **uniformly at random
//!   from a continuous segment** (modelled as a 64-bit draw per decision, vs
//!   the paper's single bit per cycle). The deterministic tail is shared
//!   with our implementation, so the measured difference isolates the
//!   randomness interface of the symmetry-breaking phase — which is exactly
//!   the axis the paper compares on ([13] in the paper).
//! * [`DeterministicFormation`] — no randomness at all: succeeds from
//!   asymmetric configurations (unique maximal view), but on configurations
//!   with `ρ(P) > 1` or an axis of symmetry it *provably cannot make
//!   progress* (it stays forever). This exhibits the
//!   `ρ(I) | ρ(F)` impossibility that the probabilistic algorithm removes.
//! * [`GatherToCenter`] — every robot walks to the center of `C(P)`; a
//!   trivial workload for calibrating simulator overhead in benchmarks.

#![forbid(unsafe_code)]

use apf_core::analysis::Analysis;
use apf_core::{dpf, FormPattern};
use apf_geometry::{are_similar, Path, Point};
use apf_sim::{BitSource, ComputeError, Decision, PhaseKind, RobotAlgorithm, Snapshot};

/// Yamauchi–Yamashita-style randomized formation (continuous randomness).
///
/// Election: every robot in the *closest band* (radius within tolerance of
/// the minimum) draws a uniform random fraction (one 64-bit word — the
/// discrete stand-in for "a point chosen uniformly at random in a continuous
/// segment") and steps that fraction of a quarter of its radius toward the
/// center. Distinct draws break ties with probability 1; once one robot is
/// strictly closest it descends to the selected radius and the shared
/// deterministic phase finishes the pattern.
#[derive(Debug, Clone, Copy, Default)]
pub struct YyStyleFormation;

impl YyStyleFormation {
    /// Creates the baseline.
    pub fn new() -> Self {
        YyStyleFormation
    }
}

impl RobotAlgorithm for YyStyleFormation {
    fn compute(
        &self,
        snapshot: &Snapshot,
        bits: &mut dyn BitSource,
    ) -> Result<Decision, ComputeError> {
        self.compute_tagged(snapshot, bits).map(|(decision, _)| decision)
    }

    fn compute_tagged(
        &self,
        snapshot: &Snapshot,
        bits: &mut dyn BitSource,
    ) -> Result<(Decision, PhaseKind), ComputeError> {
        let a = Analysis::new(snapshot)?;
        if a.n() != a.pattern.len() {
            return Err(ComputeError::new("robot/pattern size mismatch"));
        }
        if are_similar(a.config.points(), &a.pattern, &a.tol) {
            return Ok((Decision::Stay, PhaseKind::Terminal));
        }
        if let Some(d) = apf_core::completion_move(&a)? {
            return Ok((d, PhaseKind::Completion));
        }
        match a.selected() {
            Some(rs) => dpf::act(&a, rs),
            // The continuous-randomness election is this baseline's analogue
            // of ψ_RSB's election — tagging it the same makes the per-phase
            // bits/cycle comparison line up across algorithms (and lets the
            // trace inspector show exactly where the 64-bit draws happen).
            None => Ok((yy_select(&a, bits), PhaseKind::RsbElection)),
        }
    }

    fn name(&self) -> &'static str {
        "yy-style-continuous-randomness"
    }
}

/// One election cycle of the continuous-randomness baseline.
fn yy_select(a: &Analysis, bits: &mut dyn BitSource) -> Decision {
    let tol = &a.tol;
    let my_r = a.radius(a.me);
    let min_r = (0..a.n()).map(|i| a.radius(i)).fold(f64::INFINITY, f64::min);
    let others_min =
        (0..a.n()).filter(|&i| i != a.me).map(|i| a.radius(i)).fold(f64::INFINITY, f64::min);

    if tol.lt(my_r, others_min) {
        // Unique closest: descend deterministically to the selected radius.
        let target = 0.4 * a.l_f.min(others_min);
        if my_r <= target + tol.eps {
            return Decision::Stay;
        }
        let p = apf_geometry::path::radial_to(Point::ORIGIN, a.my_pos(), target);
        return Decision::Move(a.denormalize_path(&p));
    }
    if !tol.eq(my_r, min_r) {
        return Decision::Stay;
    }
    // Closest band: draw a continuous random fraction (64 bits) and step
    // inward by that fraction of a quarter radius.
    let u = bits.word(64) as f64 / u64::MAX as f64;
    let step = my_r * 0.25 * u;
    if step <= tol.eps {
        return Decision::Stay;
    }
    let target_radius = my_r - step;
    let p = apf_geometry::path::radial_to(Point::ORIGIN, a.my_pos(), target_radius);
    Decision::Move(a.denormalize_path(&p))
}

/// Purely deterministic formation: our shared deterministic machinery with
/// the asymmetric-descent leader election, and *no* fallback for symmetric
/// configurations — on those it stays put forever, exhibiting the
/// deterministic impossibility.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeterministicFormation;

impl DeterministicFormation {
    /// Creates the baseline.
    pub fn new() -> Self {
        DeterministicFormation
    }
}

impl RobotAlgorithm for DeterministicFormation {
    fn compute(
        &self,
        snapshot: &Snapshot,
        bits: &mut dyn BitSource,
    ) -> Result<Decision, ComputeError> {
        self.compute_tagged(snapshot, bits).map(|(decision, _)| decision)
    }

    fn compute_tagged(
        &self,
        snapshot: &Snapshot,
        _bits: &mut dyn BitSource,
    ) -> Result<(Decision, PhaseKind), ComputeError> {
        let a = Analysis::new(snapshot)?;
        if a.n() != a.pattern.len() {
            return Err(ComputeError::new("robot/pattern size mismatch"));
        }
        if are_similar(a.config.points(), &a.pattern, &a.tol) {
            return Ok((Decision::Stay, PhaseKind::Terminal));
        }
        // Symmetric configuration: a deterministic algorithm cannot break
        // the symmetry — every robot of an equivalence class would act
        // identically. Stall (this IS the baseline's defining failure).
        // Deliberately Untagged: the stall belongs to no paper phase, and
        // stalled trials show up in per-phase tables as untagged cycles.
        let c = a.config.sec().center;
        let rho = apf_geometry::symmetry::symmetricity(&a.config, c, &a.tol);
        if rho > 1 || apf_geometry::symmetry::has_axis_of_symmetry(&a.config, c, &a.tol) {
            return Ok((Decision::Stay, PhaseKind::Untagged));
        }
        if let Some(d) = apf_core::completion_move(&a)? {
            return Ok((d, PhaseKind::Completion));
        }
        match a.selected() {
            Some(rs) => dpf::act(&a, rs),
            None => {
                // Reuse the paper's asymmetric branch through the public
                // entry point (it draws no bits on the asymmetric path).
                let mut null = apf_sim::NullBits;
                FormPattern::new().compute_tagged(snapshot, &mut null)
            }
        }
    }

    fn name(&self) -> &'static str {
        "deterministic-max-view"
    }
}

/// Trivial baseline: every robot walks to the center of the smallest
/// enclosing circle. Used to calibrate simulator overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct GatherToCenter;

impl GatherToCenter {
    /// Creates the baseline.
    pub fn new() -> Self {
        GatherToCenter
    }
}

impl RobotAlgorithm for GatherToCenter {
    fn compute(
        &self,
        snapshot: &Snapshot,
        _bits: &mut dyn BitSource,
    ) -> Result<Decision, ComputeError> {
        let cfg = snapshot.configuration();
        let c = cfg.sec().center;
        let me = snapshot.robots()[snapshot.self_index()];
        if me.dist(c) <= snapshot.tol().eps {
            return Ok(Decision::Stay);
        }
        Ok(Decision::Move(Path::straight(me, c)))
    }

    fn name(&self) -> &'static str {
        "gather-to-center"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_scheduler::SchedulerKind;
    use apf_sim::{World, WorldConfig};

    fn world_with(
        alg: Box<dyn RobotAlgorithm>,
        initial: Vec<Point>,
        pattern: Vec<Point>,
        kind: SchedulerKind,
        seed: u64,
        randomize_frames: bool,
    ) -> World {
        let config = WorldConfig { randomize_frames, ..WorldConfig::default() };
        World::new(initial, pattern, alg, kind.build(seed), config, seed)
    }

    #[test]
    fn yy_forms_pattern_from_symmetric_config() {
        let initial = apf_patterns::symmetric_configuration(8, 4, 7);
        let target = apf_patterns::random_pattern(8, 9);
        let mut w = world_with(
            Box::new(YyStyleFormation::new()),
            initial,
            target,
            SchedulerKind::RoundRobin,
            3,
            true,
        );
        let o = w.run(300_000);
        assert!(o.formed, "YY baseline should form: {:?}", o.reason);
        // Continuous randomness: many bits per drawing cycle.
        assert!(o.metrics.random_bits() >= 64, "bits = {}", o.metrics.random_bits());
    }

    #[test]
    fn yy_uses_an_order_of_magnitude_more_bits() {
        let initial = apf_patterns::symmetric_configuration(8, 4, 11);
        let target = apf_patterns::random_pattern(8, 12);
        let mut yy = world_with(
            Box::new(YyStyleFormation::new()),
            initial.clone(),
            target.clone(),
            SchedulerKind::RoundRobin,
            5,
            true,
        );
        let o_yy = yy.run(300_000);
        let mut ours = apf_core::SimulationBuilder::new(initial, target)
            .scheduler(SchedulerKind::RoundRobin)
            .seed(5)
            .build()
            .unwrap();
        let o_ours = ours.run(300_000);
        assert!(o_yy.formed && o_ours.formed);
        assert!(
            o_yy.metrics.random_bits() >= 8 * o_ours.metrics.random_bits().max(1),
            "yy {} vs ours {}",
            o_yy.metrics.random_bits(),
            o_ours.metrics.random_bits()
        );
    }

    #[test]
    fn deterministic_forms_from_asymmetric() {
        let initial = apf_patterns::asymmetric_configuration(8, 21);
        let target = apf_patterns::random_pattern(8, 22);
        let mut w = world_with(
            Box::new(DeterministicFormation::new()),
            initial,
            target,
            SchedulerKind::RoundRobin,
            1,
            true,
        );
        let o = w.run(300_000);
        assert!(o.formed, "deterministic baseline must form from asymmetric: {:?}", o.reason);
        assert_eq!(o.metrics.random_bits(), 0, "it must not consume randomness");
    }

    #[test]
    fn deterministic_stalls_on_symmetric() {
        let initial = apf_patterns::symmetric_configuration(8, 4, 31);
        let target = apf_patterns::random_pattern(8, 32);
        let start = initial.clone();
        let mut w = world_with(
            Box::new(DeterministicFormation::new()),
            initial,
            target,
            SchedulerKind::RoundRobin,
            1,
            true,
        );
        let o = w.run(20_000);
        assert!(!o.formed, "deterministic baseline cannot break symmetry");
        // Nobody ever moved.
        for (p, q) in o.final_positions.iter().zip(start.iter()) {
            assert!(p.approx_eq(*q, &apf_geometry::Tol::default()));
        }
    }

    #[test]
    fn gather_contracts_to_center() {
        let initial = apf_patterns::asymmetric_configuration(8, 41);
        let pattern = initial.clone();
        let mut w = world_with(
            Box::new(GatherToCenter::new()),
            initial,
            pattern,
            SchedulerKind::Fsync,
            1,
            true,
        );
        for _ in 0..200 {
            let _ = w.step();
        }
        let cfg = w.configuration();
        let c = cfg.sec().center;
        let spread: f64 = cfg.points().iter().map(|p| p.dist(c)).fold(0.0, f64::max);
        assert!(spread < 0.05, "robots should contract, spread = {spread}");
    }
}
