//! A token-tree parser over the masking lexer.
//!
//! The per-line rules only need needles; the inter-procedural rules
//! (D10–D13) need to know *which function* a token belongs to and *who
//! calls whom*. This module tokenizes the [lexer's](crate::lexer) masked
//! text (comments/strings are already spaces, so every token is code),
//! matches its bracket trees, and extracts:
//!
//! * **items** — `fn` definitions (free, inherent-impl, trait-impl and
//!   trait-default methods), with their module path, owner type, body token
//!   range and line span;
//! * **call sites** — `path::to::f(...)`, bare `f(...)`, and `.method(...)`
//!   calls inside each body, with enough shape (`self` receiver, path
//!   segments) for the symbol table's best-effort resolution;
//! * **spawn closures** — closure literals passed to a `spawn(...)` call.
//!   They are the roots of the panic-reachability analysis, and the only
//!   place where code starts running on another thread;
//! * **`use` declarations** — alias → path mappings used to qualify
//!   single-segment calls and to pin cross-crate paths.
//!
//! This is deliberately *not* a Rust parser: it does not understand
//! expressions, types, or macros. It understands exactly the token shapes
//! the call-graph needs, and over-approximates everything else (see
//! DESIGN.md for the soundness trade-offs).

use crate::lexer::Scanned;
use std::collections::BTreeMap;

/// Sentinel for "no matching bracket" in [`ParsedFile::match_idx`].
pub const NO_MATCH: usize = usize::MAX;

/// One token of masked source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// `'a` — lifetime or loop label (never a char literal; those are
    /// masked).
    Lifetime,
    /// A numeric literal (value irrelevant to the analyses).
    Num,
    /// `::`
    ColonColon,
    /// `->`
    Arrow,
    /// `=>`
    FatArrow,
    /// Any other single byte of punctuation.
    Punct(u8),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: usize,
    /// What the token is.
    pub kind: TokKind,
}

impl Tok {
    /// The identifier text, if this token is one.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the single punctuation byte `b`.
    #[must_use]
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokKind::Punct(b)
    }
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `a::b::f(...)` or bare `f(...)` — path segments in source order.
    Path(Vec<String>),
    /// `.name(...)`; `on_self` is true for a plain `self.name(...)`.
    Method {
        /// Method name.
        name: String,
        /// Receiver is literally `self` (enables impl-owner resolution).
        on_self: bool,
    },
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based line of the callee token.
    pub line: usize,
    /// Token index of the first callee token.
    pub tok: usize,
    /// Callee shape.
    pub callee: Callee,
}

/// A closure literal passed to a `spawn(...)` call — a thread root.
#[derive(Debug, Clone)]
pub struct SpawnClosure {
    /// 1-based line of the `spawn` token.
    pub line: usize,
    /// Token range (start, end) of the spawn call's argument list.
    pub body: (usize, usize),
    /// The closure body mentions `catch_unwind` — panics are contained.
    pub guarded: bool,
}

/// One `fn` item (definition or bodyless trait declaration).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name.
    pub name: String,
    /// Impl/trait type owner (`HashSink` for `impl HashSink { fn f }`).
    pub owner: Option<String>,
    /// `module::path::Owner::name` within the file (no crate prefix).
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the closing body brace (== `line` for decls).
    pub end_line: usize,
    /// Token range (start, end) of the body, both 0 for bodyless decls.
    pub body: (usize, usize),
    /// The definition sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// Call sites in the body (excluding nested `fn` bodies).
    pub calls: Vec<CallSite>,
    /// Closures passed to `spawn(...)` inside the body.
    pub spawns: Vec<SpawnClosure>,
    /// The body mentions `catch_unwind` (a panic-containment boundary).
    pub has_catch_unwind: bool,
}

/// A parsed file: tokens, bracket matching, items, and `use` aliases.
#[derive(Debug)]
pub struct ParsedFile {
    /// Token stream of the masked source.
    pub toks: Vec<Tok>,
    /// `match_idx[i]` is the index of the bracket matching an open/close
    /// `(){}[]` at `i`, or [`NO_MATCH`].
    pub match_idx: Vec<usize>,
    /// All `fn` items in source order.
    pub fns: Vec<FnItem>,
    /// `use` alias → full path segments (`Json` → `["apf_serve","Json"]`).
    pub uses: BTreeMap<String, Vec<String>>,
}

/// Module path derived from a workspace-relative file path: the segments
/// after `src/`, minus `lib.rs`/`main.rs`/`mod.rs` terminals.
#[must_use]
pub fn file_module_path(rel_path: &str) -> Vec<String> {
    let comps: Vec<&str> = rel_path.split('/').collect();
    let Some(src_at) = comps.iter().position(|c| *c == "src") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (i, c) in comps.iter().enumerate().skip(src_at + 1) {
        let last = i + 1 == comps.len();
        if last {
            let stem = c.strip_suffix(".rs").unwrap_or(c);
            if !matches!(stem, "lib" | "main" | "mod") {
                out.push(stem.to_string());
            }
        } else if *c == "bin" {
            // `src/bin/<target>.rs` is its own crate root, not a module.
            return Vec::new();
        } else {
            out.push((*c).to_string());
        }
    }
    out
}

/// Tokenizes masked source text.
#[must_use]
pub fn tokenize(masked: &str) -> Vec<Tok> {
    let bytes = masked.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                toks.push(Tok { line, kind: TokKind::Ident(masked[start..i].to_string()) });
            }
            b'0'..=b'9' => {
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                // `1.5`, `1.5e-3`: consume the fraction only when a digit
                // follows the dot, so `x[0].lock()` keeps its `.` token.
                if bytes.get(i) == Some(&b'.') && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    i += 1;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                }
                toks.push(Tok { line, kind: TokKind::Num });
            }
            b'\'' if bytes.get(i + 1).is_some_and(|&c| is_ident_byte(c)) => {
                i += 1;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                toks.push(Tok { line, kind: TokKind::Lifetime });
            }
            b':' if bytes.get(i + 1) == Some(&b':') => {
                toks.push(Tok { line, kind: TokKind::ColonColon });
                i += 2;
            }
            b'-' if bytes.get(i + 1) == Some(&b'>') => {
                toks.push(Tok { line, kind: TokKind::Arrow });
                i += 2;
            }
            b'=' if bytes.get(i + 1) == Some(&b'>') => {
                toks.push(Tok { line, kind: TokKind::FatArrow });
                i += 2;
            }
            _ => {
                toks.push(Tok { line, kind: TokKind::Punct(b) });
                i += 1;
            }
        }
    }
    toks
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Matches `(){}[]` pairs over a token stream. Unbalanced brackets map to
/// [`NO_MATCH`] — the parser tolerates them rather than failing the file.
#[must_use]
pub fn match_brackets(toks: &[Tok]) -> Vec<usize> {
    let mut out = vec![NO_MATCH; toks.len()];
    let mut stack: Vec<(u8, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Punct(b @ (b'(' | b'{' | b'[')) => stack.push((b, i)),
            TokKind::Punct(b @ (b')' | b'}' | b']')) => {
                let want = match b {
                    b')' => b'(',
                    b'}' => b'{',
                    _ => b'[',
                };
                if let Some(&(open, at)) = stack.last() {
                    if open == want {
                        stack.pop();
                        out[at] = i;
                        out[i] = at;
                    }
                }
            }
            _ => {}
        }
    }
    out
}

const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "let", "mut",
    "ref", "move", "fn", "pub", "use", "mod", "impl", "trait", "struct", "enum", "union", "type",
    "where", "unsafe", "as", "in", "dyn", "crate", "super", "self", "Self", "const", "static",
    "extern", "async", "await", "box", "true", "false",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Parses one scanned file into items, calls, and spawn closures.
#[must_use]
pub fn parse(scanned: &Scanned, rel_path: &str) -> ParsedFile {
    let toks = tokenize(&scanned.masked);
    let match_idx = match_brackets(&toks);
    let mut p = ParsedFile { toks, match_idx, fns: Vec::new(), uses: BTreeMap::new() };
    let file_mods = file_module_path(rel_path);
    collect_items(&mut p, scanned, &file_mods);
    collect_bodies(&mut p);
    p
}

/// What an open brace belongs to, for the scope stack. Braces that are
/// neither a `mod` nor an impl/trait body (fn bodies, blocks, match arms)
/// never enter the stack — item collection just walks past them.
#[derive(Debug, Clone)]
enum ScopeKind {
    Mod(String),
    Owner(String),
}

fn collect_items(p: &mut ParsedFile, scanned: &Scanned, file_mods: &[String]) {
    // (kind, token index of the closing brace)
    let mut scopes: Vec<(ScopeKind, usize)> = Vec::new();
    let n = p.toks.len();
    let mut i = 0;
    while i < n {
        while scopes.last().is_some_and(|&(_, close)| close <= i) {
            scopes.pop();
        }
        let Some(word) = p.toks[i].ident() else {
            i += 1;
            continue;
        };
        match word {
            "mod" => {
                if let (Some(name), true) = (
                    p.toks.get(i + 1).and_then(Tok::ident),
                    p.toks.get(i + 2).is_some_and(|t| t.is_punct(b'{')),
                ) {
                    let close = p.match_idx[i + 2];
                    if close != NO_MATCH {
                        scopes.push((ScopeKind::Mod(name.to_string()), close));
                    }
                    i += 3;
                    continue;
                }
                i += 1;
            }
            "impl" => {
                if let Some((ty, body_open)) = parse_impl_header(p, i + 1) {
                    let close = p.match_idx[body_open];
                    if close != NO_MATCH {
                        scopes.push((ScopeKind::Owner(ty), close));
                    }
                    i = body_open + 1;
                    continue;
                }
                i += 1;
            }
            "trait" => {
                if let Some(name) = p.toks.get(i + 1).and_then(Tok::ident) {
                    if let Some(open) = find_body_open(p, i + 2) {
                        let close = p.match_idx[open];
                        if close != NO_MATCH {
                            scopes.push((ScopeKind::Owner(name.to_string()), close));
                        }
                        i = open + 1;
                        continue;
                    }
                }
                i += 1;
            }
            "fn" => {
                if let Some(name) = p.toks.get(i + 1).and_then(Tok::ident) {
                    let owner = scopes.iter().rev().find_map(|(k, _)| match k {
                        ScopeKind::Owner(t) => Some(t.clone()),
                        _ => None,
                    });
                    let mods: Vec<&str> = file_mods
                        .iter()
                        .map(String::as_str)
                        .chain(scopes.iter().filter_map(|(k, _)| match k {
                            ScopeKind::Mod(m) => Some(m.as_str()),
                            _ => None,
                        }))
                        .collect();
                    let mut qual = String::new();
                    for m in &mods {
                        qual.push_str(m);
                        qual.push_str("::");
                    }
                    if let Some(o) = &owner {
                        qual.push_str(o);
                        qual.push_str("::");
                    }
                    qual.push_str(name);
                    let line = p.toks[i].line;
                    let (body, end_line, next) = match find_fn_body(p, i + 2) {
                        Some((open, close)) => ((open + 1, close), p.toks[close].line, open + 1),
                        None => ((0, 0), line, i + 2),
                    };
                    p.fns.push(FnItem {
                        name: name.to_string(),
                        owner,
                        qual,
                        line,
                        end_line,
                        body,
                        is_test: scanned.is_test_line(line),
                        calls: Vec::new(),
                        spawns: Vec::new(),
                        has_catch_unwind: false,
                    });
                    i = next;
                    continue;
                }
                i += 1;
            }
            "use" => {
                i = parse_use(p, i + 1);
            }
            _ => i += 1,
        }
    }
}

/// After `impl`, skips generics and reads `[Trait for] Type`, returning the
/// type's last path segment and the index of the body `{`.
fn parse_impl_header(p: &ParsedFile, mut i: usize) -> Option<(String, usize)> {
    i = skip_generics(p, i);
    let mut last_seg: Option<String> = None;
    loop {
        let t = p.toks.get(i)?;
        match &t.kind {
            TokKind::Ident(w) if w == "for" => {
                // `impl Trait for Type`: restart, the type comes next.
                last_seg = None;
                i += 1;
            }
            TokKind::Ident(w) if w == "where" => {
                let open = find_body_open(p, i)?;
                return Some((last_seg?, open));
            }
            TokKind::Ident(w) if matches!(w.as_str(), "dyn" | "mut" | "const") => i += 1,
            TokKind::Ident(w) => {
                last_seg = Some(w.clone());
                i = skip_generics(p, i + 1);
            }
            TokKind::ColonColon | TokKind::Lifetime => i += 1,
            TokKind::Punct(b'&') => i += 1,
            TokKind::Punct(b'{') => return Some((last_seg?, i)),
            // Tuple / slice / pointer impl targets — give up on a name.
            _ => return None,
        }
    }
}

/// Skips a balanced `<...>` group starting at `i` (if any); returns the
/// index after it. Angle depth counting is safe here because `->` and `=>`
/// are single tokens.
fn skip_generics(p: &ParsedFile, i: usize) -> usize {
    if !p.toks.get(i).is_some_and(|t| t.is_punct(b'<')) {
        return i;
    }
    let mut depth = 0i64;
    let mut j = i;
    while j < p.toks.len() {
        match p.toks[j].kind {
            TokKind::Punct(b'<') => depth += 1,
            TokKind::Punct(b'>') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    i
}

/// Finds the next `{` at angle-depth 0, skipping `(...)`/`[...]` groups.
fn find_body_open(p: &ParsedFile, mut i: usize) -> Option<usize> {
    let mut angle = 0i64;
    while i < p.toks.len() {
        match p.toks[i].kind {
            TokKind::Punct(b'<') => angle += 1,
            TokKind::Punct(b'>') => angle = (angle - 1).max(0),
            TokKind::Punct(b'(' | b'[') => {
                let m = p.match_idx[i];
                if m == NO_MATCH {
                    return None;
                }
                i = m;
            }
            TokKind::Punct(b'{') if angle == 0 => return Some(i),
            TokKind::Punct(b';') if angle == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// From just after a fn's name: skips generics and the parameter list, then
/// finds the body `{` (or `None` for a `;`-terminated declaration).
/// Returns (open index, close index).
fn find_fn_body(p: &ParsedFile, i: usize) -> Option<(usize, usize)> {
    let i = skip_generics(p, i);
    if !p.toks.get(i).is_some_and(|t| t.is_punct(b'(')) {
        return None;
    }
    let params_close = p.match_idx[i];
    if params_close == NO_MATCH {
        return None;
    }
    let open = find_body_open(p, params_close + 1)?;
    let close = p.match_idx[open];
    if close == NO_MATCH {
        return None;
    }
    Some((open, close))
}

/// Parses a `use` declaration starting after the `use` keyword; fills
/// `p.uses` and returns the index after the terminating `;`.
fn parse_use(p: &mut ParsedFile, mut i: usize) -> usize {
    let mut prefix: Vec<String> = Vec::new();
    let mut aliases: Vec<(String, Vec<String>)> = Vec::new();
    parse_use_tree(p, &mut i, &mut prefix, &mut aliases);
    while i < p.toks.len() && !p.toks[i].is_punct(b';') {
        i += 1;
    }
    for (alias, path) in aliases {
        p.uses.insert(alias, path);
    }
    i + 1
}

fn parse_use_tree(
    p: &ParsedFile,
    i: &mut usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<(String, Vec<String>)>,
) {
    let depth_at_entry = prefix.len();
    let mut last: Option<String> = None;
    while *i < p.toks.len() {
        match &p.toks[*i].kind {
            TokKind::Ident(w) if w == "as" => {
                *i += 1;
                if let Some(alias) = p.toks.get(*i).and_then(Tok::ident) {
                    let mut path = prefix.clone();
                    if let Some(l) = last.take() {
                        path.push(l);
                    }
                    out.push((alias.to_string(), path));
                    *i += 1;
                }
            }
            TokKind::Ident(w) => {
                if let Some(l) = last.replace(w.clone()) {
                    prefix.push(l);
                }
                *i += 1;
            }
            TokKind::ColonColon => *i += 1,
            TokKind::Punct(b'{') => {
                if let Some(l) = last.take() {
                    prefix.push(l);
                }
                *i += 1;
                parse_use_tree(p, i, prefix, out);
            }
            TokKind::Punct(b',') => {
                if let Some(l) = last.take() {
                    let mut path = prefix.clone();
                    path.push(l.clone());
                    out.push((l, path));
                }
                prefix.truncate(depth_at_entry);
                *i += 1;
            }
            TokKind::Punct(b'}' | b';') => {
                if let Some(l) = last.take() {
                    let mut path = prefix.clone();
                    path.push(l.clone());
                    out.push((l, path));
                }
                prefix.truncate(depth_at_entry.min(prefix.len()));
                if p.toks[*i].is_punct(b'}') {
                    *i += 1;
                }
                return;
            }
            TokKind::Punct(b'*') => {
                last = None;
                *i += 1;
            }
            _ => {
                *i += 1;
                return;
            }
        }
    }
}

/// Second pass: per-fn call sites, spawn closures, and `catch_unwind`
/// markers, skipping nested `fn` bodies (their calls belong to the nested
/// item).
fn collect_bodies(p: &mut ParsedFile) {
    let ranges: Vec<(usize, usize)> = p.fns.iter().map(|f| f.body).collect();
    for k in 0..p.fns.len() {
        let (start, end) = ranges[k];
        if start >= end {
            continue;
        }
        // Nested fn bodies strictly inside this one.
        let skips: Vec<(usize, usize)> =
            ranges.iter().filter(|&&(s, e)| s > start && e < end && s < e).copied().collect();
        let calls = calls_in_range(p, start, end, &skips, false);
        let spawns = find_spawns(p, start, end, &skips);
        let has_catch = range_mentions(p, start, end, &skips, "catch_unwind");
        let f = &mut p.fns[k];
        f.calls = calls;
        f.spawns = spawns;
        f.has_catch_unwind = has_catch;
    }
}

fn in_skips(skips: &[(usize, usize)], i: usize) -> Option<usize> {
    skips.iter().find(|&&(s, e)| i >= s && i < e).map(|&(_, e)| e)
}

/// True when any token in the range (minus skips) is the identifier `word`.
pub(crate) fn range_mentions(
    p: &ParsedFile,
    start: usize,
    end: usize,
    skips: &[(usize, usize)],
    word: &str,
) -> bool {
    let mut i = start;
    while i < end.min(p.toks.len()) {
        if let Some(e) = in_skips(skips, i) {
            i = e;
            continue;
        }
        if p.toks[i].ident() == Some(word) {
            return true;
        }
        i += 1;
    }
    false
}

/// Extracts call sites in a token range. With `include_bare_refs`, path
/// expressions *not* followed by `(` are also reported (used for function
/// values passed to `spawn`).
pub(crate) fn calls_in_range(
    p: &ParsedFile,
    start: usize,
    end: usize,
    skips: &[(usize, usize)],
    include_bare_refs: bool,
) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut i = start;
    let end = end.min(p.toks.len());
    while i < end {
        if let Some(e) = in_skips(skips, i) {
            i = e;
            continue;
        }
        let t = &p.toks[i];
        // `.method(` and `.method::<T>(`
        if t.is_punct(b'.') {
            if let Some(name) = p.toks.get(i + 1).and_then(Tok::ident) {
                let mut j = i + 2;
                if p.toks.get(j).map(|t| &t.kind) == Some(&TokKind::ColonColon) {
                    j = skip_generics(p, j + 1);
                }
                if p.toks.get(j).is_some_and(|t| t.is_punct(b'(')) && !is_keyword(name) {
                    let on_self = i >= 1
                        && p.toks[i - 1].ident() == Some("self")
                        && (i < 2 || !p.toks[i - 2].is_punct(b'.'));
                    out.push(CallSite {
                        line: p.toks[i + 1].line,
                        tok: i + 1,
                        callee: Callee::Method { name: name.to_string(), on_self },
                    });
                    // Resume at the argument paren: turbofish generics hold
                    // types (`::<Vec<Box<dyn Fn()>>>`), not calls.
                    i = j;
                    continue;
                }
                i += 2;
                continue;
            }
            i += 1;
            continue;
        }
        // Path calls: `a::b::f(` / `f(` / `Self::f(`.
        if let Some(first) = t.ident() {
            // Not a path start if preceded by `.` (method, handled above)
            // or `fn` (definition header) or `::` (mid-path).
            let prev_blocks = i > start
                && (p.toks[i - 1].is_punct(b'.')
                    || p.toks[i - 1].ident().is_some_and(|w| w == "fn")
                    || p.toks[i - 1].kind == TokKind::ColonColon);
            if prev_blocks || (is_keyword(first) && !matches!(first, "crate" | "self" | "Self")) {
                i += 1;
                continue;
            }
            let mut segs = vec![first.to_string()];
            let mut j = i + 1;
            while p.toks.get(j).map(|t| &t.kind) == Some(&TokKind::ColonColon) {
                if let Some(w) = p.toks.get(j + 1).and_then(Tok::ident) {
                    segs.push(w.to_string());
                    j += 2;
                } else if p.toks.get(j + 1).is_some_and(|t| t.is_punct(b'<')) {
                    j = skip_generics(p, j + 1);
                } else {
                    break;
                }
            }
            let is_call = p.toks.get(j).is_some_and(|t| t.is_punct(b'('));
            let lone_keyword = segs.len() == 1
                && (is_keyword(&segs[0])
                    // Fn-trait bounds in types (`Box<dyn Fn() -> u64>`)
                    // look exactly like calls; they never are.
                    || matches!(segs[0].as_str(), "Fn" | "FnMut" | "FnOnce"));
            if !lone_keyword && (is_call || include_bare_refs) {
                out.push(CallSite { line: t.line, tok: i, callee: Callee::Path(segs) });
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    out
}

/// Finds `spawn(...)` calls and captures their argument range as a thread
/// root. The whole argument list is used as the closure body: it covers
/// both `spawn(move || ...)` and `spawn(worker)` (a function value).
fn find_spawns(
    p: &ParsedFile,
    start: usize,
    end: usize,
    skips: &[(usize, usize)],
) -> Vec<SpawnClosure> {
    let mut out = Vec::new();
    let mut i = start;
    let end = end.min(p.toks.len());
    while i < end {
        if let Some(e) = in_skips(skips, i) {
            i = e;
            continue;
        }
        if p.toks[i].ident() == Some("spawn") && p.toks.get(i + 1).is_some_and(|t| t.is_punct(b'('))
        {
            let close = p.match_idx[i + 1];
            if close != NO_MATCH && close > i + 2 {
                let body = (i + 2, close);
                let guarded = range_mentions(p, body.0, body.1, &[], "catch_unwind");
                out.push(SpawnClosure { line: p.toks[i].line, body, guarded });
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parsed(src: &str) -> ParsedFile {
        parse(&lexer::scan(src), "crates/x/src/lib.rs")
    }

    #[test]
    fn file_module_paths() {
        assert!(file_module_path("crates/trace/src/lib.rs").is_empty());
        assert_eq!(file_module_path("crates/trace/src/sink.rs"), vec!["sink"]);
        assert_eq!(file_module_path("crates/core/src/dpf/phase2.rs"), vec!["dpf", "phase2"]);
        assert_eq!(file_module_path("crates/core/src/dpf/mod.rs"), vec!["dpf"]);
        assert!(file_module_path("src/bin/apf-cli.rs").is_empty());
    }

    #[test]
    fn free_fn_and_calls() {
        let p = parsed("fn a() { b(); c::d(); x.e(); }\nfn b() {}\n");
        assert_eq!(p.fns.len(), 2);
        let a = &p.fns[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.qual, "a");
        let names: Vec<String> = a
            .calls
            .iter()
            .map(|c| match &c.callee {
                Callee::Path(s) => s.join("::"),
                Callee::Method { name, .. } => format!(".{name}"),
            })
            .collect();
        assert_eq!(names, vec!["b", "c::d", ".e"]);
    }

    #[test]
    fn impl_methods_get_owner() {
        let p = parsed("struct S;\nimpl S { fn m(&self) { self.n(); } fn n(&self) {} }\n");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].owner.as_deref(), Some("S"));
        assert_eq!(p.fns[0].qual, "S::m");
        match &p.fns[0].calls[0].callee {
            Callee::Method { name, on_self } => {
                assert_eq!(name, "n");
                assert!(on_self);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trait_impl_and_generics() {
        let p = parsed(
            "impl<T: Clone> Sink for Holder<T> { fn put(&mut self, x: T) { helper(x); } }\n",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Holder"));
        assert_eq!(p.fns[0].name, "put");
    }

    #[test]
    fn nested_fn_calls_stay_with_the_nested_item() {
        let p = parsed("fn outer() { inner(); fn inner() { deep(); } }\n");
        let outer = &p.fns[0];
        let inner = &p.fns[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(inner.calls.len(), 1);
        match &inner.calls[0].callee {
            Callee::Path(s) => assert_eq!(s, &vec!["deep".to_string()]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mod_nesting_qualifies() {
        let p = parsed("mod a { mod b { fn f() {} } }\n");
        assert_eq!(p.fns[0].qual, "a::b::f");
    }

    #[test]
    fn use_aliases() {
        let p = parsed(
            "use apf_trace::{sink::HashSink, Event as Ev};\nuse std::time::Instant;\nfn f() {}\n",
        );
        assert_eq!(
            p.uses.get("HashSink"),
            Some(&vec!["apf_trace".to_string(), "sink".to_string(), "HashSink".to_string()])
        );
        assert_eq!(p.uses.get("Ev"), Some(&vec!["apf_trace".to_string(), "Event".to_string()]));
        assert_eq!(
            p.uses.get("Instant"),
            Some(&vec!["std".to_string(), "time".to_string(), "Instant".to_string()])
        );
    }

    #[test]
    fn spawn_closures_and_guards() {
        let p = parsed(
            "fn run() {\n    scope.spawn(move || { work(); });\n    \
             scope.spawn(move || { let _ = catch_unwind(|| work()); });\n}\n",
        );
        let f = &p.fns[0];
        assert_eq!(f.spawns.len(), 2);
        assert!(!f.spawns[0].guarded);
        assert!(f.spawns[1].guarded);
        assert_eq!(f.spawns[0].line, 2);
    }

    #[test]
    fn macros_are_not_calls() {
        let p = parsed("fn f() { println!(\"{}\", x); assert_eq!(a, b); g(); }\n");
        assert_eq!(p.fns[0].calls.len(), 1);
    }

    #[test]
    fn turbofish_method_call() {
        let p = parsed("fn f() { it.collect::<Vec<Box<dyn Fn() -> u64>>>(); }\n");
        assert_eq!(p.fns[0].calls.len(), 1);
        match &p.fns[0].calls[0].callee {
            Callee::Method { name, .. } => assert_eq!(name, "collect"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bodyless_trait_decl() {
        let p =
            parsed("trait T { fn sig(&self) -> u64; fn with_default(&self) { self.sig(); } }\n");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].body, (0, 0));
        assert_eq!(p.fns[0].owner.as_deref(), Some("T"));
        assert_eq!(p.fns[1].calls.len(), 1);
    }

    #[test]
    fn cfg_test_marks_fns() {
        let p = parse(
            &lexer::scan("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { lib(); }\n}\n"),
            "crates/x/src/lib.rs",
        );
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
    }
}
