//! The project-specific rule set.
//!
//! Every rule mechanizes one determinism or randomness invariant that the
//! dynamic layers (trace inspector, conformance corpus, schedule fuzzer)
//! otherwise only check on the executions a run happens to take:
//!
//! | rule | code | invariant |
//! |------|------|-----------|
//! | `no-unseeded-randomness` | D1 | all randomness flows from splitmix64 per-trial seeds |
//! | `randomness-budget` | D2 | random draws only in `ψ_RSB` (≤ 1 bit/election cycle) |
//! | `no-wallclock-in-sim` | D3 | simulation crates never read wall clocks |
//! | `no-hash-iteration-in-digest-paths` | D4 | digest-feeding crates use ordered containers |
//! | `no-float-eq` | D5 | geometry/core compare floats via epsilon helpers |
//! | `no-float-int-casts-in-digest-paths` | D6 | digest-feeding crates avoid `as` float↔int casts |
//! | `stable-sort-in-digest-paths` | D7 | digest-feeding crates sort stably |
//! | `no-f32-in-geometry` | D8 | the geometric substrate computes in f64 only |
//! | `zip-length-mismatch` | D9 | per-robot folds must not truncate via `Iterator::zip` |
//! | `digest-purity-taint` | D10 | everything reachable from digest computation stays pure |
//! | `randomness-reachability` | D11 | all paths to a draw pass the election entrypoint |
//! | `lock-order` | D12 | the mutex-acquisition order graph is acyclic |
//! | `panic-reachability` | D13 | worker threads cannot reach an unguarded panic |
//! | `panic-policy` | P1 | library `unwrap`/`expect` needs a justified pragma |
//!
//! D1–D9 and P1 match token needles over the [lexer's](crate::lexer)
//! masked text, so comments, strings and char literals can never fire
//! them. D10–D13 are inter-procedural: they run in [`taint`](crate::taint)
//! over the workspace [call graph](crate::callgraph) and use
//! [`Matcher::CallGraph`] here only as a registration marker.

/// How a needle anchors to the surrounding characters.
#[derive(Debug, Clone, Copy)]
pub enum Needle {
    /// An identifier: the characters before and after must not be
    /// identifier characters.
    Ident(&'static str),
    /// An exact substring.
    Exact(&'static str),
    /// An exact substring whose *next* character must not be an identifier
    /// character (`.gen` matches `.gen(` / `.gen::<`, not `.gen_bool(`).
    ExactNotIdent(&'static str),
}

impl Needle {
    /// The literal text searched for.
    #[must_use]
    pub fn text(self) -> &'static str {
        match self {
            Needle::Ident(t) | Needle::Exact(t) | Needle::ExactNotIdent(t) => t,
        }
    }
}

/// What a rule matches.
#[derive(Debug, Clone, Copy)]
pub enum Matcher {
    /// Any of a set of token needles.
    Needles(&'static [Needle]),
    /// `==` / `!=` with a float literal (or float constant) operand.
    FloatEq,
    /// An `as` cast between float and integer representations: `as f32`
    /// anywhere, or `as <int>` whose left operand is recognizably a float
    /// (a float literal or a `.round()`/`.floor()`/`.ceil()`/`.trunc()`
    /// call).
    FloatIntCast,
    /// Inter-procedural rule: findings come from the call-graph analyses
    /// in [`taint`](crate::taint), not from per-line matching.
    CallGraph,
}

/// A static-analysis rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleDef {
    /// Stable rule name — used in pragmas and `lint.toml`.
    pub name: &'static str,
    /// Short code used in docs (D1…D5, P1).
    pub code: &'static str,
    /// One-line description for `--list-rules`.
    pub summary: &'static str,
    /// Default crate scope; `None` means every scanned crate. `lint.toml`
    /// `crates = [...]` overrides this.
    pub default_crates: Option<&'static [&'static str]>,
    /// The rule also applies inside `#[cfg(test)]` items and `tests/`,
    /// `benches/`, `examples/` sources.
    pub applies_in_tests: bool,
    /// The rule also applies to binary sources (`src/bin/`, `src/main.rs`).
    pub applies_in_bins: bool,
    /// What to look for.
    pub matcher: Matcher,
    /// Finding message (the matched token is prepended).
    pub message: &'static str,
    /// Long-form rationale printed by `apf-cli lint --explain <rule>`:
    /// what the rule enforces, why the invariant matters for this
    /// codebase, and how to fix or justify a finding.
    pub explain: &'static str,
}

/// Diagnostics about the pragmas themselves (malformed, reasonless,
/// unknown rule) are reported under this pseudo-rule name.
pub const BAD_PRAGMA: &str = "bad-pragma";

/// The rule table. Order is the reporting order for same-position findings.
pub const RULES: &[RuleDef] = &[
    RuleDef {
        name: "no-unseeded-randomness",
        code: "D1",
        summary: "ambient entropy sources are forbidden everywhere; randomness must \
                  derive from the engine's splitmix64 per-trial seeds",
        default_crates: None,
        applies_in_tests: true,
        applies_in_bins: true,
        matcher: Matcher::Needles(&[
            Needle::Ident("thread_rng"),
            Needle::Ident("ThreadRng"),
            Needle::Exact("rand::random"),
            Needle::Ident("from_entropy"),
            Needle::Ident("OsRng"),
            Needle::Ident("getrandom"),
        ]),
        message: "unseeded entropy source; derive randomness from a per-trial seed \
                  (see apf_bench::engine::trial_seed) so every run replays bit-identically",
        explain: "Every random bit in this workspace must derive from a splitmix64 \
                  per-trial seed, so that any run — a single trial, a campaign shard, a \
                  fuzz case — replays bit-identically from its seed alone. Ambient \
                  entropy (thread_rng, OsRng, getrandom, from_entropy) breaks replay, \
                  cache keys and cross-shard digest agreement at once. Fix: thread a \
                  seed in from the trial engine; there is no justified use of ambient \
                  entropy anywhere, including tests.",
    },
    RuleDef {
        name: "randomness-budget",
        code: "D2",
        summary: "random draws are permitted only in the ψ_RSB election module; \
                  mechanizes the paper's ≤ 1 bit per robot per election cycle",
        // Overridden by lint.toml; kept in sync with Config::default().
        default_crates: Some(&["apf-core"]),
        applies_in_tests: false,
        applies_in_bins: true,
        matcher: Matcher::Needles(&[
            Needle::ExactNotIdent(".gen"),
            Needle::Ident("gen_bool"),
            Needle::Ident("gen_range"),
            Needle::Ident("random_bit"),
            Needle::Exact(".bit("),
            Needle::Exact(".word("),
        ]),
        message: "random draw outside the ψ_RSB election module; the algorithm's whole \
                  randomness budget is one coin flip per election cycle (Theorem 1)",
        explain: "Bramas & Tixeuil's Theorem 1 bounds the algorithm's randomness at one \
                  fair coin flip per robot per election cycle, all of it inside the \
                  ψ_RSB leader-election phase. This rule pins the *textual* budget: \
                  draw primitives (.gen/.bit()/gen_bool/…) may appear only in the \
                  election module (rsb.rs, via lint.toml allow_files). Its \
                  inter-procedural upgrade is D11 randomness-reachability, which pins \
                  the *call paths*. Fix: route the decision through the election \
                  entrypoint instead of drawing locally.",
    },
    RuleDef {
        name: "no-wallclock-in-sim",
        code: "D3",
        summary: "simulation crates must not read wall clocks; time only exists as \
                  scheduler steps",
        default_crates: Some(&[
            "apf-core",
            "apf-sim",
            "apf-scheduler",
            "apf-geometry",
            "apf-trace",
        ]),
        applies_in_tests: false,
        applies_in_bins: true,
        matcher: Matcher::Needles(&[Needle::Exact("Instant::now"), Needle::Ident("SystemTime")]),
        message: "wall-clock read in a simulation crate; simulated time is scheduler \
                  steps, and wall time here would leak host timing into results",
        explain: "Inside the simulation crates, time exists only as scheduler steps — \
                  the ASYNC adversary decides who moves, not the host clock. An \
                  Instant::now()/SystemTime read in apf-core/sim/scheduler/geometry/\
                  trace leaks host timing into supposedly deterministic results. \
                  Wall-clock profiling belongs in apf-bench's span layer (span.rs is \
                  allowlisted): it measures *around* the simulation, never inside it. \
                  Fix: move the measurement to the bench harness or count steps.",
    },
    RuleDef {
        name: "no-hash-iteration-in-digest-paths",
        code: "D4",
        summary: "crates feeding trace digests must use BTreeMap/BTreeSet or sorted \
                  vectors, never hash containers",
        default_crates: Some(&[
            "apf-core",
            "apf-sim",
            "apf-scheduler",
            "apf-geometry",
            "apf-trace",
            "apf-conformance",
        ]),
        applies_in_tests: false,
        applies_in_bins: true,
        matcher: Matcher::Needles(&[Needle::Ident("HashMap"), Needle::Ident("HashSet")]),
        message: "hash container in a digest-feeding crate; iteration order is \
                  nondeterministic across runs — use BTreeMap/BTreeSet or a sorted Vec",
        explain: "Trace digests are FNV-1a folds over iteration order, so a \
                  HashMap/HashSet anywhere the digested values flow makes the digest a \
                  function of the hasher's random state. This rule scopes by *crate \
                  list* (the digest-feeding crates in lint.toml); D10 \
                  digest-purity-taint re-derives the same invariant by *reachability* \
                  from the digest fold itself, which also covers helpers outside the \
                  listed crates. Fix: BTreeMap/BTreeSet, or collect-and-sort before \
                  iterating.",
    },
    RuleDef {
        name: "no-float-eq",
        code: "D5",
        summary: "float `==`/`!=` in geometry/core; use the Tol epsilon helpers",
        default_crates: Some(&["apf-geometry", "apf-core"]),
        applies_in_tests: false,
        applies_in_bins: true,
        matcher: Matcher::FloatEq,
        message: "exact float comparison; use the Tol epsilon helpers (tol.eq / \
                  tol.is_zero) or pragma an intentional exact-zero singularity guard",
        explain: "Geometry decisions (symmetricity, Weber points, view ordering) flip \
                  on borderline comparisons, and exact float == / != makes the flip \
                  depend on rounding noise. The Tol helpers compare under an explicit \
                  epsilon so every borderline is decided the same way everywhere. \
                  Exact comparison is legitimate only for singularity guards \
                  (division-by-exact-zero) — pragma those with the argument.",
    },
    RuleDef {
        name: "no-float-int-casts-in-digest-paths",
        code: "D6",
        summary: "digest-feeding crates avoid `as` float↔int casts; truncation and f32 \
                  narrowing make digested values representation-fragile",
        // Overridden by lint.toml; kept in sync with Config::default().
        default_crates: Some(&[
            "apf-core",
            "apf-sim",
            "apf-scheduler",
            "apf-geometry",
            "apf-trace",
            "apf-conformance",
        ]),
        applies_in_tests: false,
        applies_in_bins: true,
        matcher: Matcher::FloatIntCast,
        message: "float↔int `as` cast in a digest-feeding crate; `as` silently truncates \
                  and saturates — quantize through an audited helper, or pragma the site \
                  with the argument for why the value is exactly representable",
        explain: "`as` casts between float and int silently truncate, saturate, and (to \
                  f32) halve precision — all representation hazards for values that \
                  feed digests. The audited quantizer in views.rs is the one sanctioned \
                  float→int path. This rule scopes by crate list; D10 \
                  digest-purity-taint covers the same sink by reachability from the \
                  digest fold. Fix: go through the quantizer, or pragma with the \
                  exact-representability argument.",
    },
    RuleDef {
        name: "stable-sort-in-digest-paths",
        code: "D7",
        summary: "digest-feeding crates sort stably; `sort_unstable` reorders equal keys \
                  implementation-dependently",
        // Overridden by lint.toml; kept in sync with Config::default().
        default_crates: Some(&[
            "apf-core",
            "apf-sim",
            "apf-scheduler",
            "apf-geometry",
            "apf-trace",
            "apf-conformance",
        ]),
        applies_in_tests: false,
        applies_in_bins: true,
        matcher: Matcher::Needles(&[Needle::Exact(".sort_unstable")]),
        message: "unstable sort on data that can feed trace/digest output; equal-key \
                  order is unspecified and may drift across std versions — use a stable \
                  sort, or pragma with the argument for why keys are total",
        explain: "sort_unstable reorders equal keys in an implementation-defined way, so \
                  two std versions (or two architectures) can produce different digests \
                  from identical inputs. In digest-feeding crates use a stable sort, or \
                  pragma with the proof that the sort key is total (no equal keys, so \
                  stability is vacuous).",
    },
    RuleDef {
        name: "no-f32-in-geometry",
        code: "D8",
        summary: "the geometric substrate computes in f64 only; any `f32` silently \
                  halves precision under every tolerance in the crate",
        // Overridden by lint.toml; kept in sync with Config::default().
        default_crates: Some(&["apf-geometry"]),
        applies_in_tests: true,
        applies_in_bins: true,
        matcher: Matcher::Needles(&[Needle::Ident("f32")]),
        message: "`f32` in the geometric substrate; every tolerance, digest and \
                  symmetry decision assumes f64 — a single f32 round-trip quietly \
                  halves precision and can flip borderline classifications",
        explain: "Every tolerance constant, quantizer step and symmetry threshold in \
                  apf-geometry is calibrated for f64. One f32 round-trip quietly halves \
                  the mantissa, which is enough to flip borderline symmetricity or \
                  Weber-point classifications that the formation algorithm then acts \
                  on. There is no sanctioned f32 use in the geometric substrate.",
    },
    RuleDef {
        name: "zip-length-mismatch",
        code: "D9",
        summary: "`Iterator::zip` silently truncates to the shorter side; per-robot \
                  folds must justify equal lengths with a pragma",
        // Overridden by lint.toml; kept in sync with Config::default().
        default_crates: Some(&["apf-core", "apf-geometry", "apf-sim"]),
        applies_in_tests: true,
        applies_in_bins: true,
        matcher: Matcher::Needles(&[Needle::Exact(".zip(")]),
        message: "`Iterator::zip` truncates to the shorter input without panicking; a \
                  per-robot fold over mismatched lengths silently drops robots — use an \
                  indexed loop, or pragma the site with why the lengths are equal by \
                  construction",
        explain: "Iterator::zip stops at the shorter input without complaint. In a \
                  per-robot fold (positions against lights, views against targets) a \
                  length mismatch then silently drops robots instead of failing loudly \
                  — exactly the pattern-formation bug class that is hardest to see in \
                  traces. Use an indexed loop with an explicit length assertion, or \
                  pragma with why the lengths are equal by construction.",
    },
    RuleDef {
        name: "panic-policy",
        code: "P1",
        summary: "unwrap/expect in non-test library code needs a pragma with a reason",
        default_crates: None,
        applies_in_tests: false,
        applies_in_bins: false,
        matcher: Matcher::Needles(&[Needle::Exact(".unwrap()"), Needle::Exact(".expect(")]),
        message: "unwrap/expect in library code; return an error, restructure, or \
                  justify with `// apf-lint: allow(panic-policy) — <why this cannot fail>`",
        explain: "Library code should return errors, not crash the process. Every \
                  unwrap/expect in non-test library sources needs a pragma whose reason \
                  states why the failure is impossible (or why crashing is the intended \
                  semantics). Tests and binaries are exempt: panicking is their normal \
                  failure mode. See also D13 panic-reachability, which tracks whether a \
                  justified panic can still take down a worker thread.",
    },
    RuleDef {
        name: "digest-purity-taint",
        code: "D10",
        summary: "functions reachable from digest/trace-hash computation must not reach \
                  wall clocks, hash iteration, or float↔int casts",
        default_crates: None,
        applies_in_tests: false,
        applies_in_bins: true,
        matcher: Matcher::CallGraph,
        message: "impure sink reachable from digest computation",
        explain: "The digest roots ([analysis] digest_roots in lint.toml: the HashSink \
                  fold, fnv1a_64, CanonicalSpec addressing) define a forward cone in \
                  the call graph: everything those functions can transitively call. \
                  Anything in that cone that reads a wall clock, iterates a hash \
                  container, or does a float↔int `as` cast makes the digest a function \
                  of host state instead of the trace — which breaks replay, the \
                  content-addressed result cache and cross-shard agreement at once. \
                  Unlike D4/D6/D7 this is not scoped by crate lists; reachability \
                  follows the calls wherever they go. Escape hatches: add the function \
                  to digest_sink_allow (audited boundary), or pragma the site with the \
                  determinism argument.",
    },
    RuleDef {
        name: "randomness-reachability",
        code: "D11",
        summary: "every call path to a random draw passes through the ψ_RSB election \
                  entrypoint — the call-graph form of the Theorem 1 budget",
        default_crates: None,
        applies_in_tests: false,
        applies_in_bins: true,
        matcher: Matcher::CallGraph,
        message: "reaches a random draw without passing through an election entrypoint",
        explain: "Theorem 1's ≤ 1 bit per robot per election cycle budget holds only if \
                  the election entrypoint ([analysis] rng_entrypoints in lint.toml: \
                  select_a_robot) is the sole gateway to the draw sites. The check: \
                  find every function whose body performs a draw (the D2 needles, in \
                  the D2 crate scope), delete the entrypoints from the call graph, and \
                  walk the reverse edges. Any function that still reaches a draw has a \
                  path around the election — a static counterexample to the budget \
                  argument. Fix: call through the entrypoint; if a new sanctioned \
                  gateway is introduced, add it to rng_entrypoints.",
    },
    RuleDef {
        name: "lock-order",
        code: "D12",
        summary: "the mutex-acquisition order graph across the service crates must be \
                  acyclic; a cycle is a potential deadlock",
        // Overridden by lint.toml; kept in sync with Config::default().
        default_crates: Some(&["apf-serve", "apf-bench"]),
        applies_in_tests: false,
        applies_in_bins: false,
        matcher: Matcher::CallGraph,
        message: "lock-order cycle",
        explain: "Each `x.lock()` taken while another guard is live adds the edge \
                  held → x to a workspace-wide lock-order graph; held sets also \
                  propagate through calls, so a callee's acquisitions are ordered \
                  after everything its caller holds. If that graph has a cycle, two \
                  threads can take the locks in opposite orders and block forever — \
                  the classic AB/BA deadlock, which no amount of testing reliably \
                  surfaces because it needs the losing interleaving. Fix: pick one \
                  global acquisition order (document it), or merge the critical \
                  sections so only one lock is held at a time.",
    },
    RuleDef {
        name: "panic-reachability",
        code: "D13",
        summary: "panic sites (unwrap/expect/panic!) reachable from worker-thread \
                  closures outside a catch_unwind boundary",
        // Overridden by lint.toml; kept in sync with Config::default().
        default_crates: Some(&["apf-serve", "apf-bench"]),
        applies_in_tests: false,
        applies_in_bins: false,
        matcher: Matcher::CallGraph,
        message: "panic site reachable from a worker thread without catch_unwind",
        explain: "A panic on a spawned worker thread does not fail the request that \
                  caused it — it kills the worker, poisons every mutex it held, and \
                  degrades the service until restart. This rule takes each \
                  `spawn(...)` closure as a root, walks the call graph, and reports \
                  every unwrap/expect/panic! it can reach, unless a catch_unwind \
                  boundary guards the path (functions containing catch_unwind are \
                  traversal boundaries). P1 asks \"is this panic justified?\"; D13 asks \
                  \"who dies if it fires?\". Fix: return errors across the thread \
                  boundary, add a catch_unwind at the worker root, or pragma with why \
                  crashing the worker is the intended semantics.",
    },
];

/// True when `name` is a rule name (or the pragma pseudo-rule).
#[must_use]
pub fn is_known_rule(name: &str) -> bool {
    name == BAD_PRAGMA || RULES.iter().any(|r| r.name == name)
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Byte offsets (within `line`) where `needle` matches.
pub(crate) fn needle_matches(line: &str, needle: Needle) -> Vec<usize> {
    let text = needle.text();
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = line.get(from..).and_then(|h| h.find(text)) {
        let at = from + rel;
        from = at + 1;
        let ok = match needle {
            Needle::Exact(_) => true,
            Needle::ExactNotIdent(_) => {
                bytes.get(at + text.len()).copied().is_none_or(|c| !is_ident_char(c))
            }
            Needle::Ident(_) => {
                let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
                let after_ok =
                    bytes.get(at + text.len()).copied().is_none_or(|c| !is_ident_char(c));
                before_ok && after_ok
            }
        };
        if ok {
            out.push(at);
        }
    }
    out
}

/// Byte offsets of `==`/`!=` operators with a float-literal (or float
/// constant) operand on either side.
///
/// This is a literal-adjacency heuristic, not a type check: it catches the
/// `x == 0.0` / `r != 1.5` / `d == f64::INFINITY` shapes that actually
/// occur, and stays silent on comparisons of two non-literal expressions
/// (clippy's `float_cmp` covers broader shapes at type level).
pub(crate) fn float_eq_matches(line: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let is_op = (bytes[i] == b'=' || bytes[i] == b'!') && bytes[i + 1] == b'=';
        if !is_op
            // `a == b` not `a === b` (not Rust, but stay strict) nor `<=`/`>=`.
            || (i > 0 && matches!(bytes[i - 1], b'=' | b'!' | b'<' | b'>'))
            || bytes.get(i + 2) == Some(&b'=')
        {
            i += 1;
            continue;
        }
        if float_on_right(bytes, i + 2) || float_on_left(bytes, i) {
            out.push(i);
        }
        i += 2;
    }
    out
}

fn float_on_right(bytes: &[u8], mut i: usize) -> bool {
    while bytes.get(i) == Some(&b' ') {
        i += 1;
    }
    if bytes.get(i) == Some(&b'-') {
        i += 1;
    }
    let start = i;
    while i < bytes.len()
        && (is_ident_char(bytes[i])
            || bytes[i] == b'.'
            || bytes[i] == b':'
            || (matches!(bytes[i], b'+' | b'-')
                && i > start
                && matches!(bytes[i - 1], b'e' | b'E')))
    {
        i += 1;
    }
    token_is_float(&bytes[start..i])
}

fn float_on_left(bytes: &[u8], op: usize) -> bool {
    let mut i = op;
    while i > 0 && bytes[i - 1] == b' ' {
        i -= 1;
    }
    let end = i;
    while i > 0
        && (is_ident_char(bytes[i - 1])
            || bytes[i - 1] == b'.'
            || bytes[i - 1] == b':'
            || (matches!(bytes[i - 1], b'+' | b'-')
                && i >= 2
                && matches!(bytes[i - 2], b'e' | b'E')))
    {
        i -= 1;
    }
    token_is_float(&bytes[i..end])
}

/// Byte offsets of `as` casts between float and integer representations.
///
/// Two shapes fire, mirroring how digest-value fragility actually enters:
/// `as f32` (narrowing a digested value to half precision) with any
/// operand, and `as <int-type>` whose left operand is recognizably a float
/// — a float literal or a `.round()` / `.floor()` / `.ceil()` / `.trunc()`
/// call. Plain `n as f64` (int widening, exact for every value this
/// workspace digests) stays silent, as does `x as i64` of an opaque
/// expression — like [`float_eq_matches`], this is a literal-adjacency
/// heuristic, not a type check.
pub(crate) fn float_int_cast_matches(line: &str) -> Vec<usize> {
    const INT_TYPES: &[&str] =
        &["i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize"];
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    for at in needle_matches(line, Needle::Ident("as")) {
        let mut i = at + 2;
        while bytes.get(i) == Some(&b' ') {
            i += 1;
        }
        let ty_start = i;
        while i < bytes.len() && is_ident_char(bytes[i]) {
            i += 1;
        }
        let ty = &line[ty_start..i];
        if ty == "f32" || (INT_TYPES.contains(&ty) && float_cast_operand_on_left(bytes, at)) {
            out.push(at);
        }
    }
    out
}

/// Whether the expression ending just before the `as` at `as_pos` is
/// recognizably a float: a rounding-method call or a float literal.
fn float_cast_operand_on_left(bytes: &[u8], as_pos: usize) -> bool {
    let mut i = as_pos;
    while i > 0 && bytes[i - 1] == b' ' {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    if bytes[i - 1] == b')' {
        // Walk back over the balanced call parens to the method name.
        let mut depth = 0usize;
        let mut j = i;
        loop {
            if j == 0 {
                return false; // call spans lines; stay silent
            }
            j -= 1;
            match bytes[j] {
                b')' => depth += 1,
                b'(' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        let name_end = j;
        let mut k = name_end;
        while k > 0 && is_ident_char(bytes[k - 1]) {
            k -= 1;
        }
        matches!(&bytes[k..name_end], b"round" | b"floor" | b"ceil" | b"trunc")
            && k > 0
            && bytes[k - 1] == b'.'
    } else {
        let end = i;
        let mut k = i;
        while k > 0 && (is_ident_char(bytes[k - 1]) || bytes[k - 1] == b'.' || bytes[k - 1] == b':')
        {
            k -= 1;
        }
        token_is_float(&bytes[k..end])
    }
}

/// Decides whether a scanned token is a float literal (`0.0`, `1.`, `1e-3`,
/// `2.5f64`) or a named float constant (`f64::INFINITY`, `f32::NAN`, …).
fn token_is_float(token: &[u8]) -> bool {
    if token.is_empty() {
        return false;
    }
    const CONSTS: &[&str] = &["INFINITY", "NEG_INFINITY", "NAN", "EPSILON", "MIN_POSITIVE"];
    if let Ok(s) = std::str::from_utf8(token) {
        if CONSTS.iter().any(|c| s == *c || s.ends_with(&format!("::{c}"))) {
            return true;
        }
    }
    if !token[0].is_ascii_digit() {
        // Tuple-field access like `pair.0` starts with an identifier, not a
        // digit, and must not count as a float literal.
        return false;
    }
    let mut i = 0;
    while i < token.len() && (token[i].is_ascii_digit() || token[i] == b'_') {
        i += 1;
    }
    match token.get(i) {
        Some(b'.') => {
            // `1.0`, `1.` — but not a method call `1.max(x)` (needle scan
            // stops at `(` so a trailing ident after `.` means path/method).
            let rest = &token[i + 1..];
            rest.is_empty() || rest[0].is_ascii_digit()
        }
        Some(b'e' | b'E') => {
            token[i + 1..].first().is_some_and(|&c| c.is_ascii_digit() || c == b'+' || c == b'-')
        }
        Some(b'f') => matches!(&token[i..], b"f32" | b"f64"),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needle_boundaries() {
        assert_eq!(needle_matches("let r = thread_rng();", Needle::Ident("thread_rng")).len(), 1);
        assert!(needle_matches("my_thread_rng()", Needle::Ident("thread_rng")).is_empty());
        assert!(needle_matches("thread_rng2()", Needle::Ident("thread_rng")).is_empty());
        assert_eq!(needle_matches("rng.gen::<bool>()", Needle::ExactNotIdent(".gen")).len(), 1);
        assert_eq!(needle_matches("rng.gen()", Needle::ExactNotIdent(".gen")).len(), 1);
        assert!(needle_matches("rng.gen_bool(0.5)", Needle::ExactNotIdent(".gen")).is_empty());
        assert_eq!(needle_matches("x.unwrap().y.unwrap()", Needle::Exact(".unwrap()")).len(), 2);
        assert!(needle_matches("x.unwrap_or(3)", Needle::Exact(".unwrap()")).is_empty());
        assert!(needle_matches("x.expect_err(msg)", Needle::Exact(".expect(")).is_empty());
    }

    #[test]
    fn float_eq_shapes() {
        assert_eq!(float_eq_matches("if r == 0.0 {").len(), 1);
        assert_eq!(float_eq_matches("if 0.0 == r {").len(), 1);
        assert_eq!(float_eq_matches("if r != 1.5e-3 {").len(), 1);
        assert_eq!(float_eq_matches("if d == f64::INFINITY {").len(), 1);
        assert_eq!(float_eq_matches("if d == -1.0 {").len(), 1);
        assert_eq!(float_eq_matches("if x == 2.5f64 {").len(), 1);
    }

    #[test]
    fn float_eq_non_matches() {
        assert!(float_eq_matches("if a == b {").is_empty());
        assert!(float_eq_matches("if n == 0 {").is_empty());
        assert!(float_eq_matches("if n <= 0.5 {").is_empty());
        assert!(float_eq_matches("if n >= 0.5 {").is_empty());
        assert!(float_eq_matches("if pair.0 == other {").is_empty());
        assert!(float_eq_matches("let f = |x| x == y;").is_empty());
        assert!(float_eq_matches("a => b").is_empty());
    }

    #[test]
    fn float_int_cast_shapes() {
        assert_eq!(float_int_cast_matches("let q = (x * SCALE).round() as i64;").len(), 1);
        assert_eq!(float_int_cast_matches("let q = y.floor() as u32;").len(), 1);
        assert_eq!(float_int_cast_matches("let q = z.ceil() as usize;").len(), 1);
        assert_eq!(float_int_cast_matches("let q = w.trunc() as i32;").len(), 1);
        assert_eq!(float_int_cast_matches("let q = 1.5 as i64;").len(), 1);
        assert_eq!(float_int_cast_matches("let lossy = x as f32;").len(), 1);
        assert_eq!(float_int_cast_matches("f(a.round() as i64, b.round() as i64)").len(), 2);
    }

    #[test]
    fn float_int_cast_non_matches() {
        // Int widening into f64 is exact for everything digested here.
        assert!(float_int_cast_matches("let f = n as f64;").is_empty());
        // Opaque expressions: no adjacency evidence, no finding.
        assert!(float_int_cast_matches("let q = x as i64;").is_empty());
        assert!(float_int_cast_matches("let q = idx as usize;").is_empty());
        // Non-numeric casts and trait casts.
        assert!(float_int_cast_matches("let c = b as char;").is_empty());
        assert!(float_int_cast_matches("<T as Default>::default()").is_empty());
        // Rounding call without a cast, and non-rounding method calls.
        assert!(float_int_cast_matches("let r = x.round();").is_empty());
        assert!(float_int_cast_matches("let q = v.len() as u64;").is_empty());
        // `as` inside identifiers.
        assert!(float_int_cast_matches("let q = x.as_ref();").is_empty());
    }

    #[test]
    fn sort_unstable_needle_covers_all_variants() {
        let needle = Needle::Exact(".sort_unstable");
        assert_eq!(needle_matches("v.sort_unstable();", needle).len(), 1);
        assert_eq!(needle_matches("v.sort_unstable_by(cmp);", needle).len(), 1);
        assert_eq!(needle_matches("v.sort_unstable_by_key(|x| x.0);", needle).len(), 1);
        assert!(needle_matches("v.sort_by(cmp);", needle).is_empty());
        assert!(needle_matches("v.sort();", needle).is_empty());
    }

    #[test]
    fn rule_names_are_unique_and_known() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(is_known_rule(r.name));
            assert!(RULES[i + 1..].iter().all(|o| o.name != r.name), "dup {}", r.name);
        }
        assert!(is_known_rule(BAD_PRAGMA));
        assert!(!is_known_rule("no-such-rule"));
    }
}
