//! A masking lexer for Rust sources.
//!
//! Rules must match *code*, never prose: a `thread_rng` mentioned in a doc
//! comment or a `".unwrap()"` inside a test fixture string is not a
//! violation. Instead of tokenizing fully, the lexer produces a **masked**
//! copy of the source — byte-for-byte the same length, with every byte that
//! belongs to a comment, string literal, char literal, or raw string
//! replaced by a space (newlines are preserved so line/column arithmetic
//! holds). Rule needles then run over the masked text only.
//!
//! Alongside the mask the lexer extracts:
//!
//! * **pragmas** — `// apf-lint: allow(<rule>[, <rule>]) — <reason>`
//!   comments, with their line number and whether the comment stands alone
//!   on its line (which decides their scope, see [`Pragma`]);
//! * **test regions** — lines covered by a `#[cfg(test)]`-gated item, so
//!   rules that exempt test code (e.g. the panic policy) can skip them.

/// One `apf-lint:` control comment.
///
/// A pragma that shares its line with code suppresses findings on **that
/// line**; a pragma standing alone suppresses findings on **exactly the one
/// line that follows** (never more — long regions belong in `lint.toml`
/// allowlists, where they are visible in review).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based source line of the comment.
    pub line: usize,
    /// The comment is the only non-whitespace content on its line.
    pub own_line: bool,
    /// Rule names inside `allow(...)`.
    pub rules: Vec<String>,
    /// Non-empty justification text followed the `allow(...)` clause.
    pub has_reason: bool,
    /// Set when the comment invokes `apf-lint:` but does not parse.
    pub error: Option<String>,
}

/// A scanned source file: mask, pragmas, and test-line classification.
#[derive(Debug)]
pub struct Scanned {
    /// Same byte length as the input; non-code bytes are spaces, newlines
    /// survive.
    pub masked: String,
    /// Every `apf-lint:` comment found, in source order.
    pub pragmas: Vec<Pragma>,
    /// `test_lines[i]` is true when 1-based line `i + 1` is inside a
    /// `#[cfg(test)]` item.
    pub test_lines: Vec<bool>,
}

impl Scanned {
    /// True when 1-based `line` lies inside a `#[cfg(test)]` region.
    #[must_use]
    pub fn is_test_line(&self, line: usize) -> bool {
        line.checked_sub(1).and_then(|i| self.test_lines.get(i).copied()).unwrap_or(false)
    }
}

/// Scans one source file.
#[must_use]
pub fn scan(source: &str) -> Scanned {
    let bytes = source.as_bytes();
    let mut masked = bytes.to_vec();
    let mut pragmas = Vec::new();

    let mut i = 0;
    let mut line = 1usize;
    // Non-whitespace code has been seen on the current line (decides whether
    // a trailing `//` comment is "own line").
    let mut line_has_code = false;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = &source[start..i];
                if let Some(p) = parse_pragma(text, line, !line_has_code) {
                    pragmas.push(p);
                }
                mask_range(&mut masked, start, i);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                mask_range_keep_newlines(&mut masked, start, i);
            }
            b'"' => {
                let end = skip_string(bytes, i + 1, 0);
                line += count_newlines(&bytes[i..end]);
                mask_range_keep_newlines(&mut masked, i, end);
                i = end;
                line_has_code = true;
            }
            b'r' | b'b' if !prev_is_ident(bytes, i) => {
                // Raw strings r"..." / r#"..."#, byte strings b"...",
                // raw byte strings br#"..."#, byte chars b'x'.
                let mut j = i;
                if bytes[j] == b'b' {
                    j += 1;
                    if bytes.get(j) == Some(&b'\'') {
                        let end = skip_char_literal(bytes, j + 1);
                        mask_range(&mut masked, i, end);
                        i = end;
                        line_has_code = true;
                        continue;
                    }
                }
                if bytes.get(j) == Some(&b'r') {
                    j += 1;
                }
                let mut hashes = 0usize;
                while bytes.get(j + hashes) == Some(&b'#') {
                    hashes += 1;
                }
                if bytes.get(j + hashes) == Some(&b'"') && (j > i || hashes > 0) {
                    let end = skip_raw_string(bytes, j + hashes + 1, hashes);
                    line += count_newlines(&bytes[i..end]);
                    mask_range_keep_newlines(&mut masked, i, end);
                    i = end;
                    line_has_code = true;
                } else if bytes.get(j) == Some(&b'"') && j > i {
                    // b"...": ordinary escapes apply.
                    let end = skip_string(bytes, j + 1, 0);
                    line += count_newlines(&bytes[i..end]);
                    mask_range_keep_newlines(&mut masked, i, end);
                    i = end;
                    line_has_code = true;
                } else {
                    line_has_code = true;
                    i += 1;
                }
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    mask_range(&mut masked, i, end);
                    i = end;
                    line_has_code = true;
                } else {
                    // A lifetime — plain code.
                    line_has_code = true;
                    i += 1;
                }
            }
            _ => {
                if !b.is_ascii_whitespace() {
                    line_has_code = true;
                }
                i += 1;
            }
        }
    }

    let masked = String::from_utf8(masked).unwrap_or_default();
    let test_lines = test_regions(&masked);
    Scanned { masked, pragmas, test_lines }
}

fn mask_range(masked: &mut [u8], start: usize, end: usize) {
    for b in &mut masked[start..end] {
        *b = b' ';
    }
}

fn mask_range_keep_newlines(masked: &mut [u8], start: usize, end: usize) {
    for b in &mut masked[start..end] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

fn count_newlines(bytes: &[u8]) -> usize {
    bytes.iter().filter(|&&b| b == b'\n').count()
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// Returns the index one past the closing quote of a `"` string whose body
/// starts at `from`. Unterminated strings run to EOF.
fn skip_string(bytes: &[u8], from: usize, _hashes: usize) -> usize {
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Returns the index one past the closing `"###` of a raw string with
/// `hashes` hash marks, whose body starts at `from`.
fn skip_raw_string(bytes: &[u8], from: usize, hashes: usize) -> usize {
    let mut i = from;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut k = 0;
            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    bytes.len()
}

/// Index one past the closing quote of a (byte) char literal whose body
/// starts at `from` (the byte after the opening quote).
fn skip_char_literal(bytes: &[u8], from: usize) -> usize {
    let mut i = from;
    if bytes.get(i) == Some(&b'\\') {
        i += 2;
    } else {
        i += 1;
    }
    while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
        i += 1;
    }
    (i + 1).min(bytes.len())
}

/// Distinguishes a char literal starting at `i` (which points at `'`) from a
/// lifetime. Returns the end index (one past the closing quote) for char
/// literals, `None` for lifetimes.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        return Some(skip_char_literal(bytes, i + 1));
    }
    if next == b'\'' {
        // `''` is not valid Rust; treat as code and move on.
        return None;
    }
    // Width of the (possibly multibyte) char after the quote.
    let width = utf8_width(next);
    if bytes.get(i + 1 + width) == Some(&b'\'') {
        Some(i + 2 + width)
    } else {
        None // `'a` — a lifetime
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Parses one line comment into a [`Pragma`] if it invokes `apf-lint:`.
fn parse_pragma(comment: &str, line: usize, own_line: bool) -> Option<Pragma> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("apf-lint:")?.trim();
    let bad = |msg: &str| {
        Some(Pragma {
            line,
            own_line,
            rules: Vec::new(),
            has_reason: false,
            error: Some(msg.to_string()),
        })
    };
    let Some(rest) = rest.strip_prefix("allow") else {
        return bad("expected `allow(<rule>)` after `apf-lint:`");
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return bad("expected `(` after `allow`");
    };
    let Some(close) = rest.find(')') else {
        return bad("unclosed `allow(`");
    };
    let rules: Vec<String> =
        rest[..close].split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
    if rules.is_empty() {
        return bad("empty rule list in `allow()`");
    }
    // The justification: everything after `)`, minus separator punctuation.
    let reason = rest[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':')
        .trim();
    Some(Pragma { line, own_line, rules, has_reason: !reason.is_empty(), error: None })
}

/// Marks the lines covered by `#[cfg(test)]`-gated items.
///
/// Works on the masked text so braces inside strings or comments cannot
/// desynchronize the matcher. The attribute's item is the next `{ ... }`
/// block; an item ending in `;` before any `{` (e.g. a gated `use`) covers
/// only its own lines.
fn test_regions(masked: &str) -> Vec<bool> {
    let line_count = masked.split('\n').count();
    let mut flags = vec![false; line_count];
    let bytes = masked.as_bytes();
    let mut search = 0;
    while let Some(pos) = find_from(masked, "#[cfg(test)]", search) {
        search = pos + 1;
        let start_line = line_of(bytes, pos);
        // Find the item's opening brace (or terminating semicolon).
        let mut i = pos + "#[cfg(test)]".len();
        let mut end_line = start_line;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    let close = match_brace(bytes, i);
                    end_line = line_of(bytes, close.min(bytes.len().saturating_sub(1)));
                    break;
                }
                b';' => {
                    end_line = line_of(bytes, i);
                    break;
                }
                _ => i += 1,
            }
        }
        for f in flags.iter_mut().take(end_line).skip(start_line - 1) {
            *f = true;
        }
    }
    flags
}

fn find_from(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    haystack.get(from..).and_then(|h| h.find(needle)).map(|p| p + from)
}

/// 1-based line number of byte offset `pos`.
fn line_of(bytes: &[u8], pos: usize) -> usize {
    1 + bytes[..pos.min(bytes.len())].iter().filter(|&&b| b == b'\n').count()
}

/// Index of the brace matching the `{` at `open` (or EOF if unbalanced).
fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked(src: &str) -> String {
        scan(src).masked
    }

    #[test]
    fn line_comments_are_masked() {
        let m = masked("let x = 1; // thread_rng here\nlet y = 2;");
        assert!(!m.contains("thread_rng"));
        assert!(m.contains("let x = 1;"));
        assert!(m.contains("let y = 2;"));
    }

    #[test]
    fn doc_comments_are_masked() {
        let m = masked("/// calls thread_rng\n//! and SystemTime\nfn f() {}\n");
        assert!(!m.contains("thread_rng"));
        assert!(!m.contains("SystemTime"));
        assert!(m.contains("fn f() {}"));
    }

    #[test]
    fn nested_block_comments_are_masked() {
        let m = masked("a /* x /* thread_rng */ y */ b");
        assert!(!m.contains("thread_rng"));
        assert!(m.starts_with('a'));
        assert!(m.trim_end().ends_with('b'));
    }

    #[test]
    fn strings_are_masked_with_escapes() {
        let m = masked(r#"let s = "thread_rng \" still thread_rng"; let t = 1;"#);
        assert!(!m.contains("thread_rng"));
        assert!(m.contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_are_masked() {
        let m = masked("let s = r#\"has \"quotes\" and thread_rng\"#; next();");
        assert!(!m.contains("thread_rng"));
        assert!(m.contains("next();"));
    }

    #[test]
    fn byte_and_char_literals_are_masked() {
        let m = masked("let a = b'x'; let c = '\\n'; let d = 'q'; f::<'a, 'b>(x)");
        assert!(!m.contains('q'), "char literal body leaked: {m}");
        // Lifetimes survive as code.
        assert!(m.contains("f::<'a, 'b>(x)"));
    }

    #[test]
    fn multibyte_char_literal() {
        let m = masked("let c = 'é'; done()");
        assert!(m.contains("done()"));
        assert!(!m.contains('é'));
    }

    #[test]
    fn multiline_string_keeps_line_count() {
        let src = "let s = \"a\nb\nc\";\nfn g() {}\n";
        let m = masked(src);
        assert_eq!(m.matches('\n').count(), src.matches('\n').count());
        assert!(m.contains("fn g() {}"));
    }

    #[test]
    fn mask_length_is_preserved() {
        let src = "let s = \"héllo\"; // ünicode comment\nlet c = 'é';\n";
        assert_eq!(masked(src).len(), src.len());
    }

    #[test]
    fn pragma_trailing_and_own_line() {
        let s = scan(
            "x(); // apf-lint: allow(panic-policy) — lock can't poison\n\
                      // apf-lint: allow(no-float-eq) — exact zero guard\ny();\n",
        );
        assert_eq!(s.pragmas.len(), 2);
        assert_eq!(s.pragmas[0].line, 1);
        assert!(!s.pragmas[0].own_line);
        assert!(s.pragmas[0].has_reason);
        assert_eq!(s.pragmas[0].rules, vec!["panic-policy".to_string()]);
        assert_eq!(s.pragmas[1].line, 2);
        assert!(s.pragmas[1].own_line);
    }

    #[test]
    fn pragma_without_reason_or_malformed() {
        let s =
            scan("// apf-lint: allow(panic-policy)\n// apf-lint: allow(\n// apf-lint: deny(x)\n");
        assert!(!s.pragmas[0].has_reason);
        assert!(s.pragmas[0].error.is_none());
        assert!(s.pragmas[1].error.is_some());
        assert!(s.pragmas[2].error.is_some());
    }

    #[test]
    fn pragma_multiple_rules() {
        let s = scan("// apf-lint: allow(panic-policy, no-float-eq) — both fine here\n");
        assert_eq!(s.pragmas[0].rules.len(), 2);
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}\n";
        let s = scan(src);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(2));
        assert!(s.is_test_line(3));
        assert!(s.is_test_line(4));
        assert!(s.is_test_line(5));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn cfg_test_on_use_item_covers_only_itself() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() { let x = vec![1]; }\n";
        let s = scan(src);
        assert!(s.is_test_line(2));
        assert!(!s.is_test_line(3));
    }

    #[test]
    fn braces_in_test_strings_do_not_desync() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}}}\";\n    fn t() {}\n}\nfn lib() {}\n";
        let s = scan(src);
        assert!(s.is_test_line(4));
        assert!(!s.is_test_line(6));
    }
}
