//! Rendering findings for humans (`file:line:col · rule · message`) and
//! machines (`--json`, `--sarif`), plus the `--explain <rule>` pages.

use crate::rules::RULES;
use crate::Finding;
use std::fmt::Write as _;

/// One line per finding plus a summary tail line.
#[must_use]
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{}:{} · {} · {}", f.file, f.line, f.col, f.rule, f.message);
    }
    if findings.is_empty() {
        out.push_str("apf-lint: clean\n");
    } else {
        let _ = writeln!(out, "apf-lint: {} finding(s)", findings.len());
    }
    out
}

/// Machine format: `{"count": N, "findings": [{...}]}`. Hand-rolled like
/// the trace JSONL codec — the linter stays dependency-free.
#[must_use]
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"count\":{},\"findings\":[", findings.len());
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}}}",
            json_string(&f.file),
            f.line,
            f.col,
            json_string(&f.rule),
            json_string(&f.message)
        );
    }
    out.push_str("]}\n");
    out
}

/// The rule table for `--list-rules`.
#[must_use]
pub fn render_rules() -> String {
    let mut out = String::new();
    for r in RULES {
        let scope = match r.default_crates {
            None => "all crates".to_string(),
            Some(list) => list.join(", "),
        };
        let _ = writeln!(out, "{:>3}  {:<36} [{}]", r.code, r.name, scope);
        let _ = writeln!(out, "     {}", r.summary);
    }
    out.push_str(
        "\npragma: // apf-lint: allow(<rule>[, <rule>]) — <reason>\n\
         scope:  trailing comment = that line; own line = the next line only\n\
         config: lint.toml (per-rule crates/allow_files; see repo root)\n",
    );
    out
}

/// SARIF 2.1.0 — the static-analysis interchange format CI dashboards and
/// code hosts ingest. One run, one driver (`apf-lint`), the full rule
/// table under `tool.driver.rules`, one `result` per finding with a
/// physical location. Hand-rolled on the same escaper as [`render_json`].
#[must_use]
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\"version\":\"2.1.0\",");
    out.push_str(
        "\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
         Schemata/sarif-schema-2.1.0.json\",",
    );
    out.push_str("\"runs\":[{\"tool\":{\"driver\":{\"name\":\"apf-lint\",");
    out.push_str("\"informationUri\":\"https://example.invalid/apf-lint\",\"rules\":[");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"name\":{},\"shortDescription\":{{\"text\":{}}},\
             \"fullDescription\":{{\"text\":{}}}}}",
            json_string(r.name),
            json_string(r.code),
            json_string(r.summary),
            json_string(r.explain)
        );
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
             {{\"uri\":{}}},\"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
            json_string(&f.rule),
            json_string(&f.message),
            json_string(&f.file),
            f.line,
            f.col
        );
    }
    out.push_str("]}]}\n");
    out
}

/// The `--explain <rule>` page: code, scope, and the long-form rationale.
/// Returns `None` for an unknown rule name or code.
#[must_use]
pub fn render_explain(rule: &str) -> Option<String> {
    let r = RULES.iter().find(|r| r.name == rule || r.code == rule)?;
    let scope = match r.default_crates {
        None => "all crates".to_string(),
        Some(list) => list.join(", "),
    };
    let mut out = String::new();
    let _ = writeln!(out, "{} · {}", r.code, r.name);
    let _ = writeln!(out, "scope: {scope}");
    let _ = writeln!(out, "in tests: {} · in bins: {}", r.applies_in_tests, r.applies_in_bins);
    let _ = writeln!(out, "\n{}\n", r.summary);
    let _ = writeln!(out, "{}", r.explain);
    let _ = writeln!(out, "\nsuppress: // apf-lint: allow({}) — <why this site is sound>", r.name);
    Some(out)
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            file: "crates/core/src/lib.rs".into(),
            line: 3,
            col: 7,
            rule: "panic-policy".into(),
            message: "`.unwrap()` — say \"why\"".into(),
        }
    }

    #[test]
    fn text_format() {
        let t = render_text(&[finding()]);
        assert!(t.starts_with("crates/core/src/lib.rs:3:7 · panic-policy · "), "{t}");
        assert!(t.contains("1 finding(s)"));
        assert_eq!(render_text(&[]), "apf-lint: clean\n");
    }

    #[test]
    fn json_escapes() {
        let j = render_json(&[finding()]);
        assert!(j.contains("\"count\":1"));
        assert!(j.contains("say \\\"why\\\""));
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
    }

    #[test]
    fn rules_table_mentions_every_rule() {
        let t = render_rules();
        for r in RULES {
            assert!(t.contains(r.name), "missing {}", r.name);
        }
    }

    #[test]
    fn sarif_contains_rules_and_results() {
        let s = render_sarif(&[finding()]);
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"name\":\"apf-lint\""));
        assert!(s.contains("\"ruleId\":\"panic-policy\""));
        assert!(s.contains("\"startLine\":3"));
        for r in RULES {
            assert!(s.contains(&format!("\"id\":\"{}\"", r.name)), "missing {}", r.name);
        }
    }

    #[test]
    fn explain_resolves_names_and_codes() {
        for r in RULES {
            let by_name = render_explain(r.name).unwrap();
            assert!(by_name.contains(r.code), "{} page lacks its code", r.name);
            assert!(by_name.contains(r.explain.split_whitespace().next().unwrap()));
            assert!(render_explain(r.code).is_some(), "{} not found by code", r.code);
        }
        assert!(render_explain("no-such-rule").is_none());
    }
}
