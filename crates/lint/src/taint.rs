//! The inter-procedural rules: D10–D13.
//!
//! All four run over the workspace [`CallGraph`]:
//!
//! * **D10 `digest-purity-taint`** — forward reachability from the digest
//!   roots (`[analysis] digest_roots` in `lint.toml`: the `HashSink` fold,
//!   `fnv1a_64`, `CanonicalSpec` addressing). Every reachable function must
//!   stay digest-pure: no wall clocks, no hash-container iteration, no
//!   float↔int `as` casts — regardless of which crate it lives in. This is
//!   the call-graph upgrade of the D4/D6/D7 crate lists: those guard the
//!   *producers* of digested values by crate, D10 guards the digest
//!   *computation* itself by reachability.
//! * **D11 `randomness-reachability`** — every call path to a random draw
//!   must pass through an election entrypoint (`rng_entrypoints`,
//!   `rsb::select_a_robot`). Draw sites are functions in the D2 scope whose
//!   bodies hit a D2 needle. The entrypoints are removed from the graph;
//!   any function that still reaches a draw found a way around the
//!   election — a static witness against Theorem 1's ≤ 1 bit per election
//!   cycle budget.
//! * **D12 `lock-order`** — a mutex-acquisition order graph over the
//!   service crates. `a.lock()` while holding `b` adds the edge `b → a`;
//!   held sets propagate through calls (everything a callee eventually
//!   locks is ordered after what the caller holds). A cycle is a potential
//!   deadlock.
//! * **D13 `panic-reachability`** — `unwrap`/`expect`/`panic!` sites
//!   reachable from a `spawn(...)` closure with no `catch_unwind` boundary
//!   on the path. A panic there kills a worker thread (or poisons its
//!   locks) instead of failing the request.
//!
//! Everything is a *static over-approximation* (dyn dispatch fans out to
//! every impl, method calls resolve by name); see DESIGN.md for what that
//! means for each rule's verdicts.

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::lexer::Scanned;
use crate::parser::{self, ParsedFile};
use crate::rules::{self, Matcher, Needle, RuleDef};
use crate::symbols::Symbols;
use crate::FileKind;
use std::collections::{BTreeMap, BTreeSet};

/// Per-file metadata the analyses need (owned by `lint_files`).
pub(crate) struct FileEntry {
    pub rel_path: String,
    pub crate_name: String,
    pub kind: FileKind,
    pub scanned: Scanned,
}

/// The assembled workspace model.
pub(crate) struct Ws<'a> {
    pub files: &'a [FileEntry],
    pub parsed: &'a [ParsedFile],
    pub sym: &'a Symbols,
    pub graph: &'a CallGraph,
}

/// Emission callback: `(rule, file index, line, col, message)`. The caller
/// applies scoping, test/bin exemptions and pragma suppression.
pub(crate) type Emit<'a> = dyn FnMut(&'static RuleDef, usize, usize, usize, String) + 'a;

/// Runs all four inter-procedural rules.
pub(crate) fn run(ws: &Ws<'_>, cfg: &Config, emit: &mut Emit<'_>) {
    let lines: Vec<Vec<&str>> =
        ws.files.iter().map(|f| f.scanned.masked.split('\n').collect()).collect();
    let owned = owned_lines(ws);
    digest_purity(ws, cfg, &lines, &owned, emit);
    randomness_reachability(ws, cfg, &lines, &owned, emit);
    lock_order(ws, cfg, emit);
    panic_reachability(ws, cfg, &lines, &owned, emit);
}

fn rule(name: &str) -> &'static RuleDef {
    // apf-lint: allow(panic-policy) — rule names here come from the static RULES table
    rules::RULES.iter().find(|r| r.name == name).expect("registered rule")
}

/// The crates a rule applies to (`None` = every crate), honoring
/// `lint.toml` overrides.
fn scope_crates<'a>(r: &'a RuleDef, cfg: &'a Config) -> Option<Vec<&'a str>> {
    match cfg.rules.get(r.name).and_then(|rc| rc.crates.as_ref()) {
        Some(list) => Some(list.iter().map(String::as_str).collect()),
        None => r.default_crates.map(<[&str]>::to_vec),
    }
}

fn crate_in(scope: Option<&[&str]>, name: &str) -> bool {
    scope.is_none_or(|list| list.contains(&name))
}

/// For every fn node: the 1-based lines it owns — its `line..=end_line`
/// span minus the spans of nested `fn` items (their lines belong to them).
fn owned_lines(ws: &Ws<'_>) -> Vec<Vec<usize>> {
    let mut out = Vec::with_capacity(ws.sym.fns.len());
    for fsym in &ws.sym.fns {
        let p = &ws.parsed[fsym.file];
        let f = &p.fns[fsym.fn_idx];
        let children: Vec<(usize, usize)> = p
            .fns
            .iter()
            .filter(|c| c.line > f.line && c.end_line <= f.end_line && c.body.0 > f.body.0)
            .map(|c| (c.line, c.end_line))
            .collect();
        let mut mine = Vec::new();
        for line in f.line..=f.end_line {
            if !children.iter().any(|&(s, e)| line >= s && line <= e) {
                mine.push(line);
            }
        }
        out.push(mine);
    }
    out
}

/// Needle hits `(line, col, token)` over a set of lines of one file.
fn hits_on_lines(
    lines: &[&str],
    which: &[usize],
    needles: &[Needle],
    casts: bool,
) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    for &ln in which {
        let Some(text) = lines.get(ln - 1) else { continue };
        for &n in needles {
            for at in rules::needle_matches(text, n) {
                out.push((ln, at + 1, n.text().trim().to_string()));
            }
        }
        if casts {
            for at in rules::float_int_cast_matches(text) {
                out.push((ln, at + 1, "float<->int `as` cast".to_string()));
            }
        }
    }
    out
}

fn node_label(ws: &Ws<'_>, n: usize) -> String {
    if n < ws.sym.fns.len() {
        ws.sym.fns[n].qual.clone()
    } else {
        let cl = &ws.graph.closures[n - ws.sym.fns.len()];
        format!("{{closure@{}:{}}}", ws.files[cl.file].rel_path, cl.line)
    }
}

// ---------------------------------------------------------------- D10

const WALLCLOCK_NEEDLES: &[Needle] = &[Needle::Exact("Instant::now"), Needle::Ident("SystemTime")];
const HASH_NEEDLES: &[Needle] = &[Needle::Ident("HashMap"), Needle::Ident("HashSet")];

fn digest_purity(
    ws: &Ws<'_>,
    cfg: &Config,
    lines: &[Vec<&str>],
    owned: &[Vec<usize>],
    emit: &mut Emit<'_>,
) {
    let d10 = rule("digest-purity-taint");
    let mut roots: Vec<usize> = Vec::new();
    for pat in &cfg.analysis.digest_roots {
        roots.extend(ws.sym.matching(pat));
    }
    if roots.is_empty() {
        return;
    }
    let mut blocked = vec![false; ws.graph.len()];
    for pat in &cfg.analysis.digest_sink_allow {
        for n in ws.sym.matching(pat) {
            blocked[n] = true;
        }
    }
    let reach = ws.graph.reach_forward(&roots, &blocked);
    for (node, fsym) in ws.sym.fns.iter().enumerate() {
        if reach[node].is_none() {
            continue;
        }
        let mut sinks = hits_on_lines(&lines[fsym.file], &owned[node], WALLCLOCK_NEEDLES, false);
        sinks.extend(hits_on_lines(&lines[fsym.file], &owned[node], HASH_NEEDLES, false));
        sinks.extend(hits_on_lines(&lines[fsym.file], &owned[node], &[], true));
        if sinks.is_empty() {
            continue;
        }
        let chain = ws.graph.chain(&reach, node, &|n| node_label(ws, n));
        for (line, col, tok) in sinks {
            emit(
                d10,
                fsym.file,
                line,
                col,
                format!(
                    "`{tok}` — impure sink reachable from digest computation \
                     (via {chain}); wall clocks, hash iteration and float↔int \
                     casts here shift trace digests — keep the digest cone pure, \
                     route through an allowlisted sink, or pragma with the \
                     determinism argument [{}]",
                    d10.code
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- D11

fn randomness_reachability(
    ws: &Ws<'_>,
    cfg: &Config,
    lines: &[Vec<&str>],
    owned: &[Vec<usize>],
    emit: &mut Emit<'_>,
) {
    let d11 = rule("randomness-reachability");
    let d2 = rule("randomness-budget");
    let draw_scope = scope_crates(d2, cfg);
    let Matcher::Needles(d2_needles) = d2.matcher else { return };

    let mut draws: Vec<usize> = Vec::new();
    for (node, fsym) in ws.sym.fns.iter().enumerate() {
        if !crate_in(draw_scope.as_deref(), &fsym.crate_name) || fsym.is_test {
            continue;
        }
        if ws.files[fsym.file].kind == FileKind::Test {
            continue;
        }
        if !hits_on_lines(&lines[fsym.file], &owned[node], d2_needles, false).is_empty() {
            draws.push(node);
        }
    }
    if draws.is_empty() {
        return;
    }
    let mut blocked = vec![false; ws.graph.len()];
    let mut entrypoints: BTreeSet<usize> = BTreeSet::new();
    for pat in &cfg.analysis.rng_entrypoints {
        for n in ws.sym.matching(pat) {
            blocked[n] = true;
            entrypoints.insert(n);
        }
    }
    let back = ws.graph.reach_backward(&draws, &blocked);
    let draw_set: BTreeSet<usize> = draws.iter().copied().collect();
    for (node, fsym) in ws.sym.fns.iter().enumerate() {
        if back[node].is_none() || draw_set.contains(&node) || entrypoints.contains(&node) {
            continue;
        }
        // Chain from the offender toward the draw it reaches.
        let mut path = vec![node];
        let mut at = node;
        while let Some(prev) = back[at] {
            if prev == at || path.len() > 12 {
                break;
            }
            at = prev;
            path.push(at);
        }
        let chain: Vec<String> = path.iter().map(|&n| node_label(ws, n)).collect();
        emit(
            d11,
            fsym.file,
            fsym.line,
            1,
            format!(
                "`{}` — reaches a random draw without passing through an \
                 election entrypoint ({}); every draw must flow through \
                 ψ_RSB's `select_a_robot` so the ≤ 1 bit per election cycle \
                 budget (Theorem 1) is enforced by construction [{}]",
                fsym.name,
                chain.join(" → "),
                d11.code
            ),
        );
    }
}

// ---------------------------------------------------------------- D12

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct LockKey {
    crate_name: String,
    name: String,
}

impl LockKey {
    fn short(&self) -> &str {
        &self.name
    }
}

/// Site of the first occurrence of a lock-order edge.
type EdgeMap = BTreeMap<(LockKey, LockKey), (usize, usize)>;

fn lock_order(ws: &Ws<'_>, cfg: &Config, emit: &mut Emit<'_>) {
    let d12 = rule("lock-order");
    let scope = scope_crates(d12, cfg);
    let in_scope: Vec<bool> = ws
        .sym
        .fns
        .iter()
        .map(|f| {
            crate_in(scope.as_deref(), &f.crate_name)
                && ws.files[f.file].kind == FileKind::Library
                && !f.is_test
        })
        .collect();

    let mut local: Vec<BTreeSet<LockKey>> = vec![BTreeSet::new(); ws.sym.fns.len()];
    let mut edges: EdgeMap = BTreeMap::new();
    // (held locks, callee node, file, line)
    let mut held_calls: Vec<(Vec<LockKey>, usize, usize, usize)> = Vec::new();

    for (node, fsym) in ws.sym.fns.iter().enumerate() {
        if !in_scope[node] {
            continue;
        }
        walk_locks(ws, node, fsym.file, &mut local[node], &mut edges, &mut held_calls);
    }

    // Transitive acquisitions: everything a callee (within scope) may lock.
    let mut trans = local.clone();
    let mut changed = true;
    let mut rounds = 0usize;
    while changed && rounds <= ws.sym.fns.len() {
        changed = false;
        rounds += 1;
        for node in 0..ws.sym.fns.len() {
            if !in_scope[node] {
                continue;
            }
            let mut add: Vec<LockKey> = Vec::new();
            for &(callee, _) in &ws.graph.edges[node] {
                if callee < ws.sym.fns.len() && in_scope[callee] {
                    for k in &trans[callee] {
                        if !trans[node].contains(k) {
                            add.push(k.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                trans[node].extend(add);
            }
        }
    }
    for (held, callee, file, line) in held_calls {
        if callee >= ws.sym.fns.len() || !in_scope[callee] {
            continue;
        }
        for h in &held {
            for l in &trans[callee] {
                edges.entry((h.clone(), l.clone())).or_insert((file, line));
            }
        }
    }

    report_lock_cycles(ws, d12, &edges, emit);
}

/// Token walk over one fn body: direct acquisitions, order edges between
/// held locks, and calls made while holding.
fn walk_locks(
    ws: &Ws<'_>,
    node: usize,
    file: usize,
    local: &mut BTreeSet<LockKey>,
    edges: &mut EdgeMap,
    held_calls: &mut Vec<(Vec<LockKey>, usize, usize, usize)>,
) {
    let fsym = &ws.sym.fns[node];
    let p = &ws.parsed[file];
    let f = &p.fns[fsym.fn_idx];
    let (start, end) = f.body;
    if start >= end {
        return;
    }
    let skips: Vec<(usize, usize)> =
        p.fns.iter().map(|c| c.body).filter(|&(s, e)| s > start && e < end && s < e).collect();
    let calls_by_tok: BTreeMap<usize, &parser::CallSite> =
        f.calls.iter().map(|c| (c.tok, c)).collect();
    let ctx = crate::symbols::ResolveCtx {
        crate_name: &fsym.crate_name,
        owner: fsym.owner.as_deref(),
        uses: &p.uses,
    };

    let mut held: Vec<(LockKey, usize)> = Vec::new();
    let mut i = start;
    while i < end {
        if let Some(e) = skips.iter().find(|&&(s, e)| i >= s && i < e).map(|&(_, e)| e) {
            i = e;
            continue;
        }
        held.retain(|&(_, until)| until > i);
        // `<receiver>.lock()` — empty-argument lock call.
        let is_lock = p.toks[i].kind == parser::TokKind::Punct(b'.')
            && p.toks.get(i + 1).is_some_and(|t| t.kind == parser::TokKind::Ident("lock".into()))
            && p.toks.get(i + 2).is_some_and(|t| t.kind == parser::TokKind::Punct(b'('))
            && p.match_idx.get(i + 2) == Some(&(i + 3));
        if is_lock {
            if let Some(name) = lock_receiver(p, i) {
                let key = LockKey { crate_name: fsym.crate_name.clone(), name };
                let line = p.toks[i].line;
                for (h, _) in &held {
                    edges.entry((h.clone(), key.clone())).or_insert((file, line));
                }
                local.insert(key.clone());
                let until = release_index(p, i, end);
                held.push((key, until));
            }
            i += 4;
            continue;
        }
        if let Some(call) = calls_by_tok.get(&i) {
            if !held.is_empty() {
                let held_keys: Vec<LockKey> = held.iter().map(|(k, _)| k.clone()).collect();
                for target in ws.sym.resolve(&call.callee, ctx) {
                    held_calls.push((held_keys.clone(), target, file, call.line));
                }
            }
        }
        i += 1;
    }
}

/// The field/binding name a `.lock()` at token `dot` acquires: the last
/// identifier of the receiver chain, skipping a leading `self`. `None` for
/// a bare `self.lock()` (a method call, handled by the call graph) or an
/// unnameable receiver (call result).
fn lock_receiver(p: &ParsedFile, dot: usize) -> Option<String> {
    let mut j = dot;
    let mut name: Option<String> = None;
    loop {
        if j == 0 {
            break;
        }
        let t = &p.toks[j - 1];
        match &t.kind {
            parser::TokKind::Ident(w) => {
                if name.is_none() {
                    if w == "self" {
                        return None;
                    }
                    name = Some(w.clone());
                }
                // Keep walking the chain to consume `a.b.c`.
                if j >= 2 && p.toks[j - 2].kind == parser::TokKind::Punct(b'.') {
                    j -= 2;
                } else {
                    break;
                }
            }
            parser::TokKind::Punct(b')' | b']') => return name,
            _ => break,
        }
    }
    name
}

/// Where the guard from an acquisition at token `i` dies:
/// * `let _ = …` / no binding → the next `;` at the same bracket depth;
/// * `let g = …` → `drop(g)` inside the enclosing block, else the block's
///   closing brace.
fn release_index(p: &ParsedFile, i: usize, body_end: usize) -> usize {
    // Backward to the statement start, collecting a possible `let` binding.
    let mut j = i;
    let mut rel = 0i64;
    let mut guard: Option<String> = None;
    let mut saw_let = false;
    while j > 0 {
        j -= 1;
        match &p.toks[j].kind {
            parser::TokKind::Punct(b')' | b'}' | b']') => rel += 1,
            parser::TokKind::Punct(b'(' | b'[') if rel > 0 => rel -= 1,
            parser::TokKind::Punct(b'(' | b'[') => break,
            parser::TokKind::Punct(b'{') if rel > 0 => rel -= 1,
            parser::TokKind::Punct(b'{' | b';') => break,
            parser::TokKind::Ident(w) if rel == 0 && w == "let" => {
                saw_let = true;
                break;
            }
            parser::TokKind::Punct(b'=') if rel == 0 => {
                // Remember the binding ident just before `=`.
                if let Some(parser::TokKind::Ident(g)) = j.checked_sub(1).map(|k| &p.toks[k].kind) {
                    guard = Some(g.clone());
                }
            }
            _ => {}
        }
    }
    let block_close = enclosing_close(p, i, body_end);
    if saw_let {
        match guard.as_deref() {
            None | Some("_") => next_semi(p, i, body_end),
            Some(g) => {
                // drop(g) releases early.
                let mut k = i;
                while k < block_close {
                    if p.toks[k].ident() == Some("drop")
                        && p.toks.get(k + 1).is_some_and(|t| t.is_punct(b'('))
                        && p.toks.get(k + 2).and_then(parser::Tok::ident) == Some(g)
                        && p.toks.get(k + 3).is_some_and(|t| t.is_punct(b')'))
                    {
                        return k;
                    }
                    k += 1;
                }
                block_close
            }
        }
    } else {
        next_semi(p, i, body_end)
    }
}

/// Next `;` at the acquisition's own bracket depth.
fn next_semi(p: &ParsedFile, i: usize, body_end: usize) -> usize {
    let mut rel = 0i64;
    let mut j = i;
    while j < body_end.min(p.toks.len()) {
        match p.toks[j].kind {
            parser::TokKind::Punct(b'(' | b'{' | b'[') => rel += 1,
            parser::TokKind::Punct(b')' | b'}' | b']') => {
                rel -= 1;
                if rel < 0 {
                    return j;
                }
            }
            parser::TokKind::Punct(b';') if rel == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    body_end
}

/// The `}` closing the innermost block containing token `i`.
fn enclosing_close(p: &ParsedFile, i: usize, body_end: usize) -> usize {
    let mut rel = 0i64;
    let mut j = i;
    while j < body_end.min(p.toks.len()) {
        match p.toks[j].kind {
            parser::TokKind::Punct(b'(' | b'{' | b'[') => rel += 1,
            parser::TokKind::Punct(b')' | b'}' | b']') => {
                rel -= 1;
                if rel < 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    body_end
}

fn report_lock_cycles(ws: &Ws<'_>, d12: &'static RuleDef, edges: &EdgeMap, emit: &mut Emit<'_>) {
    let mut adj: BTreeMap<&LockKey, Vec<&LockKey>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut seen: BTreeSet<Vec<LockKey>> = BTreeSet::new();
    for start in adj.keys().copied() {
        if let Some(cycle) = find_cycle(&adj, start) {
            let mut sig: Vec<LockKey> = cycle.clone();
            sig.sort();
            sig.dedup();
            if !seen.insert(sig) {
                continue;
            }
            // Render `a → b → a` and each edge's site.
            let mut names: Vec<String> = cycle.iter().map(|k| format!("`{}`", k.short())).collect();
            names.push(format!("`{}`", cycle[0].short()));
            let mut sites = Vec::new();
            for w in 0..cycle.len() {
                let from = cycle[w].clone();
                let to = cycle[(w + 1) % cycle.len()].clone();
                if let Some(&(file, line)) = edges.get(&(from.clone(), to.clone())) {
                    sites.push(format!(
                        "`{}` → `{}` at {}:{line}",
                        from.short(),
                        to.short(),
                        ws.files[file].rel_path
                    ));
                }
            }
            let &(file, line) =
                edges.get(&(cycle[0].clone(), cycle[1 % cycle.len()].clone())).unwrap_or(&(0, 1));
            emit(
                d12,
                file,
                line,
                1,
                format!(
                    "potential deadlock: lock-order cycle {} ({}); two threads \
                     taking these locks in opposite orders block forever — pick \
                     one global order or merge the critical sections [{}]",
                    names.join(" → "),
                    sites.join("; "),
                    d12.code
                ),
            );
        }
    }
}

/// Finds a directed cycle through `start`, if any (DFS, deterministic).
fn find_cycle<'k>(
    adj: &BTreeMap<&'k LockKey, Vec<&'k LockKey>>,
    start: &'k LockKey,
) -> Option<Vec<LockKey>> {
    let mut stack: Vec<(&LockKey, usize)> = vec![(start, 0)];
    let mut path: Vec<&LockKey> = vec![start];
    let mut visited: BTreeSet<&LockKey> = BTreeSet::new();
    visited.insert(start);
    while let Some((at, next)) = stack.last_mut() {
        let outs = adj.get(*at).map_or(&[][..], Vec::as_slice);
        if *next >= outs.len() {
            stack.pop();
            path.pop();
            continue;
        }
        let to = outs[*next];
        *next += 1;
        if to == start {
            return Some(path.iter().map(|&k| k.clone()).collect());
        }
        if visited.insert(to) {
            stack.push((to, 0));
            path.push(to);
        }
    }
    None
}

// ---------------------------------------------------------------- D13

const PANIC_NEEDLES: &[Needle] = &[
    Needle::Exact(".unwrap()"),
    Needle::Exact(".expect("),
    Needle::Exact("panic!"),
    Needle::Exact("unreachable!"),
];

fn panic_reachability(
    ws: &Ws<'_>,
    cfg: &Config,
    lines: &[Vec<&str>],
    owned: &[Vec<usize>],
    emit: &mut Emit<'_>,
) {
    let d13 = rule("panic-reachability");
    let scope = scope_crates(d13, cfg);
    let nf = ws.sym.fns.len();
    let mut blocked = vec![false; ws.graph.len()];
    for (node, fsym) in ws.sym.fns.iter().enumerate() {
        let f = &ws.parsed[fsym.file].fns[fsym.fn_idx];
        if f.has_catch_unwind || !crate_in(scope.as_deref(), &fsym.crate_name) {
            blocked[node] = true;
        }
    }
    let mut reported: BTreeSet<(usize, usize, usize)> = BTreeSet::new();
    for (k, cl) in ws.graph.closures.iter().enumerate() {
        let file = &ws.files[cl.file];
        if cl.guarded
            || cl.is_test
            || file.kind != FileKind::Library
            || !crate_in(scope.as_deref(), &file.crate_name)
        {
            continue;
        }
        let root = nf + k;
        let reach = ws.graph.reach_forward(&[root], &blocked);
        let spawn_site = format!("{}:{}", file.rel_path, cl.line);
        // The closure's own body first (its lines belong to the parent fn,
        // which is usually not itself reachable from the closure).
        let p = &ws.parsed[cl.file];
        let body_lines: Vec<usize> = closure_lines(p, cl.body);
        for (line, col, tok) in hits_on_lines(&lines[cl.file], &body_lines, PANIC_NEEDLES, false) {
            if reported.insert((cl.file, line, col)) {
                emit(d13, cl.file, line, col, panic_message(d13, &tok, &spawn_site, None));
            }
        }
        for (node, fsym) in ws.sym.fns.iter().enumerate() {
            if reach[node].is_none() || node == root {
                continue;
            }
            let hits = hits_on_lines(&lines[fsym.file], &owned[node], PANIC_NEEDLES, false);
            if hits.is_empty() {
                continue;
            }
            let chain = ws.graph.chain(&reach, node, &|n| node_label(ws, n));
            for (line, col, tok) in hits {
                if reported.insert((fsym.file, line, col)) {
                    emit(
                        d13,
                        fsym.file,
                        line,
                        col,
                        panic_message(d13, &tok, &spawn_site, Some(&chain)),
                    );
                }
            }
        }
    }
}

/// 1-based lines spanned by a token range, minus nested `fn` bodies.
fn closure_lines(p: &ParsedFile, body: (usize, usize)) -> Vec<usize> {
    let (s, e) = body;
    if s >= e || e > p.toks.len() {
        return Vec::new();
    }
    let first = p.toks[s].line;
    let last = p.toks[e - 1].line;
    let children: Vec<(usize, usize)> = p
        .fns
        .iter()
        .filter(|c| c.body.0 > s && c.body.1 < e)
        .map(|c| (c.line, c.end_line))
        .collect();
    (first..=last).filter(|&l| !children.iter().any(|&(cs, ce)| l >= cs && l <= ce)).collect()
}

fn panic_message(d13: &RuleDef, tok: &str, spawn_site: &str, chain: Option<&str>) -> String {
    let via = chain.map(|c| format!("; via {c}")).unwrap_or_default();
    format!(
        "`{tok}` — panic site reachable from the worker thread spawned at \
         {spawn_site} with no catch_unwind boundary on the path{via}; a panic \
         here kills the worker (and poisons its locks) instead of failing one \
         request — return an error across the thread boundary, add a \
         catch_unwind at the root, or pragma with why the panic is the \
         intended crash semantics [{}]",
        d13.code
    )
}
