//! `lint.toml` — per-rule scoping and allowlists.
//!
//! The linter must run before anything else builds, so it parses its config
//! with a tiny hand-rolled TOML-subset reader instead of a dependency. The
//! subset is exactly what `lint.toml` needs: `[section]` / `[rules.<name>]`
//! headers, `key = "string"`, `key = true|false`, and (possibly multiline)
//! string arrays. Anything else is a hard error — a config that silently
//! parses to something unintended would be worse than no config.
//!
//! [`Config::default`] mirrors the shipped `lint.toml`, so the linter gives
//! the same verdicts with or without the file; the file exists to make the
//! scoping reviewable and to host allowlists next to their justifications.

use std::collections::BTreeMap;
use std::fmt;

/// Per-rule configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleConfig {
    /// `false` disables the rule entirely.
    pub disabled: bool,
    /// When set, the rule only applies to these crates (by package name);
    /// `None` means the rule's built-in default scope.
    pub crates: Option<Vec<String>>,
    /// Workspace-relative file paths exempt from the rule.
    pub allow_files: Vec<String>,
}

/// Anchors for the inter-procedural analyses (`[analysis]` in lint.toml).
///
/// Patterns name functions either bare (`fnv1a_64`) or qualified
/// (`HashSink::record`); a qualified pattern matches any function whose
/// qualified name ends with it on a `::` boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// D10 roots: the digest/trace-hash computation functions whose
    /// forward call cone must stay digest-pure.
    pub digest_roots: Vec<String>,
    /// D10 boundaries: audited sink functions the taint does not cross
    /// (e.g. a quantizer reviewed for exact representability).
    pub digest_sink_allow: Vec<String>,
    /// D11 gateways: the sanctioned election entrypoints every call path
    /// to a random draw must pass through.
    pub rng_entrypoints: Vec<String>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            digest_roots: vec![
                "HashSink::record".to_string(),
                "HashSink::digest".to_string(),
                "fnv1a_64".to_string(),
                "CanonicalSpec::digest".to_string(),
            ],
            digest_sink_allow: Vec::new(),
            rng_entrypoints: vec!["select_a_robot".to_string()],
        }
    }
}

/// The whole linter configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Workspace-relative directories that hold crates to scan.
    pub crate_roots: Vec<String>,
    /// Directory names never scanned (vendored stand-ins, build output).
    pub exclude: Vec<String>,
    /// Per-rule overrides, keyed by rule name.
    pub rules: BTreeMap<String, RuleConfig>,
    /// Anchors for the call-graph analyses (D10–D13).
    pub analysis: AnalysisConfig,
}

impl Default for Config {
    fn default() -> Self {
        let mut rules = BTreeMap::new();
        rules.insert(
            "randomness-budget".to_string(),
            RuleConfig {
                crates: Some(vec!["apf-core".to_string()]),
                allow_files: vec!["crates/core/src/rsb.rs".to_string()],
                ..RuleConfig::default()
            },
        );
        rules.insert(
            "no-wallclock-in-sim".to_string(),
            RuleConfig {
                crates: Some(vec![
                    "apf-core".to_string(),
                    "apf-sim".to_string(),
                    "apf-scheduler".to_string(),
                    "apf-geometry".to_string(),
                    "apf-trace".to_string(),
                ]),
                // The span profiler's monotonic clock — the only sanctioned
                // wall-clock site in scope.
                allow_files: vec!["crates/trace/src/span.rs".to_string()],
                ..RuleConfig::default()
            },
        );
        // The digest blast radius: everything these crates compute can end
        // up in a trace event and therefore in a conformance digest. Shared
        // by D4, D6 and D7.
        let digest_crates = || {
            Some(vec![
                "apf-core".to_string(),
                "apf-sim".to_string(),
                "apf-scheduler".to_string(),
                "apf-geometry".to_string(),
                "apf-trace".to_string(),
                "apf-conformance".to_string(),
            ])
        };
        rules.insert(
            "no-hash-iteration-in-digest-paths".to_string(),
            RuleConfig { crates: digest_crates(), ..RuleConfig::default() },
        );
        rules.insert(
            "no-float-int-casts-in-digest-paths".to_string(),
            RuleConfig { crates: digest_crates(), ..RuleConfig::default() },
        );
        rules.insert(
            "stable-sort-in-digest-paths".to_string(),
            RuleConfig { crates: digest_crates(), ..RuleConfig::default() },
        );
        rules.insert(
            "no-float-eq".to_string(),
            RuleConfig {
                crates: Some(vec!["apf-geometry".to_string(), "apf-core".to_string()]),
                ..RuleConfig::default()
            },
        );
        rules.insert(
            "no-f32-in-geometry".to_string(),
            RuleConfig { crates: Some(vec!["apf-geometry".to_string()]), ..RuleConfig::default() },
        );
        rules.insert(
            "zip-length-mismatch".to_string(),
            RuleConfig {
                crates: Some(vec![
                    "apf-core".to_string(),
                    "apf-geometry".to_string(),
                    "apf-sim".to_string(),
                ]),
                ..RuleConfig::default()
            },
        );
        rules.insert(
            "randomness-reachability".to_string(),
            RuleConfig {
                // The election module hosts the draws; D11 findings anchor
                // at functions *outside* it that sneak past the entrypoint.
                allow_files: vec!["crates/core/src/rsb.rs".to_string()],
                ..RuleConfig::default()
            },
        );
        rules.insert(
            "lock-order".to_string(),
            RuleConfig {
                crates: Some(vec!["apf-serve".to_string(), "apf-bench".to_string()]),
                ..RuleConfig::default()
            },
        );
        rules.insert(
            "panic-reachability".to_string(),
            RuleConfig {
                crates: Some(vec!["apf-serve".to_string(), "apf-bench".to_string()]),
                ..RuleConfig::default()
            },
        );
        Config {
            crate_roots: vec!["crates".to_string()],
            exclude: vec!["vendor".to_string(), "target".to_string()],
            rules,
            analysis: AnalysisConfig::default(),
        }
    }
}

/// A `lint.toml` parse error with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in the config file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses `lint.toml` text, starting from the built-in defaults and
    /// overriding whatever the file sets.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on any line outside the supported subset.
    pub fn from_toml(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(ConfigError { line: line_no, message: "unclosed `[`".into() });
                };
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let key = key.trim();
            let mut value = value.trim().to_string();
            // Multiline array: keep consuming lines until the `]` closes.
            while value.starts_with('[') && !balanced_array(&value) {
                let Some((_, next)) = lines.next() else {
                    return Err(ConfigError { line: line_no, message: "unclosed array".into() });
                };
                value.push(' ');
                value.push_str(strip_comment(next).trim());
            }
            apply(&mut cfg, &section, key, &value)
                .map_err(|message| ConfigError { line: line_no, message })?;
        }
        Ok(cfg)
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced_array(value: &str) -> bool {
    // Arrays hold only strings, so counting brackets outside quotes is safe.
    let mut in_str = false;
    let mut depth = 0i32;
    for c in value.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_string(value: &str) -> Result<String, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got `{v}`"))?;
    if inner.contains('"') {
        return Err(format!("unsupported escape in `{v}`"));
    }
    Ok(inner.to_string())
}

fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected `[ ... ]`, got `{v}`"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(item)?);
    }
    Ok(out)
}

fn parse_bool(value: &str) -> Result<bool, String> {
    match value.trim() {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("expected true/false, got `{other}`")),
    }
}

fn apply(cfg: &mut Config, section: &str, key: &str, value: &str) -> Result<(), String> {
    if section == "lint" {
        return match key {
            "crate_roots" => {
                cfg.crate_roots = parse_string_array(value)?;
                Ok(())
            }
            "exclude" => {
                cfg.exclude = parse_string_array(value)?;
                Ok(())
            }
            other => Err(format!("unknown key `{other}` in [lint]")),
        };
    }
    if section == "analysis" {
        return match key {
            "digest_roots" => {
                cfg.analysis.digest_roots = parse_string_array(value)?;
                Ok(())
            }
            "digest_sink_allow" => {
                cfg.analysis.digest_sink_allow = parse_string_array(value)?;
                Ok(())
            }
            "rng_entrypoints" => {
                cfg.analysis.rng_entrypoints = parse_string_array(value)?;
                Ok(())
            }
            other => Err(format!("unknown key `{other}` in [analysis]")),
        };
    }
    if let Some(rule) = section.strip_prefix("rules.") {
        if !crate::rules::is_known_rule(rule) {
            return Err(format!("unknown rule `{rule}` in section header"));
        }
        let rc = cfg.rules.entry(rule.to_string()).or_default();
        return match key {
            "enabled" => {
                rc.disabled = !parse_bool(value)?;
                Ok(())
            }
            "crates" => {
                rc.crates = Some(parse_string_array(value)?);
                Ok(())
            }
            "allow_files" => {
                rc.allow_files = parse_string_array(value)?;
                Ok(())
            }
            other => Err(format!("unknown key `{other}` in [rules.{rule}]")),
        };
    }
    Err(format!("unknown section `[{section}]`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scopes_match_shipped_rules() {
        let cfg = Config::default();
        let budget = &cfg.rules["randomness-budget"];
        assert_eq!(budget.crates.as_deref(), Some(&["apf-core".to_string()][..]));
        assert_eq!(budget.allow_files, vec!["crates/core/src/rsb.rs".to_string()]);
        assert!(cfg.exclude.contains(&"vendor".to_string()));
    }

    #[test]
    fn parses_overrides_and_multiline_arrays() {
        let toml = r#"
# top comment
[lint]
crate_roots = ["crates"]
exclude = ["vendor", "target"] # trailing comment

[rules.no-float-eq]
enabled = true
crates = [
    "apf-geometry",
    "apf-core",
]

[rules.panic-policy]
allow_files = ["crates/foo/src/gen.rs"]
"#;
        let cfg = Config::from_toml(toml).unwrap();
        assert_eq!(
            cfg.rules["no-float-eq"].crates.as_deref().unwrap(),
            ["apf-geometry".to_string(), "apf-core".to_string()]
        );
        assert_eq!(cfg.rules["panic-policy"].allow_files, ["crates/foo/src/gen.rs".to_string()]);
    }

    #[test]
    fn rejects_unknown_rule_and_bad_syntax() {
        assert!(Config::from_toml("[rules.not-a-rule]\nenabled = true\n").is_err());
        assert!(Config::from_toml("[lint]\nwhat = 3\n").is_err());
        assert!(Config::from_toml("loose = \"x\"\n").is_err());
        let err = Config::from_toml("[lint]\ncrate_roots = [\"a\"\n").unwrap_err();
        assert!(err.to_string().contains("lint.toml:"), "{err}");
    }

    #[test]
    fn parses_analysis_section() {
        let cfg = Config::from_toml(
            "[analysis]\ndigest_roots = [\"my_fold\"]\ndigest_sink_allow = [\"Q::quantize\"]\n\
             rng_entrypoints = [\"gateway\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.analysis.digest_roots, ["my_fold".to_string()]);
        assert_eq!(cfg.analysis.digest_sink_allow, ["Q::quantize".to_string()]);
        assert_eq!(cfg.analysis.rng_entrypoints, ["gateway".to_string()]);
        assert!(Config::from_toml("[analysis]\nbogus = [\"x\"]\n").is_err());
    }

    #[test]
    fn disabling_a_rule() {
        let cfg = Config::from_toml("[rules.no-float-eq]\nenabled = false\n").unwrap();
        assert!(cfg.rules["no-float-eq"].disabled);
    }
}
