#![forbid(unsafe_code)]
//! apf-lint — determinism & randomness-budget static analysis.
//!
//! The dynamic layers (trace inspector, conformance corpus, schedule
//! fuzzer) check the paper's headline invariants — one random bit per robot
//! per election cycle, bit-identical replay — only on the executions a run
//! happens to take. This crate proves the cheap half of those claims at the
//! *source* level, before any trial runs: no ambient entropy anywhere, no
//! random draw outside `ψ_RSB`, and — in the crates whose behavior feeds
//! trace digests — no wall clocks, hash-iteration order, exact float
//! equality, unaudited float↔int `as` casts, or unstable sorts.
//!
//! Since PR 9 the pass is *inter-procedural*: a token-tree
//! [`parser`] over the masking [`lexer`] extracts items and call sites, a
//! workspace [symbol table](symbols) resolves callees best-effort, and a
//! [call graph](callgraph) answers reachability queries for the taint
//! rules D10–D13 (digest purity, randomness reachability, lock order,
//! panic reachability — see [`taint`]).
//!
//! The pass is deliberately std-only and dependency-free: it is the first
//! gate in `scripts/check.sh` and must build in the offline container
//! before anything else compiles.
//!
//! Entry points: [`lint_workspace`] walks every workspace crate;
//! [`lint_files`] lints a set of in-memory sources as one workspace (the
//! fixture tests build multi-crate scenarios this way); [`lint_source`] is
//! the single-file convenience wrapper. All return [`Finding`]s that render
//! as `file:line:col · rule · message` (see [`report`]).

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod symbols;
mod taint;

pub use config::{AnalysisConfig, Config, ConfigError, RuleConfig};
pub use rules::{RuleDef, BAD_PRAGMA, RULES};

use lexer::Scanned;
use rules::Matcher;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// Rule name (`panic-policy`, …, or `bad-pragma`).
    pub rule: String,
    /// Human-readable explanation, starting with the matched token.
    pub message: String,
}

/// How a source file participates in rule scoping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Regular library code — every applicable rule fires.
    Library,
    /// `src/bin/` or `src/main.rs` — exempt from bin-exempt rules (P1).
    Binary,
    /// `tests/`, `benches/`, `examples/` — exempt from test-exempt rules.
    Test,
}

impl FileKind {
    /// Classifies a workspace-relative path.
    #[must_use]
    pub fn of(rel_path: &str) -> FileKind {
        let comps: Vec<&str> = rel_path.split('/').collect();
        if comps.contains(&"tests") || comps.contains(&"benches") || comps.contains(&"examples") {
            return FileKind::Test;
        }
        if rel_path.contains("src/bin/") || rel_path.ends_with("src/main.rs") {
            return FileKind::Binary;
        }
        FileKind::Library
    }
}

/// One in-memory source file for [`lint_files`].
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Package name the file belongs to (`apf-core`, …).
    pub crate_name: String,
    /// The source text.
    pub source: String,
}

/// Lints one source text as if it lived at `rel_path` inside `crate_name`.
#[must_use]
pub fn lint_source(rel_path: &str, crate_name: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    lint_files(
        &[SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            source: source.to_string(),
        }],
        cfg,
    )
}

/// Lints a set of sources as one workspace: per-line rules on each file,
/// then the inter-procedural rules (D10–D13) over the combined call graph,
/// then pragma hygiene — including *stale* pragmas (well-formed `allow`s
/// that suppressed nothing anywhere in the run).
#[must_use]
pub fn lint_files(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let entries: Vec<taint::FileEntry> = files
        .iter()
        .map(|f| taint::FileEntry {
            rel_path: f.rel_path.clone(),
            crate_name: f.crate_name.clone(),
            kind: FileKind::of(&f.rel_path),
            scanned: lexer::scan(&f.source),
        })
        .collect();
    let parsed: Vec<parser::ParsedFile> =
        entries.iter().map(|e| parser::parse(&e.scanned, &e.rel_path)).collect();
    let name_pairs: Vec<(String, String)> =
        entries.iter().map(|e| (e.rel_path.clone(), e.crate_name.clone())).collect();
    let sym = symbols::Symbols::build(&name_pairs, &parsed);
    let graph = callgraph::CallGraph::build(&parsed, &sym);

    let mut pragma_used: Vec<Vec<bool>> =
        entries.iter().map(|e| vec![false; e.scanned.pragmas.len()]).collect();
    let mut findings = Vec::new();

    for (fi, e) in entries.iter().enumerate() {
        for rule in RULES {
            if matches!(rule.matcher, Matcher::CallGraph) {
                continue;
            }
            let rc = cfg.rules.get(rule.name);
            if rc.is_some_and(|rc| rc.disabled) {
                continue;
            }
            if !crate_in_scope(rule, rc, &e.crate_name) {
                continue;
            }
            if rc.is_some_and(|rc| rc.allow_files.iter().any(|f| f == &e.rel_path)) {
                continue;
            }
            if e.kind == FileKind::Test && !rule.applies_in_tests {
                continue;
            }
            if e.kind == FileKind::Binary && !rule.applies_in_bins {
                continue;
            }
            run_rule(rule, &e.scanned, &e.rel_path, &mut pragma_used[fi], &mut findings);
        }
    }

    {
        let ws = taint::Ws { files: &entries, parsed: &parsed, sym: &sym, graph: &graph };
        let mut emit =
            |rule: &'static RuleDef, fi: usize, line: usize, col: usize, message: String| {
                let e = &entries[fi];
                let rc = cfg.rules.get(rule.name);
                if rc.is_some_and(|rc| rc.disabled) {
                    return;
                }
                if !crate_in_scope(rule, rc, &e.crate_name) {
                    return;
                }
                if rc.is_some_and(|rc| rc.allow_files.iter().any(|f| f == &e.rel_path)) {
                    return;
                }
                if e.kind == FileKind::Test && !rule.applies_in_tests {
                    return;
                }
                if e.kind == FileKind::Binary && !rule.applies_in_bins {
                    return;
                }
                if e.scanned.is_test_line(line) && !rule.applies_in_tests {
                    return;
                }
                if let Some(pi) = find_suppressor(&e.scanned, rule.name, line) {
                    pragma_used[fi][pi] = true;
                    return;
                }
                findings.push(Finding {
                    file: e.rel_path.clone(),
                    line,
                    col,
                    rule: rule.name.to_string(),
                    message,
                });
            };
        taint::run(&ws, cfg, &mut emit);
    }

    for (fi, e) in entries.iter().enumerate() {
        pragma_diagnostics(&e.scanned, &e.rel_path, &mut findings);
        for (pi, p) in e.scanned.pragmas.iter().enumerate() {
            let well_formed = p.error.is_none()
                && p.has_reason
                && p.rules.iter().all(|r| rules::is_known_rule(r));
            if well_formed && !pragma_used[fi][pi] {
                findings.push(Finding {
                    file: e.rel_path.clone(),
                    line: p.line,
                    col: 1,
                    rule: BAD_PRAGMA.to_string(),
                    message: format!(
                        "stale pragma: allow({}) suppresses no findings — the code it \
                         excused changed or the rule no longer applies here; delete it \
                         or re-justify",
                        p.rules.join(", ")
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.col,
            b.rule.as_str(),
        ))
    });
    findings.dedup();
    findings
}

fn crate_in_scope(rule: &RuleDef, rc: Option<&RuleConfig>, crate_name: &str) -> bool {
    let configured = rc.and_then(|rc| rc.crates.as_deref());
    match configured {
        Some(list) => list.iter().any(|c| c == crate_name),
        None => match rule.default_crates {
            Some(list) => list.contains(&crate_name),
            None => true,
        },
    }
}

fn run_rule(
    rule: &RuleDef,
    scanned: &Scanned,
    rel_path: &str,
    pragma_used: &mut [bool],
    findings: &mut Vec<Finding>,
) {
    for (idx, line_text) in scanned.masked.split('\n').enumerate() {
        let line_no = idx + 1;
        if scanned.is_test_line(line_no) && !rule.applies_in_tests {
            continue;
        }
        let hits: Vec<(usize, &str)> = match rule.matcher {
            Matcher::Needles(needles) => needles
                .iter()
                .flat_map(|&n| {
                    rules::needle_matches(line_text, n).into_iter().map(move |at| (at, n.text()))
                })
                .collect(),
            Matcher::FloatEq => rules::float_eq_matches(line_text)
                .into_iter()
                .map(|at| (at, "float ==/!="))
                .collect(),
            Matcher::FloatIntCast => rules::float_int_cast_matches(line_text)
                .into_iter()
                .map(|at| (at, "float<->int `as` cast"))
                .collect(),
            Matcher::CallGraph => Vec::new(),
        };
        for (at, token) in hits {
            if let Some(pi) = find_suppressor(scanned, rule.name, line_no) {
                pragma_used[pi] = true;
                continue;
            }
            findings.push(Finding {
                file: rel_path.to_string(),
                line: line_no,
                col: at + 1,
                rule: rule.name.to_string(),
                message: format!("`{}` — {} [{}]", token.trim(), rule.message, rule.code),
            });
        }
    }
}

/// A finding on `line` is suppressed by a trailing pragma on the same line,
/// or by an own-line pragma on exactly the previous line. A pragma without a
/// reason suppresses nothing — it is itself a [`BAD_PRAGMA`] finding, and
/// honoring it would let an unauditable suppression ride on a failing run.
/// Returns the index of the suppressing pragma so callers can track usage
/// (an `allow` that never suppresses anything is *stale* and reported).
fn find_suppressor(scanned: &Scanned, rule_name: &str, line: usize) -> Option<usize> {
    scanned.pragmas.iter().position(|p| {
        p.error.is_none()
            && p.has_reason
            && p.rules.iter().any(|r| r == rule_name)
            && ((!p.own_line && p.line == line) || (p.own_line && p.line + 1 == line))
    })
}

/// Malformed pragmas, pragmas without a reason, and pragmas naming unknown
/// rules are themselves findings: a suppression nobody can audit is a hole.
fn pragma_diagnostics(scanned: &Scanned, rel_path: &str, findings: &mut Vec<Finding>) {
    for p in &scanned.pragmas {
        let mut bad = |message: String| {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: p.line,
                col: 1,
                rule: BAD_PRAGMA.to_string(),
                message,
            });
        };
        if let Some(err) = &p.error {
            bad(format!("malformed apf-lint pragma: {err}"));
            continue;
        }
        for r in &p.rules {
            if !rules::is_known_rule(r) {
                bad(format!("pragma names unknown rule `{r}`"));
            }
        }
        if !p.has_reason {
            bad("pragma without a reason; write `// apf-lint: allow(<rule>) — <why>`".to_string());
        }
    }
}

/// A workspace member to scan.
#[derive(Debug, Clone)]
pub struct Package {
    /// Package name from `Cargo.toml` (`apf-core`, …).
    pub name: String,
    /// Workspace-relative directory ("" for the root package).
    pub rel_dir: String,
    /// Absolute directory.
    pub dir: PathBuf,
}

/// Extracts `name = "…"` from a `[package]` section.
#[must_use]
pub fn package_name(cargo_toml: &str) -> Option<String> {
    let mut in_package = false;
    for line in cargo_toml.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix('[') {
            in_package = rest.trim_end_matches(']').trim() == "package";
            continue;
        }
        if in_package {
            if let Some((k, v)) = line.split_once('=') {
                if k.trim() == "name" {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Discovers the packages to lint: the root package plus every crate under
/// the configured `crate_roots`, minus `exclude`d directories.
///
/// # Errors
///
/// Propagates I/O errors from directory walking.
pub fn discover_packages(root: &Path, cfg: &Config) -> io::Result<Vec<Package>> {
    let mut packages = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        if let Some(name) = package_name(&std::fs::read_to_string(&root_manifest)?) {
            packages.push(Package { name, rel_dir: String::new(), dir: root.to_path_buf() });
        }
    }
    for crate_root in &cfg.crate_roots {
        if cfg.exclude.iter().any(|e| e == crate_root) {
            continue;
        }
        let dir = root.join(crate_root);
        if !dir.is_dir() {
            continue;
        }
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(&dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for entry in entries {
            let Some(dir_name) = entry.file_name().and_then(|n| n.to_str()).map(String::from)
            else {
                continue;
            };
            if cfg.exclude.iter().any(|e| e == &dir_name) {
                continue;
            }
            let manifest = entry.join("Cargo.toml");
            if !manifest.is_file() {
                continue;
            }
            if let Some(name) = package_name(&std::fs::read_to_string(&manifest)?) {
                packages.push(Package {
                    name,
                    rel_dir: format!("{crate_root}/{dir_name}"),
                    dir: entry,
                });
            }
        }
    }
    Ok(packages)
}

/// The source subtrees scanned inside every package.
const SOURCE_DIRS: &[&str] = &["src", "tests", "benches", "examples"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Lints every `.rs` file of every discovered package.
///
/// # Errors
///
/// Propagates I/O errors; unreadable files fail the run rather than being
/// silently skipped (a gate that skips is not a gate).
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<Finding>> {
    let mut sources = Vec::new();
    for pkg in discover_packages(root, cfg)? {
        let mut files = Vec::new();
        for sub in SOURCE_DIRS {
            let dir = pkg.dir.join(sub);
            if dir.is_dir() {
                collect_rs_files(&dir, &mut files)?;
            }
        }
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace(std::path::MAIN_SEPARATOR, "/");
            let source = std::fs::read_to_string(&file)?;
            sources.push(SourceFile { rel_path: rel, crate_name: pkg.name.clone(), source });
        }
    }
    Ok(lint_files(&sources, cfg))
}

/// Loads `lint.toml` from `root` (or defaults when absent) and lints.
///
/// # Errors
///
/// Returns a string error for config parse failures or I/O failures.
pub fn lint_with_config_file(
    root: &Path,
    config_path: Option<&Path>,
) -> Result<Vec<Finding>, String> {
    let path = config_path.map_or_else(|| root.join("lint.toml"), Path::to_path_buf);
    let cfg = if path.is_file() {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Config::from_toml(&text).map_err(|e| e.to_string())?
    } else if config_path.is_some() {
        return Err(format!("config file {} not found", path.display()));
    } else {
        Config::default()
    };
    lint_workspace(root, &cfg).map_err(|e| format!("scanning {}: {e}", root.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_kind_classification() {
        assert_eq!(FileKind::of("crates/core/src/rsb.rs"), FileKind::Library);
        assert_eq!(FileKind::of("crates/core/tests/props.rs"), FileKind::Test);
        assert_eq!(FileKind::of("tests/chirality.rs"), FileKind::Test);
        assert_eq!(FileKind::of("examples/quickstart.rs"), FileKind::Test);
        assert_eq!(FileKind::of("crates/bench/benches/snapshot_pipeline.rs"), FileKind::Test);
        assert_eq!(FileKind::of("src/bin/apf-cli.rs"), FileKind::Binary);
        assert_eq!(FileKind::of("src/main.rs"), FileKind::Binary);
        assert_eq!(FileKind::of("src/lib.rs"), FileKind::Library);
    }

    #[test]
    fn package_name_parses() {
        let toml = "[workspace]\nmembers = [\"x\"]\n\n[package]\nname = \"apf\"\nversion = \"1\"\n";
        assert_eq!(package_name(toml).as_deref(), Some("apf"));
        assert_eq!(package_name("[workspace]\n"), None);
    }
}
