//! A workspace symbol table with best-effort call resolution.
//!
//! Every parsed file contributes its `fn` items; the table indexes them by
//! bare name and by `(owner, name)` so call sites can be resolved without a
//! type system:
//!
//! * `self.m(...)` → methods named `m` on the **caller's own impl type**
//!   when one exists, else any same-crate method of that name;
//! * `x.m(...)` → same-crate methods named `m` when any exist, else every
//!   workspace method of that name (an over-approximation — better a few
//!   spurious edges than a silently incomplete graph);
//! * `a::b::f(...)` → `use`-alias expansion on the first segment, crate
//!   pinning for `apf_*`/`crate`/`Self` heads, then `Owner::name` and
//!   qualified-suffix matching;
//! * `f(...)` → `use`-alias expansion, then same-crate fns first.
//!
//! `std`/`core`/`alloc` paths resolve to nothing: the analyses treat the
//! standard library as a leaf.

use crate::parser::{Callee, ParsedFile};
use std::collections::BTreeMap;

/// One function known to the workspace.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Index of the owning file in the workspace file list.
    pub file: usize,
    /// Index into that file's `ParsedFile::fns`.
    pub fn_idx: usize,
    /// Package name (`apf-core`, …).
    pub crate_name: String,
    /// Workspace-relative path.
    pub rel_path: String,
    /// Bare name.
    pub name: String,
    /// Impl/trait owner type, if any.
    pub owner: Option<String>,
    /// `module::Owner::name` (no crate prefix).
    pub qual: String,
    /// Definition line.
    pub line: usize,
    /// Defined inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct Symbols {
    /// All functions, in (file, item) order. Indices are call-graph nodes.
    pub fns: Vec<FnSym>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Caller context for resolution.
#[derive(Debug, Clone, Copy)]
pub struct ResolveCtx<'a> {
    /// Caller's crate.
    pub crate_name: &'a str,
    /// Caller's impl owner type, if the caller is a method.
    pub owner: Option<&'a str>,
    /// Caller file's `use` aliases.
    pub uses: &'a BTreeMap<String, Vec<String>>,
}

impl Symbols {
    /// Builds the table from parsed files (parallel to the caller's file
    /// list; `files[i]` must describe `parsed[i]`).
    #[must_use]
    pub fn build(files: &[(String, String)], parsed: &[ParsedFile]) -> Symbols {
        let mut sym = Symbols::default();
        for (file, p) in parsed.iter().enumerate() {
            let (rel_path, crate_name) = &files[file];
            for (fn_idx, f) in p.fns.iter().enumerate() {
                let id = sym.fns.len();
                sym.by_name.entry(f.name.clone()).or_default().push(id);
                sym.fns.push(FnSym {
                    file,
                    fn_idx,
                    crate_name: crate_name.clone(),
                    rel_path: rel_path.clone(),
                    name: f.name.clone(),
                    owner: f.owner.clone(),
                    qual: f.qual.clone(),
                    line: f.line,
                    is_test: f.is_test,
                });
            }
        }
        sym
    }

    fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Resolves one call site to zero or more candidate definitions.
    #[must_use]
    pub fn resolve(&self, callee: &Callee, ctx: ResolveCtx<'_>) -> Vec<usize> {
        match callee {
            Callee::Method { name, on_self } => self.resolve_method(name, *on_self, ctx),
            Callee::Path(segs) => self.resolve_path(segs, ctx),
        }
    }

    fn resolve_method(&self, name: &str, on_self: bool, ctx: ResolveCtx<'_>) -> Vec<usize> {
        let candidates: Vec<usize> =
            self.named(name).iter().copied().filter(|&i| self.fns[i].owner.is_some()).collect();
        if on_self {
            if let Some(owner) = ctx.owner {
                let own: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&i| {
                        self.fns[i].owner.as_deref() == Some(owner)
                            && self.fns[i].crate_name == ctx.crate_name
                    })
                    .collect();
                if !own.is_empty() {
                    return own;
                }
            }
        }
        let same_crate: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| self.fns[i].crate_name == ctx.crate_name)
            .collect();
        if same_crate.is_empty() {
            candidates
        } else {
            same_crate
        }
    }

    fn resolve_path(&self, segs: &[String], ctx: ResolveCtx<'_>) -> Vec<usize> {
        if segs.is_empty() {
            return Vec::new();
        }
        // Expand a leading `use` alias: `HashSink::record` with
        // `use apf_trace::sink::HashSink` becomes the full path.
        let mut path: Vec<String> = segs.to_vec();
        if let Some(expansion) = ctx.uses.get(&path[0]) {
            let mut full = expansion.clone();
            full.extend(path[1..].iter().cloned());
            path = full;
        }
        // Crate pinning from the path head.
        let mut want_crate: Option<String> = None;
        match path[0].as_str() {
            "std" | "core" | "alloc" => return Vec::new(),
            "crate" | "self" | "super" => {
                want_crate = Some(ctx.crate_name.to_string());
                path.remove(0);
            }
            head if head.starts_with("apf_") => {
                want_crate = Some(head.replace('_', "-"));
                path.remove(0);
            }
            "Self" => {
                if let Some(owner) = ctx.owner {
                    path[0] = owner.to_string();
                } else {
                    path.remove(0);
                }
            }
            _ => {}
        }
        if path.is_empty() {
            return Vec::new();
        }
        let name = path[path.len() - 1].clone();
        let in_crate = |i: &usize| match &want_crate {
            Some(c) => &self.fns[*i].crate_name == c,
            None => true,
        };
        let candidates: Vec<usize> = self.named(&name).iter().copied().filter(in_crate).collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        if path.len() >= 2 {
            let qualifier = &path[path.len() - 2];
            // `Owner::name` — the common `Type::method` shape.
            let owned: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| self.fns[i].owner.as_deref() == Some(qualifier.as_str()))
                .collect();
            if !owned.is_empty() {
                return owned;
            }
            // Module-qualified suffix: `dpf::phase2::plan`.
            let suffix = path.join("::");
            let by_suffix: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| qual_ends_with(&self.fns[i].qual, &suffix))
                .collect();
            if !by_suffix.is_empty() {
                return by_suffix;
            }
            // A qualifier we cannot place (external type, module the parser
            // did not see): stay silent rather than guessing by bare name.
            return Vec::new();
        }
        // Bare name: prefer same-crate free functions, then same-crate
        // anything, then workspace free functions.
        let same_crate_free: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| self.fns[i].crate_name == ctx.crate_name && self.fns[i].owner.is_none())
            .collect();
        if !same_crate_free.is_empty() {
            return same_crate_free;
        }
        let same_crate: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| self.fns[i].crate_name == ctx.crate_name)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        if want_crate.is_some() {
            return candidates;
        }
        candidates.into_iter().filter(|&i| self.fns[i].owner.is_none()).collect()
    }

    /// Node ids whose qualified name matches `pat` (see [`qual_matches`]).
    #[must_use]
    pub fn matching(&self, pat: &str) -> Vec<usize> {
        (0..self.fns.len()).filter(|&i| qual_matches(&self.fns[i].qual, pat)).collect()
    }
}

/// `qual` ends with `pat` on a `::` boundary (or equals it).
#[must_use]
pub fn qual_matches(qual: &str, pat: &str) -> bool {
    qual == pat || qual.ends_with(pat) && qual[..qual.len() - pat.len()].ends_with("::")
}

fn qual_ends_with(qual: &str, suffix: &str) -> bool {
    qual_matches(qual, suffix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parser;

    fn build(sources: &[(&str, &str, &str)]) -> (Symbols, Vec<ParsedFile>) {
        let parsed: Vec<ParsedFile> =
            sources.iter().map(|(rel, _, src)| parser::parse(&lexer::scan(src), rel)).collect();
        let files: Vec<(String, String)> =
            sources.iter().map(|(rel, krate, _)| (rel.to_string(), krate.to_string())).collect();
        (Symbols::build(&files, &parsed), parsed)
    }

    #[test]
    fn qual_matching() {
        assert!(qual_matches("sink::HashSink::record", "HashSink::record"));
        assert!(qual_matches("spec::fnv1a_64", "fnv1a_64"));
        assert!(qual_matches("fnv1a_64", "fnv1a_64"));
        assert!(!qual_matches("spec::xfnv1a_64", "fnv1a_64"));
        assert!(!qual_matches("record", "HashSink::record"));
    }

    #[test]
    fn self_method_resolves_to_own_impl_first() {
        let (sym, parsed) = build(&[(
            "crates/a/src/lib.rs",
            "apf-a",
            "struct A;\nimpl A { fn lock(&self) {}\n fn go(&self) { self.lock(); } }\n\
                 struct B;\nimpl B { fn lock(&self) {} }\n",
        )]);
        let go = sym.fns.iter().position(|f| f.name == "go").unwrap();
        let call = &parsed[0].fns[sym.fns[go].fn_idx].calls[0];
        let ctx = ResolveCtx { crate_name: "apf-a", owner: Some("A"), uses: &parsed[0].uses };
        let r = sym.resolve(&call.callee, ctx);
        assert_eq!(r.len(), 1);
        assert_eq!(sym.fns[r[0]].qual, "A::lock");
    }

    #[test]
    fn cross_crate_path_resolution() {
        let (sym, parsed) = build(&[
            ("crates/a/src/spec.rs", "apf-a", "pub fn fnv1a_64(b: &[u8]) -> u64 { 0 }\n"),
            (
                "crates/b/src/lib.rs",
                "apf-b",
                "use apf_a::spec::fnv1a_64;\nfn digest() { fnv1a_64(&[]); }\n",
            ),
        ]);
        let digest = sym.fns.iter().position(|f| f.name == "digest").unwrap();
        let call = &parsed[1].fns[sym.fns[digest].fn_idx].calls[0];
        let ctx = ResolveCtx { crate_name: "apf-b", owner: None, uses: &parsed[1].uses };
        let r = sym.resolve(&call.callee, ctx);
        assert_eq!(r.len(), 1);
        assert_eq!(sym.fns[r[0]].crate_name, "apf-a");
    }

    #[test]
    fn std_paths_resolve_to_nothing() {
        let (sym, parsed) = build(&[(
            "crates/a/src/lib.rs",
            "apf-a",
            "fn now() {}\nfn f() { std::time::Instant::now(); }\n",
        )]);
        let f = sym.fns.iter().position(|s| s.name == "f").unwrap();
        let call = &parsed[0].fns[sym.fns[f].fn_idx].calls[0];
        let ctx = ResolveCtx { crate_name: "apf-a", owner: None, uses: &parsed[0].uses };
        assert!(sym.resolve(&call.callee, ctx).is_empty());
    }

    #[test]
    fn owner_qualified_call() {
        let (sym, parsed) = build(&[(
            "crates/a/src/lib.rs",
            "apf-a",
            "struct S;\nimpl S { fn new() -> S { S } }\nfn f() { S::new(); }\n",
        )]);
        let f = sym.fns.iter().position(|s| s.name == "f").unwrap();
        let call = &parsed[0].fns[sym.fns[f].fn_idx].calls[0];
        let ctx = ResolveCtx { crate_name: "apf-a", owner: None, uses: &parsed[0].uses };
        let r = sym.resolve(&call.callee, ctx);
        assert_eq!(r.len(), 1);
        assert_eq!(sym.fns[r[0]].qual, "S::new");
    }

    #[test]
    fn unplaceable_qualifier_stays_silent() {
        let (sym, parsed) = build(&[(
            "crates/a/src/lib.rs",
            "apf-a",
            "fn parse() {}\nfn f() { ExternalType::parse(); }\n",
        )]);
        let f = sym.fns.iter().position(|s| s.name == "f").unwrap();
        let call = &parsed[0].fns[sym.fns[f].fn_idx].calls[0];
        let ctx = ResolveCtx { crate_name: "apf-a", owner: None, uses: &parsed[0].uses };
        assert!(sym.resolve(&call.callee, ctx).is_empty());
    }
}
