//! The checked-in findings baseline (`lint-baseline.txt`).
//!
//! CI gates on *drift*, not on emptiness: legacy findings that were audited
//! and accepted live in the baseline file where review can see them, while
//! any finding not in the baseline — or any baseline entry that no longer
//! fires — fails the gate. Both directions fail on purpose: a fixed finding
//! must be removed from the baseline in the same change that fixes it, so
//! the file never accretes dead entries.
//!
//! Format: one finding per line, `file<TAB>rule<TAB>message`, `#` comments
//! and blank lines ignored. Line/column are deliberately *not* recorded —
//! unrelated edits shift positions constantly, and a baseline that churns
//! on every edit trains people to regenerate it blindly.

use crate::Finding;
use std::collections::BTreeMap;

/// One baseline entry: `(file, rule, message)`.
pub type Entry = (String, String, String);

/// Renders findings as baseline text (sorted, with a format header).
#[must_use]
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# apf-lint findings baseline — one accepted finding per line.\n\
         # Format: file<TAB>rule<TAB>message. Regenerate with:\n\
         #   cargo run -q --release --bin apf-cli -- lint --write-baseline lint-baseline.txt\n\
         # CI fails on drift in either direction; keep this file reviewed, not rubber-stamped.\n",
    );
    let mut lines: Vec<String> = findings
        .iter()
        .map(|f| format!("{}\t{}\t{}", f.file, f.rule, sanitize(&f.message)))
        .collect();
    lines.sort();
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

/// Parses baseline text into entries.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(file), Some(rule), Some(msg)) => {
                out.push((file.to_string(), rule.to_string(), msg.to_string()));
            }
            _ => {
                return Err(format!(
                    "baseline line {}: expected `file<TAB>rule<TAB>message`, got `{line}`",
                    idx + 1
                ));
            }
        }
    }
    Ok(out)
}

/// Baseline drift: findings not in the baseline, and baseline entries that
/// no longer fire.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Drift {
    /// Live findings with no matching baseline entry (fail: new issues).
    pub new: Vec<Entry>,
    /// Baseline entries with no matching live finding (fail: stale baseline).
    pub fixed: Vec<Entry>,
}

impl Drift {
    /// True when live findings and baseline agree exactly.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.fixed.is_empty()
    }
}

/// Compares live findings against baseline entries as multisets (two
/// identical findings in one file need two baseline lines).
#[must_use]
pub fn diff(findings: &[Finding], accepted: &[Entry]) -> Drift {
    let mut counts: BTreeMap<Entry, i64> = BTreeMap::new();
    for f in findings {
        *counts.entry((f.file.clone(), f.rule.clone(), sanitize(&f.message))).or_default() += 1;
    }
    for e in accepted {
        *counts.entry(e.clone()).or_default() -= 1;
    }
    let mut drift = Drift::default();
    for (entry, n) in counts {
        if n > 0 {
            for _ in 0..n {
                drift.new.push(entry.clone());
            }
        } else if n < 0 {
            for _ in 0..-n {
                drift.fixed.push(entry.clone());
            }
        }
    }
    drift
}

/// Tabs and newlines would break the line format; squash to spaces.
fn sanitize(message: &str) -> String {
    message.replace(['\t', '\n'], " ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, rule: &str, msg: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line: 3,
            col: 7,
            rule: rule.to_string(),
            message: msg.to_string(),
        }
    }

    #[test]
    fn round_trips_and_ignores_positions() {
        let fs = [finding("a.rs", "panic-policy", "msg one"), finding("b.rs", "lock-order", "m")];
        let text = render(&fs);
        let entries = parse(&text).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(diff(&fs, &entries).is_clean());
        // Same findings at different positions still match.
        let mut moved = fs.to_vec();
        moved[0].line = 99;
        moved[1].col = 1;
        assert!(diff(&moved, &entries).is_clean());
    }

    #[test]
    fn drift_both_directions() {
        let fs = [finding("a.rs", "panic-policy", "msg")];
        let d = diff(&fs, &[]);
        assert_eq!(d.new.len(), 1);
        assert!(d.fixed.is_empty());
        let d = diff(&[], &parse("x.rs\tlock-order\tgone\n").unwrap());
        assert_eq!(d.fixed.len(), 1);
        assert!(d.new.is_empty());
    }

    #[test]
    fn multiset_counts_duplicates() {
        let fs = [finding("a.rs", "panic-policy", "msg"), finding("a.rs", "panic-policy", "msg")];
        let one = parse("a.rs\tpanic-policy\tmsg\n").unwrap();
        let d = diff(&fs, &one);
        assert_eq!(d.new.len(), 1, "second occurrence needs a second baseline line");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("no-tabs-here\n").is_err());
        assert!(parse("# comment\n\n").unwrap().is_empty());
    }
}
