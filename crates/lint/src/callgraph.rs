//! The workspace call graph and its reachability queries.
//!
//! Nodes are the [`Symbols`](crate::symbols::Symbols) function list plus
//! one synthetic node per `spawn(...)` closure (thread roots). Edges come
//! from resolved call sites; each edge remembers the source line of its
//! call for findings that report a witness chain.
//!
//! Queries are plain BFS with a *blocked* set: a blocked node is neither
//! entered nor traversed through, which is how D11 expresses "every path
//! to a draw goes through the election entrypoint" (remove the entrypoint;
//! anything that still reaches a draw found another way in).

use crate::parser::ParsedFile;
use crate::symbols::{ResolveCtx, Symbols};

/// A synthetic node for a closure passed to `spawn(...)`.
#[derive(Debug, Clone)]
pub struct ClosureNode {
    /// File index in the workspace file list.
    pub file: usize,
    /// Enclosing function's node id.
    pub parent: usize,
    /// 1-based line of the `spawn` call.
    pub line: usize,
    /// Token range of the spawn arguments in the file.
    pub body: (usize, usize),
    /// The closure body mentions `catch_unwind`.
    pub guarded: bool,
    /// Enclosing function is inside `#[cfg(test)]`.
    pub is_test: bool,
}

/// The call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `edges[n]` = `(callee node, call line)` pairs, sorted and deduped.
    pub edges: Vec<Vec<(usize, usize)>>,
    /// Reverse adjacency (caller node, call line).
    pub redges: Vec<Vec<(usize, usize)>>,
    /// Closure nodes; closure `k` is node `symbols.fns.len() + k`.
    pub closures: Vec<ClosureNode>,
}

impl CallGraph {
    /// Builds the graph from parsed files and their symbol table
    /// (`parsed[i]` must be the file `sym` indexed as file `i`).
    #[must_use]
    pub fn build(parsed: &[ParsedFile], sym: &Symbols) -> CallGraph {
        let nf = sym.fns.len();
        let mut closures = Vec::new();
        // Closure nodes first, so edge arrays can be sized once.
        for (node, fsym) in sym.fns.iter().enumerate() {
            let f = &parsed[fsym.file].fns[fsym.fn_idx];
            for sp in &f.spawns {
                closures.push(ClosureNode {
                    file: fsym.file,
                    parent: node,
                    line: sp.line,
                    body: sp.body,
                    guarded: sp.guarded,
                    is_test: f.is_test,
                });
            }
        }
        let n = nf + closures.len();
        let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];

        for (node, fsym) in sym.fns.iter().enumerate() {
            let p = &parsed[fsym.file];
            let f = &p.fns[fsym.fn_idx];
            let ctx = ResolveCtx {
                crate_name: &fsym.crate_name,
                owner: fsym.owner.as_deref(),
                uses: &p.uses,
            };
            for call in &f.calls {
                for target in sym.resolve(&call.callee, ctx) {
                    edges[node].push((target, call.line));
                }
            }
        }
        // Closure edges: the subset of the parent's call sites that sit
        // inside the spawn range, plus bare function values (`spawn(worker)`).
        for (k, cl) in closures.iter().enumerate() {
            let node = nf + k;
            let fsym = &sym.fns[cl.parent];
            let p = &parsed[cl.file];
            let ctx = ResolveCtx {
                crate_name: &fsym.crate_name,
                owner: fsym.owner.as_deref(),
                uses: &p.uses,
            };
            for call in crate::parser::calls_in_range(p, cl.body.0, cl.body.1, &[], true) {
                for target in sym.resolve(&call.callee, ctx) {
                    edges[node].push((target, call.line));
                }
            }
        }
        for e in &mut edges {
            e.sort_unstable();
            e.dedup();
        }
        let mut redges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (from, outs) in edges.iter().enumerate() {
            for &(to, line) in outs {
                redges[to].push((from, line));
            }
        }
        CallGraph { edges, redges, closures }
    }

    /// Number of nodes (functions + closures).
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Forward BFS from `roots`, never entering or crossing `blocked`
    /// nodes. Returns `parent[n] = Some(predecessor)` for reached nodes
    /// (roots map to themselves).
    #[must_use]
    pub fn reach_forward(&self, roots: &[usize], blocked: &[bool]) -> Vec<Option<usize>> {
        self.bfs(roots, blocked, &self.edges)
    }

    /// Backward BFS from `targets` over reverse edges, never crossing
    /// `blocked` nodes: `parent[n]` is set for every node that can reach a
    /// target, and points one step *toward* the target.
    #[must_use]
    pub fn reach_backward(&self, targets: &[usize], blocked: &[bool]) -> Vec<Option<usize>> {
        self.bfs(targets, blocked, &self.redges)
    }

    fn bfs(
        &self,
        starts: &[usize],
        blocked: &[bool],
        adj: &[Vec<(usize, usize)>],
    ) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.len()];
        let mut queue = std::collections::VecDeque::new();
        for &r in starts {
            if r < self.len() && !blocked.get(r).copied().unwrap_or(false) {
                parent[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(at) = queue.pop_front() {
            for &(next, _) in &adj[at] {
                if parent[next].is_none() && !blocked.get(next).copied().unwrap_or(false) {
                    parent[next] = Some(at);
                    queue.push_back(next);
                }
            }
        }
        parent
    }

    /// Walks `parent` pointers from `node` back to its root, rendering a
    /// `root → … → node` chain with `name(n)` labels (capped for sanity).
    #[must_use]
    pub fn chain(
        &self,
        parent: &[Option<usize>],
        node: usize,
        name: &dyn Fn(usize) -> String,
    ) -> String {
        let mut path = vec![node];
        let mut at = node;
        while let Some(prev) = parent[at] {
            if prev == at {
                break;
            }
            at = prev;
            path.push(at);
            if path.len() > 12 {
                break;
            }
        }
        path.reverse();
        let labels: Vec<String> = path.iter().map(|&n| name(n)).collect();
        labels.join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parser;

    fn graph(sources: &[(&str, &str, &str)]) -> (Symbols, CallGraph) {
        let parsed: Vec<ParsedFile> =
            sources.iter().map(|(rel, _, src)| parser::parse(&lexer::scan(src), rel)).collect();
        let files: Vec<(String, String)> =
            sources.iter().map(|(rel, krate, _)| (rel.to_string(), krate.to_string())).collect();
        let sym = Symbols::build(&files, &parsed);
        let g = CallGraph::build(&parsed, &sym);
        (sym, g)
    }

    fn node(sym: &Symbols, name: &str) -> usize {
        sym.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn cycle_does_not_hang_reachability() {
        let (sym, g) = graph(&[(
            "crates/a/src/lib.rs",
            "apf-a",
            "fn a() { b(); }\nfn b() { a(); leaf(); }\nfn leaf() {}\n",
        )]);
        let blocked = vec![false; g.len()];
        let reach = g.reach_forward(&[node(&sym, "a")], &blocked);
        assert!(reach[node(&sym, "leaf")].is_some());
        assert!(reach[node(&sym, "b")].is_some());
    }

    #[test]
    fn blocking_cuts_paths() {
        let (sym, g) = graph(&[(
            "crates/a/src/lib.rs",
            "apf-a",
            "fn outside() { gate(); }\nfn gate() { draw(); }\nfn draw() {}\n",
        )]);
        let mut blocked = vec![false; g.len()];
        blocked[node(&sym, "gate")] = true;
        let back = g.reach_backward(&[node(&sym, "draw")], &blocked);
        assert!(back[node(&sym, "draw")].is_some());
        assert!(back[node(&sym, "outside")].is_none(), "gate was the only way in");
    }

    #[test]
    fn trait_object_edges_over_approximate() {
        // A call through `&dyn Sink` resolves to every impl of that method.
        let (sym, g) = graph(&[(
            "crates/a/src/lib.rs",
            "apf-a",
            "trait Sink { fn put(&self); }\nstruct X;\nimpl Sink for X { fn put(&self) {} }\n\
             struct Y;\nimpl Sink for Y { fn put(&self) {} }\n\
             fn drive(s: &dyn Sink) { s.put(); }\n",
        )]);
        let blocked = vec![false; g.len()];
        let reach = g.reach_forward(&[node(&sym, "drive")], &blocked);
        let impls: Vec<usize> = sym
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name == "put" && f.qual != "Sink::put")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(impls.len(), 2);
        for i in impls {
            assert!(reach[i].is_some(), "dyn dispatch must fan out to every impl");
        }
    }

    #[test]
    fn spawn_closures_become_nodes_with_edges() {
        let (sym, g) = graph(&[(
            "crates/a/src/lib.rs",
            "apf-a",
            "fn worker_loop() { job(); }\nfn job() {}\n\
             fn run() { scope.spawn(|| worker_loop()); }\n",
        )]);
        assert_eq!(g.closures.len(), 1);
        let cl_node = sym.fns.len();
        let blocked = vec![false; g.len()];
        let reach = g.reach_forward(&[cl_node], &blocked);
        assert!(reach[node(&sym, "job")].is_some());
    }

    #[test]
    fn spawn_of_function_value_links() {
        let (sym, g) = graph(&[(
            "crates/a/src/lib.rs",
            "apf-a",
            "fn worker() { job(); }\nfn job() {}\nfn run() { thread::spawn(worker); }\n",
        )]);
        assert_eq!(g.closures.len(), 1);
        let blocked = vec![false; g.len()];
        let reach = g.reach_forward(&[sym.fns.len()], &blocked);
        assert!(reach[node(&sym, "job")].is_some());
    }

    #[test]
    fn chain_renders_a_witness_path() {
        let (sym, g) = graph(&[(
            "crates/a/src/lib.rs",
            "apf-a",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
        )]);
        let blocked = vec![false; g.len()];
        let reach = g.reach_forward(&[node(&sym, "a")], &blocked);
        let label = |n: usize| sym.fns[n].name.clone();
        assert_eq!(g.chain(&reach, node(&sym, "c"), &label), "a → b → c");
    }
}
