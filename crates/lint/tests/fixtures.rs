//! Rule-by-rule fixture tests: each synthetic source exercises one rule's
//! firing condition, its scoping (crate, test, binary), and its pragma
//! suppression. Fixture code lives in string literals, which the masking
//! lexer blanks out — so these fixtures can never trip the linter on this
//! file itself.

use apf_lint::{lint_source, Config, FileKind, Finding};

fn rules_fired(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

fn lint(rel_path: &str, crate_name: &str, source: &str) -> Vec<Finding> {
    lint_source(rel_path, crate_name, source, &Config::default())
}

// ---------------------------------------------------------------- D1

#[test]
fn d1_unseeded_randomness_fires_everywhere() {
    let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
    for (path, krate) in [
        ("crates/core/src/rsb.rs", "apf-core"),
        ("crates/bench/src/engine.rs", "apf-bench"),
        ("src/bin/apf-cli.rs", "apf"),
        ("crates/sim/tests/world.rs", "apf-sim"),
    ] {
        let f = lint(path, krate, src);
        assert_eq!(rules_fired(&f), vec!["no-unseeded-randomness"], "at {path}");
    }
}

#[test]
fn d1_catches_every_entropy_source() {
    for needle in ["rand::random::<f64>()", "SmallRng::from_entropy()", "OsRng.fill(&mut b)"] {
        let src = format!("fn f() {{ let x = {needle}; }}\n");
        let f = lint("crates/core/src/lib.rs", "apf-core", &src);
        assert!(
            f.iter().any(|f| f.rule == "no-unseeded-randomness"),
            "`{needle}` not caught: {f:?}"
        );
    }
}

#[test]
fn d1_ident_boundaries_respected() {
    // `my_thread_rng_cache` contains the needle as a substring but not as an
    // identifier — must not fire.
    let src = "fn f(my_thread_rng_cache: u64) -> u64 { my_thread_rng_cache }\n";
    assert!(lint("crates/core/src/lib.rs", "apf-core", src).is_empty());
}

// ---------------------------------------------------------------- D2

#[test]
fn d2_fires_on_random_draw_outside_rsb_module() {
    // The acceptance fixture: a random bit drawn in a deterministic-phase
    // module of apf-core (anywhere but the allowlisted rsb.rs) must fire.
    let src = "fn elect(rng: &mut Rng) -> bool { rng.gen_bool(0.5) }\n";
    let f = lint("crates/core/src/dpf/phase1.rs", "apf-core", src);
    assert_eq!(rules_fired(&f), vec!["randomness-budget"]);
}

#[test]
fn d2_allows_the_rsb_election_module() {
    let src = "fn elect(rng: &mut Rng) -> bool { rng.gen_bool(0.5) }\n";
    let f = lint("crates/core/src/rsb.rs", "apf-core", src);
    assert!(f.is_empty(), "rsb.rs is the one sanctioned draw site: {f:?}");
}

#[test]
fn d2_out_of_scope_in_scheduler_and_sim() {
    // Adversary draws (scheduler) and frame randomization (sim) are separate
    // seeded streams, not part of the algorithm's randomness budget.
    let src = "fn pick(rng: &mut Rng) -> usize { rng.gen_range(0..9) }\n";
    assert!(lint("crates/scheduler/src/lib.rs", "apf-scheduler", src).is_empty());
    assert!(lint("crates/sim/src/frame.rs", "apf-sim", src).is_empty());
}

#[test]
fn d2_dot_gen_matches_call_but_not_gen_bool_ident() {
    let f = lint("crates/core/src/dpf/mod.rs", "apf-core", "fn f(r: &mut R) -> u8 { r.gen() }\n");
    assert_eq!(rules_fired(&f), vec!["randomness-budget"]);
    // `.gen` must not double-fire on `.gen_bool` (ExactNotIdent stops at a
    // longer identifier), but gen_bool itself still fires once via its own
    // needle.
    let f2 = lint(
        "crates/core/src/dpf/mod.rs",
        "apf-core",
        "fn f(r: &mut R) -> bool { r.gen_bool(0.5) }\n",
    );
    assert_eq!(f2.len(), 1, "{f2:?}");
}

// ---------------------------------------------------------------- D3

#[test]
fn d3_wallclock_fires_in_sim_crates_only() {
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    let f = lint("crates/sim/src/world.rs", "apf-sim", src);
    assert_eq!(rules_fired(&f), vec!["no-wallclock-in-sim"]);
    // apf-bench measures real wall time on purpose — out of scope.
    assert!(lint("crates/bench/src/engine.rs", "apf-bench", src).is_empty());
}

#[test]
fn d3_trace_is_in_scope_with_only_the_span_module_allowlisted() {
    // apf-trace's event/digest paths must stay clock-free: a wall-clock read
    // anywhere in the crate fires ...
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    let f = lint("crates/trace/src/sink.rs", "apf-trace", src);
    assert_eq!(rules_fired(&f), vec!["no-wallclock-in-sim"]);
    // ... except in the span profiler, the one sanctioned monotonic-clock
    // site (structurally separate from every digest path).
    assert!(lint("crates/trace/src/span.rs", "apf-trace", src).is_empty());
}

// ---------------------------------------------------------------- D4

#[test]
fn d4_hash_containers_fire_in_digest_crates_only() {
    let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
    let f = lint("crates/trace/src/lib.rs", "apf-trace", src);
    assert!(f.iter().all(|f| f.rule == "no-hash-iteration-in-digest-paths"));
    assert_eq!(f.len(), 2, "one per mention: {f:?}");
    // apf-render never feeds a digest.
    assert!(lint("crates/render/src/lib.rs", "apf-render", src).is_empty());
}

// ---------------------------------------------------------------- D5

#[test]
fn d5_float_eq_fires_on_literal_comparisons() {
    for expr in ["x == 0.0", "x != 1.5", "0.0 == x", "x == 1e-3", "x == 2.5f64", "x == f64::NAN"] {
        let src = format!("fn f(x: f64) -> bool {{ {expr} }}\n");
        let f = lint("crates/geometry/src/tol.rs", "apf-geometry", &src);
        assert_eq!(rules_fired(&f), vec!["no-float-eq"], "`{expr}`");
    }
}

#[test]
fn d5_ignores_integers_tuples_and_ordering() {
    for expr in ["n == 0", "pair.0 == n", "x <= 0.0", "x >= 1.0", "a == b"] {
        let src = format!(
            "fn f(n: usize, x: f64, a: u8, b: u8, pair: (usize, u8)) -> bool {{ {expr} }}\n"
        );
        let f = lint("crates/geometry/src/tol.rs", "apf-geometry", &src);
        assert!(f.is_empty(), "`{expr}` should not fire: {f:?}");
    }
}

#[test]
fn d5_out_of_scope_outside_geometry_and_core() {
    let src = "fn f(x: f64) -> bool { x == 0.0 }\n";
    assert!(lint("crates/bench/src/lib.rs", "apf-bench", src).is_empty());
}

// ---------------------------------------------------------------- D6

#[test]
fn d6_float_int_casts_fire_in_digest_crates_only() {
    for expr in [
        "(x * 1e6).round() as i64",
        "x.floor() as u32",
        "x.ceil() as usize",
        "x.trunc() as i32",
        "1.5 as i64",
        "x as f32",
    ] {
        let src = format!("fn f(x: f64) -> i64 {{ let v = {expr}; v as i64 }}\n");
        let f = lint("crates/trace/src/event.rs", "apf-trace", &src);
        assert!(
            f.iter().any(|f| f.rule == "no-float-int-casts-in-digest-paths"),
            "`{expr}` should fire: {f:?}"
        );
        // apf-render draws pictures, not digests — out of scope.
        assert!(lint("crates/render/src/lib.rs", "apf-render", &src).is_empty(), "`{expr}`");
    }
}

#[test]
fn d6_stays_silent_without_float_evidence() {
    for expr in ["n as f64", "n as u64", "idx as usize", "b as char", "v.len() as u64"] {
        let src = format!("fn f(n: u32, idx: i32, b: u8, v: &[u8]) {{ let _ = {expr}; }}\n");
        let f = lint("crates/trace/src/event.rs", "apf-trace", &src);
        assert!(f.is_empty(), "`{expr}` should not fire: {f:?}");
    }
}

#[test]
fn d6_pragma_suppresses_an_audited_quantizer() {
    let src = "fn q(x: f64) -> i64 {\n\
               \x20   // apf-lint: allow(no-float-int-casts-in-digest-paths) — audited, < 2^53\n\
               \x20   x.round() as i64\n\
               }\n";
    assert!(lint("crates/geometry/src/quant.rs", "apf-geometry", src).is_empty());
}

#[test]
fn d6_exempt_in_tests_of_scoped_crates() {
    let src = "fn f(x: f64) -> i64 { x.round() as i64 }\n";
    assert!(lint("crates/trace/tests/roundtrip.rs", "apf-trace", src).is_empty());
}

// ---------------------------------------------------------------- D7

#[test]
fn d7_unstable_sorts_fire_in_digest_crates_only() {
    for expr in
        ["v.sort_unstable()", "v.sort_unstable_by(|a, b| a.cmp(b))", "v.sort_unstable_by_key(k)"]
    {
        let src = format!("fn f(v: &mut Vec<u32>) {{ {expr}; }}\n");
        let f = lint("crates/conformance/src/corpus.rs", "apf-conformance", &src);
        assert_eq!(rules_fired(&f), vec!["stable-sort-in-digest-paths"], "`{expr}`");
        assert!(lint("crates/bench/src/engine.rs", "apf-bench", &src).is_empty(), "`{expr}`");
    }
}

#[test]
fn d7_stable_sorts_do_not_fire() {
    let src =
        "fn f(v: &mut Vec<u32>) { v.sort(); v.sort_by(|a, b| a.cmp(b)); v.sort_by_key(k); }\n";
    assert!(lint("crates/conformance/src/corpus.rs", "apf-conformance", src).is_empty());
}

#[test]
fn d7_exempt_in_tests_of_scoped_crates() {
    let src = "fn f(v: &mut Vec<u32>) { v.sort_unstable(); }\n";
    assert!(lint("crates/conformance/tests/golden.rs", "apf-conformance", src).is_empty());
}

// ---------------------------------------------------------------- D8

#[test]
fn d8_f32_fires_in_geometry_only() {
    for src in ["fn f(x: f32) -> f32 { x * 2.0 }\n", "fn f(x: f64) -> f64 { (x as f32) as f64 }\n"]
    {
        let f = lint("crates/geometry/src/tol.rs", "apf-geometry", src);
        assert!(f.iter().any(|f| f.rule == "no-f32-in-geometry"), "`{src}`: {f:?}");
        let f = lint("crates/bench/src/engine.rs", "apf-bench", src);
        assert!(!f.iter().any(|f| f.rule == "no-f32-in-geometry"), "`{src}`: {f:?}");
    }
}

#[test]
fn d8_applies_inside_geometry_tests() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _x: f32 = 1.0; }\n}\n";
    let f = lint("crates/geometry/src/tol.rs", "apf-geometry", src);
    assert_eq!(rules_fired(&f), vec!["no-f32-in-geometry"]);
}

#[test]
fn d8_ident_boundaries_respected() {
    // `f32x4` or `to_f32_bits` style identifiers are not the `f32` type token.
    let src = "fn f(x: F32Wrapper) { x.not_f32_really(); }\nstruct F32Wrapper;\n";
    assert!(lint("crates/geometry/src/tol.rs", "apf-geometry", src).is_empty());
}

// ---------------------------------------------------------------- D9

#[test]
fn d9_zip_fires_in_robot_fold_crates_only() {
    let src = "fn f(a: &[u8], b: &[u8]) -> usize { a.iter().zip(b.iter()).count() }\n";
    for (path, krate) in [
        ("crates/core/src/dpf/phase2.rs", "apf-core"),
        ("crates/geometry/src/similarity.rs", "apf-geometry"),
        ("crates/sim/src/world.rs", "apf-sim"),
    ] {
        assert_eq!(rules_fired(&lint(path, krate, src)), vec!["zip-length-mismatch"], "{krate}");
    }
    assert!(lint("crates/bench/src/engine.rs", "apf-bench", src).is_empty());
}

#[test]
fn d9_applies_in_tests_of_scoped_crates() {
    // zip truncation in a test silently weakens the assertion loop.
    let src = "fn f(a: &[u8], b: &[u8]) -> usize { a.iter().zip(b.iter()).count() }\n";
    let f = lint("crates/sim/tests/world.rs", "apf-sim", src);
    assert_eq!(rules_fired(&f), vec!["zip-length-mismatch"]);
}

#[test]
fn d9_pragma_with_length_argument_suppresses() {
    let src = "fn f(a: &[u8], b: &[u8]) -> usize {\n\
               \x20   // apf-lint: allow(zip-length-mismatch) — both m1 long by construction\n\
               \x20   a.iter().zip(b.iter()).count()\n\
               }\n";
    assert!(lint("crates/core/src/dpf/phase2.rs", "apf-core", src).is_empty());
}

#[test]
fn d9_ignores_zip_shaped_identifiers() {
    // `unzip(` and a bare `zip(` call are not `Iterator::zip`.
    let src =
        "fn f(v: Vec<(u8, u8)>) { let (_a, _b): (Vec<_>, Vec<_>) = v.into_iter().unzip(); }\n";
    assert!(lint("crates/core/src/lib.rs", "apf-core", src).is_empty());
}

// ---------------------------------------------------------------- P1

#[test]
fn p1_unwrap_fires_in_library_code_only() {
    let src = "fn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
    assert_eq!(rules_fired(&lint("crates/sim/src/world.rs", "apf-sim", src)), vec!["panic-policy"]);
    // Binaries and test sources are exempt.
    assert!(lint("src/bin/apf-cli.rs", "apf", src).is_empty());
    assert!(lint("crates/sim/tests/world.rs", "apf-sim", src).is_empty());
    assert!(lint("crates/sim/benches/speed.rs", "apf-sim", src).is_empty());
}

#[test]
fn p1_exempt_inside_cfg_test_modules() {
    let src = "fn lib() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   #[test]\n\
               \x20   fn t() { Some(1).unwrap(); }\n\
               }\n";
    let f = lint("crates/sim/src/world.rs", "apf-sim", src);
    assert!(f.is_empty(), "cfg(test) region must be exempt: {f:?}");
}

// ---------------------------------------------------------------- file kinds

#[test]
fn file_kind_classification() {
    assert_eq!(FileKind::of("crates/sim/src/world.rs"), FileKind::Library);
    assert_eq!(FileKind::of("crates/sim/tests/world.rs"), FileKind::Test);
    assert_eq!(FileKind::of("crates/sim/benches/speed.rs"), FileKind::Test);
    assert_eq!(FileKind::of("crates/sim/examples/demo.rs"), FileKind::Test);
    assert_eq!(FileKind::of("src/bin/apf-cli.rs"), FileKind::Binary);
    assert_eq!(FileKind::of("src/main.rs"), FileKind::Binary);
    assert_eq!(FileKind::of("src/lib.rs"), FileKind::Library);
}

// ---------------------------------------------------------------- pragmas

#[test]
fn trailing_pragma_suppresses_its_own_line() {
    let src =
        "fn f(o: Option<u8>) -> u8 { o.unwrap() } // apf-lint: allow(panic-policy) — fixture\n";
    assert!(lint("crates/sim/src/a.rs", "apf-sim", src).is_empty());
}

#[test]
fn own_line_pragma_suppresses_exactly_the_next_line() {
    let src = "// apf-lint: allow(panic-policy) — fixture reason\n\
               fn f(o: Option<u8>) -> u8 { o.unwrap() }\n\
               fn g(o: Option<u8>) -> u8 { o.unwrap() }\n";
    let f = lint("crates/sim/src/a.rs", "apf-sim", src);
    assert_eq!(f.len(), 1, "only the second unwrap survives: {f:?}");
    assert_eq!(f[0].line, 3);
}

#[test]
fn pragma_with_blank_line_between_does_not_reach() {
    let src = "// apf-lint: allow(panic-policy) — fixture reason\n\
               \n\
               fn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
    let f = lint("crates/sim/src/a.rs", "apf-sim", src);
    // The out-of-reach pragma suppresses nothing, so it is also stale.
    assert_eq!(
        rules_fired(&f),
        vec!["bad-pragma", "panic-policy"],
        "blank line breaks the pragma scope"
    );
}

#[test]
fn pragma_for_one_rule_does_not_suppress_another() {
    let src = "// apf-lint: allow(no-float-eq) — fixture reason\n\
               fn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
    let f = lint("crates/sim/src/a.rs", "apf-sim", src);
    // The no-float-eq allowance never fires here, so the pragma is stale.
    assert_eq!(rules_fired(&f), vec!["bad-pragma", "panic-policy"]);
}

#[test]
fn reasonless_pragma_is_a_finding_and_does_not_suppress() {
    let src = "// apf-lint: allow(panic-policy)\n\
               fn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
    let findings = lint("crates/sim/src/a.rs", "apf-sim", src);
    let mut rules = rules_fired(&findings);
    rules.sort_unstable();
    assert_eq!(rules, vec!["bad-pragma", "panic-policy"]);
}

#[test]
fn pragma_naming_unknown_rule_is_a_finding() {
    let src = "// apf-lint: allow(no-such-rule) — reason\nfn f() {}\n";
    let f = lint("crates/sim/src/a.rs", "apf-sim", src);
    assert_eq!(rules_fired(&f), vec!["bad-pragma"]);
    assert!(f[0].message.contains("no-such-rule"));
}

// ---------------------------------------------------------------- config

#[test]
fn config_crate_override_rescopes_a_rule() {
    let toml = "[rules.no-float-eq]\ncrates = [\"apf-bench\"]\n";
    let cfg = Config::from_toml(toml).expect("valid toml");
    let src = "fn f(x: f64) -> bool { x == 0.0 }\n";
    // Rescoped away from geometry, onto bench.
    assert!(lint_source("crates/geometry/src/tol.rs", "apf-geometry", src, &cfg).is_empty());
    let f = lint_source("crates/bench/src/lib.rs", "apf-bench", src, &cfg);
    assert_eq!(rules_fired(&f), vec!["no-float-eq"]);
}

#[test]
fn config_allow_files_suppresses_whole_file() {
    let toml = "[rules.panic-policy]\nallow_files = [\"crates/sim/src/a.rs\"]\n";
    let cfg = Config::from_toml(toml).expect("valid toml");
    let src = "fn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
    assert!(lint_source("crates/sim/src/a.rs", "apf-sim", src, &cfg).is_empty());
    assert!(!lint_source("crates/sim/src/b.rs", "apf-sim", src, &cfg).is_empty());
}

#[test]
fn config_disabled_rule_never_fires() {
    let toml = "[rules.panic-policy]\nenabled = false\n";
    let cfg = Config::from_toml(toml).expect("valid toml");
    let src = "fn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
    assert!(lint_source("crates/sim/src/a.rs", "apf-sim", src, &cfg).is_empty());
}

#[test]
fn config_rejects_unknown_rule_section() {
    assert!(Config::from_toml("[rules.not-a-rule]\ndisabled = true\n").is_err());
}
