//! Property tests for the token-tree parser: generated nested token trees
//! must bracket-match consistently, generated generic types (including
//! `Vec<Box<dyn Fn() -> u64>>` shapes) must never be mistaken for calls,
//! and the method-call / path-call distinction must survive arbitrary
//! receivers and path depths.

use apf_lint::lexer;
use apf_lint::parser::{self, Callee, TokKind, NO_MATCH};
use proptest::prelude::*;

fn parsed(src: &str) -> parser::ParsedFile {
    parser::parse(&lexer::scan(src), "crates/x/src/lib.rs")
}

const TREE_LEAVES: &[&str] = &["x", "0", "a_b", "x + 0"];

/// A nested token-tree fragment: balanced `()`/`[]`/`{}` with ident and
/// punctuation filler, built by folding wrap choices over a leaf. The
/// vendored proptest has no recursive combinator, so recursion is encoded
/// as a vector of wrap operations.
fn token_tree() -> impl Strategy<Value = String> {
    (0..TREE_LEAVES.len(), prop::collection::vec(0..3usize, 0..6)).prop_map(|(leaf, wraps)| {
        let mut t = TREE_LEAVES[leaf].to_string();
        for (depth, w) in wraps.into_iter().enumerate() {
            // Alternate one- and two-element bodies for sibling nesting.
            let body = if depth % 2 == 0 { t.clone() } else { format!("{t}, x") };
            t = match w {
                0 => format!("({body})"),
                1 => format!("[{body}]"),
                _ => format!("{{ {body} }}"),
            };
        }
        t
    })
}

const TYPE_LEAVES: &[&str] = &["u64", "String", "T"];

/// A nested generic type, biased toward the `dyn Fn` shapes that once
/// confused the call extractor.
fn generic_type() -> impl Strategy<Value = String> {
    (0..TYPE_LEAVES.len(), prop::collection::vec(0..5usize, 0..4)).prop_map(|(leaf, wraps)| {
        let mut t = TYPE_LEAVES[leaf].to_string();
        for w in wraps {
            t = match w {
                0 => format!("Vec<{t}>"),
                1 => format!("Box<{t}>"),
                2 => format!("Option<{t}>"),
                3 => format!("Box<dyn Fn() -> {t}>"),
                _ => format!("Box<dyn FnMut({t}) -> {t}>"),
            };
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Bracket matching over arbitrary nesting: every open bracket matches
    /// a close after it, the pairs are properly nested, and matching is an
    /// involution.
    #[test]
    fn bracket_matching_is_consistent(tree in token_tree()) {
        let src = format!("fn f() {{ g({tree}); }}\n");
        let p = parsed(&src);
        for (i, t) in p.toks.iter().enumerate() {
            let m = p.match_idx[i];
            match t.kind {
                TokKind::Punct(b'(' | b'[' | b'{') => {
                    prop_assert!(m != NO_MATCH && m > i, "unmatched open at {i} in {src:?}");
                    prop_assert_eq!(p.match_idx[m], i, "matching is not an involution");
                }
                TokKind::Punct(b')' | b']' | b'}') => {
                    prop_assert!(m != NO_MATCH && m < i, "unmatched close at {i} in {src:?}");
                }
                _ => prop_assert_eq!(m, NO_MATCH),
            }
        }
        // Proper nesting: no two matched ranges partially overlap.
        let ranges: Vec<(usize, usize)> = p
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.kind, TokKind::Punct(b'(' | b'[' | b'{')))
            .map(|(i, _)| (i, p.match_idx[i]))
            .collect();
        for &(a, b) in &ranges {
            for &(c, d) in &ranges {
                let crossing = a < c && c < b && b < d;
                prop_assert!(!crossing, "crossing pairs ({a},{b}) ({c},{d}) in {src:?}");
            }
        }
        // The fn item spans the whole body regardless of nesting depth.
        prop_assert_eq!(p.fns.len(), 1);
    }

    /// Generic types in returns, lets, and turbofish are types, not calls:
    /// however deep the nesting, exactly the real calls are extracted.
    #[test]
    fn generic_types_are_not_calls(ty in generic_type()) {
        let src = format!(
            "fn f(v: {ty}) -> {ty} {{\n\
                 let out: {ty} = v.iter().map(step).collect::<{ty}>();\n\
                 out\n\
             }}\n"
        );
        let p = parsed(&src);
        prop_assert_eq!(p.fns.len(), 1, "{src:?}");
        let names: Vec<String> = p.fns[0]
            .calls
            .iter()
            .map(|c| match &c.callee {
                Callee::Method { name, .. } => name.clone(),
                Callee::Path(segs) => segs.join("::"),
            })
            .collect();
        prop_assert_eq!(
            names,
            vec!["iter".to_string(), "map".to_string(), "collect".to_string()],
            "{src:?}"
        );
    }

    /// `recv.m(...)` is a method call, `a::b::m(...)` is a path call, and
    /// a bare `m(...)` is a one-segment path — across receiver chains and
    /// path depths.
    #[test]
    fn method_vs_path_shape(depth in 1..4usize, chain in 1..4usize) {
        let path = vec!["seg"; depth].join("::");
        let recv = vec!["r"; chain].join(".");
        let src = format!("fn f() {{ {path}::target(); {recv}.target(); target(); }}\n");
        let p = parsed(&src);
        let calls = &p.fns[0].calls;
        prop_assert_eq!(calls.len(), 3, "{src:?} -> {calls:?}");
        match &calls[0].callee {
            Callee::Path(segs) => {
                prop_assert_eq!(segs.len(), depth + 1);
                prop_assert_eq!(segs.last().map(String::as_str), Some("target"));
            }
            other => prop_assert!(false, "expected path call, got {other:?}"),
        }
        match &calls[1].callee {
            Callee::Method { name, on_self } => {
                prop_assert_eq!(name.as_str(), "target");
                prop_assert!(!on_self, "receiver is not self");
            }
            other => prop_assert!(false, "expected method call, got {other:?}"),
        }
        match &calls[2].callee {
            Callee::Path(segs) => prop_assert_eq!(segs.as_slice(), ["target".to_string()]),
            other => prop_assert!(false, "expected bare path call, got {other:?}"),
        }
    }

    /// `self.m(...)` sets `on_self`; a field chain starting at self does
    /// not (the receiver is the field, not the object itself).
    #[test]
    fn self_receiver_detection(fields in 0..3usize) {
        let recv = if fields == 0 {
            "self".to_string()
        } else {
            format!("self.{}", vec!["f"; fields].join("."))
        };
        let src = format!("impl S {{ fn m(&self) {{ {recv}.target(); }} }}\n");
        let p = parsed(&src);
        let calls = &p.fns[0].calls;
        prop_assert_eq!(calls.len(), 1, "{src:?} -> {calls:?}");
        match &calls[0].callee {
            Callee::Method { on_self, .. } => prop_assert_eq!(*on_self, fields == 0, "{src:?}"),
            other => prop_assert!(false, "expected method call, got {other:?}"),
        }
    }

    /// Fn items keep their identity under arbitrary body nesting: the body
    /// token range brackets every call the fn owns.
    #[test]
    fn calls_sit_inside_their_fn_body(tree in token_tree()) {
        let src = format!("fn outer() {{ inner({tree}); }}\nfn inner(x: u64) {{ leaf(); }}\n");
        let p = parsed(&src);
        prop_assert_eq!(p.fns.len(), 2);
        for f in &p.fns {
            for c in &f.calls {
                prop_assert!(
                    c.tok >= f.body.0 && c.tok < f.body.1,
                    "call at {} escapes body {:?} of `{}` in {src:?}", c.tok, f.body, f.name
                );
            }
        }
        prop_assert_eq!(p.fns[0].calls.len(), 1, "{:?}", p.fns[0].calls);
        prop_assert_eq!(p.fns[1].calls.len(), 1, "{:?}", p.fns[1].calls);
    }
}
