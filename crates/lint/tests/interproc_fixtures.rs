//! Fixtures for the inter-procedural rules (D10–D13): multi-file in-memory
//! workspaces run through `lint_files`, one scenario per firing condition,
//! plus the allowlist boundary and out-of-scope cases for each rule.
//!
//! Fixture code lives in string literals, which the masking lexer blanks
//! out — so these fixtures can never trip the linter on this file itself.

use apf_lint::{lint_files, Config, Finding, SourceFile};

fn ws(files: &[(&str, &str, &str)]) -> Vec<SourceFile> {
    files
        .iter()
        .map(|(rel, krate, src)| SourceFile {
            rel_path: (*rel).to_string(),
            crate_name: (*krate).to_string(),
            source: (*src).to_string(),
        })
        .collect()
}

fn run(files: &[(&str, &str, &str)]) -> Vec<Finding> {
    lint_files(&ws(files), &Config::default())
}

fn fired<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

// ---------------------------------------------------------------- D10

/// The acceptance fixture: an artificial wall-clock call reachable from the
/// digest fold — across a crate boundary, in a crate (apf-serve) that no
/// D3/D4/D6 file list covers — must be caught.
#[test]
fn d10_wallclock_reachable_from_digest_fold_is_caught() {
    let f = run(&[
        (
            "crates/trace/src/sink.rs",
            "apf-trace",
            "use apf_serve::util::mix;\n\
             pub struct HashSink { h: u64 }\n\
             impl HashSink {\n\
                 pub fn record(&mut self, v: u64) { self.h = mix(self.h, v); }\n\
             }\n",
        ),
        (
            "crates/serve/src/util.rs",
            "apf-serve",
            "pub fn mix(h: u64, v: u64) -> u64 { h ^ stamp(v) }\n\
             fn stamp(v: u64) -> u64 { Instant::now().elapsed().as_nanos() as u64 ^ v }\n",
        ),
    ]);
    let d10 = fired(&f, "digest-purity-taint");
    assert!(!d10.is_empty(), "wall clock in the digest cone must fire: {f:?}");
    let hit = d10.iter().find(|f| f.message.contains("Instant::now")).expect("clock sink");
    assert_eq!(hit.file, "crates/serve/src/util.rs");
    assert!(hit.message.contains("record"), "witness chain names the root: {}", hit.message);
}

#[test]
fn d10_hash_iteration_reachable_from_digest_root_is_caught() {
    let f = run(&[(
        "crates/trace/src/spec.rs",
        "apf-trace",
        "pub fn fnv1a_64(bytes: &[u8]) -> u64 { fold(bytes) }\n\
         fn fold(bytes: &[u8]) -> u64 {\n\
             let m: HashMap<u8, u64> = HashMap::new();\n\
             m.values().sum()\n\
         }\n",
    )]);
    let d10 = fired(&f, "digest-purity-taint");
    assert!(!d10.is_empty(), "HashMap in the digest cone must fire: {f:?}");
    assert_eq!(d10[0].line, 3);
}

/// `digest_sink_allow` cuts the cone at the named function: nothing beyond
/// an audited sink is visited.
#[test]
fn d10_sink_allowlist_cuts_the_cone() {
    let toml = "[analysis]\ndigest_sink_allow = [\"mix\"]\n";
    let cfg = Config::from_toml(toml).expect("valid toml");
    let files = ws(&[
        (
            "crates/trace/src/sink.rs",
            "apf-trace",
            "use apf_serve::util::mix;\n\
             pub struct HashSink { h: u64 }\n\
             impl HashSink {\n\
                 pub fn record(&mut self, v: u64) { self.h = mix(self.h, v); }\n\
             }\n",
        ),
        (
            "crates/serve/src/util.rs",
            "apf-serve",
            "pub fn mix(h: u64, v: u64) -> u64 { h ^ stamp(v) }\n\
             fn stamp(v: u64) -> u64 { Instant::now().elapsed().as_nanos() as u64 ^ v }\n",
        ),
    ]);
    let f = lint_files(&files, &cfg);
    assert!(fired(&f, "digest-purity-taint").is_empty(), "allowlisted sink must block: {f:?}");
}

/// Impure code that the digest roots never reach is not D10's business —
/// and in a crate outside every per-crate file list, nothing else fires.
#[test]
fn d10_unreachable_impurity_is_clean() {
    let f = run(&[(
        "crates/serve/src/metrics.rs",
        "apf-serve",
        "pub fn uptime_ns() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
    )]);
    assert!(fired(&f, "digest-purity-taint").is_empty(), "no digest root reaches it: {f:?}");
}

// ---------------------------------------------------------------- D11

/// A deterministic-phase function that reaches a random draw *around* the
/// election entrypoint is a static witness against the Theorem 1 budget.
#[test]
fn d11_draw_reachable_around_the_election_is_caught() {
    let f = run(&[
        (
            "crates/core/src/rsb.rs",
            "apf-core",
            "pub fn select_a_robot(rng: &mut Rng) -> usize { draw_bit(rng) as usize }\n\
             pub fn draw_bit(rng: &mut Rng) -> bool { rng.gen_bool(0.5) }\n",
        ),
        (
            "crates/core/src/dpf.rs",
            "apf-core",
            "use crate::rsb::draw_bit;\n\
             pub fn sneaky_tiebreak(rng: &mut Rng) -> bool { draw_bit(rng) }\n",
        ),
    ]);
    let d11 = fired(&f, "randomness-reachability");
    assert_eq!(d11.len(), 1, "exactly the bypass fires: {f:?}");
    assert_eq!(d11[0].file, "crates/core/src/dpf.rs");
    assert!(d11[0].message.contains("sneaky_tiebreak"));
    assert!(d11[0].message.contains("draw_bit"), "chain names the draw: {}", d11[0].message);
}

/// Call paths that flow through `select_a_robot` are the sanctioned shape:
/// removing the entrypoint from the graph disconnects the caller from the
/// draw, so nothing fires.
#[test]
fn d11_paths_through_the_entrypoint_are_clean() {
    let f = run(&[
        (
            "crates/core/src/rsb.rs",
            "apf-core",
            "pub fn select_a_robot(rng: &mut Rng) -> usize { draw_bit(rng) as usize }\n\
             fn draw_bit(rng: &mut Rng) -> bool { rng.gen_bool(0.5) }\n",
        ),
        (
            "crates/core/src/dpf.rs",
            "apf-core",
            "use crate::rsb::select_a_robot;\n\
             pub fn elect(rng: &mut Rng) -> usize { select_a_robot(rng) }\n",
        ),
    ]);
    assert!(
        fired(&f, "randomness-reachability").is_empty(),
        "the election gateway is the sanctioned path: {f:?}"
    );
}

/// Draws outside the D2 crate scope (the adversary's scheduler stream) are
/// not algorithm randomness and define no D11 targets.
#[test]
fn d11_out_of_scope_draws_define_no_targets() {
    let f = run(&[(
        "crates/scheduler/src/lib.rs",
        "apf-scheduler",
        "pub fn pick(rng: &mut Rng) -> usize { step(rng) }\n\
         fn step(rng: &mut Rng) -> usize { rng.gen_range(0..9) }\n",
    )]);
    assert!(fired(&f, "randomness-reachability").is_empty(), "adversary draws exempt: {f:?}");
}

// ---------------------------------------------------------------- D12

/// The acceptance fixture: a synthetic AB/BA lock cycle must be caught.
#[test]
fn d12_ab_ba_lock_cycle_is_caught() {
    let f = run(&[(
        "crates/serve/src/state.rs",
        "apf-serve",
        "impl State {\n\
             fn submit(&self) {\n\
                 let g = self.queue.lock();\n\
                 let h = self.results.lock();\n\
             }\n\
             fn collect(&self) {\n\
                 let g = self.results.lock();\n\
                 let h = self.queue.lock();\n\
             }\n\
         }\n",
    )]);
    let d12 = fired(&f, "lock-order");
    assert!(!d12.is_empty(), "AB/BA ordering must fire: {f:?}");
    assert!(d12[0].message.contains("queue") && d12[0].message.contains("results"));
    assert!(d12[0].message.contains("deadlock"));
}

/// The cycle is still found when one leg of the inversion happens inside a
/// callee: held locks order everything the callee transitively acquires.
#[test]
fn d12_transitive_cycle_through_calls_is_caught() {
    let f = run(&[(
        "crates/serve/src/state.rs",
        "apf-serve",
        "fn submit(s: &State) {\n\
             let g = s.queue.lock();\n\
             flush(s);\n\
         }\n\
         fn flush(s: &State) {\n\
             let g = s.results.lock();\n\
         }\n\
         fn collect(s: &State) {\n\
             let g = s.results.lock();\n\
             requeue(s);\n\
         }\n\
         fn requeue(s: &State) {\n\
             let g = s.queue.lock();\n\
         }\n",
    )]);
    let d12 = fired(&f, "lock-order");
    assert!(!d12.is_empty(), "transitive AB/BA through calls must fire: {f:?}");
}

/// One global order — every function takes `queue` before `results` — is
/// exactly the fix the rule asks for, and is clean.
#[test]
fn d12_consistent_global_order_is_clean() {
    let f = run(&[(
        "crates/serve/src/state.rs",
        "apf-serve",
        "impl State {\n\
             fn submit(&self) {\n\
                 let g = self.queue.lock();\n\
                 let h = self.results.lock();\n\
             }\n\
             fn collect(&self) {\n\
                 let g = self.queue.lock();\n\
                 let h = self.results.lock();\n\
             }\n\
         }\n",
    )]);
    assert!(fired(&f, "lock-order").is_empty(), "one global order is clean: {f:?}");
}

/// Dropping the first guard before taking the second breaks the hold-while
/// -acquiring edge, so opposite orders without overlap are clean.
#[test]
fn d12_drop_before_second_acquire_is_clean() {
    let f = run(&[(
        "crates/serve/src/state.rs",
        "apf-serve",
        "impl State {\n\
             fn submit(&self) {\n\
                 let g = self.queue.lock();\n\
                 drop(g);\n\
                 let h = self.results.lock();\n\
             }\n\
             fn collect(&self) {\n\
                 let g = self.results.lock();\n\
                 drop(g);\n\
                 let h = self.queue.lock();\n\
             }\n\
         }\n",
    )]);
    assert!(fired(&f, "lock-order").is_empty(), "non-overlapping guards are clean: {f:?}");
}

/// The rule's scope is the crates whose worker threads share locks;
/// single-threaded algorithm code is out of scope.
#[test]
fn d12_out_of_scope_crate_is_clean() {
    let f = run(&[(
        "crates/core/src/state.rs",
        "apf-core",
        "impl State {\n\
             fn a(&self) { let g = self.x.lock(); let h = self.y.lock(); }\n\
             fn b(&self) { let g = self.y.lock(); let h = self.x.lock(); }\n\
         }\n",
    )]);
    assert!(fired(&f, "lock-order").is_empty(), "apf-core is out of D12 scope: {f:?}");
}

// ---------------------------------------------------------------- D13

#[test]
fn d13_panic_in_spawned_closure_is_caught() {
    let f = run(&[(
        "crates/serve/src/pool.rs",
        "apf-serve",
        "fn start(q: Queue) {\n\
             thread::spawn(move || {\n\
                 let job = q.pop().unwrap();\n\
             });\n\
         }\n",
    )]);
    let d13 = fired(&f, "panic-reachability");
    assert_eq!(d13.len(), 1, "unwrap in an unguarded worker fires: {f:?}");
    assert_eq!(d13[0].line, 3);
    assert!(d13[0].message.contains("crates/serve/src/pool.rs:2"), "names the spawn site");
}

/// The panic need not be textually inside the closure: any function the
/// worker reaches is on the worker's stack.
#[test]
fn d13_panic_reachable_through_calls_is_caught() {
    let f = run(&[(
        "crates/serve/src/pool.rs",
        "apf-serve",
        "fn start(q: Queue) {\n\
             thread::spawn(move || worker(q));\n\
         }\n\
         fn worker(q: Queue) {\n\
             let job = q.pop().expect(\"queue open\");\n\
         }\n",
    )]);
    let d13 = fired(&f, "panic-reachability");
    assert_eq!(d13.len(), 1, "reachable expect fires: {f:?}");
    assert_eq!(d13[0].line, 5);
    assert!(d13[0].message.contains("via"), "witness chain present: {}", d13[0].message);
}

/// A `catch_unwind` in the spawned closure marks the whole worker guarded;
/// one inside a reachable function blocks traversal past that function.
#[test]
fn d13_catch_unwind_boundaries_block_the_path() {
    let f = run(&[(
        "crates/serve/src/pool.rs",
        "apf-serve",
        "fn start(q: Queue) {\n\
             thread::spawn(move || { let _ = catch_unwind(|| q.pop().unwrap()); });\n\
             thread::spawn(move || shielded(q));\n\
         }\n\
         fn shielded(q: Queue) {\n\
             let _ = catch_unwind(|| inner(q));\n\
         }\n\
         fn inner(q: Queue) {\n\
             let job = q.pop().unwrap();\n\
         }\n",
    )]);
    assert!(
        fired(&f, "panic-reachability").is_empty(),
        "catch_unwind is the containment boundary: {f:?}"
    );
}

/// Spawns outside the worker crates (or in test sources) are exempt.
#[test]
fn d13_out_of_scope_and_test_spawns_are_clean() {
    let f = run(&[
        (
            "crates/sim/src/runner.rs",
            "apf-sim",
            "fn start() { thread::spawn(move || { Some(1).unwrap(); }); }\n",
        ),
        (
            "crates/serve/tests/soak.rs",
            "apf-serve",
            "fn start() { thread::spawn(move || { Some(1).unwrap(); }); }\n",
        ),
    ]);
    assert!(fired(&f, "panic-reachability").is_empty(), "scope/test exemptions hold: {f:?}");
}

/// An inline pragma suppresses the finding at the panic site — the same
/// suppression grammar every intra-file rule uses.
#[test]
fn d13_pragma_suppresses_at_the_panic_site() {
    let f = run(&[(
        "crates/serve/src/pool.rs",
        "apf-serve",
        "fn start(q: Queue) {\n\
             thread::spawn(move || {\n\
                 // apf-lint: allow(panic-policy, panic-reachability) — fixture: crash wanted\n\
                 let job = q.pop().unwrap();\n\
             });\n\
         }\n",
    )]);
    assert!(fired(&f, "panic-reachability").is_empty(), "pragma suppresses: {f:?}");
    assert!(fired(&f, "bad-pragma").is_empty(), "pragma is live, not stale: {f:?}");
}
