//! Property tests for the masking lexer: rule needles buried in comments,
//! string literals, or raw strings must never produce findings, and the
//! masked text must stay byte-aligned with the source.
//!
//! The filler alphabet deliberately cannot spell `apf-lint`, `*/`, `"`, or
//! `\`, so a generated payload can neither form an accidental pragma nor
//! escape the literal it is embedded in.

use apf_lint::{lexer, lint_source, Config};
use proptest::prelude::*;

/// Every needle any rule matches on, plus a float comparison for D5.
const NEEDLES: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "rand::random",
    "from_entropy",
    "OsRng",
    ".gen()",
    "gen_bool",
    "gen_range",
    "random_bit",
    "Instant::now",
    "SystemTime",
    "HashMap",
    "HashSet",
    "x == 0.0",
    "x != 1e-3",
    ".unwrap()",
    ".expect(",
];

/// Safe in every literal/comment context (no quote, backslash, `/`, `*`,
/// `#`, or newline) and unable to spell `apf-lint` (letters are a, b, Z
/// only).
const FILLER: &[char] =
    &['a', 'b', 'Z', '_', '0', '9', ' ', '.', ';', ':', '(', ')', '=', '!', '<', '>', '+', '-'];

fn filler() -> impl Strategy<Value = String> {
    prop::collection::vec(0..FILLER.len(), 0..12)
        .prop_map(|ix| ix.into_iter().map(|i| FILLER[i]).collect())
}

/// `<filler><needle><filler>` — hostile content for a non-code region.
fn payload() -> impl Strategy<Value = String> {
    (filler(), 0..NEEDLES.len(), filler()).prop_map(|(a, i, b)| format!("{a}{}{b}", NEEDLES[i]))
}

/// Wraps a payload in one of the non-code contexts the lexer must mask.
fn embed(kind: usize, payload: &str) -> String {
    match kind {
        0 => format!("fn f() {{}} // {payload}\n"),
        1 => format!("fn f() {{ /* {payload} */ }}\n"),
        2 => format!("/* outer /* {payload} */ still comment */\nfn f() {{}}\n"),
        3 => format!("fn f() -> String {{ String::from(\"{payload}\") }}\n"),
        4 => format!("fn f() -> &'static str {{ r#\"{payload}\"# }}\n"),
        _ => format!("fn f() -> u8 {{ b\"{payload}\"[0] }}\n"),
    }
}

/// A path/crate pair where every rule is in scope under the default config.
const HOT_PATH: &str = "crates/core/src/dpf/fixture.rs";
const HOT_CRATE: &str = "apf-core";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn needles_never_fire_inside_non_code_regions(kind in 0..6usize, p in payload()) {
        let src = embed(kind, &p);
        let findings = lint_source(HOT_PATH, HOT_CRATE, &src, &Config::default());
        prop_assert!(findings.is_empty(), "{src:?} -> {findings:?}");
    }

    #[test]
    fn masking_preserves_length_and_newlines(
        kinds in prop::collection::vec(0..6usize, 1..6),
        p in payload(),
    ) {
        let src: String = kinds.iter().map(|&k| embed(k, &p)).collect();
        let scanned = lexer::scan(&src);
        prop_assert_eq!(scanned.masked.len(), src.len());
        for (a, b) in src.bytes().zip(scanned.masked.bytes()) {
            prop_assert_eq!(a == b'\n', b == b'\n', "newline alignment broken");
        }
    }

    #[test]
    fn violations_next_to_hostile_comments_still_fire(p in payload()) {
        // Real code before a comment stuffed with needles: exactly the code's
        // own finding must survive, nothing from the comment.
        let src = format!("fn f(o: Option<u8>) -> u8 {{ o.unwrap() }} // {p}\n");
        let findings = lint_source(HOT_PATH, HOT_CRATE, &src, &Config::default());
        prop_assert_eq!(findings.len(), 1, "{findings:?}");
        prop_assert_eq!(findings[0].rule.as_str(), "panic-policy");
        prop_assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn own_line_pragma_suppresses_exactly_one_line(k in 1..6usize) {
        // One pragma, then k identical violating lines: only the first is
        // suppressed, whatever k is.
        let mut src = String::from("// apf-lint: allow(panic-policy) — generated fixture\n");
        for _ in 0..k {
            src.push_str("fn f(o: Option<u8>) -> u8 { o.unwrap() }\n");
        }
        let findings = lint_source(HOT_PATH, HOT_CRATE, &src, &Config::default());
        prop_assert_eq!(findings.len(), k - 1, "{findings:?}");
        for (i, f) in findings.iter().enumerate() {
            prop_assert_eq!(f.line, i + 3); // line 2 is the suppressed one
        }
    }

    #[test]
    fn string_split_across_tokens_does_not_leak(a in filler(), b in filler()) {
        // The classic lexer trap: a string whose content looks like the start
        // of a comment or the end of one.
        let src = format!(
            "fn f() -> String {{ format!(\"{a}/* not a comment {b}\") }}\n\
             fn g() -> String {{ format!(\"{a}*/ not an end {b}\") }}\n"
        );
        let scanned = lexer::scan(&src);
        // Everything after `g` must still be code (the `*/` inside the string
        // must not terminate anything).
        prop_assert!(scanned.masked.contains("fn g()"), "{:?}", scanned.masked);
    }
}

/// Deterministic spot checks that complement the generated cases above.
#[test]
fn char_literal_and_lifetime_disambiguation() {
    // `'a` in a generic position is a lifetime, not an unterminated char —
    // the needle after it must still fire.
    let src = "fn f<'a>(o: &'a Option<u8>) -> u8 { o.unwrap() }\n";
    let findings = lint_source(HOT_PATH, HOT_CRATE, src, &Config::default());
    assert_eq!(findings.len(), 1, "{findings:?}");
    // A real char literal containing a quote-ish escape must be masked.
    let src2 = "fn g() -> char { '\\'' }\nfn h(o: Option<u8>) -> u8 { o.unwrap() }\n";
    let f2 = lint_source(HOT_PATH, HOT_CRATE, src2, &Config::default());
    assert_eq!(f2.len(), 1, "{f2:?}");
    assert_eq!(f2[0].line, 2);
}
