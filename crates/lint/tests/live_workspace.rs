//! Self-test against the real workspace: the committed tree must lint clean
//! under the committed `lint.toml`, and the config on disk must stay in sync
//! with the built-in defaults.

use apf_lint::{lint_with_config_file, Config};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
}

#[test]
fn workspace_lints_clean() {
    let findings = lint_with_config_file(workspace_root(), None).expect("lint run succeeds");
    assert!(
        findings.is_empty(),
        "the committed workspace must lint clean; found:\n{}",
        apf_lint::report::render_text(&findings)
    );
}

#[test]
fn committed_lint_toml_parses_and_matches_defaults() {
    let path = workspace_root().join("lint.toml");
    let text = std::fs::read_to_string(&path).expect("lint.toml exists at the workspace root");
    let cfg = Config::from_toml(&text).expect("lint.toml parses");
    assert_eq!(
        cfg,
        Config::default(),
        "lint.toml drifted from Config::default(); update whichever is stale"
    );
}

/// Stale-pragma hygiene, stated on its own even though `workspace_lints_clean`
/// subsumes it: every `// apf-lint: allow(...)` in the committed tree must
/// still suppress at least one finding.
#[test]
fn workspace_has_no_stale_pragmas() {
    let findings = lint_with_config_file(workspace_root(), None).expect("lint run succeeds");
    let stale: Vec<_> = findings.iter().filter(|f| f.message.starts_with("stale pragma")).collect();
    assert!(stale.is_empty(), "stale pragmas in the committed tree: {stale:?}");
}

/// The `[analysis]` anchors must resolve against the live sources — a root
/// that matches nothing would silently turn D10/D11 into a no-op.
#[test]
fn analysis_anchors_resolve_in_live_sources() {
    let root = workspace_root();
    let sources = [
        ("crates/trace/src/sink.rs", "apf-trace"),
        ("crates/bench/src/spec.rs", "apf-bench"),
        ("crates/core/src/rsb.rs", "apf-core"),
    ];
    let mut files = Vec::new();
    let mut parsed = Vec::new();
    for (rel, krate) in sources {
        let text = std::fs::read_to_string(root.join(rel)).expect("anchor file exists");
        parsed.push(apf_lint::parser::parse(&apf_lint::lexer::scan(&text), rel));
        files.push((rel.to_string(), krate.to_string()));
    }
    let sym = apf_lint::symbols::Symbols::build(&files, &parsed);
    let cfg = Config::default();
    for pat in &cfg.analysis.digest_roots {
        assert!(!sym.matching(pat).is_empty(), "digest root `{pat}` matches no function");
    }
    for pat in &cfg.analysis.rng_entrypoints {
        assert!(!sym.matching(pat).is_empty(), "rng entrypoint `{pat}` matches no function");
    }
}

#[test]
fn workspace_discovers_every_crate() {
    let cfg = Config::default();
    let pkgs = apf_lint::discover_packages(workspace_root(), &cfg).expect("discovery succeeds");
    let names: Vec<&str> = pkgs.iter().map(|p| p.name.as_str()).collect();
    for expected in [
        "apf",
        "apf-baselines",
        "apf-bench",
        "apf-conformance",
        "apf-core",
        "apf-geometry",
        "apf-lint",
        "apf-patterns",
        "apf-render",
        "apf-scheduler",
        "apf-serve",
        "apf-sim",
        "apf-trace",
    ] {
        assert!(names.contains(&expected), "missing {expected}; discovered {names:?}");
    }
}
