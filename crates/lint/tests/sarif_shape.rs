//! SARIF 2.1.0 shape validation: `render_sarif` output is re-parsed with
//! apf-serve's JSON parser (a dev-dependency — the linter itself stays
//! std-only) and walked against the subset of the SARIF schema that code
//! scanners consume: versioned run, tool driver with a rule index, and
//! results whose physical locations carry uri + line + column.

use apf_lint::report::render_sarif;
use apf_lint::rules::RULES;
use apf_lint::{lint_source, Config, Finding};
use apf_serve::json::{self, Json};

fn sample_findings() -> Vec<Finding> {
    // Two real rules firing on a fixture, so results carry distinct ids,
    // lines and messages.
    let src = "fn f(o: Option<u8>) -> u8 { let mut rng = rand::thread_rng(); o.unwrap() }\n";
    let findings = lint_source("crates/sim/src/world.rs", "apf-sim", src, &Config::default());
    assert!(findings.len() >= 2, "fixture must produce several findings: {findings:?}");
    findings
}

fn parse_sarif(findings: &[Finding]) -> Json {
    let text = render_sarif(findings);
    json::parse(&text).expect("render_sarif emits valid JSON")
}

#[test]
fn sarif_log_has_the_2_1_0_envelope() {
    let log = parse_sarif(&sample_findings());
    assert_eq!(log.get("version").and_then(Json::as_str), Some("2.1.0"));
    let schema = log.get("$schema").and_then(Json::as_str).expect("$schema present");
    assert!(schema.contains("2.1.0"), "schema uri pins the version: {schema}");
    let runs = log.get("runs").and_then(Json::as_arr).expect("runs is an array");
    assert_eq!(runs.len(), 1, "one run per invocation");
}

#[test]
fn sarif_driver_indexes_every_registered_rule() {
    let log = parse_sarif(&sample_findings());
    let driver = log.get("runs").and_then(Json::as_arr).unwrap()[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver present");
    assert_eq!(driver.get("name").and_then(Json::as_str), Some("apf-lint"));
    let rules = driver.get("rules").and_then(Json::as_arr).expect("driver.rules array");
    // `id` is the stable rule name (what `result.ruleId` references);
    // `name` carries the short D-code.
    let ids: Vec<&str> = rules.iter().filter_map(|r| r.get("id").and_then(Json::as_str)).collect();
    assert_eq!(ids.len(), rules.len(), "every rule entry has an id");
    for def in RULES {
        assert!(ids.contains(&def.name), "rule {} ({}) missing from driver", def.code, def.name);
    }
    for r in rules {
        assert!(r.get("name").and_then(Json::as_str).is_some(), "rule name present");
        let short = r
            .get("shortDescription")
            .and_then(|d| d.get("text"))
            .and_then(Json::as_str)
            .expect("shortDescription.text present");
        assert!(!short.is_empty());
    }
}

#[test]
fn sarif_results_carry_physical_locations() {
    let findings = sample_findings();
    let log = parse_sarif(&findings);
    let run = &log.get("runs").and_then(Json::as_arr).unwrap()[0];
    let rule_ids: Vec<&str> = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .and_then(|d| d.get("rules"))
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|r| r.get("id").and_then(Json::as_str))
        .collect();
    let results = run.get("results").and_then(Json::as_arr).expect("results array");
    assert_eq!(results.len(), findings.len(), "one result per finding");
    for (res, f) in results.iter().zip(&findings) {
        let rule_id = res.get("ruleId").and_then(Json::as_str).expect("ruleId present");
        assert!(rule_ids.contains(&rule_id), "result ruleId {rule_id} indexed by the driver");
        assert!(res.get("level").and_then(Json::as_str).is_some(), "level present");
        let msg = res
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Json::as_str)
            .expect("message.text present");
        assert_eq!(msg, f.message);
        let loc = &res.get("locations").and_then(Json::as_arr).expect("locations array")[0];
        let phys = loc.get("physicalLocation").expect("physicalLocation present");
        let uri = phys
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(Json::as_str)
            .expect("artifactLocation.uri present");
        assert_eq!(uri, f.file);
        let region = phys.get("region").expect("region present");
        assert_eq!(region.get("startLine").and_then(Json::as_u64), Some(f.line as u64));
        assert_eq!(region.get("startColumn").and_then(Json::as_u64), Some(f.col as u64));
    }
}

#[test]
fn sarif_escapes_hostile_message_content() {
    // Pragma reasons and file content can inject quotes/backslashes into
    // messages; the emitted SARIF must survive a round-trip regardless.
    let src = "fn f() { let x = \"\\\\ \\\" payload\"; let mut rng = rand::thread_rng(); }\n";
    let findings = lint_source("crates/sim/src/world.rs", "apf-sim", src, &Config::default());
    let log = parse_sarif(&findings);
    assert!(log.get("runs").is_some());
}
