//! A disabled trace sink must be free: installing [`apf_trace::NullSink`]
//! adds zero events and zero heap allocations to the simulation hot path.
//!
//! This file holds exactly one test because it swaps the global allocator
//! for a counting wrapper — other tests in the same binary would race the
//! counters.

// Wrapping the system allocator is the one place the workspace needs
// `unsafe`: GlobalAlloc's methods are unsafe by signature. The wrapper only
// counts and delegates.
#![allow(unsafe_code)]

use apf_core::FormPattern;
use apf_scheduler::SchedulerKind;
use apf_sim::{World, WorldConfig};
use apf_trace::NullSink;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn build_world(seed: u64) -> World {
    World::new(
        apf_patterns::symmetric_configuration(8, 4, 42),
        apf_patterns::random_pattern(8, 43),
        Box::new(FormPattern::new()),
        SchedulerKind::RoundRobin.build(seed),
        WorldConfig::default(),
        seed,
    )
}

/// Runs `world` for `steps` engine steps and returns the allocations the
/// run performed.
fn allocations_during(world: &mut World, steps: usize) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..steps {
        let _ = world.step();
    }
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// The smallest allocation count over several identical runs. The counter
/// is process-global, so unrelated allocations (test-harness threads,
/// lazy runtime init) can leak into a single measurement; ambient noise
/// only ever inflates a count, so the minimum converges to the run's true
/// hot-path allocations.
fn min_allocations(with_sink: bool) -> u64 {
    (0..5)
        .map(|_| {
            let mut world = build_world(7);
            if with_sink {
                world.set_sink(Box::new(NullSink));
                // A disabled sink is discarded at installation: no sink is
                // retained, so zero events can ever be recorded.
                assert!(!world.has_sink(), "disabled sinks must be dropped on install");
            }
            allocations_during(&mut world, 500)
        })
        .min()
        .expect("five runs yield a minimum")
}

#[test]
fn disabled_sink_adds_no_events_and_no_allocations() {
    let a = min_allocations(false);
    let b = min_allocations(true);
    assert!(a > 0, "sanity: the simulation allocates (snapshots, analysis)");
    assert_eq!(a, b, "a disabled sink must add zero allocations to the hot path");
}
