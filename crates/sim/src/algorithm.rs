//! The robot algorithm interface and randomness accounting.

use crate::snapshot::Snapshot;
use apf_geometry::Path;
use apf_trace::PhaseKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// What a robot decides to do after a Look.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Do not move this cycle (the configuration is "empty" for this robot).
    Stay,
    /// Follow the given path, expressed in the robot's **local** frame.
    Move(Path),
}

/// Error raised by an algorithm on a snapshot it cannot handle (e.g. fewer
/// robots than its correctness precondition requires).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComputeError {
    message: String,
}

impl ComputeError {
    /// Creates an error with a human-readable explanation.
    pub fn new(message: impl Into<String>) -> Self {
        ComputeError { message: message.into() }
    }
}

impl fmt::Display for ComputeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compute failed: {}", self.message)
    }
}

impl std::error::Error for ComputeError {}

/// A counted source of randomness.
///
/// Every random decision of an algorithm goes through this trait so the
/// harness can compare randomness budgets: the paper's algorithm draws one
/// [`BitSource::bit`] per cycle in its election phase; the
/// Yamauchi–Yamashita-style baseline draws whole words (modelling its
/// continuous random choices).
pub trait BitSource {
    /// One fair random bit.
    fn bit(&mut self) -> bool;

    /// `n ≤ 64` random bits as the low bits of a word.
    fn word(&mut self, n: u32) -> u64;

    /// Number of bits drawn so far.
    fn bits_drawn(&self) -> u64;
}

/// A [`BitSource`] backed by a seeded PRNG, counting every bit.
#[derive(Debug, Clone)]
pub struct CountingBits {
    rng: StdRng,
    drawn: u64,
}

impl CountingBits {
    /// Creates a counted bit source from a seed.
    pub fn new(seed: u64) -> Self {
        CountingBits { rng: StdRng::seed_from_u64(seed), drawn: 0 }
    }
}

impl BitSource for CountingBits {
    fn bit(&mut self) -> bool {
        self.drawn += 1;
        self.rng.gen()
    }

    fn word(&mut self, n: u32) -> u64 {
        assert!(n <= 64, "at most 64 bits per word");
        self.drawn += u64::from(n);
        if n == 0 {
            0
        } else {
            self.rng.gen::<u64>() >> (64 - n)
        }
    }

    fn bits_drawn(&self) -> u64 {
        self.drawn
    }
}

/// A [`BitSource`] that yields constant bits and counts nothing — used for
/// side-effect-free "would this robot move?" probes (e.g. stationarity
/// checks) that must not perturb the experiment's randomness accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullBits;

impl BitSource for NullBits {
    fn bit(&mut self) -> bool {
        false
    }

    fn word(&mut self, _n: u32) -> u64 {
        0
    }

    fn bits_drawn(&self) -> u64 {
        0
    }
}

/// A distributed mobile-robot algorithm: the Compute step of the LCM cycle.
///
/// Implementations must be:
///
/// * **oblivious** — the decision may depend only on `snapshot` (and
///   randomness); the `&self` receiver carries configuration (e.g. the
///   target pattern, tolerances), never execution state;
/// * **frame-agnostic** — the snapshot is in an arbitrary local frame whose
///   rotation, scale and handedness vary per robot; a correct algorithm's
///   *global* behavior is invariant under these (the simulator's
///   chirality-randomization tests exercise exactly this).
pub trait RobotAlgorithm {
    /// Computes this cycle's decision from a local-frame snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ComputeError`] when the snapshot violates the algorithm's
    /// documented preconditions.
    fn compute(
        &self,
        snapshot: &Snapshot,
        bits: &mut dyn BitSource,
    ) -> Result<Decision, ComputeError>;

    /// Like [`RobotAlgorithm::compute`], additionally tagging the decision
    /// with the algorithm phase that produced it (for per-phase metrics and
    /// tracing). The default tags everything [`PhaseKind::Untagged`].
    ///
    /// Implementations overriding this must keep `compute` behaviorally
    /// identical (same decisions, same randomness draws) — the engine uses
    /// `compute_tagged` for real cycles and `compute` for side-effect-free
    /// probes, and the two must agree. The easiest way is to put the logic
    /// here and delegate `compute` to `self.compute_tagged(..).map(|(d, _)| d)`.
    ///
    /// # Errors
    ///
    /// Returns [`ComputeError`] when the snapshot violates the algorithm's
    /// documented preconditions.
    fn compute_tagged(
        &self,
        snapshot: &Snapshot,
        bits: &mut dyn BitSource,
    ) -> Result<(Decision, PhaseKind), ComputeError> {
        Ok((self.compute(snapshot, bits)?, PhaseKind::Untagged))
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_bits_counts() {
        let mut b = CountingBits::new(1);
        let _ = b.bit();
        let _ = b.bit();
        assert_eq!(b.bits_drawn(), 2);
        let _ = b.word(10);
        assert_eq!(b.bits_drawn(), 12);
        let _ = b.word(0);
        assert_eq!(b.bits_drawn(), 12);
    }

    #[test]
    fn counting_bits_deterministic_per_seed() {
        let mut a = CountingBits::new(7);
        let mut b = CountingBits::new(7);
        for _ in 0..64 {
            assert_eq!(a.bit(), b.bit());
        }
        assert_eq!(a.word(32), b.word(32));
    }

    #[test]
    fn counting_bits_fairish() {
        let mut b = CountingBits::new(99);
        let ones: u32 = (0..10_000).map(|_| u32::from(b.bit())).sum();
        assert!((3000..7000).contains(&ones), "wildly biased bit source: {ones}");
    }

    #[test]
    fn null_bits_never_count() {
        let mut n = NullBits;
        assert!(!n.bit());
        assert_eq!(n.word(64), 0);
        assert_eq!(n.bits_drawn(), 0);
    }

    #[test]
    #[should_panic(expected = "64")]
    fn word_too_wide_panics() {
        CountingBits::new(0).word(65);
    }

    #[test]
    fn compute_error_displays() {
        let e = ComputeError::new("needs n >= 7");
        assert!(e.to_string().contains("needs n >= 7"));
    }
}
