//! Execution metrics: cycles, randomness, distance — broken down per
//! algorithm phase.
//!
//! The paper's complexity claims are *per phase*: `ψ_RSB` draws one random
//! bit per election cycle, `ψ_DPF` draws none at all. A single flat counter
//! cannot check either, so [`Metrics`] keeps one [`PhaseMetrics`] bucket per
//! [`PhaseKind`] and derives the run-wide totals by summation. The totals
//! round-trip exactly: every increment lands in exactly one bucket, so
//! e.g. [`Metrics::cycles`] equals what the old flat `cycles` field counted.

use apf_trace::PhaseKind;

/// Counters for one algorithm phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseMetrics {
    /// Look events (= LCM cycles) whose Compute was tagged with this phase.
    pub cycles: u64,
    /// Cycles in which the robot decided to move.
    pub active_cycles: u64,
    /// Random bits drawn by Computes tagged with this phase.
    pub random_bits: u64,
    /// Distance traveled along paths computed in this phase.
    pub distance: f64,
    /// Move phases cut short by the adversary (traveled ≥ δ but < full
    /// path), attributed to the phase that computed the path.
    pub interrupted_moves: u64,
    /// Wall-clock nanoseconds spent in Compute (only accumulated when
    /// `WorldConfig::time_compute` is set; 0 otherwise).
    pub compute_ns: u64,
}

impl PhaseMetrics {
    /// Whether nothing was recorded in this phase.
    pub fn is_empty(&self) -> bool {
        *self == PhaseMetrics::default()
    }

    /// Random bits per cycle within this phase (0.0 when no cycle ran).
    pub fn bits_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.random_bits as f64 / self.cycles as f64
        }
    }
}

/// Counters accumulated over a simulation run, per algorithm phase.
///
/// All counter arithmetic saturates: a run can in principle be driven for
/// longer than any `u64` budget (e.g. fuzzing with an adversarial
/// scheduler), and a wrapped counter would silently corrupt an experiment
/// table, while a pinned-at-max one is visibly wrong.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// Engine steps executed (scheduler batches; not phase-attributable).
    pub steps: u64,
    /// Per-phase buckets, indexed by [`PhaseKind::index`].
    pub per_phase: [PhaseMetrics; PhaseKind::COUNT],
}

impl Metrics {
    /// The bucket for one phase.
    pub fn phase(&self, kind: PhaseKind) -> &PhaseMetrics {
        &self.per_phase[kind.index()]
    }

    /// Iterates the non-empty phase buckets in [`PhaseKind`] order.
    pub fn phases(&self) -> impl Iterator<Item = (PhaseKind, &PhaseMetrics)> {
        PhaseKind::ALL.iter().map(move |&k| (k, self.phase(k))).filter(|(_, m)| !m.is_empty())
    }

    /// Records one Look/Compute cycle tagged with `kind`.
    pub fn record_cycle(&mut self, kind: PhaseKind) {
        let p = &mut self.per_phase[kind.index()];
        p.cycles = p.cycles.saturating_add(1);
    }

    /// Records that the cycle produced a pending move.
    pub fn record_active(&mut self, kind: PhaseKind) {
        let p = &mut self.per_phase[kind.index()];
        p.active_cycles = p.active_cycles.saturating_add(1);
    }

    /// Records `bits` random bits drawn during a `kind`-tagged Compute.
    pub fn record_bits(&mut self, kind: PhaseKind, bits: u64) {
        let p = &mut self.per_phase[kind.index()];
        p.random_bits = p.random_bits.saturating_add(bits);
    }

    /// Records distance traveled along a path computed in phase `kind`.
    pub fn record_distance(&mut self, kind: PhaseKind, distance: f64) {
        self.per_phase[kind.index()].distance += distance;
    }

    /// Records an adversary-interrupted move of a `kind`-computed path.
    pub fn record_interrupt(&mut self, kind: PhaseKind) {
        let p = &mut self.per_phase[kind.index()];
        p.interrupted_moves = p.interrupted_moves.saturating_add(1);
    }

    /// Records Compute wall time for phase `kind`.
    pub fn record_compute_ns(&mut self, kind: PhaseKind, ns: u64) {
        let p = &mut self.per_phase[kind.index()];
        p.compute_ns = p.compute_ns.saturating_add(ns);
    }

    /// Look events (= LCM cycles started) across all robots and phases.
    pub fn cycles(&self) -> u64 {
        self.per_phase.iter().fold(0u64, |a, p| a.saturating_add(p.cycles))
    }

    /// Cycles in which the robot decided to move.
    pub fn active_cycles(&self) -> u64 {
        self.per_phase.iter().fold(0u64, |a, p| a.saturating_add(p.active_cycles))
    }

    /// Random bits drawn by the algorithm across all robots and phases.
    pub fn random_bits(&self) -> u64 {
        self.per_phase.iter().fold(0u64, |a, p| a.saturating_add(p.random_bits))
    }

    /// Total distance traveled by all robots.
    pub fn distance(&self) -> f64 {
        self.per_phase.iter().map(|p| p.distance).sum()
    }

    /// Move phases cut short by the adversary (traveled ≥ δ but < full path).
    pub fn interrupted_moves(&self) -> u64 {
        self.per_phase.iter().fold(0u64, |a, p| a.saturating_add(p.interrupted_moves))
    }

    /// Total Compute wall time (0 unless timing was enabled).
    pub fn compute_ns(&self) -> u64 {
        self.per_phase.iter().fold(0u64, |a, p| a.saturating_add(p.compute_ns))
    }

    /// Random bits per cycle — the paper's headline randomness measure.
    ///
    /// Returns 0.0 when no cycle has run. That is deliberate: a zero-cycle
    /// run drew zero bits, and 0.0 (rather than NaN or an error) keeps the
    /// measure aggregatable — it never poisons a mean and sorts first, which
    /// is the right place for "no evidence either way" in every report this
    /// workspace produces.
    pub fn bits_per_cycle(&self) -> f64 {
        let cycles = self.cycles();
        if cycles == 0 {
            0.0
        } else {
            self.random_bits() as f64 / cycles as f64
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "steps={} cycles={} active={} bits={} ({:.3}/cycle) dist={:.3} interrupted={}",
            self.steps,
            self.cycles(),
            self.active_cycles(),
            self.random_bits(),
            self.bits_per_cycle(),
            self.distance(),
            self.interrupted_moves()
        )?;
        for (kind, p) in self.phases() {
            write!(f, " [{}: c={} b={}]", kind, p.cycles, p.random_bits)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_cycle_handles_zero_cycles() {
        // A run that never completed a Look has no cycles: the measure is
        // defined as 0.0, not NaN — see the method docs.
        let m = Metrics::default();
        assert_eq!(m.cycles(), 0);
        assert_eq!(m.bits_per_cycle(), 0.0);
        assert!(!m.bits_per_cycle().is_nan());
        assert_eq!(PhaseMetrics::default().bits_per_cycle(), 0.0);

        let mut m = Metrics::default();
        m.record_cycle(PhaseKind::Untagged);
        m.record_cycle(PhaseKind::Untagged);
        m.record_cycle(PhaseKind::Untagged);
        m.record_cycle(PhaseKind::Untagged);
        m.record_bits(PhaseKind::Untagged, 2);
        assert!((m.bits_per_cycle() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn totals_round_trip_the_per_phase_breakdown() {
        let mut m = Metrics { steps: 9, ..Metrics::default() };
        m.record_cycle(PhaseKind::RsbElection);
        m.record_bits(PhaseKind::RsbElection, 1);
        m.record_cycle(PhaseKind::RsbElection);
        m.record_bits(PhaseKind::RsbElection, 1);
        m.record_active(PhaseKind::RsbElection);
        m.record_cycle(PhaseKind::DpfRotate);
        m.record_active(PhaseKind::DpfRotate);
        m.record_distance(PhaseKind::DpfRotate, 1.5);
        m.record_distance(PhaseKind::RsbElection, 0.5);
        m.record_interrupt(PhaseKind::DpfRotate);

        assert_eq!(m.cycles(), 3);
        assert_eq!(m.active_cycles(), 2);
        assert_eq!(m.random_bits(), 2);
        assert!((m.distance() - 2.0).abs() < 1e-12);
        assert_eq!(m.interrupted_moves(), 1);

        // The totals are exactly the sums of the buckets.
        let sum: u64 = m.per_phase.iter().map(|p| p.cycles).sum();
        assert_eq!(sum, m.cycles());
        let e = m.phase(PhaseKind::RsbElection);
        assert_eq!((e.cycles, e.random_bits), (2, 2));
        assert!((e.bits_per_cycle() - 1.0).abs() < 1e-12);
        assert_eq!(m.phase(PhaseKind::DpfRotate).interrupted_moves, 1);
        assert_eq!(m.phases().count(), 2, "only non-empty buckets iterate");
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut m = Metrics::default();
        m.per_phase[PhaseKind::Untagged.index()].cycles = u64::MAX;
        m.per_phase[PhaseKind::Untagged.index()].random_bits = u64::MAX - 1;
        m.record_cycle(PhaseKind::Untagged);
        m.record_bits(PhaseKind::Untagged, 5);
        assert_eq!(m.phase(PhaseKind::Untagged).cycles, u64::MAX);
        assert_eq!(m.phase(PhaseKind::Untagged).random_bits, u64::MAX);

        // Totals saturate across buckets too: MAX + anything pins at MAX.
        m.record_cycle(PhaseKind::DpfFrame);
        assert_eq!(m.cycles(), u64::MAX);
        assert_eq!(m.random_bits(), u64::MAX);
        // A saturated count must not wrap the derived measure negative.
        assert!(m.bits_per_cycle() >= 0.0);
    }

    #[test]
    fn display_is_nonempty_and_mentions_phases() {
        assert!(!Metrics::default().to_string().is_empty());
        let mut m = Metrics::default();
        m.record_cycle(PhaseKind::RsbElection);
        assert!(m.to_string().contains("rsb-election"));
    }
}
