//! Execution metrics: cycles, randomness, distance.

/// Counters accumulated over a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// Engine steps executed.
    pub steps: u64,
    /// Look events (= LCM cycles started) across all robots.
    pub cycles: u64,
    /// Cycles in which the robot decided to move.
    pub active_cycles: u64,
    /// Random bits drawn by the algorithm across all robots.
    pub random_bits: u64,
    /// Total distance traveled by all robots.
    pub distance: f64,
    /// Move phases cut short by the adversary (traveled ≥ δ but < full path).
    pub interrupted_moves: u64,
}

impl Metrics {
    /// Random bits per cycle — the paper's headline randomness measure.
    ///
    /// Returns 0 when no cycle has run.
    pub fn bits_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.random_bits as f64 / self.cycles as f64
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "steps={} cycles={} active={} bits={} ({:.3}/cycle) dist={:.3} interrupted={}",
            self.steps,
            self.cycles,
            self.active_cycles,
            self.random_bits,
            self.bits_per_cycle(),
            self.distance,
            self.interrupted_moves
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_cycle_handles_zero() {
        assert_eq!(Metrics::default().bits_per_cycle(), 0.0);
        let m = Metrics { cycles: 4, random_bits: 2, ..Metrics::default() };
        assert!((m.bits_per_cycle() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Metrics::default().to_string().is_empty());
    }
}
