//! Oblivious mobile-robot (Look-Compute-Move) simulator with adversarial
//! asynchrony.
//!
//! The simulator realizes the paper's model faithfully:
//!
//! * **Anonymity & uniformity** — every robot runs the same
//!   [`RobotAlgorithm`]; snapshots carry no identities;
//! * **Obliviousness** — the algorithm is a pure function of the current
//!   snapshot (the trait takes `&self` and receives no history);
//! * **Disoriented local frames** — each robot observes the world through
//!   its own [`apf_geometry::Frame`] with random rotation, scale and
//!   *handedness*: there is no common North and no common chirality. The
//!   target pattern is likewise handed to each robot pre-transformed into
//!   its own frame;
//! * **Full asynchrony** — Look and Move are separate events interleaved by
//!   an [`apf_scheduler::Scheduler`]; robots move along computed paths in
//!   adversary-chosen slices, may pause mid-move (and are then observed at
//!   intermediate positions), and must travel at least `δ` per Move phase
//!   unless they arrive;
//! * **Randomization accounting** — algorithms draw randomness only through
//!   a [`BitSource`]; every bit is counted, which is how the "one random bit
//!   per cycle" claim is measured;
//! * **Optional multiplicity detection** — snapshots either expose exact
//!   multiplicities or collapse co-located robots, matching the paper's
//!   extension in Section 5.

#![forbid(unsafe_code)]

pub mod algorithm;
pub mod metrics;
pub mod snapshot;
pub mod world;

pub use algorithm::{BitSource, ComputeError, CountingBits, Decision, NullBits, RobotAlgorithm};
pub use metrics::{Metrics, PhaseMetrics};
pub use snapshot::Snapshot;
pub use world::{Outcome, StopReason, World, WorldConfig};

// Algorithms tag their decisions with these and engines install sinks;
// re-exported so downstream crates do not need a separate apf-trace import
// for the common cases.
pub use apf_trace::{PhaseKind, TraceEvent, TraceSink};

// The bench crate's parallel trial engine moves run results and specs across
// worker threads; keep these types `Send + Sync` by construction. A trait
// bound change that breaks this fails here, at compile time, instead of
// deep inside `std::thread::scope` spawns.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Outcome>();
    assert_send_sync::<Metrics>();
    assert_send_sync::<StopReason>();
    assert_send_sync::<ComputeError>();
    assert_send_sync::<WorldConfig>();
    assert_send_sync::<Decision>();
};
