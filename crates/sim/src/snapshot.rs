//! Snapshots: what a robot sees during its Look phase.

use apf_geometry::{Configuration, Point, Tol};

/// The result of one Look: all robot positions and the target pattern, both
/// in the observing robot's **local** coordinate system.
///
/// The observer itself is always at the local origin `(0, 0)` (frames are
/// ego-centered). Positions carry no identities; when multiplicity detection
/// is off, co-located robots collapse to a single point.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    robots: Vec<Point>,
    pattern: Vec<Point>,
    multiplicity_detection: bool,
    tol: Tol,
}

impl Snapshot {
    /// Assembles a snapshot from local-frame data.
    ///
    /// `robots` must contain the observer (a point at the origin). When
    /// `multiplicity_detection` is false, co-located robots (within `tol`)
    /// are collapsed to one point.
    ///
    /// # Panics
    ///
    /// Panics if `robots` is empty or contains no point at the local origin.
    pub fn new(
        mut robots: Vec<Point>,
        pattern: Vec<Point>,
        multiplicity_detection: bool,
        tol: Tol,
    ) -> Self {
        assert!(!robots.is_empty(), "a snapshot contains at least the observer");
        assert!(
            robots.iter().any(|p| p.approx_eq(Point::ORIGIN, &tol)),
            "the observer must be at the local origin"
        );
        if !multiplicity_detection {
            let mut dedup: Vec<Point> = Vec::with_capacity(robots.len());
            for p in robots.drain(..) {
                if !dedup.iter().any(|q| q.approx_eq(p, &tol)) {
                    dedup.push(p);
                }
            }
            robots = dedup;
        }
        Snapshot { robots, pattern, multiplicity_detection, tol }
    }

    /// The observed robot positions (local frame). With multiplicity
    /// detection, duplicates represent true multiplicities.
    pub fn robots(&self) -> &[Point] {
        &self.robots
    }

    /// The target pattern `F` in the observer's local frame.
    pub fn pattern(&self) -> &[Point] {
        &self.pattern
    }

    /// Whether multiplicities are visible.
    pub fn multiplicity_detection(&self) -> bool {
        self.multiplicity_detection
    }

    /// The tolerance the simulation runs at (part of the model parameters an
    /// algorithm may use for geometric decisions).
    pub fn tol(&self) -> &Tol {
        &self.tol
    }

    /// Number of observed points (robots or multiplicity-collapsed points).
    pub fn len(&self) -> usize {
        self.robots.len()
    }

    /// Never true.
    pub fn is_empty(&self) -> bool {
        self.robots.is_empty()
    }

    /// The observed configuration as a [`Configuration`].
    pub fn configuration(&self) -> Configuration {
        Configuration::new(self.robots.clone())
    }

    /// Index (into [`Self::robots`]) of the observer — the point at the
    /// local origin. With multiplicity points several robots may sit there;
    /// the first match is returned, which is harmless because co-located
    /// anonymous robots are interchangeable.
    pub fn self_index(&self) -> usize {
        self.robots
            .iter()
            .position(|p| p.approx_eq(Point::ORIGIN, &self.tol))
            // apf-lint: allow(panic-policy) — Snapshot constructors put the observer at origin
            .expect("snapshot invariant: observer at origin")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tol() -> Tol {
        Tol::default()
    }

    #[test]
    fn self_index_finds_origin() {
        let s = Snapshot::new(
            vec![Point::new(1.0, 0.0), Point::ORIGIN, Point::new(0.0, 2.0)],
            vec![],
            true,
            tol(),
        );
        assert_eq!(s.self_index(), 1);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn multiplicity_collapse() {
        let pts =
            vec![Point::ORIGIN, Point::new(1.0, 0.0), Point::new(1.0, 0.0), Point::new(0.0, 1.0)];
        let with = Snapshot::new(pts.clone(), vec![], true, tol());
        assert_eq!(with.len(), 4);
        let without = Snapshot::new(pts, vec![], false, tol());
        assert_eq!(without.len(), 3);
    }

    #[test]
    fn pattern_is_carried_through() {
        let f = vec![Point::new(2.0, 2.0)];
        let s = Snapshot::new(vec![Point::ORIGIN], f.clone(), true, tol());
        assert_eq!(s.pattern(), f.as_slice());
    }

    #[test]
    #[should_panic(expected = "origin")]
    fn missing_observer_panics() {
        Snapshot::new(vec![Point::new(1.0, 1.0)], vec![], true, tol());
    }
}
