//! The simulation engine: global state, event application, invariants.

use crate::algorithm::{BitSource, ComputeError, CountingBits, Decision, NullBits, RobotAlgorithm};
use crate::metrics::Metrics;
use crate::snapshot::Snapshot;
use apf_geometry::{are_similar, Configuration, Frame, Path, Point, Tol};
use apf_scheduler::{Action, PhaseView, Scheduler};
use apf_trace::{PhaseKind, TraceEvent, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Model parameters of a simulation.
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Minimum progress per Move phase: the adversary cannot end a phase
    /// before the robot traveled `delta`, unless it reached its destination.
    pub delta: f64,
    /// Geometric tolerance of the simulated sensors/actuators.
    pub tol: Tol,
    /// Whether snapshots expose multiplicities (Section 5 extension).
    pub multiplicity_detection: bool,
    /// Whether robots get random local frames (rotation, scale, handedness).
    /// Disable to give all robots the global frame (useful to demonstrate
    /// *baseline* algorithms that require chirality).
    pub randomize_frames: bool,
    /// Whether to record every configuration for later rendering.
    pub record_trace: bool,
    /// Whether to measure Compute wall time into the per-phase metrics
    /// (via [`apf_trace::span::clock_ns`], the workspace's one sanctioned
    /// wall-clock site). Off by default: a clock-read pair per cycle is
    /// measurable overhead in million-trial campaigns.
    pub time_compute: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            delta: 1e-3,
            tol: Tol::default(),
            multiplicity_detection: false,
            randomize_frames: true,
            record_trace: false,
            time_compute: false,
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, PartialEq)]
pub enum StopReason {
    /// The target pattern is formed and all robots are idle.
    Formed,
    /// The step budget was exhausted first.
    StepBudget,
    /// The algorithm rejected a snapshot.
    AlgorithmError(ComputeError),
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Whether the pattern was formed (stationarily).
    pub formed: bool,
    /// Why the run stopped.
    pub reason: StopReason,
    /// Accumulated metrics.
    pub metrics: Metrics,
    /// Final robot positions (global frame).
    pub final_positions: Vec<Point>,
}

#[derive(Debug, Clone)]
struct PendingMove {
    path: Path, // global frame
    traveled: f64,
    /// Phase that computed the path; move distance and interruptions are
    /// attributed to it.
    phase: PhaseKind,
}

/// Wraps a robot's bit source to emit one trace event per draw. Only
/// constructed when a sink is installed — the untraced path hands the
/// algorithm its counting source directly.
struct TracingBits<'a> {
    inner: &'a mut CountingBits,
    sink: &'a mut dyn TraceSink,
    step: u64,
    robot: u32,
}

impl BitSource for TracingBits<'_> {
    fn bit(&mut self) -> bool {
        let heads = self.inner.bit();
        self.sink.record(&TraceEvent::CoinFlip { step: self.step, robot: self.robot, heads });
        heads
    }

    fn word(&mut self, n: u32) -> u64 {
        let word = self.inner.word(n);
        self.sink.record(&TraceEvent::RandomWord { step: self.step, robot: self.robot, bits: n });
        word
    }

    fn bits_drawn(&self) -> u64 {
        self.inner.bits_drawn()
    }
}

/// The global simulation state: robot positions, in-flight moves, frames,
/// randomness, and the adversary.
pub struct World {
    positions: Vec<Point>,
    frames: Vec<Frame>,
    pending: Vec<Option<PendingMove>>,
    algorithm: Box<dyn RobotAlgorithm>,
    pattern_global: Vec<Point>,
    pattern_local: Vec<Vec<Point>>,
    scheduler: Box<dyn Scheduler>,
    bits: Vec<CountingBits>,
    config: WorldConfig,
    metrics: Metrics,
    trace: Vec<Vec<Point>>,
    seed: u64,
    /// Last tagged phase per robot (drives `PhaseChange` events).
    robot_phase: Vec<PhaseKind>,
    /// Installed trace sink, if any. `None` is the fast path: no event is
    /// constructed at all.
    sink: Option<Box<dyn TraceSink>>,
}

impl World {
    /// Creates a simulation.
    ///
    /// `seed` drives the robots' random bits and (when
    /// [`WorldConfig::randomize_frames`] is set) the random local frames;
    /// the scheduler carries its own seed.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty or `pattern` size differs from the robot
    /// count.
    pub fn new(
        initial: Vec<Point>,
        pattern: Vec<Point>,
        algorithm: Box<dyn RobotAlgorithm>,
        scheduler: Box<dyn Scheduler>,
        config: WorldConfig,
        seed: u64,
    ) -> Self {
        assert!(!initial.is_empty(), "a simulation needs at least one robot");
        assert_eq!(initial.len(), pattern.len(), "pattern must have exactly one point per robot");
        let n = initial.len();
        let mut frame_rng = StdRng::seed_from_u64(seed ^ 0xF0F0_F0F0_F0F0_F0F0);
        let frames: Vec<Frame> = (0..n)
            .map(|_| {
                if config.randomize_frames {
                    Frame::new(
                        Point::ORIGIN, // origin tracks the robot at Look time
                        frame_rng.gen_range(0.0..std::f64::consts::TAU),
                        frame_rng.gen_range(0.5..2.0),
                        frame_rng.gen(),
                    )
                } else {
                    Frame::identity()
                }
            })
            .collect();
        // Per-robot local copy of the pattern: an independent random
        // similarity image (rotation, scale, mirror, translation), exercising
        // the algorithm's similarity-invariance for real.
        let pattern_local: Vec<Vec<Point>> = (0..n)
            .map(|_| {
                if config.randomize_frames {
                    let rot = frame_rng.gen_range(0.0..std::f64::consts::TAU);
                    let scale = frame_rng.gen_range(0.5..2.0);
                    let mirror: bool = frame_rng.gen();
                    let dx = frame_rng.gen_range(-1.0..1.0);
                    let dy = frame_rng.gen_range(-1.0..1.0);
                    pattern
                        .iter()
                        .map(|&p| {
                            let mut v = p.to_vector();
                            if mirror {
                                v.y = -v.y;
                            }
                            (v.rotate(rot) * scale).to_point() + apf_geometry::Vector::new(dx, dy)
                        })
                        .collect()
                } else {
                    pattern.clone()
                }
            })
            .collect();
        let bits = (0..n).map(|i| CountingBits::new(seed.wrapping_add(i as u64 * 7919))).collect();
        let trace = if config.record_trace { vec![initial.clone()] } else { Vec::new() };
        World {
            positions: initial,
            frames,
            pending: vec![None; n],
            algorithm,
            pattern_global: pattern,
            pattern_local,
            scheduler,
            bits,
            config,
            metrics: Metrics::default(),
            trace,
            seed,
            robot_phase: vec![PhaseKind::Untagged; n],
            sink: None,
        }
    }

    /// Installs a trace sink. Sinks reporting [`TraceSink::enabled`]` ==
    /// false` are dropped on the spot — installing one is exactly
    /// equivalent to installing none, which is what makes the disabled
    /// path cost a single `Option` branch per event site.
    ///
    /// Emits [`TraceEvent::TrialStart`] into the sink immediately.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        if !sink.enabled() {
            self.sink = None;
            return;
        }
        let mut sink = sink;
        sink.record(&TraceEvent::TrialStart {
            robots: self.positions.len() as u32,
            seed: self.seed,
        });
        self.sink = Some(sink);
    }

    /// Whether an (enabled) sink is installed.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Flushes and removes the installed sink, returning it.
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        let mut sink = self.sink.take();
        if let Some(s) = sink.as_deref_mut() {
            s.flush_sink();
        }
        sink
    }

    /// Current robot positions (global frame).
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Current configuration.
    pub fn configuration(&self) -> Configuration {
        Configuration::new(self.positions.clone())
    }

    /// The target pattern in the global frame (canonical copy).
    pub fn pattern(&self) -> &[Point] {
        &self.pattern_global
    }

    /// Metrics accumulated so far. Random bits are attributed per cycle
    /// (and therefore per phase) as each Compute returns.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Recorded configurations (empty unless
    /// [`WorldConfig::record_trace`] was set).
    pub fn trace(&self) -> &[Vec<Point>] {
        &self.trace
    }

    /// The robots' local frames (test/diagnostic use).
    #[doc(hidden)]
    pub fn debug_frames(&self) -> &[Frame] {
        &self.frames
    }

    /// The robots' local pattern copies (test/diagnostic use).
    #[doc(hidden)]
    pub fn debug_patterns(&self) -> &[Vec<Point>] {
        &self.pattern_local
    }

    /// Whether some robot is mid-cycle (pending path).
    pub fn any_pending(&self) -> bool {
        self.pending.iter().any(Option::is_some)
    }

    /// Whether the configuration is similar to the pattern and every robot
    /// is idle — the run's success condition.
    pub fn is_formed(&self) -> bool {
        !self.any_pending() && are_similar(&self.positions, &self.pattern_global, &self.config.tol)
    }

    /// Probes whether any robot would move from the current configuration
    /// (deterministic, side-effect-free: randomness is stubbed with
    /// [`NullBits`]). Used by stationarity assertions in tests.
    ///
    /// # Errors
    ///
    /// Propagates the algorithm's [`ComputeError`].
    pub fn would_any_move(&mut self) -> Result<bool, ComputeError> {
        for r in 0..self.positions.len() {
            let snapshot = self.snapshot_for(r);
            let mut null = NullBits;
            match self.algorithm.compute(&snapshot, &mut null)? {
                Decision::Stay => {}
                Decision::Move(path) => {
                    if path.length() > self.config.tol.eps {
                        return Ok(true);
                    }
                }
            }
        }
        Ok(false)
    }

    /// Executes one engine step (one scheduler batch).
    ///
    /// # Errors
    ///
    /// Returns the algorithm's error if a Compute fails; the world is left
    /// consistent (the failing robot simply stays idle).
    pub fn step(&mut self) -> Result<(), ComputeError> {
        self.metrics.steps += 1;
        let phases: Vec<PhaseView> = self
            .pending
            .iter()
            .map(|p| match p {
                None => PhaseView::Idle,
                Some(pm) => PhaseView::Pending { length: pm.path.length(), traveled: pm.traveled },
            })
            .collect();
        let actions = self.scheduler.next(&phases);
        if actions.is_empty() {
            self.invariant_failure("scheduler returned an empty step");
        }
        if let Some(sink) = self.sink.as_deref_mut() {
            let looks = actions.iter().filter(|a| a.is_look()).count() as u32;
            sink.record(&TraceEvent::StepBegin {
                step: self.metrics.steps,
                looks,
                moves: actions.len() as u32 - looks,
            });
        }

        // Look actions observe the step's initial configuration; collect the
        // snapshot positions once.
        let observed = self.positions.clone();

        // Apply Looks first, then Moves (any serialization of a batch is a
        // legal ASYNC behavior; this one makes FSYNC rounds exact).
        for action in &actions {
            if let Action::Look { robot } = *action {
                if self.pending[robot].is_some() {
                    self.invariant_failure(&format!(
                        "scheduler issued Look for a non-idle robot {robot}"
                    ));
                }
                self.apply_look(robot, &observed)?;
            }
        }
        for action in &actions {
            if let Action::Move { robot, distance, end_phase } = *action {
                if self.pending[robot].is_none() {
                    self.invariant_failure(&format!(
                        "scheduler issued Move for an idle robot {robot}"
                    ));
                }
                self.apply_move(robot, distance, end_phase);
            }
        }
        if self.config.record_trace {
            self.trace.push(self.positions.clone());
        }
        Ok(())
    }

    /// Runs until the pattern is formed or the step budget is exhausted.
    ///
    /// When a sink is installed, emits [`TraceEvent::Formed`] (on success)
    /// and a closing [`TraceEvent::TrialEnd`], then flushes the sink.
    pub fn run(&mut self, max_steps: u64) -> Outcome {
        for _ in 0..max_steps {
            if self.is_formed() {
                return self.finish(StopReason::Formed);
            }
            if let Err(e) = self.step() {
                return self.finish(StopReason::AlgorithmError(e));
            }
        }
        if self.is_formed() {
            self.finish(StopReason::Formed)
        } else {
            self.finish(StopReason::StepBudget)
        }
    }

    /// Reports an engine invariant violation: gives the installed sink one
    /// last chance to persist post-mortem evidence (see
    /// [`TraceSink::crash_dump`] — a `CrashDumpSink` writes its last-N
    /// event window to disk here), then panics with `msg`. The crash-dump
    /// hook runs *before* the unwind starts, so evidence survives even
    /// under `panic = "abort"`.
    #[cold]
    fn invariant_failure(&mut self, msg: &str) -> ! {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.crash_dump();
        }
        panic!("engine invariant violated: {msg}");
    }

    /// Injects an invariant violation, exercising the crash-dump path
    /// end-to-end. Test-only: real violations come from buggy schedulers,
    /// which conformance tests cannot construct through safe public APIs.
    #[doc(hidden)]
    pub fn debug_fail_invariant(&mut self, msg: &str) -> ! {
        self.invariant_failure(msg)
    }

    fn finish(&mut self, reason: StopReason) -> Outcome {
        let outcome = self.outcome(reason);
        if let Some(sink) = self.sink.as_deref_mut() {
            if outcome.formed {
                sink.record(&TraceEvent::Formed { step: outcome.metrics.steps });
            }
            sink.record(&TraceEvent::TrialEnd {
                step: outcome.metrics.steps,
                formed: outcome.formed,
                cycles: outcome.metrics.cycles(),
                bits: outcome.metrics.random_bits(),
            });
            sink.flush_sink();
        }
        outcome
    }

    fn outcome(&self, reason: StopReason) -> Outcome {
        Outcome {
            formed: matches!(reason, StopReason::Formed),
            reason,
            metrics: self.metrics(),
            final_positions: self.positions.clone(),
        }
    }

    fn snapshot_for(&self, robot: usize) -> Snapshot {
        self.snapshot_at(robot, &self.positions)
    }

    fn snapshot_at(&self, robot: usize, observed: &[Point]) -> Snapshot {
        let mut frame = self.frames[robot];
        frame.origin = observed[robot];
        let local: Vec<Point> = observed.iter().map(|&p| frame.to_local(p)).collect();
        Snapshot::new(
            local,
            self.pattern_local[robot].clone(),
            self.config.multiplicity_detection,
            self.config.tol,
        )
    }

    fn apply_look(&mut self, robot: usize, observed: &[Point]) -> Result<(), ComputeError> {
        let _look_span = apf_trace::span::enter_robot(apf_trace::SpanLabel::Look, robot as u32);
        let step = self.metrics.steps;
        let snapshot = self.snapshot_at(robot, observed);
        let bits_before = self.bits[robot].bits_drawn();
        // Timing reads go through the span module's clock — the workspace's
        // only sanctioned wall-clock site (lint rule D3). Opt-in metric
        // only; never steers the sim.
        let timer = self.config.time_compute.then(apf_trace::span::clock_ns);
        let result = {
            let _compute_span = apf_trace::span::enter(apf_trace::SpanLabel::Compute);
            match self.sink.as_deref_mut() {
                Some(sink) => {
                    sink.record(&TraceEvent::Look { step, robot: robot as u32 });
                    let mut tracing = TracingBits {
                        inner: &mut self.bits[robot],
                        sink,
                        step,
                        robot: robot as u32,
                    };
                    self.algorithm.compute_tagged(&snapshot, &mut tracing)
                }
                None => self.algorithm.compute_tagged(&snapshot, &mut self.bits[robot]),
            }
        };
        let drawn = self.bits[robot].bits_drawn() - bits_before;
        let (decision, phase) = match result {
            Ok(tagged) => tagged,
            Err(e) => {
                // The failing Compute still consumed a cycle and its bits.
                self.metrics.record_cycle(PhaseKind::Untagged);
                self.metrics.record_bits(PhaseKind::Untagged, drawn);
                return Err(e);
            }
        };
        self.metrics.record_cycle(phase);
        self.metrics.record_bits(phase, drawn);
        if let Some(t0) = timer {
            self.metrics.record_compute_ns(phase, apf_trace::span::clock_ns().saturating_sub(t0));
        }
        let mut moved = false;
        let mut path_len = 0.0;
        match decision {
            Decision::Stay => {}
            Decision::Move(local_path) => {
                let mut frame = self.frames[robot];
                frame.origin = observed[robot];
                debug_assert!(
                    local_path.start().dist(Point::ORIGIN) < 1e-6,
                    "computed paths must start at the robot (local origin)"
                );
                let global = frame.path_to_global(&local_path);
                if global.length() > self.config.tol.eps {
                    self.metrics.record_active(phase);
                    moved = true;
                    path_len = global.length();
                    self.pending[robot] = Some(PendingMove { path: global, traveled: 0.0, phase });
                }
            }
        }
        let previous = self.robot_phase[robot];
        self.robot_phase[robot] = phase;
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(&TraceEvent::Decide { step, robot: robot as u32, phase, moved, path_len });
            if previous != phase {
                sink.record(&TraceEvent::PhaseChange {
                    step,
                    robot: robot as u32,
                    from: previous,
                    to: phase,
                });
            }
        }
        Ok(())
    }

    fn apply_move(&mut self, robot: usize, distance: f64, end_phase: bool) {
        let _move_span = apf_trace::span::enter_robot(apf_trace::SpanLabel::Move, robot as u32);
        let step = self.metrics.steps;
        // apf-lint: allow(panic-policy) — step() rejects Move for robots without a pending path
        let pm = self.pending[robot].as_mut().expect("validated by step()");
        let length = pm.path.length();
        let mut target = (pm.traveled + distance.max(0.0)).min(length);
        if end_phase {
            // Minimum-progress rule: the phase cannot end before δ progress
            // unless the destination is reached.
            let floor = self.config.delta.min(length);
            if target < floor {
                target = floor;
            }
        }
        let advanced = target - pm.traveled;
        pm.traveled = target;
        let traveled = pm.traveled;
        let phase = pm.phase;
        let new_pos = pm.path.point_at(target);
        self.metrics.record_distance(phase, advanced);
        let arrived = target >= length - 1e-12;
        if end_phase && !arrived {
            self.metrics.record_interrupt(phase);
        }
        self.positions[robot] = new_pos;
        if end_phase || arrived {
            self.pending[robot] = None;
        }
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(&TraceEvent::MoveSlice {
                step,
                robot: robot as u32,
                advanced,
                traveled,
                length,
                end_phase,
                arrived,
            });
            if end_phase && !arrived {
                sink.record(&TraceEvent::Interrupt { step, robot: robot as u32, traveled, length });
            }
        }
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("robots", &self.positions.len())
            .field("algorithm", &self.algorithm.name())
            .field("scheduler", &self.scheduler.name())
            .field("metrics", &self.metrics)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_scheduler::{FsyncScheduler, RoundRobinScheduler};

    /// Toy algorithm: walk toward the centroid of the observed points (stops
    /// when within tol). Frame-agnostic by construction.
    struct ToCentroid;

    impl RobotAlgorithm for ToCentroid {
        fn compute(
            &self,
            snapshot: &Snapshot,
            _bits: &mut dyn BitSource,
        ) -> Result<Decision, ComputeError> {
            let c = apf_geometry::weber::centroid(snapshot.robots());
            if c.dist(Point::ORIGIN) <= 1e-6 {
                Ok(Decision::Stay)
            } else {
                Ok(Decision::Move(Path::straight(Point::ORIGIN, c)))
            }
        }

        fn name(&self) -> &'static str {
            "to-centroid"
        }
    }

    /// Toy algorithm that draws one bit per cycle and never moves.
    struct BitBurner;

    impl RobotAlgorithm for BitBurner {
        fn compute(
            &self,
            _snapshot: &Snapshot,
            bits: &mut dyn BitSource,
        ) -> Result<Decision, ComputeError> {
            let _ = bits.bit();
            Ok(Decision::Stay)
        }

        fn name(&self) -> &'static str {
            "bit-burner"
        }
    }

    fn square() -> Vec<Point> {
        vec![
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(-1.0, 0.0),
            Point::new(0.0, -1.0),
        ]
    }

    fn world_with(alg: Box<dyn RobotAlgorithm>, sched: Box<dyn Scheduler>) -> World {
        let init = square();
        let pattern = init.clone();
        World::new(init, pattern, alg, sched, WorldConfig::default(), 42)
    }

    #[test]
    fn centroid_convergence_under_fsync() {
        // Robots converge toward the centroid; positions contract.
        let mut w = world_with(Box::new(ToCentroid), Box::new(FsyncScheduler::new()));
        let before: f64 = w.positions().iter().map(|p| p.dist(Point::ORIGIN)).sum();
        for _ in 0..20 {
            w.step().unwrap();
        }
        let after: f64 = w.positions().iter().map(|p| p.dist(Point::ORIGIN)).sum();
        assert!(after < before * 0.5, "no contraction: {before} -> {after}");
    }

    #[test]
    fn frames_do_not_change_global_behavior() {
        // The same algorithm with and without randomized frames must follow
        // the same global trajectory under a deterministic scheduler.
        let init = square();
        let run = |randomize: bool| {
            let cfg = WorldConfig { randomize_frames: randomize, ..WorldConfig::default() };
            let mut w = World::new(
                init.clone(),
                init.clone(),
                Box::new(ToCentroid),
                Box::new(RoundRobinScheduler::new(2)),
                cfg,
                7,
            );
            for _ in 0..40 {
                w.step().unwrap();
            }
            w.positions().to_vec()
        };
        let a = run(false);
        let b = run(true);
        assert_eq!(a.len(), b.len());
        // apf-lint: allow(zip-length-mismatch) — lengths asserted equal just above
        for (pa, pb) in a.iter().zip(b.iter()) {
            assert!(pa.approx_eq(*pb, &Tol::new(1e-6)), "{pa} vs {pb}");
        }
    }

    #[test]
    fn delta_progress_is_enforced() {
        // A scheduler that tries to end phases with zero progress still
        // yields >= delta movement.
        struct StingyScheduler;
        impl Scheduler for StingyScheduler {
            fn next(&mut self, phases: &[PhaseView]) -> Vec<Action> {
                if let Some((robot, _)) = phases.iter().enumerate().find(|(_, p)| !p.is_idle()) {
                    vec![Action::Move { robot, distance: 0.0, end_phase: true }]
                } else {
                    vec![Action::Look { robot: 0 }]
                }
            }
            fn name(&self) -> &'static str {
                "stingy"
            }
        }
        let cfg = WorldConfig { delta: 0.05, ..WorldConfig::default() };
        let init = square();
        let mut w = World::new(
            init.clone(),
            init.clone(),
            Box::new(ToCentroid),
            Box::new(StingyScheduler),
            cfg,
            1,
        );
        w.step().unwrap(); // Look by robot 0
        let before = w.positions()[0];
        w.step().unwrap(); // Move with distance 0 but end_phase
        let after = w.positions()[0];
        assert!(before.dist(after) >= 0.05 - 1e-9, "delta violated: {}", before.dist(after));
        assert!(!w.any_pending());
    }

    #[test]
    fn cycles_and_bits_are_counted() {
        let mut w = world_with(Box::new(BitBurner), Box::new(FsyncScheduler::new()));
        for _ in 0..6 {
            w.step().unwrap();
        }
        let m = w.metrics();
        // FSYNC: every step with all-idle robots performs 4 looks; BitBurner
        // never moves so every step is a Look round.
        assert_eq!(m.cycles(), 24);
        assert_eq!(m.random_bits(), 24);
        assert!((m.bits_per_cycle() - 1.0).abs() < 1e-12);
        assert_eq!(m.active_cycles(), 0);
        // BitBurner does not override compute_tagged: everything lands in
        // the Untagged bucket and totals round-trip it.
        assert_eq!(m.phase(apf_trace::PhaseKind::Untagged).cycles, 24);
    }

    #[test]
    fn formed_detection_is_similarity_based() {
        // Robots already form the (rotated, scaled) pattern: formed
        // immediately.
        let init = square();
        let pattern: Vec<Point> =
            init.iter().map(|p| Point::new(3.0 * p.y + 1.0, -3.0 * p.x)).collect();
        let w = World::new(
            init,
            pattern,
            Box::new(ToCentroid),
            Box::new(FsyncScheduler::new()),
            WorldConfig::default(),
            9,
        );
        assert!(w.is_formed());
    }

    #[test]
    fn run_stops_on_budget() {
        let mut w = world_with(Box::new(BitBurner), Box::new(FsyncScheduler::new()));
        // BitBurner never moves; initial config == pattern so it is formed.
        let outcome = w.run(10);
        assert!(outcome.formed);

        // Now with a pattern that can never be formed by staying put.
        let init = square();
        let pattern = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.1, 0.0),
        ];
        let mut w2 = World::new(
            init,
            pattern,
            Box::new(BitBurner),
            Box::new(FsyncScheduler::new()),
            WorldConfig::default(),
            3,
        );
        let o2 = w2.run(25);
        assert!(!o2.formed);
        assert_eq!(o2.reason, StopReason::StepBudget);
        assert_eq!(o2.metrics.steps, 25);
    }

    #[test]
    fn trace_records_configurations() {
        let cfg = WorldConfig { record_trace: true, ..WorldConfig::default() };
        let init = square();
        let mut w = World::new(
            init.clone(),
            init,
            Box::new(ToCentroid),
            Box::new(FsyncScheduler::new()),
            cfg,
            5,
        );
        for _ in 0..4 {
            w.step().unwrap();
        }
        assert_eq!(w.trace().len(), 5); // initial + 4 steps
    }

    #[test]
    fn pause_keeps_robot_mid_move_observable() {
        // Advance a robot partway without ending the phase: its observed
        // position is strictly between start and destination.
        struct OneSlice;
        impl Scheduler for OneSlice {
            fn next(&mut self, phases: &[PhaseView]) -> Vec<Action> {
                if let Some((robot, p)) = phases.iter().enumerate().find(|(_, p)| !p.is_idle()) {
                    vec![Action::Move { robot, distance: p.remaining() * 0.5, end_phase: false }]
                } else {
                    vec![Action::Look { robot: 0 }]
                }
            }
            fn name(&self) -> &'static str {
                "one-slice"
            }
        }
        let init = square();
        let mut w = World::new(
            init.clone(),
            init.clone(),
            Box::new(ToCentroid),
            Box::new(OneSlice),
            WorldConfig::default(),
            2,
        );
        w.step().unwrap(); // Look
        w.step().unwrap(); // half move
        let mid = w.positions()[0];
        assert!(mid.dist(init[0]) > 1e-6);
        assert!(w.any_pending());
    }

    #[test]
    fn would_any_move_is_side_effect_free() {
        let mut w = world_with(Box::new(ToCentroid), Box::new(FsyncScheduler::new()));
        let bits_before = w.metrics().random_bits();
        let moved = w.would_any_move().unwrap();
        assert!(moved);
        assert_eq!(w.metrics().random_bits(), bits_before);
        assert!(!w.any_pending());
    }

    #[test]
    fn tracing_emits_a_consistent_stream() {
        use apf_trace::{TraceEvent, TraceSummary, VecSink};
        use std::sync::{Arc, Mutex};

        let init = square();
        let pattern = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.1, 0.0),
        ];
        let mut w = World::new(
            init,
            pattern,
            Box::new(BitBurner),
            Box::new(FsyncScheduler::new()),
            WorldConfig::default(),
            11,
        );
        let shared = Arc::new(Mutex::new(VecSink::new()));
        w.set_sink(Box::new(Arc::clone(&shared)));
        assert!(w.has_sink());
        let outcome = w.run(8);
        let events = shared.lock().unwrap().events().to_vec();
        assert!(matches!(events[0], TraceEvent::TrialStart { robots: 4, seed: 11 }));
        assert!(matches!(events.last(), Some(TraceEvent::TrialEnd { .. })));

        let summary = TraceSummary::from_events(&events);
        assert!(summary.is_clean(), "violations: {:?}", summary.violations);
        assert!(summary.complete);
        // The replayed stream agrees with the engine's own metrics.
        assert_eq!(summary.cycles, outcome.metrics.cycles());
        assert_eq!(summary.bits, outcome.metrics.random_bits());
        assert_eq!(summary.last_step, outcome.metrics.steps);
    }

    #[test]
    fn tracing_covers_moves_and_interrupts() {
        use apf_trace::{TraceEvent, TraceSummary, VecSink};
        use std::sync::{Arc, Mutex};

        // End every move phase after a half-length slice: each move is
        // interrupted exactly once (half > delta, half < full).
        struct Chopper;
        impl Scheduler for Chopper {
            fn next(&mut self, phases: &[PhaseView]) -> Vec<Action> {
                if let Some((robot, p)) = phases.iter().enumerate().find(|(_, p)| !p.is_idle()) {
                    vec![Action::Move { robot, distance: p.remaining() * 0.5, end_phase: true }]
                } else {
                    vec![Action::Look { robot: 0 }]
                }
            }
            fn name(&self) -> &'static str {
                "chopper"
            }
        }
        let init = square();
        let mut w = World::new(
            init.clone(),
            init,
            Box::new(ToCentroid),
            Box::new(Chopper),
            WorldConfig::default(),
            4,
        );
        let shared = Arc::new(Mutex::new(VecSink::new()));
        w.set_sink(Box::new(Arc::clone(&shared)));
        w.step().unwrap(); // Look -> pending move
        w.step().unwrap(); // half slice + end_phase -> interrupt
        let events = shared.lock().unwrap().events().to_vec();
        assert!(events.iter().any(|e| matches!(e, TraceEvent::MoveSlice { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Interrupt { .. })));
        let summary = TraceSummary::from_events(&events);
        assert!(summary.is_clean(), "violations: {:?}", summary.violations);
        assert_eq!(summary.interrupts, 1);
        assert_eq!(w.metrics().interrupted_moves(), 1);
        assert!((summary.distance - w.metrics().distance()).abs() < 1e-12);
    }

    #[test]
    fn disabled_sinks_are_dropped_and_change_nothing() {
        use apf_trace::NullSink;

        let run = |install_disabled: bool| {
            let mut w = world_with(Box::new(BitBurner), Box::new(FsyncScheduler::new()));
            if install_disabled {
                w.set_sink(Box::new(NullSink));
                assert!(!w.has_sink(), "disabled sinks must be dropped at install");
            }
            for _ in 0..6 {
                w.step().unwrap();
            }
            (w.metrics(), w.positions().to_vec())
        };
        let (m_plain, p_plain) = run(false);
        let (m_null, p_null) = run(true);
        assert_eq!(m_plain, m_null);
        assert_eq!(p_plain, p_null);
    }

    #[test]
    fn take_sink_flushes_and_detaches() {
        use apf_trace::CountingSink;
        use std::sync::{Arc, Mutex};

        let mut w = world_with(Box::new(BitBurner), Box::new(FsyncScheduler::new()));
        let shared = Arc::new(Mutex::new(CountingSink::new()));
        w.set_sink(Box::new(Arc::clone(&shared)));
        w.step().unwrap();
        let sink = w.take_sink();
        assert!(sink.is_some());
        assert!(!w.has_sink());
        let after_take = shared.lock().unwrap().count();
        assert!(after_take > 0);
        w.step().unwrap();
        assert_eq!(shared.lock().unwrap().count(), after_take, "detached sink sees no more events");
        // The boxed handle still forwards if reinstalled.
        let mut sink = sink.unwrap();
        sink.record(&apf_trace::TraceEvent::Formed { step: 1 });
        assert_eq!(shared.lock().unwrap().count(), after_take + 1);
    }

    #[test]
    #[should_panic(expected = "one point per robot")]
    fn mismatched_pattern_size_panics() {
        World::new(
            square(),
            vec![Point::ORIGIN],
            Box::new(ToCentroid),
            Box::new(FsyncScheduler::new()),
            WorldConfig::default(),
            0,
        );
    }
}
