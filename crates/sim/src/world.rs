//! The simulation engine: global state, event application, invariants.

use crate::algorithm::{BitSource, ComputeError, CountingBits, Decision, NullBits, RobotAlgorithm};
use crate::metrics::Metrics;
use crate::snapshot::Snapshot;
use apf_geometry::{are_similar, Configuration, Frame, Path, Point, Tol};
use apf_scheduler::{Action, PhaseView, Scheduler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Model parameters of a simulation.
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Minimum progress per Move phase: the adversary cannot end a phase
    /// before the robot traveled `delta`, unless it reached its destination.
    pub delta: f64,
    /// Geometric tolerance of the simulated sensors/actuators.
    pub tol: Tol,
    /// Whether snapshots expose multiplicities (Section 5 extension).
    pub multiplicity_detection: bool,
    /// Whether robots get random local frames (rotation, scale, handedness).
    /// Disable to give all robots the global frame (useful to demonstrate
    /// *baseline* algorithms that require chirality).
    pub randomize_frames: bool,
    /// Whether to record every configuration for later rendering.
    pub record_trace: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            delta: 1e-3,
            tol: Tol::default(),
            multiplicity_detection: false,
            randomize_frames: true,
            record_trace: false,
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, PartialEq)]
pub enum StopReason {
    /// The target pattern is formed and all robots are idle.
    Formed,
    /// The step budget was exhausted first.
    StepBudget,
    /// The algorithm rejected a snapshot.
    AlgorithmError(ComputeError),
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Whether the pattern was formed (stationarily).
    pub formed: bool,
    /// Why the run stopped.
    pub reason: StopReason,
    /// Accumulated metrics.
    pub metrics: Metrics,
    /// Final robot positions (global frame).
    pub final_positions: Vec<Point>,
}

#[derive(Debug, Clone)]
struct PendingMove {
    path: Path, // global frame
    traveled: f64,
}

/// The global simulation state: robot positions, in-flight moves, frames,
/// randomness, and the adversary.
pub struct World {
    positions: Vec<Point>,
    frames: Vec<Frame>,
    pending: Vec<Option<PendingMove>>,
    algorithm: Box<dyn RobotAlgorithm>,
    pattern_global: Vec<Point>,
    pattern_local: Vec<Vec<Point>>,
    scheduler: Box<dyn Scheduler>,
    bits: Vec<CountingBits>,
    config: WorldConfig,
    metrics: Metrics,
    trace: Vec<Vec<Point>>,
}

impl World {
    /// Creates a simulation.
    ///
    /// `seed` drives the robots' random bits and (when
    /// [`WorldConfig::randomize_frames`] is set) the random local frames;
    /// the scheduler carries its own seed.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty or `pattern` size differs from the robot
    /// count.
    pub fn new(
        initial: Vec<Point>,
        pattern: Vec<Point>,
        algorithm: Box<dyn RobotAlgorithm>,
        scheduler: Box<dyn Scheduler>,
        config: WorldConfig,
        seed: u64,
    ) -> Self {
        assert!(!initial.is_empty(), "a simulation needs at least one robot");
        assert_eq!(initial.len(), pattern.len(), "pattern must have exactly one point per robot");
        let n = initial.len();
        let mut frame_rng = StdRng::seed_from_u64(seed ^ 0xF0F0_F0F0_F0F0_F0F0);
        let frames: Vec<Frame> = (0..n)
            .map(|_| {
                if config.randomize_frames {
                    Frame::new(
                        Point::ORIGIN, // origin tracks the robot at Look time
                        frame_rng.gen_range(0.0..std::f64::consts::TAU),
                        frame_rng.gen_range(0.5..2.0),
                        frame_rng.gen(),
                    )
                } else {
                    Frame::identity()
                }
            })
            .collect();
        // Per-robot local copy of the pattern: an independent random
        // similarity image (rotation, scale, mirror, translation), exercising
        // the algorithm's similarity-invariance for real.
        let pattern_local: Vec<Vec<Point>> = (0..n)
            .map(|_| {
                if config.randomize_frames {
                    let rot = frame_rng.gen_range(0.0..std::f64::consts::TAU);
                    let scale = frame_rng.gen_range(0.5..2.0);
                    let mirror: bool = frame_rng.gen();
                    let dx = frame_rng.gen_range(-1.0..1.0);
                    let dy = frame_rng.gen_range(-1.0..1.0);
                    pattern
                        .iter()
                        .map(|&p| {
                            let mut v = p.to_vector();
                            if mirror {
                                v.y = -v.y;
                            }
                            (v.rotate(rot) * scale).to_point() + apf_geometry::Vector::new(dx, dy)
                        })
                        .collect()
                } else {
                    pattern.clone()
                }
            })
            .collect();
        let bits = (0..n).map(|i| CountingBits::new(seed.wrapping_add(i as u64 * 7919))).collect();
        let trace = if config.record_trace { vec![initial.clone()] } else { Vec::new() };
        World {
            positions: initial,
            frames,
            pending: vec![None; n],
            algorithm,
            pattern_global: pattern,
            pattern_local,
            scheduler,
            bits,
            config,
            metrics: Metrics::default(),
            trace,
        }
    }

    /// Current robot positions (global frame).
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Current configuration.
    pub fn configuration(&self) -> Configuration {
        Configuration::new(self.positions.clone())
    }

    /// The target pattern in the global frame (canonical copy).
    pub fn pattern(&self) -> &[Point] {
        &self.pattern_global
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> Metrics {
        let mut m = self.metrics;
        m.random_bits = self.bits.iter().map(|b| b.bits_drawn()).sum();
        m
    }

    /// Recorded configurations (empty unless
    /// [`WorldConfig::record_trace`] was set).
    pub fn trace(&self) -> &[Vec<Point>] {
        &self.trace
    }

    /// The robots' local frames (test/diagnostic use).
    #[doc(hidden)]
    pub fn debug_frames(&self) -> &[Frame] {
        &self.frames
    }

    /// The robots' local pattern copies (test/diagnostic use).
    #[doc(hidden)]
    pub fn debug_patterns(&self) -> &[Vec<Point>] {
        &self.pattern_local
    }

    /// Whether some robot is mid-cycle (pending path).
    pub fn any_pending(&self) -> bool {
        self.pending.iter().any(Option::is_some)
    }

    /// Whether the configuration is similar to the pattern and every robot
    /// is idle — the run's success condition.
    pub fn is_formed(&self) -> bool {
        !self.any_pending() && are_similar(&self.positions, &self.pattern_global, &self.config.tol)
    }

    /// Probes whether any robot would move from the current configuration
    /// (deterministic, side-effect-free: randomness is stubbed with
    /// [`NullBits`]). Used by stationarity assertions in tests.
    ///
    /// # Errors
    ///
    /// Propagates the algorithm's [`ComputeError`].
    pub fn would_any_move(&mut self) -> Result<bool, ComputeError> {
        for r in 0..self.positions.len() {
            let snapshot = self.snapshot_for(r);
            let mut null = NullBits;
            match self.algorithm.compute(&snapshot, &mut null)? {
                Decision::Stay => {}
                Decision::Move(path) => {
                    if path.length() > self.config.tol.eps {
                        return Ok(true);
                    }
                }
            }
        }
        Ok(false)
    }

    /// Executes one engine step (one scheduler batch).
    ///
    /// # Errors
    ///
    /// Returns the algorithm's error if a Compute fails; the world is left
    /// consistent (the failing robot simply stays idle).
    pub fn step(&mut self) -> Result<(), ComputeError> {
        self.metrics.steps += 1;
        let phases: Vec<PhaseView> = self
            .pending
            .iter()
            .map(|p| match p {
                None => PhaseView::Idle,
                Some(pm) => PhaseView::Pending { length: pm.path.length(), traveled: pm.traveled },
            })
            .collect();
        let actions = self.scheduler.next(&phases);
        assert!(!actions.is_empty(), "scheduler returned an empty step");

        // Look actions observe the step's initial configuration; collect the
        // snapshot positions once.
        let observed = self.positions.clone();

        // Apply Looks first, then Moves (any serialization of a batch is a
        // legal ASYNC behavior; this one makes FSYNC rounds exact).
        for action in &actions {
            if let Action::Look { robot } = *action {
                assert!(
                    self.pending[robot].is_none(),
                    "scheduler issued Look for a non-idle robot {robot}"
                );
                self.apply_look(robot, &observed)?;
            }
        }
        for action in &actions {
            if let Action::Move { robot, distance, end_phase } = *action {
                assert!(
                    self.pending[robot].is_some(),
                    "scheduler issued Move for an idle robot {robot}"
                );
                self.apply_move(robot, distance, end_phase);
            }
        }
        if self.config.record_trace {
            self.trace.push(self.positions.clone());
        }
        Ok(())
    }

    /// Runs until the pattern is formed or the step budget is exhausted.
    pub fn run(&mut self, max_steps: u64) -> Outcome {
        for _ in 0..max_steps {
            if self.is_formed() {
                return self.outcome(StopReason::Formed);
            }
            if let Err(e) = self.step() {
                return self.outcome(StopReason::AlgorithmError(e));
            }
        }
        if self.is_formed() {
            self.outcome(StopReason::Formed)
        } else {
            self.outcome(StopReason::StepBudget)
        }
    }

    fn outcome(&self, reason: StopReason) -> Outcome {
        Outcome {
            formed: matches!(reason, StopReason::Formed),
            reason,
            metrics: self.metrics(),
            final_positions: self.positions.clone(),
        }
    }

    fn snapshot_for(&self, robot: usize) -> Snapshot {
        self.snapshot_at(robot, &self.positions)
    }

    fn snapshot_at(&self, robot: usize, observed: &[Point]) -> Snapshot {
        let mut frame = self.frames[robot];
        frame.origin = observed[robot];
        let local: Vec<Point> = observed.iter().map(|&p| frame.to_local(p)).collect();
        Snapshot::new(
            local,
            self.pattern_local[robot].clone(),
            self.config.multiplicity_detection,
            self.config.tol,
        )
    }

    fn apply_look(&mut self, robot: usize, observed: &[Point]) -> Result<(), ComputeError> {
        self.metrics.cycles += 1;
        let snapshot = self.snapshot_at(robot, observed);
        let decision = self.algorithm.compute(&snapshot, &mut self.bits[robot])?;
        match decision {
            Decision::Stay => {}
            Decision::Move(local_path) => {
                let mut frame = self.frames[robot];
                frame.origin = observed[robot];
                debug_assert!(
                    local_path.start().dist(Point::ORIGIN) < 1e-6,
                    "computed paths must start at the robot (local origin)"
                );
                let global = frame.path_to_global(&local_path);
                if global.length() > self.config.tol.eps {
                    self.metrics.active_cycles += 1;
                    self.pending[robot] = Some(PendingMove { path: global, traveled: 0.0 });
                }
            }
        }
        Ok(())
    }

    fn apply_move(&mut self, robot: usize, distance: f64, end_phase: bool) {
        let pm = self.pending[robot].as_mut().expect("validated by step()");
        let length = pm.path.length();
        let mut target = (pm.traveled + distance.max(0.0)).min(length);
        if end_phase {
            // Minimum-progress rule: the phase cannot end before δ progress
            // unless the destination is reached.
            let floor = self.config.delta.min(length);
            if target < floor {
                target = floor;
            }
        }
        let advanced = target - pm.traveled;
        pm.traveled = target;
        let new_pos = pm.path.point_at(target);
        self.metrics.distance += advanced;
        let arrived = target >= length - 1e-12;
        if end_phase && !arrived {
            self.metrics.interrupted_moves += 1;
        }
        self.positions[robot] = new_pos;
        if end_phase || arrived {
            self.pending[robot] = None;
        }
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("robots", &self.positions.len())
            .field("algorithm", &self.algorithm.name())
            .field("scheduler", &self.scheduler.name())
            .field("metrics", &self.metrics)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_scheduler::{FsyncScheduler, RoundRobinScheduler};

    /// Toy algorithm: walk toward the centroid of the observed points (stops
    /// when within tol). Frame-agnostic by construction.
    struct ToCentroid;

    impl RobotAlgorithm for ToCentroid {
        fn compute(
            &self,
            snapshot: &Snapshot,
            _bits: &mut dyn BitSource,
        ) -> Result<Decision, ComputeError> {
            let c = apf_geometry::weber::centroid(snapshot.robots());
            if c.dist(Point::ORIGIN) <= 1e-6 {
                Ok(Decision::Stay)
            } else {
                Ok(Decision::Move(Path::straight(Point::ORIGIN, c)))
            }
        }

        fn name(&self) -> &'static str {
            "to-centroid"
        }
    }

    /// Toy algorithm that draws one bit per cycle and never moves.
    struct BitBurner;

    impl RobotAlgorithm for BitBurner {
        fn compute(
            &self,
            _snapshot: &Snapshot,
            bits: &mut dyn BitSource,
        ) -> Result<Decision, ComputeError> {
            let _ = bits.bit();
            Ok(Decision::Stay)
        }

        fn name(&self) -> &'static str {
            "bit-burner"
        }
    }

    fn square() -> Vec<Point> {
        vec![
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(-1.0, 0.0),
            Point::new(0.0, -1.0),
        ]
    }

    fn world_with(alg: Box<dyn RobotAlgorithm>, sched: Box<dyn Scheduler>) -> World {
        let init = square();
        let pattern = init.clone();
        World::new(init, pattern, alg, sched, WorldConfig::default(), 42)
    }

    #[test]
    fn centroid_convergence_under_fsync() {
        // Robots converge toward the centroid; positions contract.
        let mut w = world_with(Box::new(ToCentroid), Box::new(FsyncScheduler::new()));
        let before: f64 = w.positions().iter().map(|p| p.dist(Point::ORIGIN)).sum();
        for _ in 0..20 {
            w.step().unwrap();
        }
        let after: f64 = w.positions().iter().map(|p| p.dist(Point::ORIGIN)).sum();
        assert!(after < before * 0.5, "no contraction: {before} -> {after}");
    }

    #[test]
    fn frames_do_not_change_global_behavior() {
        // The same algorithm with and without randomized frames must follow
        // the same global trajectory under a deterministic scheduler.
        let init = square();
        let run = |randomize: bool| {
            let cfg = WorldConfig { randomize_frames: randomize, ..WorldConfig::default() };
            let mut w = World::new(
                init.clone(),
                init.clone(),
                Box::new(ToCentroid),
                Box::new(RoundRobinScheduler::new(2)),
                cfg,
                7,
            );
            for _ in 0..40 {
                w.step().unwrap();
            }
            w.positions().to_vec()
        };
        let a = run(false);
        let b = run(true);
        for (pa, pb) in a.iter().zip(b.iter()) {
            assert!(pa.approx_eq(*pb, &Tol::new(1e-6)), "{pa} vs {pb}");
        }
    }

    #[test]
    fn delta_progress_is_enforced() {
        // A scheduler that tries to end phases with zero progress still
        // yields >= delta movement.
        struct StingyScheduler;
        impl Scheduler for StingyScheduler {
            fn next(&mut self, phases: &[PhaseView]) -> Vec<Action> {
                if let Some((robot, _)) = phases.iter().enumerate().find(|(_, p)| !p.is_idle()) {
                    vec![Action::Move { robot, distance: 0.0, end_phase: true }]
                } else {
                    vec![Action::Look { robot: 0 }]
                }
            }
            fn name(&self) -> &'static str {
                "stingy"
            }
        }
        let cfg = WorldConfig { delta: 0.05, ..WorldConfig::default() };
        let init = square();
        let mut w = World::new(
            init.clone(),
            init.clone(),
            Box::new(ToCentroid),
            Box::new(StingyScheduler),
            cfg,
            1,
        );
        w.step().unwrap(); // Look by robot 0
        let before = w.positions()[0];
        w.step().unwrap(); // Move with distance 0 but end_phase
        let after = w.positions()[0];
        assert!(before.dist(after) >= 0.05 - 1e-9, "delta violated: {}", before.dist(after));
        assert!(!w.any_pending());
    }

    #[test]
    fn cycles_and_bits_are_counted() {
        let mut w = world_with(Box::new(BitBurner), Box::new(FsyncScheduler::new()));
        for _ in 0..6 {
            w.step().unwrap();
        }
        let m = w.metrics();
        // FSYNC: every step with all-idle robots performs 4 looks; BitBurner
        // never moves so every step is a Look round.
        assert_eq!(m.cycles, 24);
        assert_eq!(m.random_bits, 24);
        assert!((m.bits_per_cycle() - 1.0).abs() < 1e-12);
        assert_eq!(m.active_cycles, 0);
    }

    #[test]
    fn formed_detection_is_similarity_based() {
        // Robots already form the (rotated, scaled) pattern: formed
        // immediately.
        let init = square();
        let pattern: Vec<Point> =
            init.iter().map(|p| Point::new(3.0 * p.y + 1.0, -3.0 * p.x)).collect();
        let w = World::new(
            init,
            pattern,
            Box::new(ToCentroid),
            Box::new(FsyncScheduler::new()),
            WorldConfig::default(),
            9,
        );
        assert!(w.is_formed());
    }

    #[test]
    fn run_stops_on_budget() {
        let mut w = world_with(Box::new(BitBurner), Box::new(FsyncScheduler::new()));
        // BitBurner never moves; initial config == pattern so it is formed.
        let outcome = w.run(10);
        assert!(outcome.formed);

        // Now with a pattern that can never be formed by staying put.
        let init = square();
        let pattern = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.1, 0.0),
        ];
        let mut w2 = World::new(
            init,
            pattern,
            Box::new(BitBurner),
            Box::new(FsyncScheduler::new()),
            WorldConfig::default(),
            3,
        );
        let o2 = w2.run(25);
        assert!(!o2.formed);
        assert_eq!(o2.reason, StopReason::StepBudget);
        assert_eq!(o2.metrics.steps, 25);
    }

    #[test]
    fn trace_records_configurations() {
        let cfg = WorldConfig { record_trace: true, ..WorldConfig::default() };
        let init = square();
        let mut w = World::new(
            init.clone(),
            init,
            Box::new(ToCentroid),
            Box::new(FsyncScheduler::new()),
            cfg,
            5,
        );
        for _ in 0..4 {
            w.step().unwrap();
        }
        assert_eq!(w.trace().len(), 5); // initial + 4 steps
    }

    #[test]
    fn pause_keeps_robot_mid_move_observable() {
        // Advance a robot partway without ending the phase: its observed
        // position is strictly between start and destination.
        struct OneSlice;
        impl Scheduler for OneSlice {
            fn next(&mut self, phases: &[PhaseView]) -> Vec<Action> {
                if let Some((robot, p)) = phases.iter().enumerate().find(|(_, p)| !p.is_idle()) {
                    vec![Action::Move { robot, distance: p.remaining() * 0.5, end_phase: false }]
                } else {
                    vec![Action::Look { robot: 0 }]
                }
            }
            fn name(&self) -> &'static str {
                "one-slice"
            }
        }
        let init = square();
        let mut w = World::new(
            init.clone(),
            init.clone(),
            Box::new(ToCentroid),
            Box::new(OneSlice),
            WorldConfig::default(),
            2,
        );
        w.step().unwrap(); // Look
        w.step().unwrap(); // half move
        let mid = w.positions()[0];
        assert!(mid.dist(init[0]) > 1e-6);
        assert!(w.any_pending());
    }

    #[test]
    fn would_any_move_is_side_effect_free() {
        let mut w = world_with(Box::new(ToCentroid), Box::new(FsyncScheduler::new()));
        let bits_before = w.metrics().random_bits;
        let moved = w.would_any_move().unwrap();
        assert!(moved);
        assert_eq!(w.metrics().random_bits, bits_before);
        assert!(!w.any_pending());
    }

    #[test]
    #[should_panic(expected = "one point per robot")]
    fn mismatched_pattern_size_panics() {
        World::new(
            square(),
            vec![Point::ORIGIN],
            Box::new(ToCentroid),
            Box::new(FsyncScheduler::new()),
            WorldConfig::default(),
            0,
        );
    }
}
