//! Correctness tooling for the APF simulator: golden-trace conformance and
//! adversarial schedule fuzzing.
//!
//! The simulator's experiment claims (bits per cycle, formation
//! probability, adversary resilience) are only as good as the engine's
//! behavioral stability. This crate pins that stability down three ways:
//!
//! * **[`corpus`]** — a checked-in set of golden JSONL traces (small
//!   instances across every scheduler kind, with and without multiplicity)
//!   whose FNV-1a digests are recorded in a manifest. Any change to the
//!   geometry/core/sim/scheduler stack that alters *any* event of *any*
//!   golden execution fails CI with a readable event diff. Intentional
//!   changes regenerate the corpus via `scripts/regen_corpus.sh` (or
//!   `apf-cli conformance regen`), making behavioral drift an explicit,
//!   reviewable artifact.
//! * **[`fuzz`]** — a seeded generator of pathological ASYNC schedules
//!   (mid-move pauses, stale snapshots, bounded starvation, dense
//!   interleavings) with trace-level property checks — stream legality,
//!   the ≤ 1 bit/election-cycle claim, phase legality, rigid-motion
//!   safety, eventual formation — and ddmin-style shrinking of violating
//!   schedules to minimal [`ScriptedScheduler`](apf_scheduler::ScriptedScheduler)
//!   reproducers. Campaigns are bit-deterministic in their seed for any
//!   `--jobs` value.
//! * **[`geometry_fuzz`]** — the same adversarial treatment for *instance
//!   geometry*: seeded degenerate families (ε-perturbed symmetricity,
//!   collinear, SEC-boundary, near-multiplicity) with perturbations
//!   laddered across both sides of the classifier tolerance bands, checked
//!   by a pure-geometry oracle and then under the full scheduler matrix.
//!   Violations shrink over geometry *and* schedules to minimal
//!   `(positions, script)` reproducers.
//!
//! Crash forensics ride on `apf-trace`'s `CrashDumpSink`: engine invariant
//! violations flush a last-N event window to disk before panicking (see
//! `World::step` and `TraceSink::crash_dump`).

#![forbid(unsafe_code)]

pub mod corpus;
pub mod fuzz;
pub mod geometry_fuzz;

pub use corpus::{
    cases, default_corpus_dir, event_diff, fnv1a, read_manifest, regenerate, verify,
    write_manifest, CaseReport, CorpusCase, ManifestEntry,
};
pub use fuzz::{
    dump_counterexample, fuzz_campaign, replay_violates, script_from_text, script_to_text, shrink,
    Counterexample, FuzzConfig, FuzzReport, Violation,
};
pub use geometry_fuzz::{
    check_instance, degenerate_instance, dump_geo_counterexample, geo_fuzz_campaign,
    geo_fuzz_rounds, geo_fuzz_timed, shrink_geometry, Expectation, GeoCounterexample, GeoFamily,
    GeoFuzzConfig, GeoFuzzReport, GeoInstance, GeoOracle,
};
