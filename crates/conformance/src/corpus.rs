//! The golden-trace conformance corpus.
//!
//! A corpus case is a fully specified [`RunSpec`] (instance, scheduler,
//! seed, budget, world options) whose serialized event trace is checked into
//! `tests/corpus/` together with its FNV-1a digest. Replaying a case through
//! the current engine and comparing digests pins down the *entire execution*
//! — every Look, coin flip, decision, move slice, and interruption — so any
//! unintended behavioral change anywhere in the geometry/core/sim/scheduler
//! stack shows up as digest drift, with a readable event diff pointing at
//! the first divergence.
//!
//! Three digests are compared per case:
//!
//! 1. the **manifest** digest (recorded at generation time),
//! 2. the **file** digest (FNV-1a over the golden file's bytes — detects a
//!    corrupted or hand-edited golden),
//! 3. the **live** digest (re-running the spec through a `HashSink`).
//!
//! `HashSink` hashes each serialized line plus `\n`, so (2) and (3) agree
//! byte-for-byte with the on-disk format by construction.

use apf_bench::engine::{AlgorithmSpec, RunSpec};
use apf_scheduler::{AsyncConfig, SchedulerKind};
use apf_trace::{describe, parse_line, to_json_line, TraceEvent, TraceSummary, VecSink};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One golden-trace case: everything needed to reproduce its event stream.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// Unique slug; also the golden file's stem (`<name>.jsonl`).
    pub name: &'static str,
    /// Scheduler kind driving the case.
    pub kind: SchedulerKind,
    /// Robot count.
    pub n: usize,
    /// `Some(rho)` starts from a `rho`-symmetric configuration, `None` from
    /// an asymmetric one.
    pub symmetric: Option<usize>,
    /// `Some(family)` overrides the generator with a degenerate instance
    /// from the geometry fuzzer's seeded families (collinear start,
    /// ε-perturbed symmetricity, SEC-boundary robot, near-multiplicity
    /// pair), freezing the engine's behaviour at classifier boundaries.
    pub degenerate: Option<crate::geometry_fuzz::GeoFamily>,
    /// Whether the target pattern contains multiplicity points (and the
    /// world enables multiplicity detection).
    pub multiplicity: bool,
    /// Whether robots get random local frames.
    pub randomize_frames: bool,
    /// Non-default ASYNC adversary knobs.
    pub async_config: Option<AsyncConfig>,
    /// World seed.
    pub seed: u64,
    /// Engine-step budget. Small on purpose: goldens freeze a *prefix* of
    /// the execution, which drifts exactly when a full run would, at a
    /// fraction of the checked-in bytes.
    pub budget: u64,
}

impl CorpusCase {
    /// The spec replaying this case.
    pub fn spec(&self) -> RunSpec {
        let initial = match (self.degenerate, self.symmetric) {
            (Some(family), _) => {
                crate::geometry_fuzz::degenerate_instance(family, self.n, self.seed ^ 0xD6)
                    .positions
            }
            (None, Some(rho)) => {
                apf_patterns::symmetric_configuration(self.n, rho, self.seed ^ 0xA5)
            }
            (None, None) => apf_patterns::asymmetric_configuration(self.n, self.seed ^ 0xA5),
        };
        let pattern = if self.multiplicity {
            apf_patterns::pattern_with_multiplicity(self.n, self.n - 2, self.seed ^ 0x5A)
        } else {
            apf_patterns::random_pattern(self.n, self.seed ^ 0x5A)
        };
        let mut spec = RunSpec::new(initial, pattern)
            .algorithm(AlgorithmSpec::FormPattern)
            .scheduler(self.kind)
            .seed(self.seed)
            .budget(self.budget)
            .multiplicity_detection(self.multiplicity)
            .randomize_frames(self.randomize_frames)
            // Budgets here are trace-size caps, not formation attempts;
            // validation would reject nothing anyway, but being explicit
            // keeps goldens independent of validator evolution.
            .validate(false);
        if let Some(cfg) = self.async_config {
            spec = spec.async_config(cfg);
        }
        spec
    }

    /// The golden file path for this case under `dir`.
    pub fn golden_path(&self, dir: &Path) -> PathBuf {
        dir.join(format!("{}.jsonl", self.name))
    }

    /// Replays the case and returns its full event stream.
    pub fn replay_events(&self) -> Vec<TraceEvent> {
        let shared = Arc::new(Mutex::new(VecSink::new()));
        self.spec()
            .try_run_with_sink(Box::new(Arc::clone(&shared)))
            // apf-lint: allow(panic-policy) — corpus specs are fixed, pre-validated instances
            .expect("corpus specs skip validation");
        // apf-lint: allow(panic-policy) — poisoning requires a panic that already failed the replay
        let events = shared.lock().expect("no panics hold the sink").events().to_vec();
        events
    }
}

/// The checked-in corpus: small-n cases across every scheduler kind,
/// with and without multiplicity, symmetric and asymmetric starts, shared
/// and randomized frames, default and aggressive ASYNC adversaries, and
/// degenerate-geometry starts from the fuzzer's instance families.
pub fn cases() -> Vec<CorpusCase> {
    let base = CorpusCase {
        name: "",
        kind: SchedulerKind::Fsync,
        n: 7,
        symmetric: None,
        degenerate: None,
        multiplicity: false,
        randomize_frames: true,
        async_config: None,
        seed: 0,
        budget: 200,
    };
    vec![
        CorpusCase { name: "fsync-asym-n7", kind: SchedulerKind::Fsync, seed: 11, ..base.clone() },
        CorpusCase {
            name: "fsync-mult-n8",
            kind: SchedulerKind::Fsync,
            n: 8,
            multiplicity: true,
            seed: 12,
            budget: 160,
            ..base.clone()
        },
        CorpusCase {
            name: "ssync-asym-n7",
            kind: SchedulerKind::Ssync,
            seed: 13,
            budget: 300,
            ..base.clone()
        },
        CorpusCase {
            name: "ssync-noframes-n8",
            kind: SchedulerKind::Ssync,
            n: 8,
            randomize_frames: false,
            seed: 14,
            budget: 240,
            ..base.clone()
        },
        CorpusCase {
            name: "async-asym-n7",
            kind: SchedulerKind::Async,
            seed: 15,
            budget: 400,
            ..base.clone()
        },
        CorpusCase {
            name: "async-aggressive-n7",
            kind: SchedulerKind::Async,
            async_config: Some(AsyncConfig {
                pause_prob: 0.45,
                stop_prob: 0.55,
                max_slice_fraction: 0.2,
                batch_size: 3,
                starvation_bound: 24,
            }),
            seed: 16,
            budget: 400,
            ..base.clone()
        },
        CorpusCase {
            name: "async-mult-n9",
            kind: SchedulerKind::Async,
            n: 9,
            multiplicity: true,
            seed: 17,
            budget: 320,
            ..base.clone()
        },
        CorpusCase {
            name: "rr-asym-n7",
            kind: SchedulerKind::RoundRobin,
            seed: 18,
            budget: 260,
            ..base.clone()
        },
        CorpusCase {
            name: "rr-sym-n8",
            kind: SchedulerKind::RoundRobin,
            n: 8,
            symmetric: Some(2),
            seed: 19,
            budget: 260,
            ..base.clone()
        },
        CorpusCase {
            name: "fsync-sym-n9",
            kind: SchedulerKind::Fsync,
            n: 9,
            symmetric: Some(3),
            seed: 20,
            budget: 200,
            ..base.clone()
        },
        // Degenerate-family starts from the geometry fuzzer: the seeds are
        // chosen so each instance sits on the intended side of its
        // classifier boundary (asserted by `degenerate_cases_sit_on_the_
        // intended_boundary_side` below).
        CorpusCase {
            name: "fsync-collinear-n8",
            kind: SchedulerKind::Fsync,
            n: 8,
            degenerate: Some(crate::geometry_fuzz::GeoFamily::Collinear),
            seed: 21,
            budget: 200,
            ..base.clone()
        },
        CorpusCase {
            name: "ssync-rho2-eps-n8",
            kind: SchedulerKind::Ssync,
            n: 8,
            degenerate: Some(crate::geometry_fuzz::GeoFamily::PerturbedRho),
            seed: 30,
            budget: 240,
            ..base.clone()
        },
        CorpusCase {
            name: "async-secboundary-n8",
            kind: SchedulerKind::Async,
            n: 8,
            degenerate: Some(crate::geometry_fuzz::GeoFamily::SecBoundary),
            seed: 28,
            budget: 320,
            ..base.clone()
        },
        CorpusCase {
            name: "rr-nearmult-n9",
            kind: SchedulerKind::RoundRobin,
            n: 9,
            degenerate: Some(crate::geometry_fuzz::GeoFamily::NearMultiplicity),
            seed: 23,
            budget: 260,
            ..base
        },
    ]
}

/// The repository's corpus directory (`tests/corpus` at the workspace
/// root), resolved relative to this crate so tests and the CLI agree.
pub fn default_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over raw bytes — the same fold `HashSink` applies to the
/// serialized stream, so hashing a golden file's bytes reproduces the
/// digest of the run that wrote it.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One manifest entry: `<name> <digest:016x> <events>` per line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Case name.
    pub name: String,
    /// Recorded stream digest.
    pub digest: u64,
    /// Recorded event count.
    pub events: u64,
}

/// Reads `manifest.txt` from `dir`.
///
/// # Errors
///
/// I/O errors reading the file; malformed lines become
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_manifest(dir: &Path) -> std::io::Result<Vec<ManifestEntry>> {
    let text = std::fs::read_to_string(dir.join("manifest.txt"))?;
    let bad = |line: &str| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("malformed manifest line: {line:?}"),
        )
    };
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(name), Some(digest), Some(events), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(bad(line));
        };
        entries.push(ManifestEntry {
            name: name.to_string(),
            digest: u64::from_str_radix(digest, 16).map_err(|_| bad(line))?,
            events: events.parse().map_err(|_| bad(line))?,
        });
    }
    Ok(entries)
}

/// Writes `manifest.txt` into `dir`.
///
/// # Errors
///
/// I/O errors writing the file.
pub fn write_manifest(dir: &Path, entries: &[ManifestEntry]) -> std::io::Result<()> {
    let mut text = String::from(
        "# Golden-trace corpus manifest: <case> <fnv1a digest> <events>\n\
         # Regenerate with scripts/regen_corpus.sh (or `apf-cli conformance regen`).\n",
    );
    for e in entries {
        let _ = writeln!(text, "{} {:016x} {}", e.name, e.digest, e.events);
    }
    std::fs::write(dir.join("manifest.txt"), text)
}

/// Verdict of one case's conformance check.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Case name.
    pub name: String,
    /// Digest recorded in the manifest, if the case is listed.
    pub manifest_digest: Option<u64>,
    /// Digest of the golden file's bytes, if the file exists.
    pub file_digest: Option<u64>,
    /// Digest of a live replay through the current engine.
    pub live_digest: u64,
    /// Events emitted by the live replay.
    pub live_events: u64,
    /// Human-readable event diff; non-empty exactly when the live stream
    /// diverges from the golden file.
    pub diff: String,
}

impl CaseReport {
    /// Whether all three digests agree.
    pub fn ok(&self) -> bool {
        self.manifest_digest == Some(self.live_digest)
            && self.file_digest == Some(self.live_digest)
            && self.diff.is_empty()
    }
}

/// Replays every corpus case against the goldens in `dir`.
///
/// # Errors
///
/// I/O errors reading the manifest (a missing golden *file* is reported in
/// the case's [`CaseReport`], not as an error).
pub fn verify(dir: &Path) -> std::io::Result<Vec<CaseReport>> {
    let manifest = read_manifest(dir)?;
    let mut reports = Vec::new();
    for case in cases() {
        let manifest_digest = manifest.iter().find(|e| e.name == case.name).map(|e| e.digest);
        let golden = case.golden_path(dir);
        let file_bytes = std::fs::read(&golden).ok();
        let file_digest = file_bytes.as_deref().map(fnv1a);
        let (_result, live_digest) =
            // apf-lint: allow(panic-policy) — corpus specs are fixed, pre-validated instances
            case.spec().try_run_digest().expect("corpus specs skip validation");
        let live = case.replay_events();
        let diff = match &file_bytes {
            Some(bytes) if file_digest != Some(live_digest) => {
                event_diff(&String::from_utf8_lossy(bytes), &live)
            }
            Some(_) => String::new(),
            None => format!("golden file missing: {}\n", golden.display()),
        };
        reports.push(CaseReport {
            name: case.name.to_string(),
            manifest_digest,
            file_digest,
            live_digest,
            live_events: live.len() as u64,
            diff,
        });
    }
    Ok(reports)
}

/// Regenerates every golden file and the manifest in `dir` from the current
/// engine. Returns the new manifest entries.
///
/// # Errors
///
/// I/O errors creating `dir` or writing any file.
pub fn regenerate(dir: &Path) -> std::io::Result<Vec<ManifestEntry>> {
    std::fs::create_dir_all(dir)?;
    let mut entries = Vec::new();
    for case in cases() {
        let events = case.replay_events();
        let mut text = String::new();
        for e in &events {
            text.push_str(&to_json_line(e));
            text.push('\n');
        }
        std::fs::write(case.golden_path(dir), &text)?;
        entries.push(ManifestEntry {
            name: case.name.to_string(),
            digest: fnv1a(text.as_bytes()),
            events: events.len() as u64,
        });
    }
    write_manifest(dir, &entries)?;
    Ok(entries)
}

/// Context lines shown on each side of the first divergence.
const DIFF_CONTEXT: usize = 3;

/// Renders a human-readable diff between a golden trace (raw JSONL text)
/// and a live event stream: the first divergent index, a few context events
/// before it, both versions of the divergent event via
/// [`describe`], and summary-level deltas (cycles/bits/interrupts) so a
/// reviewer can tell a benign drift (intentional algorithm change) from a
/// corrupted one. Empty when the streams are byte-identical.
pub fn event_diff(golden_text: &str, live: &[TraceEvent]) -> String {
    let golden: Vec<(usize, Result<TraceEvent, String>)> = golden_text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, parse_line(l).map_err(|e| e.to_string())))
        .collect();
    let mut out = String::new();
    let n = golden.len().max(live.len());
    for i in 0..n {
        let g = golden.get(i);
        let l = live.get(i);
        let divergent = match (g, l) {
            (Some((_, Ok(ge))), Some(le)) => to_json_line(ge) != to_json_line(le),
            (Some((_, Err(_))), _) => true,
            (None, _) | (_, None) => true,
        };
        if !divergent {
            continue;
        }
        let _ = writeln!(out, "first divergence at event {} (1-based):", i + 1);
        let lo = i.saturating_sub(DIFF_CONTEXT);
        for (line_no, parsed) in golden.iter().take(i).skip(lo) {
            if let Ok(e) = parsed {
                let _ = writeln!(out, "        = [{line_no:>5}] {}", describe(e));
            }
        }
        match g {
            Some((line_no, Ok(e))) => {
                let _ = writeln!(out, "  golden< [{line_no:>5}] {}", describe(e));
            }
            Some((line_no, Err(err))) => {
                let _ = writeln!(out, "  golden< [{line_no:>5}] unparsable: {err}");
            }
            None => {
                let _ = writeln!(out, "  golden< (stream ends: {} events)", golden.len());
            }
        }
        match l {
            Some(e) => {
                let _ = writeln!(out, "  live  > [{:>5}] {}", i + 1, describe(e));
            }
            None => {
                let _ = writeln!(out, "  live  > (stream ends: {} events)", live.len());
            }
        }
        break;
    }
    if out.is_empty() {
        return out;
    }
    // Summary-level deltas put the pointwise divergence in context.
    let golden_events: Vec<TraceEvent> =
        golden.iter().filter_map(|(_, r)| r.as_ref().ok()).copied().collect();
    let gs = TraceSummary::from_events(&golden_events);
    let ls = TraceSummary::from_events(live);
    let _ = writeln!(
        out,
        "  golden: {} events, {} cycles, {} bits, {} interrupts",
        golden_events.len(),
        gs.cycles,
        gs.bits,
        gs.interrupts
    );
    let _ = writeln!(
        out,
        "  live  : {} events, {} cycles, {} bits, {} interrupts",
        live.len(),
        ls.cycles,
        ls.bits,
        ls.interrupts
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_names_are_unique_and_match_files() {
        let cs = cases();
        assert!(cs.len() >= 10, "corpus must stay broad: {}", cs.len());
        let mut names: Vec<&str> = cs.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cs.len(), "duplicate case names");
        for c in &cs {
            assert!(c.golden_path(Path::new("x")).to_string_lossy().ends_with(".jsonl"));
        }
    }

    #[test]
    fn degenerate_cases_sit_on_the_intended_boundary_side() {
        use crate::geometry_fuzz::{degenerate_instance, Expectation, GeoFamily};
        let cs = cases();
        let degenerate: Vec<&CorpusCase> = cs.iter().filter(|c| c.degenerate.is_some()).collect();
        assert_eq!(degenerate.len(), 4, "one corpus case per degenerate family");
        let mut families: Vec<GeoFamily> =
            degenerate.iter().map(|c| c.degenerate.expect("filtered on degenerate")).collect();
        families.sort_by_key(|f| f.label());
        families.dedup();
        assert_eq!(families.len(), 4, "every family is represented");
        for c in &degenerate {
            let family = c.degenerate.expect("filtered on degenerate");
            let inst = degenerate_instance(family, c.n, c.seed ^ 0xD6);
            assert_eq!(inst.positions.len(), c.n);
            match family {
                // The near-multiplicity pair must be separated *above* the
                // tolerance threshold: two distinct points the algorithm
                // tolerates, not an accidental multiplicity.
                GeoFamily::NearMultiplicity => {
                    assert_eq!(inst.expectation, Expectation::MustNotHold);
                    assert!(inst.perturbation > inst.threshold);
                }
                // The other three are epsilon-perturbed *within* tolerance:
                // nonzero perturbation the classifiers must absorb.
                _ => {
                    assert_eq!(inst.expectation, Expectation::MustHold);
                    assert!(inst.perturbation > 0.0);
                    assert!(inst.perturbation <= inst.threshold);
                }
            }
        }
    }

    #[test]
    fn every_scheduler_kind_is_covered() {
        let cs = cases();
        for kind in SchedulerKind::all() {
            assert!(cs.iter().any(|c| c.kind == kind), "no corpus case for {kind:?}");
        }
        assert!(cs.iter().any(|c| c.multiplicity));
        assert!(cs.iter().any(|c| !c.multiplicity));
        assert!(cs.iter().any(|c| c.symmetric.is_some()));
        assert!(cs.iter().any(|c| c.async_config.is_some()));
        assert!(cs.iter().any(|c| !c.randomize_frames));
    }

    #[test]
    fn live_digest_matches_serialized_bytes() {
        // The two digest paths (HashSink during the run, FNV over the
        // serialized lines) must agree — this is the contract that lets
        // `verify` compare a file digest against a live one.
        let case = &cases()[0];
        let (_r, live) = case.spec().try_run_digest().unwrap();
        let events = case.replay_events();
        let mut text = String::new();
        for e in &events {
            text.push_str(&to_json_line(e));
            text.push('\n');
        }
        assert_eq!(fnv1a(text.as_bytes()), live);
    }

    #[test]
    fn replays_are_deterministic() {
        let case = &cases()[4]; // async case: the most scheduler-dependent
        let (_, a) = case.spec().try_run_digest().unwrap();
        let (_, b) = case.spec().try_run_digest().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn manifest_round_trips() {
        let dir = std::env::temp_dir().join("apf-conformance-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let entries = vec![
            ManifestEntry { name: "a".into(), digest: 0xdead_beef, events: 42 },
            ManifestEntry { name: "b".into(), digest: u64::MAX, events: 0 },
        ];
        write_manifest(&dir, &entries).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), entries);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn event_diff_pinpoints_a_perturbation() {
        let case = &cases()[0];
        let events = case.replay_events();
        assert!(events.len() > 8, "corpus case too short to perturb");
        let mut text = String::new();
        for (i, e) in events.iter().enumerate() {
            let mut e = *e;
            // Shift one event mid-stream to a bogus step.
            if i == 6 {
                if let TraceEvent::StepBegin { step, .. }
                | TraceEvent::Look { step, .. }
                | TraceEvent::CoinFlip { step, .. }
                | TraceEvent::RandomWord { step, .. }
                | TraceEvent::Decide { step, .. }
                | TraceEvent::PhaseChange { step, .. }
                | TraceEvent::MoveSlice { step, .. }
                | TraceEvent::Interrupt { step, .. }
                | TraceEvent::Formed { step }
                | TraceEvent::TrialEnd { step, .. } = &mut e
                {
                    *step += 1000;
                }
            }
            text.push_str(&to_json_line(&e));
            text.push('\n');
        }
        let diff = event_diff(&text, &events);
        assert!(diff.contains("first divergence"), "{diff}");
        assert!(diff.contains("golden<"), "{diff}");
        assert!(diff.contains("live  >"), "{diff}");
        // And identical streams produce no diff at all.
        let mut clean = String::new();
        for e in &events {
            clean.push_str(&to_json_line(e));
            clean.push('\n');
        }
        assert!(event_diff(&clean, &events).is_empty());
    }
}
