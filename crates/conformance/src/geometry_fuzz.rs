//! Geometry-space adversarial fuzzing: the *instance* space, not the
//! schedule space.
//!
//! The schedule fuzzer ([`crate::fuzz`]) adversaries activation order but
//! always runs on well-separated asymmetric instances. The paper's
//! Algorithm 1, however, hinges on exact symmetry classification — ρ(P),
//! reg(P), SEC membership, multiplicity detection — and classifiers break
//! on *degenerate geometry*: configurations that straddle a tolerance
//! boundary. This module generates seeded instances from four degenerate
//! families:
//!
//! * [`GeoFamily::PerturbedRho`] — a ρ=k configuration with one robot's
//!   angle perturbed by a multiple of the classifier's angular slack
//!   ([`angular_slack`]), straddling the symmetry tolerance;
//! * [`GeoFamily::Collinear`] — collinear and near-collinear clusters
//!   (transverse offsets around `Tol::eps`);
//! * [`GeoFamily::SecBoundary`] — a robot ε-inside / on / ε-outside the
//!   smallest enclosing circle;
//! * [`GeoFamily::NearMultiplicity`] — a pair separated by a distance just
//!   above / below the multiplicity threshold.
//!
//! Each instance records its unperturbed **template**, the perturbation
//! magnitude, the classifier threshold it straddles, and a
//! correct-by-construction [`Expectation`]: clearly inside the tolerance
//! the degenerate property MUST be classified as holding, clearly outside
//! it MUST NOT, and in the gray band around the boundary either answer is
//! legal. A pure-geometry oracle ([`check_instance`]) enforces the
//! expectation plus unconditional invariants (SEC soundness, classifier
//! determinism); the ρ classifier is injectable so a deliberately broken
//! tolerance is caught by the same oracle (see the injected-bug test).
//!
//! Instances are also run end-to-end under the FSYNC / SSYNC / ASYNC
//! scheduler matrix with the schedule fuzzer's trace oracles
//! (stream-legality, ≤ 1 bit per election cycle, phase legality, rigid
//! motion). Violations shrink over *both* spaces: schedules with the
//! existing ddmin machinery, geometry by dropping template-preserving robot
//! groups and snapping coordinates toward the template, emitting a minimal
//! `(initial positions, ScriptedScheduler)` reproducer.

use crate::fuzz::{check_events, script_to_text, FuzzConfig, Violation};
use apf_bench::engine::trial_seed;
use apf_geometry::symmetry::consts::angular_slack;
use apf_geometry::symmetry::symmetricity;
use apf_geometry::{smallest_enclosing_circle, Configuration, Point, Tol, Vector};
use apf_scheduler::{Action, PhaseView, Scheduler, SchedulerKind, ScriptedScheduler};
use apf_sim::{World, WorldConfig};
use apf_trace::VecSink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The degenerate instance families the classifiers must survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GeoFamily {
    /// ρ=k configuration, one robot's angle perturbed around the symmetry
    /// tolerance.
    PerturbedRho,
    /// Collinear cluster with transverse offsets around `Tol::eps`.
    Collinear,
    /// A robot radially perturbed around the SEC circumference.
    SecBoundary,
    /// A pair separated around the multiplicity (coincidence) threshold.
    NearMultiplicity,
}

impl GeoFamily {
    /// Every family, in the order campaigns cycle through them.
    pub const ALL: [GeoFamily; 4] = [
        GeoFamily::PerturbedRho,
        GeoFamily::Collinear,
        GeoFamily::SecBoundary,
        GeoFamily::NearMultiplicity,
    ];

    /// Stable kebab-case label (reproducer headers, corpus case names).
    pub fn label(self) -> &'static str {
        match self {
            GeoFamily::PerturbedRho => "perturbed-rho",
            GeoFamily::Collinear => "collinear",
            GeoFamily::SecBoundary => "sec-boundary",
            GeoFamily::NearMultiplicity => "near-multiplicity",
        }
    }

    /// Parses a [`GeoFamily::label`].
    pub fn from_label(s: &str) -> Option<GeoFamily> {
        GeoFamily::ALL.into_iter().find(|f| f.label() == s)
    }
}

impl std::fmt::Display for GeoFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What the classifier must say about the instance's degenerate property,
/// decided at generation time from the perturbation / threshold ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// Perturbation clearly inside the tolerance: the degenerate property
    /// (symmetry, multiplicity, on-SEC) must be detected.
    MustHold,
    /// Perturbation clearly outside: the property must NOT be detected.
    MustNotHold,
    /// Within the gray band around the boundary: either answer is legal;
    /// only unconditional invariants are checked.
    Boundary,
}

/// Perturbation magnitudes as multiples of the classifier threshold. The
/// ladder straddles the boundary: below 1 the property still holds, above
/// it does not, and the 0.9 / 1.1 rungs land within 2·ε of the boundary
/// (the acceptance criterion asserted in tests).
const LADDER: [f64; 9] = [0.0, 0.125, 0.25, 0.5, 0.9, 1.1, 2.0, 8.0, 32.0];

/// Ratio at or below which the perturbation is clearly inside tolerance.
const MUST_HOLD_MAX: f64 = 0.5;
/// Ratio at or above which the perturbation is clearly outside tolerance.
const MUST_NOT_HOLD_MIN: f64 = 8.0;

fn expectation_for(factor: f64) -> Expectation {
    if factor <= MUST_HOLD_MAX {
        Expectation::MustHold
    } else if factor >= MUST_NOT_HOLD_MIN {
        Expectation::MustNotHold
    } else {
        Expectation::Boundary
    }
}

/// One generated degenerate instance: the perturbed positions, the exact
/// unperturbed template they were derived from, and the ground truth the
/// generator knows by construction.
#[derive(Debug, Clone)]
pub struct GeoInstance {
    /// The family this instance belongs to.
    pub family: GeoFamily,
    /// The (perturbed) robot positions.
    pub positions: Vec<Point>,
    /// The unperturbed degenerate template (same length; shrinking snaps
    /// coordinates toward it).
    pub template: Vec<Point>,
    /// The classification center (template symmetry center for
    /// `PerturbedRho`; informational for the other families).
    pub center: Point,
    /// The template's symmetricity (1 for non-rho families).
    pub template_rho: usize,
    /// Indices of robots whose position differs from the template.
    pub perturbed: Vec<usize>,
    /// Indices that must never be dropped by the geometry shrinker (the
    /// perturbed robots plus their structural partners: the multiplicity
    /// partner, the SEC anchors).
    pub essential: Vec<usize>,
    /// Perturbation magnitude (radians for `PerturbedRho`, distance
    /// otherwise).
    pub perturbation: f64,
    /// The classifier threshold the perturbation straddles (the angular
    /// slack at the perturbed radius, or `Tol::eps`).
    pub threshold: f64,
    /// For `SecBoundary`: whether the robot was pushed outward.
    pub outward: bool,
    /// Ground truth by construction.
    pub expectation: Expectation,
}

impl GeoInstance {
    /// Distance of the perturbation from the classifier boundary (0 = on
    /// the boundary exactly). The acceptance criterion: every family
    /// produces instances with `boundary_distance() <= 2 * threshold`.
    pub fn boundary_distance(&self) -> f64 {
        (self.perturbation - self.threshold).abs()
    }

    /// Robot count.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Never empty (generators require `n >= 4`).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Generates the degenerate instance of `family` for `(n, seed)`.
/// Deterministic: the same inputs always produce the same instance.
///
/// # Panics
///
/// Panics if `n < 4` (the families need room for anchors and partners).
pub fn degenerate_instance(family: GeoFamily, n: usize, seed: u64) -> GeoInstance {
    assert!(n >= 4, "degenerate families need at least 4 robots");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E0F);
    let factor = LADDER[rng.gen_range(0..LADDER.len())];
    match family {
        GeoFamily::PerturbedRho => perturbed_rho(n, seed, factor, &mut rng),
        GeoFamily::Collinear => collinear(n, factor, &mut rng),
        GeoFamily::SecBoundary => sec_boundary(n, factor, &mut rng),
        GeoFamily::NearMultiplicity => near_multiplicity(n, seed, factor, &mut rng),
    }
}

/// Smallest non-trivial divisor of `n` (`n` itself when prime): the largest
/// orbit structure `symmetric_configuration` supports for every `n`.
fn small_rho(n: usize) -> usize {
    (2..=n).find(|d| n.is_multiple_of(*d)).unwrap_or(n)
}

fn perturbed_rho(n: usize, seed: u64, factor: f64, rng: &mut StdRng) -> GeoInstance {
    let tol = Tol::default();
    let rho = small_rho(n);
    let template = apf_patterns::symmetric_configuration(n, rho, seed ^ 0x6E0);
    let idx = rng.gen_range(0..n);
    let radius = template[idx].dist(Point::ORIGIN);
    let slack = angular_slack(&tol, radius);
    let phi = factor * slack * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
    let mut positions = template.clone();
    positions[idx] = positions[idx].rotate_around(Point::ORIGIN, phi);
    GeoInstance {
        family: GeoFamily::PerturbedRho,
        positions,
        template,
        center: Point::ORIGIN,
        template_rho: rho,
        perturbed: if factor > 0.0 { vec![idx] } else { Vec::new() },
        essential: vec![idx],
        perturbation: phi.abs(),
        threshold: slack,
        outward: false,
        expectation: expectation_for(factor),
    }
}

fn collinear(n: usize, factor: f64, rng: &mut StdRng) -> GeoInstance {
    let tol = Tol::default();
    let dir_angle = rng.gen_range(0.0..std::f64::consts::TAU);
    let dir = Vector::new(dir_angle.cos(), dir_angle.sin());
    let normal = Vector::new(-dir.y, dir.x);
    let anchor = Point::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
    let spacing = rng.gen_range(0.2..0.5);
    let template: Vec<Point> = (0..n).map(|i| anchor + dir * (i as f64 * spacing)).collect();
    // Perturb one interior robot transversely; the endpoints stay exact so
    // the template's SEC (the endpoint diameter circle) is preserved.
    let idx = rng.gen_range(1..n - 1);
    let offset = factor * tol.eps * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
    let mut positions = template.clone();
    positions[idx] += normal * offset;
    GeoInstance {
        family: GeoFamily::Collinear,
        positions,
        template,
        center: anchor,
        template_rho: 1,
        perturbed: if factor > 0.0 { vec![idx] } else { Vec::new() },
        essential: vec![0, idx, n - 1],
        perturbation: offset.abs(),
        threshold: tol.eps,
        outward: false,
        expectation: expectation_for(factor),
    }
}

fn sec_boundary(n: usize, factor: f64, rng: &mut StdRng) -> GeoInstance {
    let tol = Tol::default();
    let ring_r = rng.gen_range(0.8..1.2);
    let center = Point::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5));
    let at = |angle: f64, r: f64| center + Vector::new(angle.cos(), angle.sin()) * r;
    let mut template = Vec::with_capacity(n);
    // Three anchors spread over more than a semicircle pin the SEC to the
    // ring regardless of what the perturbed robot does inside it.
    for angle in [0.3, 2.5, 4.4] {
        template.push(at(angle, ring_r));
    }
    for _ in 3..n - 1 {
        template
            .push(at(rng.gen_range(0.0..std::f64::consts::TAU), rng.gen_range(0.1..0.6) * ring_r));
    }
    // The boundary robot sits exactly on the ring in the template.
    let angle = rng.gen_range(0.0..std::f64::consts::TAU);
    template.push(at(angle, ring_r));
    let idx = n - 1;
    let outward = rng.gen_bool(0.5);
    let d = factor * tol.eps;
    let mut positions = template.clone();
    positions[idx] = at(angle, if outward { ring_r + d } else { ring_r - d });
    // Pushed outward the robot still defines (and lies on) the SEC at any
    // distance; only an inward push can take it off the boundary.
    let expectation = if outward { Expectation::MustHold } else { expectation_for(factor) };
    GeoInstance {
        family: GeoFamily::SecBoundary,
        positions,
        template,
        center,
        template_rho: 1,
        perturbed: if factor > 0.0 { vec![idx] } else { Vec::new() },
        essential: vec![0, 1, 2, idx],
        perturbation: d,
        threshold: tol.eps,
        outward,
        expectation,
    }
}

fn near_multiplicity(n: usize, seed: u64, factor: f64, rng: &mut StdRng) -> GeoInstance {
    let tol = Tol::default();
    let base = apf_patterns::asymmetric_configuration(n - 1, seed ^ 0x3D7);
    let partner = rng.gen_range(0..n - 1);
    let dir_angle = rng.gen_range(0.0..std::f64::consts::TAU);
    let d = factor * tol.eps;
    let mut template = base.clone();
    template.push(base[partner]);
    let mut positions = base;
    positions.push(template[partner] + Vector::new(dir_angle.cos(), dir_angle.sin()) * d);
    GeoInstance {
        family: GeoFamily::NearMultiplicity,
        positions,
        template,
        center: Point::ORIGIN,
        template_rho: 1,
        perturbed: if factor > 0.0 { vec![n - 1] } else { Vec::new() },
        essential: vec![partner, n - 1],
        perturbation: d,
        threshold: tol.eps,
        outward: false,
        expectation: expectation_for(factor),
    }
}

/// The ρ classifier under test: injectable so a test can substitute a
/// deliberately broken tolerance and prove the oracle plus shrinker catch
/// and minimize it.
pub type RhoClassifier = fn(&Configuration, Point, &Tol) -> usize;

/// The pure-geometry oracle's configuration.
#[derive(Debug, Clone)]
pub struct GeoOracle {
    /// Tolerance the classifiers run under.
    pub tol: Tol,
    /// The ρ classifier (defaults to the real [`symmetricity`]).
    pub rho_of: RhoClassifier,
}

impl Default for GeoOracle {
    fn default() -> Self {
        GeoOracle { tol: Tol::default(), rho_of: symmetricity }
    }
}

/// Extra slack (in units of the family threshold) the oracle grants the
/// classifiers on unconditional geometric checks, absorbing the numerical
/// noise of center construction.
const ORACLE_SLACK: f64 = 4.0;

/// Checks the classifier invariants on one instance. Violation kinds:
/// `geometry-classifier` (the [`Expectation`] ground truth),
/// `sec-soundness` (the SEC must enclose every robot with at least two on
/// its boundary), and `geometry-determinism` (classifiers are pure).
pub fn check_instance(inst: &GeoInstance, oracle: &GeoOracle) -> Vec<Violation> {
    let mut violations = Vec::new();
    let tol = &oracle.tol;
    let cfg = Configuration::new(inst.positions.clone());

    // Determinism: classifiers are pure functions of the configuration.
    let rho1 = (oracle.rho_of)(&cfg, inst.center, tol);
    let rho2 = (oracle.rho_of)(&cfg, inst.center, tol);
    if rho1 != rho2 {
        violations.push(Violation {
            kind: "geometry-determinism",
            detail: format!("rho classifier returned {rho1} then {rho2} on the same input"),
        });
    }

    // SEC soundness: every robot inside (with slack), >= 2 on the boundary.
    let sec = smallest_enclosing_circle(&inst.positions);
    let slack = ORACLE_SLACK * tol.eps;
    for (i, p) in inst.positions.iter().enumerate() {
        let dist = p.dist(sec.center);
        if dist > sec.radius + slack {
            violations.push(Violation {
                kind: "sec-soundness",
                detail: format!("robot {i} lies {dist} from the SEC center, radius {}", sec.radius),
            });
        }
    }
    let on_boundary = inst
        .positions
        .iter()
        .filter(|p| (p.dist(sec.center) - sec.radius).abs() <= 1e-6 * (1.0 + sec.radius))
        .count();
    if inst.positions.len() >= 2 && on_boundary < 2 {
        violations.push(Violation {
            kind: "sec-soundness",
            detail: format!("only {on_boundary} robots on the SEC boundary (need >= 2)"),
        });
    }

    // The family's ground-truth band.
    match inst.family {
        GeoFamily::PerturbedRho => match inst.expectation {
            Expectation::MustHold if rho1 != inst.template_rho => violations.push(Violation {
                kind: "geometry-classifier",
                detail: format!(
                    "perturbation {:.3e} <= {:.1}x slack {:.3e} but rho = {rho1}, template {}",
                    inst.perturbation, MUST_HOLD_MAX, inst.threshold, inst.template_rho
                ),
            }),
            Expectation::MustNotHold if rho1 == inst.template_rho => violations.push(Violation {
                kind: "geometry-classifier",
                detail: format!(
                    "perturbation {:.3e} >= {:.0}x slack {:.3e} but rho still {} (n = {})",
                    inst.perturbation,
                    MUST_NOT_HOLD_MIN,
                    inst.threshold,
                    inst.template_rho,
                    inst.len()
                ),
            }),
            _ => {}
        },
        GeoFamily::NearMultiplicity => {
            let mult = cfg.has_multiplicity(tol);
            match inst.expectation {
                Expectation::MustHold if !mult => violations.push(Violation {
                    kind: "geometry-classifier",
                    detail: format!(
                        "pair {:.3e} apart (<= {:.1}x eps) but no multiplicity detected",
                        inst.perturbation, MUST_HOLD_MAX
                    ),
                }),
                Expectation::MustNotHold if mult => violations.push(Violation {
                    kind: "geometry-classifier",
                    detail: format!(
                        "pair {:.3e} apart (>= {:.0}x eps) but multiplicity detected",
                        inst.perturbation, MUST_NOT_HOLD_MIN
                    ),
                }),
                _ => {}
            }
        }
        GeoFamily::SecBoundary => {
            if let Some(&idx) = inst.essential.last() {
                let dist = inst.positions[idx].dist(sec.center);
                let on = (dist - sec.radius).abs() <= slack;
                match inst.expectation {
                    Expectation::MustHold if !on => violations.push(Violation {
                        kind: "geometry-classifier",
                        detail: format!(
                            "boundary robot {idx} at {dist}, SEC radius {} (expected on)",
                            sec.radius
                        ),
                    }),
                    Expectation::MustNotHold if dist > sec.radius - slack => {
                        violations.push(Violation {
                            kind: "geometry-classifier",
                            detail: format!(
                                "robot {idx} pushed {:.3e} inside but still on the SEC \
                                 (dist {dist}, radius {})",
                                inst.perturbation, sec.radius
                            ),
                        });
                    }
                    _ => {}
                }
            }
        }
        GeoFamily::Collinear => {
            // An exactly collinear template's SEC is the endpoint-diameter
            // circle; transverse noise within tolerance cannot grow it by
            // more than the slack.
            if inst.expectation == Expectation::MustHold {
                let span = inst.template[0].dist(inst.template[inst.template.len() - 1]);
                if (2.0 * sec.radius - span).abs() > slack {
                    violations.push(Violation {
                        kind: "geometry-classifier",
                        detail: format!(
                            "collinear SEC diameter {} differs from span {span}",
                            2.0 * sec.radius
                        ),
                    });
                }
            }
        }
    }
    violations
}

/// Whether `inst` still triggers a violation of `kind` under `oracle`.
fn geometry_violates(inst: &GeoInstance, oracle: &GeoOracle, kind: &str) -> bool {
    check_instance(inst, oracle).iter().any(|v| v.kind == kind)
}

/// Template-preserving droppable robot groups, by family: whole orbits for
/// `PerturbedRho`, single robots elsewhere; essential robots (perturbed,
/// multiplicity partner, SEC anchors) are never offered.
fn drop_candidates(inst: &GeoInstance) -> Vec<Vec<usize>> {
    let tol = Tol::default();
    let is_essential = |i: &usize| inst.essential.contains(i);
    match inst.family {
        GeoFamily::PerturbedRho => {
            // Orbits are radius classes around the center (distinct radii by
            // construction of `symmetric_configuration`).
            let mut orbits: Vec<(f64, Vec<usize>)> = Vec::new();
            for (i, p) in inst.template.iter().enumerate() {
                let r = p.dist(inst.center);
                match orbits.iter_mut().find(|(or, _)| tol.eq(*or, r)) {
                    Some((_, members)) => members.push(i),
                    None => orbits.push((r, vec![i])),
                }
            }
            orbits
                .into_iter()
                .map(|(_, members)| members)
                .filter(|m| !m.iter().any(&is_essential))
                .collect()
        }
        _ => (0..inst.len()).filter(|i| !is_essential(i)).map(|i| vec![i]).collect(),
    }
}

/// `inst` minus the robots in `removed` (sorted ascending), with perturbed
/// and essential indices remapped.
fn remove_robots(inst: &GeoInstance, removed: &[usize]) -> GeoInstance {
    let keep = |i: &usize| !removed.contains(i);
    let remap = |i: usize| i - removed.iter().filter(|&&r| r < i).count();
    let filter_points =
        |pts: &[Point]| pts.iter().enumerate().filter(|(i, _)| keep(i)).map(|(_, &p)| p).collect();
    GeoInstance {
        positions: filter_points(&inst.positions),
        template: filter_points(&inst.template),
        perturbed: inst.perturbed.iter().filter(|i| keep(i)).map(|&i| remap(i)).collect(),
        essential: inst.essential.iter().filter(|i| keep(i)).map(|&i| remap(i)).collect(),
        ..inst.clone()
    }
}

/// Shrinks a geometry-violating instance to a locally minimal reproducer of
/// `kind`: drop template-preserving robot groups, then snap perturbed
/// coordinates toward the template (full snap, then repeated halving while
/// the expectation band still applies). Returns the minimized instance and
/// the number of shrink candidates evaluated.
pub fn shrink_geometry(inst: &GeoInstance, oracle: &GeoOracle, kind: &str) -> (GeoInstance, u64) {
    let mut current = inst.clone();
    let mut steps = 0u64;

    // Drop robot groups while the violation persists.
    loop {
        let mut progressed = false;
        for group in drop_candidates(&current) {
            if group.len() >= current.len() {
                continue; // never empty the configuration
            }
            let mut sorted = group.clone();
            // apf-lint: allow(stable-sort-in-digest-paths) — distinct robot indices: keys are total
            sorted.sort_unstable();
            let candidate = remove_robots(&current, &sorted);
            steps += 1;
            if candidate.len() >= 2 && geometry_violates(&candidate, oracle, kind) {
                current = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed {
            break;
        }
    }

    // Snap perturbed coordinates toward the template. A full snap removes
    // the perturbation entirely; halving keeps shrinking while the
    // recorded expectation band still applies. A MustNotHold instance is
    // never snapped below its band: a snapped-to-template configuration
    // genuinely has the symmetry, so the ground-truth label would go stale
    // and the minimized reproducer would accuse a correct classifier.
    for idx in current.perturbed.clone() {
        if current.expectation != Expectation::MustNotHold {
            let mut full = current.clone();
            full.positions[idx] = full.template[idx];
            full.perturbation = 0.0;
            steps += 1;
            if geometry_violates(&full, oracle, kind) {
                full.perturbed.retain(|&i| i != idx);
                current = full;
                continue;
            }
        }
        loop {
            let mut half = current.clone();
            half.positions[idx] = current.positions[idx].lerp(current.template[idx], 0.5);
            half.perturbation = current.perturbation * 0.5;
            if current.expectation == Expectation::MustNotHold
                && half.perturbation < MUST_NOT_HOLD_MIN * half.threshold
            {
                break;
            }
            steps += 1;
            if geometry_violates(&half, oracle, kind) {
                current = half;
            } else {
                break;
            }
        }
    }
    (current, steps)
}

/// Geometry-fuzz campaign knobs.
#[derive(Debug, Clone, Copy)]
pub struct GeoFuzzConfig {
    /// Robot count per instance (the paper's algorithm needs n >= 7).
    pub robots: usize,
    /// Recorded schedule prefix for shrinkable replays (engine steps).
    pub script_steps: u64,
    /// Step budget per world run.
    pub step_budget: u64,
    /// Scheduler matrix every instance runs under.
    pub schedulers: [SchedulerKind; 3],
    /// Whether to run instances end-to-end (pure-geometry checks always
    /// run; world runs dominate the cost).
    pub world_runs: bool,
}

impl Default for GeoFuzzConfig {
    fn default() -> Self {
        GeoFuzzConfig {
            robots: 8,
            script_steps: 300,
            step_budget: 300_000,
            schedulers: [SchedulerKind::Fsync, SchedulerKind::Ssync, SchedulerKind::Async],
            world_runs: true,
        }
    }
}

impl GeoFuzzConfig {
    /// The schedule-fuzzer view of these knobs (shared trace oracles).
    /// Multiplicity detection is on: degenerate instances may legitimately
    /// gather, and the oracle must not flag that as phase-illegal.
    fn fuzz_config(&self, robots: usize) -> FuzzConfig {
        FuzzConfig {
            robots,
            script_steps: self.script_steps,
            step_budget: self.step_budget,
            multiplicity: true,
            require_formation: false,
            ..FuzzConfig::default()
        }
    }
}

/// Records the first `limit` batches any wrapped scheduler emits, making
/// every matrix run replayable through [`ScriptedScheduler`].
struct RecordingScheduler {
    inner: Box<dyn Scheduler>,
    script: Arc<Mutex<Vec<Vec<Action>>>>,
    limit: u64,
    steps: u64,
}

impl RecordingScheduler {
    fn new(inner: Box<dyn Scheduler>, limit: u64) -> Self {
        RecordingScheduler { inner, script: Arc::new(Mutex::new(Vec::new())), limit, steps: 0 }
    }

    fn script_handle(&self) -> Arc<Mutex<Vec<Vec<Action>>>> {
        Arc::clone(&self.script)
    }
}

impl Scheduler for RecordingScheduler {
    fn next(&mut self, phases: &[PhaseView]) -> Vec<Action> {
        let batch = self.inner.next(phases);
        self.steps += 1;
        if self.steps <= self.limit {
            // apf-lint: allow(panic-policy) — single-threaded use; poisoning needs a prior panic
            self.script.lock().expect("geo script lock").push(batch.clone());
        }
        batch
    }

    fn name(&self) -> &'static str {
        "geo-recorder"
    }
}

/// The target pattern for a world run: derived from the case seed, sized to
/// the instance.
fn pattern_for(n: usize, seed: u64) -> Vec<Point> {
    apf_patterns::random_pattern(n, seed ^ 0x7E11)
}

fn world_on(
    inst_positions: Vec<Point>,
    pattern: Vec<Point>,
    fcfg: &FuzzConfig,
    scheduler: Box<dyn Scheduler>,
    seed: u64,
) -> World {
    let config =
        WorldConfig { multiplicity_detection: fcfg.multiplicity, ..WorldConfig::default() };
    World::new(inst_positions, pattern, (fcfg.algorithm)(), scheduler, config, seed)
}

/// Replays `script` on the instance's world and reports whether a violation
/// of `kind` recurs (the geometry analogue of [`crate::fuzz::replay_violates`]).
pub fn geo_replay_violates(
    cfg: &GeoFuzzConfig,
    positions: &[Point],
    seed: u64,
    script: &[Vec<Action>],
    kind: &str,
) -> bool {
    let fcfg = cfg.fuzz_config(positions.len());
    let scheduler = ScriptedScheduler::new(script.to_vec());
    let mut world = world_on(
        positions.to_vec(),
        pattern_for(positions.len(), seed),
        &fcfg,
        Box::new(scheduler),
        seed,
    );
    let sink = Arc::new(Mutex::new(VecSink::new()));
    world.set_sink(Box::new(Arc::clone(&sink)));
    let outcome = world.run(script.len() as u64);
    // apf-lint: allow(panic-policy) — single-threaded use; poisoning needs a prior panic
    let events = sink.lock().expect("geo sink lock").events().to_vec();
    if kind == "compute-error" {
        return matches!(outcome.reason, apf_sim::StopReason::AlgorithmError(_));
    }
    check_events(&fcfg, &events, outcome.formed, false).iter().any(|v| v.kind == kind)
}

/// Drops actions addressed to `removed` robots from a script and remaps the
/// surviving indices, so a geometry-shrunk instance can revalidate the same
/// schedule.
fn remap_script(script: &[Vec<Action>], removed: &[usize], old_n: usize) -> Vec<Vec<Action>> {
    let remap: Vec<Option<usize>> = (0..old_n)
        .map(|i| {
            if removed.contains(&i) {
                None
            } else {
                Some(i - removed.iter().filter(|&&r| r < i).count())
            }
        })
        .collect();
    script
        .iter()
        .map(|batch| {
            batch
                .iter()
                .filter_map(|action| {
                    let robot = remap.get(action.robot()).copied().flatten()?;
                    Some(match *action {
                        Action::Look { .. } => Action::Look { robot },
                        Action::Move { distance, end_phase, .. } => {
                            Action::Move { robot, distance, end_phase }
                        }
                    })
                })
                .collect::<Vec<Action>>()
        })
        .filter(|batch| !batch.is_empty())
        .collect()
}

/// A violating geometry-fuzz case, minimized over schedule and geometry.
#[derive(Debug, Clone)]
pub struct GeoCounterexample {
    /// Case index within its campaign.
    pub case_index: u64,
    /// The case's derived seed.
    pub seed: u64,
    /// The degenerate family.
    pub family: GeoFamily,
    /// The scheduler kind the violation occurred under (`None`: the
    /// pure-geometry oracle, no world run involved).
    pub scheduler: Option<SchedulerKind>,
    /// Violations of the original run.
    pub violations: Vec<Violation>,
    /// Minimized initial positions.
    pub positions: Vec<Point>,
    /// Minimized schedule script (empty for pure-geometry violations).
    pub script: Vec<Vec<Action>>,
    /// Robot count before geometry shrinking.
    pub original_robots: usize,
    /// Script length before schedule shrinking.
    pub original_len: usize,
    /// Shrink candidates evaluated (schedule + geometry).
    pub shrink_steps: u64,
}

/// Campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct GeoFuzzReport {
    /// Cases executed (instance + scheduler matrix).
    pub cases: u64,
    /// Cases with no violation.
    pub clean: u64,
    /// Violating cases, minimized.
    pub counterexamples: Vec<GeoCounterexample>,
    /// Total shrink candidates evaluated.
    pub shrink_steps: u64,
}

impl GeoFuzzReport {
    /// Whether the campaign found no violations.
    pub fn is_clean(&self) -> bool {
        self.counterexamples.is_empty()
    }

    /// Folds another report into this one (timed campaigns run in rounds).
    pub fn merge(&mut self, other: GeoFuzzReport) {
        self.cases += other.cases;
        self.clean += other.clean;
        self.shrink_steps += other.shrink_steps;
        self.counterexamples.extend(other.counterexamples);
    }
}

/// Runs one geometry-fuzz case: generate the instance for `(family, seed)`,
/// check the pure-geometry oracle, then (when `world_runs`) execute the
/// scheduler matrix with the trace oracles. Violations are shrunk over
/// schedule and geometry. Deterministic per `(cfg, case_index, seed)`.
pub fn run_geo_case(
    cfg: &GeoFuzzConfig,
    oracle: &GeoOracle,
    case_index: u64,
    seed: u64,
) -> (u64, Vec<GeoCounterexample>) {
    let family = GeoFamily::ALL[(case_index % GeoFamily::ALL.len() as u64) as usize];
    let inst = degenerate_instance(family, cfg.robots, seed);
    let mut shrink_steps = 0u64;
    let mut counterexamples = Vec::new();

    // Layer 1: the pure-geometry classifier oracle.
    let geo_violations = check_instance(&inst, oracle);
    if let Some(first) = geo_violations.first() {
        let (minimized, steps) = shrink_geometry(&inst, oracle, first.kind);
        shrink_steps += steps;
        counterexamples.push(GeoCounterexample {
            case_index,
            seed,
            family,
            scheduler: None,
            violations: geo_violations,
            positions: minimized.positions,
            script: Vec::new(),
            original_robots: inst.len(),
            original_len: 0,
            shrink_steps: steps,
        });
    }

    // Layer 2: the scheduler matrix with the trace oracles. Instances with
    // genuine multiplicity are exercised by layer 1 only — the paper's
    // algorithm assumes multiplicity-free initial configurations.
    let initial_cfg = Configuration::new(inst.positions.clone());
    if cfg.world_runs && !initial_cfg.has_multiplicity(&oracle.tol) {
        let fcfg = cfg.fuzz_config(inst.len());
        for (k, kind) in cfg.schedulers.into_iter().enumerate() {
            let sched_seed = seed ^ (0xA11 + k as u64);
            let recorder = RecordingScheduler::new(kind.build(sched_seed), cfg.script_steps);
            let script_handle = recorder.script_handle();
            let mut world = world_on(
                inst.positions.clone(),
                pattern_for(inst.len(), seed),
                &fcfg,
                Box::new(recorder),
                seed,
            );
            let sink = Arc::new(Mutex::new(VecSink::new()));
            world.set_sink(Box::new(Arc::clone(&sink)));
            let outcome = world.run(cfg.step_budget);
            drop(world);
            // apf-lint: allow(panic-policy) — single-threaded use; poisoning needs a prior panic
            let events = sink.lock().expect("geo sink lock").events().to_vec();
            let mut violations = check_events(&fcfg, &events, outcome.formed, false);
            if let apf_sim::StopReason::AlgorithmError(e) = &outcome.reason {
                violations.insert(
                    0,
                    Violation {
                        kind: "compute-error",
                        detail: format!("algorithm rejected a snapshot: {e}"),
                    },
                );
            }
            if violations.is_empty() {
                continue;
            }
            // apf-lint: allow(panic-policy) — single-threaded use; poisoning needs a prior panic
            let script = script_handle.lock().expect("geo script lock").clone();
            let (positions, script, steps) =
                shrink_case(cfg, &inst, seed, script, violations[0].kind);
            shrink_steps += steps;
            counterexamples.push(GeoCounterexample {
                case_index,
                seed,
                family,
                scheduler: Some(kind),
                violations,
                positions,
                original_robots: inst.len(),
                original_len: cfg.script_steps as usize,
                script,
                shrink_steps: steps,
            });
        }
    }
    (shrink_steps, counterexamples)
}

/// Minimizes a world-run violation over both spaces: the schedule first
/// (the existing ddmin machinery, replayed on this instance's geometry),
/// then the geometry (drop non-essential robots with the script remapped,
/// snap perturbed coordinates to the template), revalidating every
/// candidate by scripted replay.
fn shrink_case(
    cfg: &GeoFuzzConfig,
    inst: &GeoInstance,
    seed: u64,
    script: Vec<Vec<Action>>,
    kind: &str,
) -> (Vec<Point>, Vec<Vec<Action>>, u64) {
    let mut steps = 0u64;

    // Schedule space: reuse the schedule fuzzer's shrinker shape — prefix
    // truncation then chunked ddmin — against this instance's replay.
    let mut current = inst.positions.clone();
    let mut script = {
        let violates = |s: &[Vec<Action>]| geo_replay_violates(cfg, &current, seed, s, kind);
        let mut s = script;
        let mut lo = 0usize;
        let mut hi = s.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            steps += 1;
            if violates(&s[..mid]) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        s.truncate(hi);
        let mut chunk = (s.len() / 2).max(1);
        while chunk >= 1 {
            let mut i = 0;
            while i < s.len() {
                let mut candidate = s.clone();
                candidate.drain(i..(i + chunk).min(candidate.len()));
                steps += 1;
                if !candidate.is_empty() && violates(&candidate) {
                    s = candidate;
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        s
    };

    // Geometry space: drop non-essential robots (script remapped), then
    // snap perturbed coordinates back to the template.
    let mut shrunk = inst.clone();
    loop {
        let mut progressed = false;
        for group in drop_candidates(&shrunk) {
            if shrunk.len() - group.len() < 2 {
                continue;
            }
            let mut sorted = group.clone();
            // apf-lint: allow(stable-sort-in-digest-paths) — distinct robot indices: keys are total
            sorted.sort_unstable();
            let candidate = remove_robots(&shrunk, &sorted);
            let candidate_script = remap_script(&script, &sorted, shrunk.len());
            steps += 1;
            if geo_replay_violates(cfg, &candidate.positions, seed, &candidate_script, kind) {
                shrunk = candidate;
                script = candidate_script;
                progressed = true;
                break;
            }
        }
        if !progressed {
            break;
        }
    }
    for idx in shrunk.perturbed.clone() {
        let mut candidate = shrunk.clone();
        candidate.positions[idx] = candidate.template[idx];
        steps += 1;
        if geo_replay_violates(cfg, &candidate.positions, seed, &script, kind) {
            candidate.perturbed.retain(|&i| i != idx);
            shrunk = candidate;
        }
    }
    current = shrunk.positions;
    (current, script, steps)
}

/// Runs `cases` geometry-fuzz cases with seeds derived from
/// `campaign_seed` on `jobs` worker threads. Like
/// [`crate::fuzz::fuzz_campaign`], the report is identical for any `jobs`
/// value: each case depends only on its index-derived seed and results are
/// collected in index order.
pub fn geo_fuzz_campaign(
    cfg: &GeoFuzzConfig,
    oracle: &GeoOracle,
    campaign_seed: u64,
    cases: u64,
    jobs: usize,
) -> GeoFuzzReport {
    geo_fuzz_rounds(cfg, oracle, campaign_seed, 0, cases, jobs)
}

/// Runs case indices `first..first + cases` (a shard of a larger campaign:
/// case `i` here is bit-identical to case `i` anywhere else).
pub fn geo_fuzz_rounds(
    cfg: &GeoFuzzConfig,
    oracle: &GeoOracle,
    campaign_seed: u64,
    first: u64,
    cases: u64,
    jobs: usize,
) -> GeoFuzzReport {
    type Slot = Mutex<Option<(u64, Vec<GeoCounterexample>)>>;
    let jobs = jobs.max(1);
    let n = cases as usize;
    let slots: Vec<Slot> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n.max(1)) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let index = first + i as u64;
                let seed = trial_seed(campaign_seed, index);
                let out = run_geo_case(cfg, oracle, index, seed);
                // apf-lint: allow(panic-policy) — each slot is touched by exactly one worker
                *slots[i].lock().expect("geo slot lock") = Some(out);
            });
        }
    });
    let mut report = GeoFuzzReport { cases, ..GeoFuzzReport::default() };
    for slot in slots {
        let (steps, ces) =
            // apf-lint: allow(panic-policy) — workers either fill every slot or panic the scope
            slot.into_inner().expect("geo slot lock").expect("every slot filled");
        report.shrink_steps += steps;
        if ces.is_empty() {
            report.clean += 1;
        } else {
            report.counterexamples.extend(ces);
        }
    }
    report
}

/// Runs rounds of cases until `budget` elapses (at least one round always
/// runs). Case indices are contiguous from 0, so every case is
/// deterministic; only the *count* of cases depends on wall time.
pub fn geo_fuzz_timed(
    cfg: &GeoFuzzConfig,
    oracle: &GeoOracle,
    campaign_seed: u64,
    budget: Duration,
    jobs: usize,
) -> GeoFuzzReport {
    let t0 = Instant::now();
    let round = (jobs.max(1) * 2) as u64;
    let mut report = GeoFuzzReport::default();
    let mut next = 0u64;
    loop {
        let r = geo_fuzz_rounds(cfg, oracle, campaign_seed, next, round, jobs);
        next += round;
        report.merge(r);
        if t0.elapsed() >= budget {
            return report;
        }
    }
}

/// Writes a geometry counterexample reproducer (`geo-<index>.repro`): a
/// header with the family, seed, scheduler, and violations; the minimal
/// initial positions (`position R X Y` lines); then the minimal schedule in
/// [`crate::fuzz::script_to_text`] format.
///
/// # Errors
///
/// I/O errors creating the directory or writing the file.
pub fn dump_geo_counterexample(dir: &Path, ce: &GeoCounterexample) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("geo-{}.repro", ce.case_index));
    let mut text = String::new();
    let _ = writeln!(
        text,
        "# geo-fuzz case {} family {} seed {:#018x} scheduler {}",
        ce.case_index,
        ce.family,
        ce.seed,
        ce.scheduler.map_or_else(|| "none (pure geometry)".to_string(), |k| k.to_string()),
    );
    let _ = writeln!(
        text,
        "# robots: {} (shrunk from {}); script: {} batches; {} shrink steps",
        ce.positions.len(),
        ce.original_robots,
        ce.script.len(),
        ce.shrink_steps
    );
    for v in &ce.violations {
        let _ = writeln!(text, "# violation[{}]: {}", v.kind, v.detail);
    }
    for (i, p) in ce.positions.iter().enumerate() {
        let _ = writeln!(text, "# position {i} {:?} {:?}", p.x, p.y);
    }
    text.push_str(&script_to_text(&ce.script));
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_deterministic_per_seed() {
        for family in GeoFamily::ALL {
            let a = degenerate_instance(family, 8, 42);
            let b = degenerate_instance(family, 8, 42);
            assert_eq!(a.positions, b.positions, "{family}");
            assert_eq!(a.expectation, b.expectation, "{family}");
            let c = degenerate_instance(family, 8, 43);
            assert_ne!(a.positions, c.positions, "{family}: seeds must differ");
        }
    }

    #[test]
    fn every_family_straddles_its_classifier_boundary() {
        // The acceptance criterion: each family produces, over a modest
        // seed sweep, (a) at least one instance within 2·ε of its
        // classifier boundary, and (b) instances on both sides of it.
        for family in GeoFamily::ALL {
            let mut near_boundary = false;
            let mut below = false;
            let mut above = false;
            for seed in 0..64 {
                let inst = degenerate_instance(family, 8, seed);
                if inst.boundary_distance() <= 2.0 * inst.threshold {
                    near_boundary = true;
                }
                if inst.perturbation > 0.0 && inst.perturbation < inst.threshold {
                    below = true;
                }
                if inst.perturbation > inst.threshold {
                    above = true;
                }
            }
            assert!(near_boundary, "{family}: no instance within 2·ε of the boundary");
            assert!(below, "{family}: no instance below the threshold");
            assert!(above, "{family}: no instance above the threshold");
        }
    }

    #[test]
    fn real_classifiers_pass_the_geometry_oracle() {
        let oracle = GeoOracle::default();
        for family in GeoFamily::ALL {
            for seed in 0..48 {
                let inst = degenerate_instance(family, 8, seed);
                let violations = check_instance(&inst, &oracle);
                assert!(
                    violations.is_empty(),
                    "{family} seed {seed} ({:?}, perturbation {:.3e}, threshold {:.3e}): {violations:?}",
                    inst.expectation,
                    inst.perturbation,
                    inst.threshold
                );
            }
        }
    }

    /// A ρ classifier with a deliberately broken (10^4× inflated)
    /// tolerance: it still accepts grossly perturbed configurations as
    /// symmetric.
    fn broken_rho(cfg: &Configuration, center: Point, tol: &Tol) -> usize {
        let fat = Tol { eps: tol.eps * 1e4, angle_eps: tol.angle_eps * 1e4 };
        symmetricity(cfg, center, &fat)
    }

    #[test]
    fn injected_broken_rho_tolerance_is_caught_and_geometry_shrunk() {
        let oracle = GeoOracle { rho_of: broken_rho, ..GeoOracle::default() };
        // Sweep seeds until a MustNotHold perturbed-rho instance appears:
        // the broken tolerance still classifies it as symmetric.
        let mut caught = None;
        for seed in 0..256 {
            let inst = degenerate_instance(GeoFamily::PerturbedRho, 12, seed);
            if inst.expectation != Expectation::MustNotHold {
                continue;
            }
            let violations = check_instance(&inst, &oracle);
            if violations.iter().any(|v| v.kind == "geometry-classifier") {
                caught = Some((inst, violations));
                break;
            }
        }
        let (inst, violations) = caught.expect("the broken tolerance must be caught");
        assert!(violations.iter().any(|v| v.kind == "geometry-classifier"), "{violations:?}");

        // The shrinker must minimize the *geometry*: orbits drop away until
        // only the perturbed robot's orbit remains.
        let (minimized, steps) = shrink_geometry(&inst, &oracle, "geometry-classifier");
        assert!(steps > 0);
        assert!(
            minimized.len() <= 6,
            "shrunk to {} robots (from {}), expected <= 6",
            minimized.len(),
            inst.len()
        );
        assert!(
            geometry_violates(&minimized, &oracle, "geometry-classifier"),
            "minimized instance must still violate"
        );
        // And the real classifier agrees the minimized instance is the
        // bug's fault, not the oracle's.
        assert!(check_instance(&minimized, &GeoOracle::default()).is_empty());
    }

    #[test]
    fn campaign_is_jobs_independent() {
        let cfg = GeoFuzzConfig { world_runs: false, ..GeoFuzzConfig::default() };
        let oracle = GeoOracle::default();
        let a = geo_fuzz_campaign(&cfg, &oracle, 99, 12, 1);
        let b = geo_fuzz_campaign(&cfg, &oracle, 99, 12, 4);
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.clean, b.clean);
        assert_eq!(a.counterexamples.len(), b.counterexamples.len());
    }

    #[test]
    fn script_remap_drops_and_reindexes() {
        let script = vec![
            vec![Action::Look { robot: 0 }, Action::Look { robot: 2 }],
            vec![Action::Move { robot: 3, distance: 0.5, end_phase: true }],
            vec![Action::Look { robot: 1 }],
        ];
        let remapped = remap_script(&script, &[1], 4);
        assert_eq!(
            remapped,
            vec![
                vec![Action::Look { robot: 0 }, Action::Look { robot: 1 }],
                vec![Action::Move { robot: 2, distance: 0.5, end_phase: true }],
            ]
        );
    }

    #[test]
    fn world_matrix_runs_clean_on_degenerate_families() {
        // One representative instance per family through the full
        // scheduler matrix: the stack must survive degenerate geometry.
        let cfg = GeoFuzzConfig { step_budget: 200_000, ..GeoFuzzConfig::default() };
        let oracle = GeoOracle::default();
        for (i, _) in GeoFamily::ALL.iter().enumerate() {
            let seed = trial_seed(7, i as u64);
            let (_, ces) = run_geo_case(&cfg, &oracle, i as u64, seed);
            assert!(
                ces.is_empty(),
                "case {i}: {:?}",
                ces.iter().map(|c| &c.violations).collect::<Vec<_>>()
            );
        }
    }
}
