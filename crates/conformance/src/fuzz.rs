//! The adversarial schedule fuzzer.
//!
//! The ASYNC model quantifies over *all* fair schedules, but the stock
//! [`apf_scheduler::AsyncScheduler`] samples only a mild neighborhood of
//! them. This module generates deliberately pathological schedules —
//! mid-move pauses, stale-snapshot Computes, starvation-skewed activation,
//! dense pending-move interleavings — runs the paper's algorithm under
//! them, and checks execution-level properties on the resulting trace:
//!
//! * stream legality (Look/Move state machine, monotonic steps) via
//!   [`TraceSummary`];
//! * the paper's ≤ 1 random bit per election cycle claim;
//! * phase legality: [`PhaseKind::Terminal`] and [`PhaseKind::DpfIdle`]
//!   decisions never move, [`PhaseKind::Gather`] appears only with
//!   multiplicity detection;
//! * rigid-motion safety: slices never travel backwards or past the path,
//!   arrivals land at the destination, and interrupts respect the
//!   minimum-progress rule `δ`;
//! * eventual formation within a generous step budget (the schedule's
//!   adversarial prefix is bounded, after which activation stays fair).
//!
//! Every schedule is recorded as an action script; a violating schedule is
//! shrunk (chunked ddmin over script batches, then prefix truncation) to a
//! minimal reproducer that still triggers the same violation kind when
//! replayed through [`ScriptedScheduler`].

use apf_bench::engine::trial_seed;
use apf_core::FormPattern;
use apf_geometry::Point;
use apf_scheduler::{Action, PhaseView, Scheduler, ScriptedScheduler};
use apf_sim::{RobotAlgorithm, World, WorldConfig};
use apf_trace::{PhaseKind, TraceEvent, TraceSummary, VecSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Fuzzer knobs. Defaults are sized for CI smoke runs: seconds per
/// schedule, deterministic from the campaign seed.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Robot count per schedule.
    pub robots: usize,
    /// Length of the recorded adversarial prefix (engine steps).
    pub script_steps: u64,
    /// Total step budget per schedule (prefix + fair tail). Formation must
    /// happen within it.
    pub step_budget: u64,
    /// Whether the target pattern includes multiplicity points (and the
    /// world detects them).
    pub multiplicity: bool,
    /// Whether to flag budget exhaustion without formation as a violation.
    /// On by default; turn off for short exploratory runs.
    pub require_formation: bool,
    /// Construct the algorithm under test (defaults to the paper's).
    pub algorithm: fn() -> Box<dyn RobotAlgorithm>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            // The paper's algorithm requires n >= 7 (Theorem 2).
            robots: 7,
            script_steps: 400,
            step_budget: 400_000,
            multiplicity: false,
            require_formation: true,
            algorithm: || Box::new(FormPattern::new()),
        }
    }
}

/// Per-schedule adversary shape, drawn from the schedule's seed. Each
/// schedule gets its own point in this space so a campaign covers many
/// qualitatively different adversaries.
#[derive(Debug, Clone, Copy)]
struct ScheduleParams {
    /// Probability an idle robot in the batch Looks (lower = more stale
    /// snapshots lying around).
    look_prob: f64,
    /// Probability a Move slice ends the phase.
    end_prob: f64,
    /// Upper bound of the per-slice fraction of the remaining path (small
    /// = many mid-move pauses).
    max_slice_fraction: f64,
    /// Max robots activated per step (high = dense interleavings).
    batch_max: usize,
    /// The starved robot.
    victim: usize,
    /// The victim is activated at most once per this many steps (bounded,
    /// so schedules stay fair).
    victim_period: u64,
}

impl ScheduleParams {
    fn draw(rng: &mut StdRng, robots: usize) -> Self {
        ScheduleParams {
            look_prob: rng.gen_range(0.25..1.0),
            end_prob: rng.gen_range(0.05..0.9),
            max_slice_fraction: rng.gen_range(0.05..1.0),
            batch_max: rng.gen_range(1..=robots.max(2)),
            victim: rng.gen_range(0..robots),
            victim_period: rng.gen_range(2..40u64),
        }
    }
}

/// Generates a pathological schedule step by step, recording every batch.
/// After `script_steps` the generator keeps the same behavior but stops
/// starving the victim, so the tail is an ordinary fair ASYNC schedule and
/// the formation check is meaningful.
struct FuzzScheduler {
    rng: StdRng,
    params: ScheduleParams,
    script: Arc<Mutex<Vec<Vec<Action>>>>,
    steps: u64,
    script_steps: u64,
    last_victim_step: u64,
    rotor: usize,
}

impl FuzzScheduler {
    fn new(seed: u64, params: ScheduleParams, script_steps: u64) -> Self {
        FuzzScheduler {
            rng: StdRng::seed_from_u64(seed),
            params,
            script: Arc::new(Mutex::new(Vec::new())),
            steps: 0,
            script_steps,
            last_victim_step: 0,
            rotor: 0,
        }
    }

    fn script_handle(&self) -> Arc<Mutex<Vec<Vec<Action>>>> {
        Arc::clone(&self.script)
    }

    fn action_for(&mut self, robot: usize, phase: PhaseView) -> Option<Action> {
        match phase {
            PhaseView::Idle => {
                // Skipping a Look leaves the robot idle while others act —
                // when it finally Looks, its snapshot is maximally stale.
                self.rng.gen_bool(self.params.look_prob).then_some(Action::Look { robot })
            }
            p @ PhaseView::Pending { .. } => {
                let frac = self.rng.gen_range(0.0..self.params.max_slice_fraction);
                Some(Action::Move {
                    robot,
                    distance: p.remaining() * frac,
                    end_phase: self.rng.gen_bool(self.params.end_prob),
                })
            }
        }
    }
}

impl Scheduler for FuzzScheduler {
    fn next(&mut self, phases: &[PhaseView]) -> Vec<Action> {
        self.steps += 1;
        let n = phases.len();
        let starving = self.steps <= self.script_steps;
        let victim_due = self.steps - self.last_victim_step >= self.params.victim_period;
        let batch_size = self.rng.gen_range(1..=self.params.batch_max.min(n));
        let mut batch: Vec<Action> = Vec::with_capacity(batch_size);
        let start = self.rng.gen_range(0..n);
        for i in 0..n {
            if batch.len() >= batch_size {
                break;
            }
            let robot = (start + i) % n;
            if starving && robot == self.params.victim && !victim_due {
                continue;
            }
            if let Some(action) = self.action_for(robot, phases[robot]) {
                if robot == self.params.victim {
                    self.last_victim_step = self.steps;
                }
                batch.push(action);
            }
        }
        if batch.is_empty() {
            // Deterministic legal fallback (rotor for fairness) — the
            // engine requires a non-empty batch.
            let robot = self.rotor % n;
            self.rotor += 1;
            batch.push(match phases[robot] {
                PhaseView::Idle => Action::Look { robot },
                p @ PhaseView::Pending { .. } => {
                    Action::Move { robot, distance: p.remaining(), end_phase: true }
                }
            });
        }
        if self.steps <= self.script_steps {
            // apf-lint: allow(panic-policy) — single-threaded use; poisoning needs a prior panic
            self.script.lock().expect("fuzz script lock").push(batch.clone());
        }
        batch
    }

    fn name(&self) -> &'static str {
        "fuzz-adversary"
    }
}

/// One property violation found in a schedule's execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable kind slug (`stream-legality`, `election-bits`,
    /// `phase-legality`, `rigid-motion`, `no-formation`).
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// A violating schedule, shrunk to a minimal reproducer.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Index of the schedule within its campaign.
    pub schedule_index: u64,
    /// The schedule's derived seed (replays the same world).
    pub seed: u64,
    /// Violations of the original run.
    pub violations: Vec<Violation>,
    /// Recorded adversarial prefix (original).
    pub original_len: usize,
    /// The shrunk script that still reproduces `violations[0].kind`.
    pub script: Vec<Vec<Action>>,
}

/// Campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Schedules executed.
    pub schedules: u64,
    /// Schedules with no violation.
    pub clean: u64,
    /// Violating schedules, shrunk.
    pub counterexamples: Vec<Counterexample>,
}

impl FuzzReport {
    /// Whether the campaign found no violations.
    pub fn is_clean(&self) -> bool {
        self.counterexamples.is_empty()
    }
}

/// The world instance a schedule runs on. Derived deterministically from
/// the schedule seed; instances are kept asymmetric (the validated setting
/// of the paper's Theorem 1 extension the simulator targets end-to-end).
fn instance_for(cfg: &FuzzConfig, seed: u64) -> (Vec<Point>, Vec<Point>) {
    let initial = apf_patterns::asymmetric_configuration(cfg.robots, seed ^ 0x1157);
    let pattern = if cfg.multiplicity {
        apf_patterns::pattern_with_multiplicity(cfg.robots, cfg.robots - 2, seed ^ 0x7E11)
    } else {
        apf_patterns::random_pattern(cfg.robots, seed ^ 0x7E11)
    };
    (initial, pattern)
}

fn world_for(cfg: &FuzzConfig, seed: u64, scheduler: Box<dyn Scheduler>) -> World {
    let (initial, pattern) = instance_for(cfg, seed);
    let config = WorldConfig { multiplicity_detection: cfg.multiplicity, ..WorldConfig::default() };
    World::new(initial, pattern, (cfg.algorithm)(), scheduler, config, seed)
}

/// Checks every fuzzed property over a finished run's event stream.
/// `formed` is the engine's verdict; `check_formation` is disabled during
/// shrink replays (a truncated script trivially fails to form).
pub(crate) fn check_events(
    cfg: &FuzzConfig,
    events: &[TraceEvent],
    formed: bool,
    check_formation: bool,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let summary = TraceSummary::from_events(events);
    for v in &summary.violations {
        violations.push(Violation { kind: "stream-legality", detail: v.clone() });
    }
    if summary.max_election_bits > 1 {
        violations.push(Violation {
            kind: "election-bits",
            detail: format!(
                "{} bits drawn in one election cycle (paper: at most 1)",
                summary.max_election_bits
            ),
        });
    }
    let delta = WorldConfig::default().delta;
    for e in events {
        match *e {
            TraceEvent::Decide { step, robot, phase, moved, .. } => {
                if moved && matches!(phase, PhaseKind::Terminal | PhaseKind::DpfIdle) {
                    violations.push(Violation {
                        kind: "phase-legality",
                        detail: format!("r{robot} moved out of {phase} at step {step}"),
                    });
                }
                if phase == PhaseKind::Gather && !cfg.multiplicity {
                    violations.push(Violation {
                        kind: "phase-legality",
                        detail: format!(
                            "r{robot} entered gather without multiplicity detection at step {step}"
                        ),
                    });
                }
            }
            TraceEvent::MoveSlice { step, robot, advanced, traveled, length, arrived, .. } => {
                if advanced < -1e-9 {
                    violations.push(Violation {
                        kind: "rigid-motion",
                        detail: format!("r{robot} moved backwards {advanced} at step {step}"),
                    });
                }
                if traveled > length + 1e-9 {
                    violations.push(Violation {
                        kind: "rigid-motion",
                        detail: format!(
                            "r{robot} traveled {traveled} past length {length} at step {step}"
                        ),
                    });
                }
                if arrived && (length - traveled) > 1e-9 {
                    violations.push(Violation {
                        kind: "rigid-motion",
                        detail: format!(
                            "r{robot} arrived {traveled}/{length} short of the destination \
                             at step {step}"
                        ),
                    });
                }
            }
            TraceEvent::Interrupt { step, robot, traveled, length }
                if traveled + 1e-9 < delta.min(length) =>
            {
                violations.push(Violation {
                    kind: "rigid-motion",
                    detail: format!(
                        "r{robot} interrupted after {traveled} < delta {delta} at step {step}"
                    ),
                });
            }
            _ => {}
        }
    }
    if check_formation && cfg.require_formation && !formed {
        violations.push(Violation {
            kind: "no-formation",
            detail: format!(
                "pattern not formed within {} steps under a fair schedule",
                cfg.step_budget
            ),
        });
    }
    violations
}

/// Runs one fuzzed schedule end to end: generate, record, check. Returns
/// the recorded script and any violations.
fn run_one(cfg: &FuzzConfig, seed: u64) -> (Vec<Vec<Action>>, Vec<Violation>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA22);
    let params = ScheduleParams::draw(&mut rng, cfg.robots);
    let scheduler = FuzzScheduler::new(seed ^ 0x5C4E, params, cfg.script_steps);
    let script = scheduler.script_handle();
    let mut world = world_for(cfg, seed, Box::new(scheduler));
    let sink = Arc::new(Mutex::new(VecSink::new()));
    world.set_sink(Box::new(Arc::clone(&sink)));
    let outcome = world.run(cfg.step_budget);
    drop(world);
    // apf-lint: allow(panic-policy) — single-threaded use; poisoning needs a prior panic
    let events = sink.lock().expect("fuzz sink lock").events().to_vec();
    let mut violations = check_events(cfg, &events, outcome.formed, true);
    if let apf_sim::StopReason::AlgorithmError(e) = &outcome.reason {
        violations.insert(
            0,
            Violation {
                kind: "compute-error",
                detail: format!("algorithm rejected a snapshot: {e}"),
            },
        );
    }
    // apf-lint: allow(panic-policy) — single-threaded use; poisoning needs a prior panic
    let script = script.lock().expect("fuzz script lock").clone();
    (script, violations)
}

/// Replays `script` through a [`ScriptedScheduler`] on the same world and
/// reports whether a violation of `kind` still occurs. Runs exactly one
/// engine step per script batch — shrinking looks for the shortest prefix
/// of adversarial *choices*, not for the tail the fallback would append.
pub fn replay_violates(cfg: &FuzzConfig, seed: u64, script: &[Vec<Action>], kind: &str) -> bool {
    let scheduler = ScriptedScheduler::new(script.to_vec());
    let mut world = world_for(cfg, seed, Box::new(scheduler));
    let sink = Arc::new(Mutex::new(VecSink::new()));
    world.set_sink(Box::new(Arc::clone(&sink)));
    let outcome = world.run(script.len() as u64);
    // apf-lint: allow(panic-policy) — single-threaded use; poisoning needs a prior panic
    let events = sink.lock().expect("fuzz sink lock").events().to_vec();
    check_events(cfg, &events, outcome.formed, false).iter().any(|v| v.kind == kind)
}

/// Shrinks a violating script to a locally minimal reproducer of
/// `kind`: chunked ddmin (drop halves, quarters, … of the batches), then
/// prefix truncation. Every candidate is validated by replay, so the
/// result — whatever its size — still triggers the violation.
pub fn shrink(
    cfg: &FuzzConfig,
    seed: u64,
    script: Vec<Vec<Action>>,
    kind: &str,
) -> Vec<Vec<Action>> {
    let mut current = script;
    // Truncate first: violations are detected in replay order, so the
    // shortest violating prefix is usually much shorter than the script.
    let mut lo = 0usize;
    let mut hi = current.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if replay_violates(cfg, seed, &current[..mid], kind) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    current.truncate(hi);
    // ddmin-lite: remove chunks while the violation persists.
    let mut chunk = (current.len() / 2).max(1);
    while chunk >= 1 {
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.drain(i..(i + chunk).min(candidate.len()));
            if !candidate.is_empty() && replay_violates(cfg, seed, &candidate, kind) {
                current = candidate;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    current
}

/// Runs `schedules` fuzzed schedules with seeds derived from
/// `campaign_seed`, on `jobs` worker threads. The report is **identical
/// for any `jobs` value**: every schedule's behavior depends only on its
/// derived seed (via [`trial_seed`]), and results are collected by index.
pub fn fuzz_campaign(
    cfg: &FuzzConfig,
    campaign_seed: u64,
    schedules: u64,
    jobs: usize,
) -> FuzzReport {
    type Slot = Mutex<Option<(Vec<Vec<Action>>, Vec<Violation>)>>;
    let jobs = jobs.max(1);
    let n = schedules as usize;
    let slots: Vec<Slot> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n.max(1)) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let seed = trial_seed(campaign_seed, i as u64);
                let out = run_one(cfg, seed);
                // apf-lint: allow(panic-policy) — each slot is touched by exactly one worker
                *slots[i].lock().expect("fuzz slot lock") = Some(out);
            });
        }
    });
    let mut report = FuzzReport { schedules, ..FuzzReport::default() };
    for (i, slot) in slots.into_iter().enumerate() {
        let (script, violations) =
        // apf-lint: allow(panic-policy) — workers either fill every slot or panic the scope
            slot.into_inner().expect("fuzz slot lock").expect("every slot filled");
        if violations.is_empty() {
            report.clean += 1;
            continue;
        }
        let seed = trial_seed(campaign_seed, i as u64);
        let original_len = script.len();
        // Shrink only trace-level violations: `no-formation` is a property
        // of the (unrecorded) fair tail, not of the prefix script.
        let script = match violations.iter().find(|v| v.kind != "no-formation") {
            Some(v) => shrink(cfg, seed, script, v.kind),
            None => script,
        };
        report.counterexamples.push(Counterexample {
            schedule_index: i as u64,
            seed,
            violations,
            original_len,
            script,
        });
    }
    report
}

/// Serializes a script as a line-oriented reproducer (`look R` /
/// `move R DIST END`), the format [`script_from_text`] parses back.
pub fn script_to_text(script: &[Vec<Action>]) -> String {
    let mut out = String::new();
    for batch in script {
        for (i, action) in batch.iter().enumerate() {
            if i > 0 {
                out.push_str("; ");
            }
            match *action {
                Action::Look { robot } => {
                    let _ = write!(out, "look {robot}");
                }
                Action::Move { robot, distance, end_phase } => {
                    let _ = write!(out, "move {robot} {distance} {end_phase}");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Parses a reproducer written by [`script_to_text`].
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn script_from_text(text: &str) -> Result<Vec<Vec<Action>>, String> {
    let mut script = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut batch = Vec::new();
        for part in line.split(';') {
            let fields: Vec<&str> = part.split_whitespace().collect();
            let action = match fields.as_slice() {
                ["look", r] => {
                    Action::Look { robot: r.parse().map_err(|e| format!("line {}: {e}", no + 1))? }
                }
                ["move", r, d, e] => Action::Move {
                    robot: r.parse().map_err(|e| format!("line {}: {e}", no + 1))?,
                    distance: d.parse().map_err(|e| format!("line {}: {e}", no + 1))?,
                    end_phase: e.parse().map_err(|e| format!("line {}: {e}", no + 1))?,
                },
                _ => return Err(format!("line {}: unrecognized action {part:?}", no + 1)),
            };
            batch.push(action);
        }
        if !batch.is_empty() {
            script.push(batch);
        }
    }
    Ok(script)
}

/// Writes a counterexample reproducer (`fuzz-<index>.repro`) into `dir`:
/// a header describing the violations plus the shrunk script.
///
/// # Errors
///
/// I/O errors creating the directory or writing the file.
pub fn dump_counterexample(dir: &Path, ce: &Counterexample) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("fuzz-{}.repro", ce.schedule_index));
    let mut text = String::new();
    let _ = writeln!(text, "# schedule {} seed {:#018x}", ce.schedule_index, ce.seed);
    let _ =
        writeln!(text, "# script: {} batches (shrunk from {})", ce.script.len(), ce.original_len);
    for v in &ce.violations {
        let _ = writeln!(text, "# violation[{}]: {}", v.kind, v.detail);
    }
    text.push_str(&script_to_text(&ce.script));
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> FuzzConfig {
        FuzzConfig { script_steps: 120, step_budget: 150_000, ..FuzzConfig::default() }
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let cfg = quick_cfg();
        let (s1, v1) = run_one(&cfg, 7);
        let (s2, v2) = run_one(&cfg, 7);
        assert_eq!(s1, s2);
        assert_eq!(v1, v2);
        let (s3, _) = run_one(&cfg, 8);
        assert_ne!(s1, s3, "different seeds must explore different schedules");
    }

    #[test]
    fn script_text_round_trips() {
        let script = vec![
            vec![Action::Look { robot: 0 }, Action::Look { robot: 3 }],
            vec![Action::Move { robot: 0, distance: 0.125, end_phase: false }],
            vec![Action::Move { robot: 3, distance: 1.5, end_phase: true }],
        ];
        let text = script_to_text(&script);
        assert_eq!(script_from_text(&text).unwrap(), script);
        assert!(script_from_text("look x").is_err());
        assert!(script_from_text("jump 3").is_err());
        assert_eq!(script_from_text("# comment\n\n").unwrap(), Vec::<Vec<Action>>::new());
    }

    #[test]
    fn starvation_is_bounded() {
        // The victim must still be activated at least once per period while
        // it has work: fairness is a hard modeling requirement, not a
        // statistical accident.
        let cfg = quick_cfg();
        let (script, _) = run_one(&cfg, 3);
        assert!(!script.is_empty());
        let activated: std::collections::HashSet<usize> =
            script.iter().flatten().map(Action::robot).collect();
        assert_eq!(activated.len(), cfg.robots, "all robots activated: {activated:?}");
    }
}
