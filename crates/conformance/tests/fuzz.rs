//! Fuzzer end-to-end: campaigns are jobs-independent and seed-deterministic,
//! planted property violations are caught and shrunk to minimal reproducers,
//! and engine invariant violations flush a crash dump to disk.

use apf_conformance::fuzz::replay_violates;
use apf_conformance::{fuzz_campaign, script_to_text, FuzzConfig};
use apf_geometry::{Path, Point};
use apf_scheduler::{Action, PhaseView, Scheduler, ScriptedScheduler};
use apf_sim::{BitSource, ComputeError, Decision, RobotAlgorithm, Snapshot, World, WorldConfig};
use apf_trace::{CrashDumpSink, PhaseKind};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

fn quick_cfg() -> FuzzConfig {
    FuzzConfig { script_steps: 100, step_budget: 150_000, ..FuzzConfig::default() }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("apf-fuzz-{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn campaign_reports_are_identical_for_any_jobs_value() {
    let cfg = quick_cfg();
    let a = fuzz_campaign(&cfg, 0xC0FFEE, 6, 1);
    let b = fuzz_campaign(&cfg, 0xC0FFEE, 6, 4);
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.clean, b.clean);
    assert_eq!(a.counterexamples.len(), b.counterexamples.len());
    for (x, y) in a.counterexamples.iter().zip(&b.counterexamples) {
        assert_eq!(x.schedule_index, y.schedule_index);
        assert_eq!(x.seed, y.seed);
        assert_eq!(x.violations, y.violations);
        assert_eq!(script_to_text(&x.script), script_to_text(&y.script));
    }
}

#[test]
fn ci_smoke_seed_is_clean() {
    // The seed scripts/check.sh gates on: the paper's algorithm survives
    // these adversarial schedules with zero violations.
    let report = fuzz_campaign(&quick_cfg(), 0xC0FFEE, 6, 2);
    assert!(
        report.is_clean(),
        "CI smoke seed found counterexamples: {:?}",
        report
            .counterexamples
            .iter()
            .map(|ce| (ce.schedule_index, &ce.violations))
            .collect::<Vec<_>>()
    );
}

/// A planted bug: every decision moves while tagged as a terminal phase —
/// the phase-legality property must flag it and the shrinker must cut the
/// schedule down to (nearly) a single activation.
struct TerminalMover;

impl RobotAlgorithm for TerminalMover {
    fn compute(
        &self,
        _snapshot: &Snapshot,
        _bits: &mut dyn BitSource,
    ) -> Result<Decision, ComputeError> {
        Ok(Decision::Move(Path::straight(Point::ORIGIN, Point::new(1.0, 0.0))))
    }

    fn compute_tagged(
        &self,
        snapshot: &Snapshot,
        bits: &mut dyn BitSource,
    ) -> Result<(Decision, PhaseKind), ComputeError> {
        Ok((self.compute(snapshot, bits)?, PhaseKind::Terminal))
    }

    fn name(&self) -> &'static str {
        "terminal-mover"
    }
}

#[test]
fn planted_phase_violation_is_caught_and_shrunk() {
    let cfg = FuzzConfig {
        robots: 5,
        script_steps: 60,
        step_budget: 200,
        require_formation: false,
        algorithm: || Box::new(TerminalMover),
        ..FuzzConfig::default()
    };
    let report = fuzz_campaign(&cfg, 7, 3, 2);
    assert_eq!(report.clean, 0, "every schedule hits the planted bug");
    assert_eq!(report.counterexamples.len(), 3);
    for ce in &report.counterexamples {
        assert!(
            ce.violations.iter().any(|v| v.kind == "phase-legality"),
            "expected phase-legality, got {:?}",
            ce.violations
        );
        assert!(ce.script.len() <= ce.original_len);
        assert!(
            ce.script.len() <= 2,
            "the minimal reproducer is one Look activation, got {} batches:\n{}",
            ce.script.len(),
            script_to_text(&ce.script)
        );
        // The shrunk script still reproduces when replayed standalone.
        assert!(replay_violates(&cfg, ce.seed, &ce.script, "phase-legality"));
    }
}

/// A planted bug against the paper's headline claim: two coin flips in a
/// single election cycle.
struct GreedyElector;

impl RobotAlgorithm for GreedyElector {
    fn compute(
        &self,
        _snapshot: &Snapshot,
        bits: &mut dyn BitSource,
    ) -> Result<Decision, ComputeError> {
        let _ = bits.bit();
        let _ = bits.bit();
        Ok(Decision::Stay)
    }

    fn compute_tagged(
        &self,
        snapshot: &Snapshot,
        bits: &mut dyn BitSource,
    ) -> Result<(Decision, PhaseKind), ComputeError> {
        Ok((self.compute(snapshot, bits)?, PhaseKind::RsbElection))
    }

    fn name(&self) -> &'static str {
        "greedy-elector"
    }
}

#[test]
fn planted_two_bit_election_is_caught() {
    let cfg = FuzzConfig {
        robots: 5,
        script_steps: 40,
        step_budget: 120,
        require_formation: false,
        algorithm: || Box::new(GreedyElector),
        ..FuzzConfig::default()
    };
    let report = fuzz_campaign(&cfg, 21, 1, 1);
    assert_eq!(report.counterexamples.len(), 1);
    let ce = &report.counterexamples[0];
    assert!(
        ce.violations.iter().any(|v| v.kind == "election-bits"),
        "expected election-bits, got {:?}",
        ce.violations
    );
    assert!(replay_violates(&cfg, ce.seed, &ce.script, "election-bits"));
}

/// A scheduler that behaves legally for `fuse` steps, then violates the
/// engine contract by returning an empty batch.
struct TimeBomb {
    fuse: usize,
    rotor: usize,
}

impl Scheduler for TimeBomb {
    fn next(&mut self, phases: &[PhaseView]) -> Vec<Action> {
        if self.fuse == 0 {
            return Vec::new();
        }
        self.fuse -= 1;
        let robot = self.rotor % phases.len();
        self.rotor += 1;
        vec![match phases[robot] {
            PhaseView::Idle => Action::Look { robot },
            p @ PhaseView::Pending { .. } => {
                Action::Move { robot, distance: p.remaining(), end_phase: true }
            }
        }]
    }

    fn name(&self) -> &'static str {
        "time-bomb"
    }
}

fn crash_world(scheduler: Box<dyn Scheduler>) -> World {
    let initial = apf_patterns::asymmetric_configuration(7, 9);
    let pattern = apf_patterns::random_pattern(7, 10);
    World::new(
        initial,
        pattern,
        Box::new(apf_core::FormPattern::new()),
        scheduler,
        WorldConfig::default(),
        1,
    )
}

#[test]
fn misbehaving_scheduler_flushes_a_crash_dump() {
    let path = temp_path("scheduler-crash");
    std::fs::remove_file(&path).ok();
    let mut world = crash_world(Box::new(TimeBomb { fuse: 5, rotor: 0 }));
    world.set_sink(Box::new(CrashDumpSink::new(&path, 32)));
    let result = catch_unwind(AssertUnwindSafe(|| {
        world.run(20);
    }));
    let err = result.expect_err("an empty batch must be an engine invariant violation");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| (*err.downcast_ref::<&str>().expect("panic payload")).to_string());
    assert!(msg.contains("engine invariant violated"), "{msg}");
    let dump = std::fs::read_to_string(&path).expect("crash dump written before the panic");
    assert!(!dump.trim().is_empty(), "dump holds the last-N event window");
    for line in dump.lines() {
        apf_trace::parse_line(line).expect("dump lines are valid trace JSONL");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn injected_invariant_violation_flushes_a_crash_dump() {
    // The test-only hook exercises the same flush-then-panic path without
    // needing a misbehaving scheduler.
    let path = temp_path("injected-crash");
    std::fs::remove_file(&path).ok();
    let mut world = crash_world(Box::new(ScriptedScheduler::new(Vec::new())));
    world.set_sink(Box::new(CrashDumpSink::new(&path, 32)));
    world.run(5);
    let result = catch_unwind(AssertUnwindSafe(|| {
        world.debug_fail_invariant("injected for the crash-dump test");
    }));
    assert!(result.is_err());
    let dump = std::fs::read_to_string(&path).expect("crash dump written before the panic");
    assert!(!dump.trim().is_empty());
    for line in dump.lines() {
        apf_trace::parse_line(line).expect("dump lines are valid trace JSONL");
    }
    std::fs::remove_file(&path).ok();
}
