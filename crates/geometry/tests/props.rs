//! Property-based tests of the geometric substrate: the invariants every
//! downstream phase relies on, exercised over randomized inputs.

use apf_geometry::angle::{ang_min, normalize_angle, signed_angle_diff};
use apf_geometry::symmetry::{
    check_regular_around, find_regular_center, find_shifted_regular, symmetricity, ViewAnalysis,
};
use apf_geometry::{
    are_similar, smallest_enclosing_circle, weber_point, Configuration, Frame, Path, Point,
    PolarPoint, Tol,
};
use proptest::prelude::*;
use std::f64::consts::TAU;

fn pt() -> impl Strategy<Value = Point> {
    (-10.0..10.0f64, -10.0..10.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn pts(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(pt(), n)
}

/// Random points, min pairwise separation enforced (tolerance decisions are
/// well-posed).
fn separated_pts(n: usize) -> impl Strategy<Value = Vec<Point>> {
    pts(n..n + 1).prop_filter("separated", |v| {
        v.iter().enumerate().all(|(i, p)| v[i + 1..].iter().all(|q| p.dist(*q) > 0.05))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn normalize_angle_in_range(a in -100.0..100.0f64) {
        let r = normalize_angle(a);
        prop_assert!((0.0..TAU).contains(&r));
        // Same direction: sin/cos agree.
        prop_assert!((r.sin() - a.sin()).abs() < 1e-9);
        prop_assert!((r.cos() - a.cos()).abs() < 1e-9);
    }

    #[test]
    fn signed_diff_is_shortest(a in 0.0..TAU, b in 0.0..TAU) {
        let d = signed_angle_diff(a, b);
        prop_assert!(d.abs() <= std::f64::consts::PI + 1e-12);
        prop_assert!((normalize_angle(a + d) - normalize_angle(b)).abs() < 1e-9
            || (normalize_angle(a + d) - normalize_angle(b)).abs() > TAU - 1e-9);
    }

    #[test]
    fn ang_min_bounds(u in pt(), v in pt(), w in pt()) {
        prop_assume!(u.dist(v) > 1e-6 && w.dist(v) > 1e-6);
        let m = ang_min(u, v, w);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&m));
        // Symmetric in its outer arguments.
        prop_assert!((ang_min(w, v, u) - m).abs() < 1e-9);
    }

    #[test]
    fn sec_contains_everything(v in pts(1..24)) {
        let c = smallest_enclosing_circle(&v);
        let tol = Tol::new(1e-7);
        for p in &v {
            prop_assert!(c.contains(*p, &tol));
        }
        // Not larger than half the diameter bound: radius <= max pairwise
        // distance (loose sanity bound).
        let maxd = v.iter().flat_map(|p| v.iter().map(move |q| p.dist(*q)))
            .fold(0.0, f64::max);
        prop_assert!(c.radius <= maxd + 1e-9);
    }

    #[test]
    fn sec_permutation_invariant(v in pts(2..16), seed in 0..5u64) {
        let mut w = v.clone();
        // Deterministic permutation.
        let n = w.len();
        for i in 0..n {
            let j = ((i as u64 * 7 + seed * 13) % n as u64) as usize;
            w.swap(i, j);
        }
        let a = smallest_enclosing_circle(&v);
        let b = smallest_enclosing_circle(&w);
        prop_assert!(a.center.dist(b.center) < 1e-7);
        prop_assert!((a.radius - b.radius).abs() < 1e-7);
    }

    #[test]
    fn frame_roundtrip(p in pt(), ox in -5.0..5.0f64, oy in -5.0..5.0f64,
                       rot in 0.0..TAU, scale in 0.1..5.0f64, mirror in any::<bool>()) {
        let f = Frame::new(Point::new(ox, oy), rot, scale, mirror);
        let back = f.to_global(f.to_local(p));
        prop_assert!(back.approx_eq(p, &Tol::new(1e-8)));
    }

    #[test]
    fn frames_preserve_relative_distances(a in pt(), b in pt(),
                                          rot in 0.0..TAU, scale in 0.1..5.0f64,
                                          mirror in any::<bool>()) {
        let f = Frame::new(Point::new(1.0, -1.0), rot, scale, mirror);
        let d_local = f.to_local(a).dist(f.to_local(b));
        prop_assert!((d_local - a.dist(b) * scale).abs() < 1e-7 * (1.0 + d_local));
    }

    #[test]
    fn polar_roundtrip(p in pt(), c in pt()) {
        prop_assume!(p.dist(c) > 1e-6);
        let pp = PolarPoint::from_cartesian(p, c);
        prop_assert!(pp.to_cartesian(c).approx_eq(p, &Tol::new(1e-8)));
    }

    #[test]
    fn path_endpoints(a in pt(), b in pt()) {
        let p = Path::straight(a, b);
        prop_assert!(p.point_at(0.0).approx_eq(a, &Tol::new(1e-12)));
        prop_assert!(p.point_at(p.length()).approx_eq(b, &Tol::new(1e-9)));
        // Monotone progress: distances from start are nondecreasing.
        let mut last = 0.0;
        for k in 0..=10 {
            let d = p.length() * k as f64 / 10.0;
            let travelled = p.point_at(d).dist(a);
            prop_assert!(travelled + 1e-9 >= last);
            last = travelled;
        }
    }

    #[test]
    fn similarity_under_random_transform(v in separated_pts(6),
                                         rot in 0.0..TAU, scale in 0.2..4.0f64,
                                         dx in -5.0..5.0f64, dy in -5.0..5.0f64,
                                         mirror in any::<bool>()) {
        let w: Vec<Point> = v.iter().map(|p| {
            let mut q = p.to_vector();
            if mirror { q.y = -q.y; }
            (q.rotate(rot) * scale).to_point() + apf_geometry::Vector::new(dx, dy)
        }).collect();
        prop_assert!(are_similar(&v, &w, &Tol::default()));
    }

    #[test]
    fn similarity_rejects_distortion(v in separated_pts(6), k in 0..6usize) {
        // Move one point by a macroscopic amount: no longer similar
        // (separation ensures the move cannot be a symmetry of the set).
        let mut w = v.clone();
        let sec = smallest_enclosing_circle(&v);
        w[k] = Point::new(w[k].x + sec.radius * 2.5, w[k].y + sec.radius * 1.7);
        prop_assert!(!are_similar(&v, &w, &Tol::default()));
    }

    #[test]
    fn weber_equivariant_under_rotation(v in pts(3..12), rot in 0.0..TAU) {
        let w0 = weber_point(&v);
        let rotated: Vec<Point> = v.iter().map(|p| p.rotate_around(Point::ORIGIN, rot)).collect();
        let w1 = weber_point(&rotated);
        prop_assert!(w1.approx_eq(w0.rotate_around(Point::ORIGIN, rot), &Tol::new(1e-5)));
    }

    #[test]
    fn equiangular_sets_are_detected(m in 3..10usize, phase in 0.0..TAU,
                                     cx in -3.0..3.0f64, cy in -3.0..3.0f64,
                                     radii_seed in 1..1000u32) {
        let c = Point::new(cx, cy);
        let v: Vec<Point> = (0..m).map(|i| {
            let a = TAU * i as f64 / m as f64 + phase;
            let r = 0.5 + ((radii_seed as usize * (i + 3)) % 17) as f64 / 10.0;
            Point::new(c.x + r * a.cos(), c.y + r * a.sin())
        }).collect();
        // Known center: always detected.
        prop_assert!(check_regular_around(&v, c, &Tol::default()).is_some());
        // Unknown center: recovered numerically.
        let found = find_regular_center(&v, &Tol::default());
        prop_assert!(found.is_some());
        prop_assert!(found.unwrap().0.approx_eq(c, &Tol::new(1e-5)));
    }

    #[test]
    fn perturbed_equiangular_rejected(m in 4..9usize, eps in 0.05..0.3f64) {
        // Perturb one angle well beyond the tolerance: not regular.
        let c = Point::ORIGIN;
        let v: Vec<Point> = (0..m).map(|i| {
            let mut a = TAU * i as f64 / m as f64;
            if i == 1 { a += eps; }
            Point::new(a.cos(), a.sin())
        }).collect();
        prop_assert!(check_regular_around(&v, c, &Tol::default()).is_none());
    }

    #[test]
    fn symmetricity_of_orbits(rho in 2..7usize, orbits in 1..4usize, seed in 1..500u32) {
        // Union of rotation orbits with distinct radii/angles: ρ is a
        // multiple of `rho` (usually exactly rho).
        let mut v = Vec::new();
        for o in 0..orbits {
            let r = 1.0 + o as f64 * 0.5 + (seed % 7) as f64 * 0.01;
            let base = (seed as f64 * 0.013 + o as f64 * 0.41) % (TAU / rho as f64);
            for k in 0..rho {
                let a = base + TAU * k as f64 / rho as f64;
                v.push(Point::new(r * a.cos(), r * a.sin()));
            }
        }
        let cfg = Configuration::new(v);
        let s = symmetricity(&cfg, Point::ORIGIN, &Tol::default());
        prop_assert!(s.is_multiple_of(rho), "rho = {rho}, measured = {s}");
    }

    #[test]
    fn views_rank_consistently_across_observers(v in separated_pts(7)) {
        // Every robot computes the same view ranking (agreement): the
        // ranking from the configuration is observer-independent by
        // construction; check stability under rotation+mirror of the input.
        let cfg = Configuration::new(v.clone());
        let c = cfg.sec().center;
        let va = ViewAnalysis::compute(&cfg, c, &Tol::default());
        let order = va.indices_by_view_desc();

        let turned: Vec<Point> = v.iter()
            .map(|p| Point::new(p.x.mul_add(0.6, -p.y * 0.8), p.x.mul_add(0.8, p.y * 0.6)))
            .collect(); // rotation by atan2(0.8, 0.6)
        let cfg2 = Configuration::new(turned);
        let va2 = ViewAnalysis::compute(&cfg2, cfg2.sec().center, &Tol::default());
        prop_assert_eq!(order, va2.indices_by_view_desc());
    }

    #[test]
    fn shifted_set_roundtrip(m in 7..11usize, eps_frac in 0.03..0.24f64,
                             shift_idx in 0..7usize, phase in 0.0..TAU) {
        // Build an exact shifted regular set and verify detection recovers
        // the shifted robot and ε.
        let idx = shift_idx % m;
        let alpha = TAU / m as f64;
        let v: Vec<Point> = (0..m).map(|i| {
            let mut a = alpha * i as f64 + phase;
            if i == idx { a += eps_frac * alpha; }
            Point::new(a.cos(), a.sin())
        }).collect();
        let cfg = Configuration::new(v);
        let sh = find_shifted_regular(&cfg, &Tol::default());
        prop_assert!(sh.is_some(), "shifted set must be detected");
        let sh = sh.unwrap();
        prop_assert_eq!(sh.shifted_robot, idx);
        prop_assert!((sh.epsilon - eps_frac).abs() < 5e-3,
            "epsilon {} vs {}", sh.epsilon, eps_frac);
    }
}
