//! Points and vectors in the Euclidean plane.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::tol::Tol;

/// A point in the global (or a local) 2-D Euclidean coordinate system.
///
/// # Example
///
/// ```
/// use apf_geometry::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.dist(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement between two [`Point`]s.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vector {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn dist(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other` (avoids the square root).
    pub fn dist_sq(self, other: Point) -> f64 {
        (self - other).norm_sq()
    }

    /// The midpoint of `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// Whether the two points coincide within the tolerance.
    pub fn approx_eq(self, other: Point, tol: &Tol) -> bool {
        tol.is_zero(self.dist(other))
    }

    /// Rotates the point around `center` by `angle` radians
    /// (counter-clockwise for positive angles).
    pub fn rotate_around(self, center: Point, angle: f64) -> Point {
        center + (self - center).rotate(angle)
    }

    /// Reflects the point across the line through `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` exactly (the line is undefined).
    pub fn reflect_across(self, a: Point, b: Point) -> Point {
        let d = b - a;
        assert!(d.norm_sq() > 0.0, "reflection axis requires two distinct points");
        let u = d / d.norm();
        let v = self - a;
        let proj = u * v.dot(u);
        let perp = v - proj;
        a + proj - perp
    }

    /// Converts to a vector from the origin.
    pub fn to_vector(self) -> Vector {
        Vector { x: self.x, y: self.y }
    }
}

impl Vector {
    /// The zero vector.
    pub const ZERO: Vector = Vector { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vector { x, y }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(self, other: Vector) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (`z` component of the 3-D cross product).
    /// Positive when `other` is counter-clockwise from `self`.
    pub fn cross(self, other: Vector) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// The angle of the vector in `(-π, π]`, as given by `atan2`.
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    pub fn rotate(self, angle: f64) -> Vector {
        let (s, c) = angle.sin_cos();
        Vector::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// The unit vector in the same direction.
    ///
    /// Returns `None` when the vector is (numerically) zero.
    pub fn normalized(self) -> Option<Vector> {
        let n = self.norm();
        if n <= f64::EPSILON * 4.0 {
            None
        } else {
            Some(self / n)
        }
    }

    /// A vector perpendicular to `self`, rotated +90° (counter-clockwise).
    pub fn perp(self) -> Vector {
        Vector::new(-self.y, self.x)
    }

    /// Converts to the point at this displacement from the origin.
    pub fn to_point(self) -> Point {
        Point { x: self.x, y: self.y }
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    fn add(self, v: Vector) -> Point {
        Point::new(self.x + v.x, self.y + v.y)
    }
}

impl AddAssign<Vector> for Point {
    fn add_assign(&mut self, v: Vector) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    fn sub(self, v: Vector) -> Point {
        Point::new(self.x - v.x, self.y - v.y)
    }
}

impl SubAssign<Vector> for Point {
    fn sub_assign(&mut self, v: Vector) {
        self.x -= v.x;
        self.y -= v.y;
    }
}

impl Sub for Point {
    type Output = Vector;
    fn sub(self, other: Point) -> Vector {
        Vector::new(self.x - other.x, self.y - other.y)
    }
}

impl Add for Vector {
    type Output = Vector;
    fn add(self, other: Vector) -> Vector {
        Vector::new(self.x + other.x, self.y + other.y)
    }
}

impl Sub for Vector {
    type Output = Vector;
    fn sub(self, other: Vector) -> Vector {
        Vector::new(self.x - other.x, self.y - other.y)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    fn mul(self, s: f64) -> Vector {
        Vector::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Vector {
    type Output = Vector;
    fn div(self, s: f64) -> Vector {
        Vector::new(self.x / s, self.y / s)
    }
}

impl Neg for Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.6}, {:.6}>", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<(f64, f64)> for Vector {
    fn from((x, y): (f64, f64)) -> Self {
        Vector::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const T: Tol = Tol { eps: 1e-9, angle_eps: 1e-9 };

    #[test]
    fn distance_and_midpoint() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        assert!(T.eq(a.dist(b), 5.0));
        assert!(T.eq(a.dist_sq(b), 25.0));
        assert!(a.midpoint(b).approx_eq(Point::new(2.5, 3.0), &T));
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, -2.0);
        assert!(a.lerp(b, 0.0).approx_eq(a, &T));
        assert!(a.lerp(b, 1.0).approx_eq(b, &T));
        assert!(a.lerp(b, 0.5).approx_eq(Point::new(1.0, -1.0), &T));
    }

    #[test]
    fn rotation_quarter_turn() {
        let p = Point::new(1.0, 0.0);
        let q = p.rotate_around(Point::ORIGIN, FRAC_PI_2);
        assert!(q.approx_eq(Point::new(0.0, 1.0), &T));
        let r = p.rotate_around(Point::new(1.0, 1.0), PI);
        assert!(r.approx_eq(Point::new(1.0, 2.0), &T));
    }

    #[test]
    fn reflection_across_axis() {
        let p = Point::new(1.0, 2.0);
        // Reflect across the x-axis.
        let q = p.reflect_across(Point::ORIGIN, Point::new(1.0, 0.0));
        assert!(q.approx_eq(Point::new(1.0, -2.0), &T));
        // Reflect across the diagonal y = x swaps coordinates.
        let r = p.reflect_across(Point::ORIGIN, Point::new(1.0, 1.0));
        assert!(r.approx_eq(Point::new(2.0, 1.0), &T));
    }

    #[test]
    fn reflection_fixes_points_on_axis() {
        let a = Point::new(-3.0, 1.0);
        let b = Point::new(5.0, 1.0);
        let p = Point::new(2.0, 1.0);
        assert!(p.reflect_across(a, b).approx_eq(p, &T));
    }

    #[test]
    fn vector_algebra() {
        let u = Vector::new(1.0, 2.0);
        let v = Vector::new(3.0, -1.0);
        assert!(T.eq(u.dot(v), 1.0));
        assert!(T.eq(u.cross(v), -7.0));
        assert!(T.eq((u + v).x, 4.0));
        assert!(T.eq((u - v).y, 3.0));
        assert!(T.eq((u * 2.0).norm(), 2.0 * u.norm()));
        assert!(T.eq((-u).x, -1.0));
    }

    #[test]
    fn angle_and_perp() {
        assert!(T.ang_eq(Vector::new(1.0, 0.0).angle(), 0.0));
        assert!(T.ang_eq(Vector::new(0.0, 2.0).angle(), FRAC_PI_2));
        let u = Vector::new(1.0, 0.0);
        assert!(T.ang_eq(u.perp().angle(), FRAC_PI_2));
        assert!(T.eq(u.perp().dot(u), 0.0));
    }

    #[test]
    fn normalized_handles_zero() {
        assert!(Vector::ZERO.normalized().is_none());
        let n = Vector::new(0.0, 5.0).normalized().unwrap();
        assert!(T.eq(n.norm(), 1.0));
    }

    #[test]
    fn rotate_composes() {
        let v = Vector::new(1.0, 0.5);
        let w = v.rotate(0.3).rotate(0.7);
        let z = v.rotate(1.0);
        assert!(T.eq(w.x, z.x) && T.eq(w.y, z.y));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Point::ORIGIN).is_empty());
        assert!(!format!("{}", Vector::ZERO).is_empty());
    }
}
