//! Robot configurations: finite point (multi)sets with cached analysis.

use crate::circle::{smallest_enclosing_circle, Circle};
use crate::point::Point;
use crate::polar::{to_polar, PolarPoint};
use crate::tol::Tol;

/// A configuration `P`: the positions of the robots at some instant, in one
/// common (global or local) coordinate system.
///
/// The smallest enclosing circle `C(P)` is computed once at construction.
/// Multiplicity points (several robots at one position) are representable —
/// the vector may contain (approximately) duplicate points.
///
/// # Example
///
/// ```
/// use apf_geometry::{Configuration, Point, Tol};
/// let cfg = Configuration::new(vec![
///     Point::new(-1.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(0.0, 0.5),
/// ]);
/// assert_eq!(cfg.len(), 3);
/// assert!(Tol::default().eq(cfg.sec().radius, 1.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Configuration {
    points: Vec<Point>,
    sec: Circle,
}

impl Configuration {
    /// Creates a configuration from robot positions.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn new(points: Vec<Point>) -> Self {
        assert!(!points.is_empty(), "a configuration needs at least one robot");
        let sec = smallest_enclosing_circle(&points);
        Configuration { points, sec }
    }

    /// The robot positions.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of robots.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the configuration is empty (never true: construction requires
    /// at least one robot).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The smallest enclosing circle `C(P)`.
    pub fn sec(&self) -> Circle {
        self.sec
    }

    /// Position of robot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn point(&self, i: usize) -> Point {
        self.points[i]
    }

    /// Polar coordinates of all robots around `center`.
    pub fn polar_around(&self, center: Point) -> Vec<PolarPoint> {
        to_polar(&self.points, center)
    }

    /// Distances of all robots from `center`, sorted ascending.
    pub fn sorted_radii(&self, center: Point) -> Vec<f64> {
        let mut r: Vec<f64> = self.points.iter().map(|p| p.dist(center)).collect();
        r.sort_by(f64::total_cmp);
        r
    }

    /// The paper's `l_P`: the distance to `center` of the *second closest*
    /// robot (used to define the "selected" disc `D(l_F / 2)`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration has fewer than two robots.
    pub fn second_closest_distance(&self, center: Point) -> f64 {
        assert!(self.len() >= 2, "second closest distance needs two robots");
        self.sorted_radii(center)[1]
    }

    /// Indices of robots strictly inside the open disc `D(radius)` around
    /// `center`.
    pub fn indices_in_open_disc(&self, center: Point, radius: f64, tol: &Tol) -> Vec<usize> {
        self.points
            .iter()
            .enumerate()
            .filter(|(_, p)| tol.lt(p.dist(center), radius))
            .map(|(i, _)| i)
            .collect()
    }

    /// A new configuration with robot `i` moved to `p`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn with_point_moved(&self, i: usize, p: Point) -> Configuration {
        let mut pts = self.points.clone();
        pts[i] = p;
        Configuration::new(pts)
    }

    /// The positions with robot `i` removed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the configuration has a single robot.
    pub fn without(&self, i: usize) -> Vec<Point> {
        assert!(self.len() > 1, "cannot remove the only robot");
        assert!(i < self.len(), "index out of range");
        self.points.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &p)| p).collect()
    }

    /// Groups (approximately) coincident robots; returns, for each group, the
    /// representative position and the member indices. Singleton groups mean
    /// no multiplicity.
    pub fn multiplicity_groups(&self, tol: &Tol) -> Vec<(Point, Vec<usize>)> {
        let mut groups: Vec<(Point, Vec<usize>)> = Vec::new();
        for (i, &p) in self.points.iter().enumerate() {
            if let Some(g) = groups.iter_mut().find(|(rep, _)| rep.approx_eq(p, tol)) {
                g.1.push(i);
            } else {
                groups.push((p, vec![i]));
            }
        }
        groups
    }

    /// Whether any position hosts more than one robot.
    pub fn has_multiplicity(&self, tol: &Tol) -> bool {
        self.multiplicity_groups(tol).iter().any(|(_, m)| m.len() > 1)
    }

    /// A copy translated and scaled so that `C(P)` is the unit circle at the
    /// origin. Returns the normalized configuration.
    ///
    /// # Panics
    ///
    /// Panics if all robots coincide (`C(P)` has zero radius).
    pub fn normalized(&self) -> Configuration {
        assert!(self.sec.radius > 0.0, "cannot normalize a single-location configuration");
        let c = self.sec.center;
        let s = 1.0 / self.sec.radius;
        Configuration::new(self.points.iter().map(|&p| ((p - c) * s).to_point()).collect())
    }
}

impl From<Vec<Point>> for Configuration {
    fn from(points: Vec<Point>) -> Self {
        Configuration::new(points)
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Configuration[{} robots, C(P) = {} r {:.4}]",
            self.len(),
            self.sec.center,
            self.sec.radius
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn tol() -> Tol {
        Tol::new(1e-7)
    }

    fn ring(n: usize, r: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = TAU * i as f64 / n as f64;
                Point::new(r * a.cos(), r * a.sin())
            })
            .collect()
    }

    #[test]
    fn sec_is_cached_and_correct() {
        let cfg = Configuration::new(ring(8, 2.0));
        assert!(cfg.sec().center.approx_eq(Point::ORIGIN, &tol()));
        assert!(tol().eq(cfg.sec().radius, 2.0));
    }

    #[test]
    fn second_closest_distance_matches_paper_lp() {
        let mut pts = ring(5, 2.0);
        pts.push(Point::new(0.1, 0.0));
        pts.push(Point::new(0.0, 0.5));
        let cfg = Configuration::new(pts);
        let lp = cfg.second_closest_distance(Point::ORIGIN);
        assert!(tol().eq(lp, 0.5));
    }

    #[test]
    fn open_disc_membership_is_strict() {
        let cfg = Configuration::new(vec![
            Point::new(0.2, 0.0),
            Point::new(1.0, 0.0),
            Point::new(-2.0, 0.0),
        ]);
        let inside = cfg.indices_in_open_disc(Point::ORIGIN, 1.0, &tol());
        assert_eq!(inside, vec![0]); // the boundary point (1,0) is excluded
    }

    #[test]
    fn with_point_moved_recomputes_sec() {
        let cfg = Configuration::new(ring(4, 1.0));
        let moved = cfg.with_point_moved(0, Point::new(5.0, 0.0));
        assert!(moved.sec().radius > cfg.sec().radius);
        assert_eq!(cfg.point(0), Point::new(1.0, 0.0)); // original untouched
    }

    #[test]
    fn without_removes_exactly_one() {
        let cfg = Configuration::new(ring(4, 1.0));
        let rest = cfg.without(2);
        assert_eq!(rest.len(), 3);
        assert!(!rest.iter().any(|p| p.approx_eq(Point::new(-1.0, 0.0), &tol())));
    }

    #[test]
    fn multiplicity_groups_cluster_duplicates() {
        let cfg = Configuration::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1e-12),
            Point::new(2.0, 0.0),
        ]);
        let groups = cfg.multiplicity_groups(&tol());
        assert_eq!(groups.len(), 3);
        assert!(cfg.has_multiplicity(&tol()));
        let pure = Configuration::new(ring(5, 1.0));
        assert!(!pure.has_multiplicity(&tol()));
    }

    #[test]
    fn normalization_yields_unit_sec() {
        let pts: Vec<Point> =
            ring(7, 3.0).into_iter().map(|p| Point::new(p.x + 4.0, p.y - 2.0)).collect();
        let cfg = Configuration::new(pts).normalized();
        assert!(cfg.sec().center.approx_eq(Point::ORIGIN, &tol()));
        assert!(tol().eq(cfg.sec().radius, 1.0));
    }

    #[test]
    fn sorted_radii_ascending() {
        let cfg = Configuration::new(vec![
            Point::new(3.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 2.0),
        ]);
        let r = cfg.sorted_radii(Point::ORIGIN);
        assert!(r[0] <= r[1] && r[1] <= r[2]);
        assert!(tol().eq(r[0], 1.0) && tol().eq(r[2], 3.0));
    }

    #[test]
    #[should_panic(expected = "at least one robot")]
    fn empty_configuration_panics() {
        Configuration::new(vec![]);
    }
}
