//! Tolerance framework for floating-point geometric decisions.
//!
//! Every geometric predicate in this crate (point coincidence, on-circle
//! tests, angular regularity, view comparison, …) is parameterized by a
//! [`Tol`]. Simulated configurations are constructed so that true geometric
//! distinctions are orders of magnitude larger than the tolerance, which makes
//! the predicates stable decision procedures rather than exact-arithmetic
//! approximations.

/// Comparison tolerances for lengths and angles.
///
/// Two separate tolerances are kept because the algorithm mixes decisions on
/// distances (which scale with the configuration, normalized so the smallest
/// enclosing circle has radius 1) and on angles (which are scale-free).
///
/// # Example
///
/// ```
/// use apf_geometry::Tol;
/// let tol = Tol::default();
/// assert!(tol.eq(1.0, 1.0 + 1e-10));
/// assert!(tol.lt(1.0, 1.1));
/// assert!(!tol.lt(1.0, 1.0 + 1e-10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tol {
    /// Absolute tolerance for length comparisons (configurations are
    /// normalized to unit enclosing-circle radius, so absolute ≈ relative).
    pub eps: f64,
    /// Absolute tolerance for angle comparisons, in radians.
    pub angle_eps: f64,
}

impl Default for Tol {
    fn default() -> Self {
        Tol { eps: 1e-7, angle_eps: 1e-7 }
    }
}

impl Tol {
    /// Creates a tolerance with the given length epsilon and a matching
    /// angular epsilon.
    pub fn new(eps: f64) -> Self {
        Tol { eps, angle_eps: eps }
    }

    /// A looser tolerance used by iterative numeric routines (Weiszfeld,
    /// center refinement) when verifying their own fixed points.
    pub fn coarse() -> Self {
        Tol { eps: 1e-5, angle_eps: 1e-5 }
    }

    /// `a == b` within the length tolerance.
    #[inline]
    pub fn eq(&self, a: f64, b: f64) -> bool {
        (a - b).abs() <= self.eps
    }

    /// `a < b` strictly, beyond the length tolerance.
    #[inline]
    pub fn lt(&self, a: f64, b: f64) -> bool {
        b - a > self.eps
    }

    /// `a <= b` within the length tolerance.
    #[inline]
    pub fn le(&self, a: f64, b: f64) -> bool {
        a - b <= self.eps
    }

    /// `a > b` strictly, beyond the length tolerance.
    #[inline]
    pub fn gt(&self, a: f64, b: f64) -> bool {
        a - b > self.eps
    }

    /// `a >= b` within the length tolerance.
    #[inline]
    pub fn ge(&self, a: f64, b: f64) -> bool {
        b - a <= self.eps
    }

    /// `a == 0` within the length tolerance.
    #[inline]
    pub fn is_zero(&self, a: f64) -> bool {
        a.abs() <= self.eps
    }

    /// `a == b` within the angular tolerance.
    #[inline]
    pub fn ang_eq(&self, a: f64, b: f64) -> bool {
        (a - b).abs() <= self.angle_eps
    }

    /// `a == 0` within the angular tolerance.
    #[inline]
    pub fn ang_is_zero(&self, a: f64) -> bool {
        a.abs() <= self.angle_eps
    }

    /// `a < b` strictly, beyond the angular tolerance.
    #[inline]
    pub fn ang_lt(&self, a: f64, b: f64) -> bool {
        b - a > self.angle_eps
    }

    /// Three-way comparison of lengths with tolerance: returns
    /// `Ordering::Equal` when the two values are within `eps`.
    #[inline]
    pub fn cmp(&self, a: f64, b: f64) -> std::cmp::Ordering {
        if self.eq(a, b) {
            std::cmp::Ordering::Equal
        } else if a < b {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    }

    /// Three-way comparison of angles with the angular tolerance.
    #[inline]
    pub fn ang_cmp(&self, a: f64, b: f64) -> std::cmp::Ordering {
        if self.ang_eq(a, b) {
            std::cmp::Ordering::Equal
        } else if a < b {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn eq_within_eps() {
        let t = Tol::new(1e-6);
        assert!(t.eq(1.0, 1.0 + 5e-7));
        assert!(!t.eq(1.0, 1.0 + 2e-6));
    }

    #[test]
    fn strict_orders_are_exclusive() {
        let t = Tol::new(1e-6);
        assert!(t.lt(0.0, 1.0));
        assert!(!t.lt(1.0, 1.0 + 1e-8));
        assert!(t.gt(1.0, 0.0));
        assert!(!t.gt(1.0 + 1e-8, 1.0));
    }

    #[test]
    fn le_ge_include_equality_band() {
        let t = Tol::new(1e-6);
        assert!(t.le(1.0 + 1e-8, 1.0));
        assert!(t.ge(1.0 - 1e-8, 1.0));
        assert!(!t.le(1.1, 1.0));
        assert!(!t.ge(0.9, 1.0));
    }

    #[test]
    fn cmp_collapses_equality_band() {
        let t = Tol::new(1e-6);
        assert_eq!(t.cmp(1.0, 1.0 + 1e-9), Ordering::Equal);
        assert_eq!(t.cmp(0.5, 1.0), Ordering::Less);
        assert_eq!(t.cmp(2.0, 1.0), Ordering::Greater);
    }

    #[test]
    fn angular_comparisons_use_angle_eps() {
        let t = Tol { eps: 1e-12, angle_eps: 1e-3 };
        assert!(t.ang_eq(1.0, 1.0005));
        assert!(!t.eq(1.0, 1.0005));
        assert!(t.ang_lt(0.0, 0.01));
        assert!(!t.ang_lt(0.0, 0.0005));
    }

    #[test]
    fn zero_checks() {
        let t = Tol::new(1e-6);
        assert!(t.is_zero(1e-9));
        assert!(!t.is_zero(1e-3));
        assert!(t.ang_is_zero(-1e-9));
    }

    #[test]
    fn default_is_tight() {
        let t = Tol::default();
        assert!(t.eps <= 1e-6);
        assert!(t.angle_eps <= 1e-6);
    }
}
