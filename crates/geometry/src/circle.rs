//! Circles, discs, and the smallest enclosing circle (Welzl's algorithm).

use crate::point::Point;
use crate::tol::Tol;

/// A circle given by center and radius.
///
/// Throughout the workspace, `C(P)` denotes the smallest enclosing circle of
/// the configuration `P` as computed by [`smallest_enclosing_circle`], and
/// configurations are normalized so `C(P)` has radius 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Center of the circle.
    pub center: Point,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(radius.is_finite() && radius >= 0.0, "invalid circle radius {radius}");
        Circle { center, radius }
    }

    /// Whether `p` lies inside or on the circle, within tolerance.
    pub fn contains(&self, p: Point, tol: &Tol) -> bool {
        tol.le(self.center.dist(p), self.radius)
    }

    /// Whether `p` lies strictly inside the circle (not on the circumference).
    pub fn strictly_contains(&self, p: Point, tol: &Tol) -> bool {
        tol.lt(self.center.dist(p), self.radius)
    }

    /// Whether `p` lies on the circumference, within tolerance.
    pub fn on_circumference(&self, p: Point, tol: &Tol) -> bool {
        tol.eq(self.center.dist(p), self.radius)
    }

    /// Whether `p` lies strictly outside the circle.
    pub fn strictly_outside(&self, p: Point, tol: &Tol) -> bool {
        tol.gt(self.center.dist(p), self.radius)
    }

    /// Whether two circles coincide within tolerance.
    pub fn approx_eq(&self, other: &Circle, tol: &Tol) -> bool {
        self.center.approx_eq(other.center, tol) && tol.eq(self.radius, other.radius)
    }

    /// The point on the circumference at the given angle (global frame).
    pub fn point_at_angle(&self, angle: f64) -> Point {
        Point::new(
            self.center.x + self.radius * angle.cos(),
            self.center.y + self.radius * angle.sin(),
        )
    }
}

/// Computes the smallest enclosing circle of a non-empty set of points using
/// Welzl's move-to-front algorithm (expected linear time).
///
/// The algorithm is made deterministic by a fixed internal permutation so that
/// simulations are reproducible run-to-run.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn smallest_enclosing_circle(points: &[Point]) -> Circle {
    assert!(!points.is_empty(), "smallest enclosing circle of an empty set is undefined");
    let _span = apf_trace::span::enter(apf_trace::SpanLabel::Sec);
    let mut pts: Vec<Point> = points.to_vec();
    deterministic_shuffle(&mut pts);

    let mut c = Circle::new(pts[0], 0.0);
    for i in 1..pts.len() {
        if !welzl_contains(&c, pts[i]) {
            c = circle_with_one_boundary(&pts[..i], pts[i]);
        }
    }
    c
}

/// Whether removing the point at `index` changes the smallest enclosing
/// circle — the paper's "`r` holds `C(P)`" predicate for a single robot.
///
/// A point strictly inside `C(P)` never holds it; a point on the circumference
/// holds it iff the circle of the remaining points differs.
///
/// # Panics
///
/// Panics if `points` has fewer than two elements or `index` is out of range.
pub fn holds_sec(points: &[Point], index: usize, tol: &Tol) -> bool {
    assert!(points.len() >= 2, "holds_sec needs at least two points");
    assert!(index < points.len(), "index out of range");
    let full = smallest_enclosing_circle(points);
    if full.strictly_contains(points[index], tol) {
        return false;
    }
    let rest: Vec<Point> =
        points.iter().enumerate().filter(|&(i, _)| i != index).map(|(_, &p)| p).collect();
    let reduced = smallest_enclosing_circle(&rest);
    !reduced.approx_eq(&full, tol)
}

/// Circle through exactly two points (as diameter).
pub fn circle_from_two(a: Point, b: Point) -> Circle {
    Circle::new(a.midpoint(b), a.dist(b) / 2.0)
}

/// Circumscribed circle through three points.
///
/// Returns `None` when the points are (numerically) collinear.
pub fn circle_from_three(a: Point, b: Point, c: Point) -> Option<Circle> {
    let d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
    if d.abs() < 1e-12 * (a.dist(b) + b.dist(c) + c.dist(a)).max(1.0) {
        return None;
    }
    let a2 = a.x * a.x + a.y * a.y;
    let b2 = b.x * b.x + b.y * b.y;
    let c2 = c.x * c.x + c.y * c.y;
    let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
    let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
    let center = Point::new(ux, uy);
    Some(Circle::new(center, center.dist(a)))
}

// Containment check used inside Welzl's recursion: slightly inflated to keep
// the algorithm stable when many points lie exactly on the circle.
fn welzl_contains(c: &Circle, p: Point) -> bool {
    c.center.dist(p) <= c.radius * (1.0 + 1e-12) + 1e-12
}

fn circle_with_one_boundary(pts: &[Point], q: Point) -> Circle {
    let mut c = Circle::new(q, 0.0);
    for i in 0..pts.len() {
        if !welzl_contains(&c, pts[i]) {
            c = circle_with_two_boundary(&pts[..i], pts[i], q);
        }
    }
    c
}

fn circle_with_two_boundary(pts: &[Point], p: Point, q: Point) -> Circle {
    let mut c = circle_from_two(p, q);
    for &r in pts {
        if !welzl_contains(&c, r) {
            c = circle_from_three(p, q, r).unwrap_or_else(|| {
                // Collinear triple: take the two farthest apart as diameter.
                let (a, b) = farthest_pair(&[p, q, r]);
                circle_from_two(a, b)
            });
        }
    }
    c
}

fn farthest_pair(pts: &[Point]) -> (Point, Point) {
    let mut best = (pts[0], pts[0]);
    let mut best_d = -1.0;
    for i in 0..pts.len() {
        for j in (i + 1)..pts.len() {
            let d = pts[i].dist(pts[j]);
            if d > best_d {
                best_d = d;
                best = (pts[i], pts[j]);
            }
        }
    }
    best
}

// A deterministic pseudo-random permutation (xorshift-driven Fisher–Yates)
// so SEC computation order does not depend on input order pathologies while
// remaining reproducible.
fn deterministic_shuffle(pts: &mut [Point]) {
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    for i in (1..pts.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = (state % (i as u64 + 1)) as usize;
        pts.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    const T: Tol = Tol { eps: 1e-7, angle_eps: 1e-7 };

    #[test]
    fn sec_single_point_is_degenerate() {
        let c = smallest_enclosing_circle(&[Point::new(2.0, 3.0)]);
        assert!(c.center.approx_eq(Point::new(2.0, 3.0), &T));
        assert!(T.is_zero(c.radius));
    }

    #[test]
    fn sec_two_points_is_diameter() {
        let c = smallest_enclosing_circle(&[Point::new(-1.0, 0.0), Point::new(1.0, 0.0)]);
        assert!(c.center.approx_eq(Point::ORIGIN, &T));
        assert!(T.eq(c.radius, 1.0));
    }

    #[test]
    fn sec_obtuse_triangle_uses_longest_side() {
        // Obtuse at the origin: SEC is the diameter circle of the long side.
        let pts = [Point::new(0.0, 0.1), Point::new(-2.0, 0.0), Point::new(2.0, 0.0)];
        let c = smallest_enclosing_circle(&pts);
        assert!(c.center.approx_eq(Point::ORIGIN, &T));
        assert!(T.eq(c.radius, 2.0));
    }

    #[test]
    fn sec_equilateral_triangle_is_circumcircle() {
        let pts: Vec<Point> = (0..3)
            .map(|i| {
                let a = TAU * i as f64 / 3.0;
                Point::new(a.cos(), a.sin())
            })
            .collect();
        let c = smallest_enclosing_circle(&pts);
        assert!(c.center.approx_eq(Point::ORIGIN, &T));
        assert!(T.eq(c.radius, 1.0));
    }

    #[test]
    fn sec_regular_ngon_any_size() {
        for n in [4usize, 5, 7, 12, 33] {
            let pts: Vec<Point> = (0..n)
                .map(|i| {
                    let a = TAU * i as f64 / n as f64 + 0.37;
                    Point::new(3.0 + 2.0 * a.cos(), -1.0 + 2.0 * a.sin())
                })
                .collect();
            let c = smallest_enclosing_circle(&pts);
            assert!(c.center.approx_eq(Point::new(3.0, -1.0), &T), "n = {n}");
            assert!(T.eq(c.radius, 2.0), "n = {n}");
        }
    }

    #[test]
    fn sec_contains_all_points() {
        // Deterministic scattered points.
        let pts: Vec<Point> = (0..50)
            .map(|i| {
                let x = ((i * 37) % 101) as f64 / 10.0;
                let y = ((i * 61) % 89) as f64 / 10.0;
                Point::new(x, y)
            })
            .collect();
        let c = smallest_enclosing_circle(&pts);
        for p in &pts {
            assert!(c.contains(*p, &T));
        }
    }

    #[test]
    fn sec_interior_points_do_not_matter() {
        let mut pts = vec![
            Point::new(-1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(0.0, -1.0),
        ];
        let base = smallest_enclosing_circle(&pts);
        pts.push(Point::new(0.1, 0.2));
        pts.push(Point::new(-0.3, 0.4));
        let c = smallest_enclosing_circle(&pts);
        assert!(c.approx_eq(&base, &T));
    }

    #[test]
    fn collinear_points_sec() {
        let pts = [Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(4.0, 0.0)];
        let c = smallest_enclosing_circle(&pts);
        assert!(c.center.approx_eq(Point::new(2.0, 0.0), &T));
        assert!(T.eq(c.radius, 2.0));
    }

    #[test]
    fn holds_sec_detects_critical_points() {
        // A square plus center: corner points hold the SEC only if removing
        // them changes it. Removing one corner of a square leaves the same
        // circumcircle (the opposite diagonal still spans it)... actually the
        // SEC of 3 corners of a unit square is the circumcircle of the right
        // triangle = same circle. So no single corner holds it.
        let square = [
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(-1.0, 0.0),
            Point::new(0.0, -1.0),
        ];
        for i in 0..4 {
            assert!(!holds_sec(&square, i, &T), "square corner {i}");
        }
        // Two antipodal points: each holds the SEC.
        let pair = [Point::new(-1.0, 0.0), Point::new(1.0, 0.0)];
        assert!(holds_sec(&pair, 0, &T));
        assert!(holds_sec(&pair, 1, &T));
        // Interior point never holds.
        let with_inner = [
            Point::new(-1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(0.2, 0.1),
        ];
        assert!(!holds_sec(&with_inner, 3, &T));
    }

    #[test]
    fn holds_sec_triangle_vertices_hold() {
        // Acute triangle: every vertex is on the SEC and removing it shrinks
        // the circle.
        let pts: Vec<Point> = (0..3)
            .map(|i| {
                let a = TAU * i as f64 / 3.0;
                Point::new(a.cos(), a.sin())
            })
            .collect();
        for i in 0..3 {
            assert!(holds_sec(&pts, i, &T));
        }
    }

    #[test]
    fn circle_from_three_collinear_is_none() {
        assert!(circle_from_three(
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0)
        )
        .is_none());
    }

    #[test]
    fn point_at_angle_on_circumference() {
        let c = Circle::new(Point::new(1.0, 1.0), 2.0);
        for k in 0..8 {
            let a = TAU * k as f64 / 8.0;
            assert!(c.on_circumference(c.point_at_angle(a), &T));
        }
    }

    #[test]
    fn containment_predicates() {
        let c = Circle::new(Point::ORIGIN, 1.0);
        assert!(c.contains(Point::new(0.5, 0.0), &T));
        assert!(c.strictly_contains(Point::new(0.5, 0.0), &T));
        assert!(c.contains(Point::new(1.0, 0.0), &T));
        assert!(!c.strictly_contains(Point::new(1.0, 0.0), &T));
        assert!(c.on_circumference(Point::new(0.0, 1.0), &T));
        assert!(c.strictly_outside(Point::new(1.5, 0.0), &T));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn sec_empty_panics() {
        smallest_enclosing_circle(&[]);
    }
}
