//! Weber point (geometric median) via Weiszfeld iteration.
//!
//! The Weber point of a point set minimizes the sum of distances to the
//! points. The paper relies on two of its properties:
//!
//! * the Weber point of an equiangular or biangular ("(bi)regular")
//!   configuration is the center of regularity (Anderegg, Cieliebak &
//!   Prencipe 2003), and
//! * it is invariant under straight-line movement of any point *toward* it —
//!   which is why radial election movements preserve the regular center.
//!
//! The paper cites a linear-time exact construction for biangular
//! configurations; a simulator does not need linear time, so we use the
//! classical Weiszfeld fixed-point iteration with a standard singularity
//! guard, followed by verification in the callers (the regularity detectors
//! re-check angular gaps around the returned center).

use crate::point::{Point, Vector};

/// Result of a Weber point computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeberResult {
    /// The computed geometric median.
    pub point: Point,
    /// Number of iterations used.
    pub iterations: usize,
    /// Final step size (convergence indicator).
    pub residual: f64,
}

/// Computes the Weber point (geometric median) of `points`.
///
/// Uses Weiszfeld iteration from the centroid with the Vardi–Zhang guard for
/// iterates that land on an input point. Converges to `tolerance` movement per
/// step or stops after `max_iter` iterations.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn weber_point(points: &[Point]) -> Point {
    weber_point_detailed(points, 1e-12, 10_000).point
}

/// Like [`weber_point`] but exposing convergence details.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn weber_point_detailed(points: &[Point], tolerance: f64, max_iter: usize) -> WeberResult {
    assert!(!points.is_empty(), "weber point of an empty set is undefined");
    if points.len() == 1 {
        return WeberResult { point: points[0], iterations: 0, residual: 0.0 };
    }
    if points.len() == 2 {
        // Any point on the segment minimizes; take the midpoint (it is also
        // the center used elsewhere for two-point sets).
        return WeberResult { point: points[0].midpoint(points[1]), iterations: 0, residual: 0.0 };
    }

    // Start from the centroid.
    let mut x = centroid(points);
    let mut residual = f64::INFINITY;
    let mut iterations = 0;

    for it in 0..max_iter {
        iterations = it + 1;
        let next = weiszfeld_step(points, x);
        residual = x.dist(next);
        x = next;
        if residual <= tolerance {
            break;
        }
    }
    WeberResult { point: x, iterations, residual }
}

/// Arithmetic mean of the points.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn centroid(points: &[Point]) -> Point {
    assert!(!points.is_empty(), "centroid of an empty set is undefined");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.x).sum();
    let sy: f64 = points.iter().map(|p| p.y).sum();
    Point::new(sx / n, sy / n)
}

fn weiszfeld_step(points: &[Point], x: Point) -> Point {
    let mut num = Vector::ZERO;
    let mut den = 0.0;
    let mut at_vertex: Option<Point> = None;
    let mut pull = Vector::ZERO; // sum of unit vectors from coincident vertex

    for &p in points {
        let d = x.dist(p);
        if d < 1e-13 {
            at_vertex = Some(p);
            continue;
        }
        let w = 1.0 / d;
        num = num + (p - Point::ORIGIN) * w;
        den += w;
        pull = pull + (p - x) / d;
    }

    match at_vertex {
        None => {
            // apf-lint: allow(no-float-eq) — exact-zero guard: den sums strictly positive weights
            if den == 0.0 {
                x
            } else {
                (num / den).to_point()
            }
        }
        Some(v) => {
            // Vardi–Zhang: if the pull of the other points exceeds 1 (the
            // vertex's own subgradient bound), step off the vertex in the
            // pull direction; otherwise the vertex is the median.
            let r = pull.norm();
            if r <= 1.0 {
                v
            } else {
                let t = weiszfeld_step_excluding(points, x, v);
                let d = 1.0 - 1.0 / r;
                x.lerp(t, d.clamp(0.0, 1.0))
            }
        }
    }
}

fn weiszfeld_step_excluding(points: &[Point], x: Point, excl: Point) -> Point {
    let mut num = Vector::ZERO;
    let mut den = 0.0;
    for &p in points {
        if p == excl {
            continue;
        }
        let d = x.dist(p).max(1e-13);
        let w = 1.0 / d;
        num = num + (p - Point::ORIGIN) * w;
        den += w;
    }
    // apf-lint: allow(no-float-eq) — exact-zero guard against num / den on an all-excluded set
    if den == 0.0 {
        x
    } else {
        (num / den).to_point()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tol::Tol;
    use std::f64::consts::TAU;

    fn tol() -> Tol {
        Tol::new(1e-6)
    }

    #[test]
    fn single_and_pair() {
        let p = Point::new(1.0, 2.0);
        assert!(weber_point(&[p]).approx_eq(p, &tol()));
        let q = Point::new(3.0, 2.0);
        assert!(weber_point(&[p, q]).approx_eq(Point::new(2.0, 2.0), &tol()));
    }

    #[test]
    fn symmetric_square_median_is_center() {
        let pts = [
            Point::new(1.0, 0.0),
            Point::new(-1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(0.0, -1.0),
        ];
        assert!(weber_point(&pts).approx_eq(Point::ORIGIN, &tol()));
    }

    #[test]
    fn equiangular_with_unequal_radii_center_is_weber() {
        // 5 half-lines at equal angles from (2, -1), robots at distinct radii:
        // the Weber point must be the equiangular center.
        let c = Point::new(2.0, -1.0);
        let radii = [1.0, 2.0, 0.7, 1.5, 3.0];
        let pts: Vec<Point> = (0..5)
            .map(|i| {
                let a = TAU * i as f64 / 5.0 + 0.3;
                Point::new(c.x + radii[i] * a.cos(), c.y + radii[i] * a.sin())
            })
            .collect();
        let w = weber_point(&pts);
        assert!(w.approx_eq(c, &Tol::new(1e-5)), "weber {w} vs center {c}");
    }

    #[test]
    fn biangular_center_is_weber() {
        // Biangular: gaps alternate alpha, beta around center, radii vary in
        // symmetric pairs so the pulls cancel at the center.
        let c = Point::new(0.5, 0.5);
        let alpha = 0.4;
        let beta = TAU / 3.0 - alpha;
        let mut angle: f64 = 0.1;
        let mut pts = Vec::new();
        let radii = [1.0, 2.0, 1.0, 2.0, 1.0, 2.0];
        for (i, &r) in radii.iter().enumerate() {
            pts.push(Point::new(c.x + r * angle.cos(), c.y + r * angle.sin()));
            angle += if i % 2 == 0 { alpha } else { beta };
        }
        let w = weber_point(&pts);
        assert!(w.approx_eq(c, &Tol::new(1e-5)), "weber {w} vs center {c}");
    }

    #[test]
    fn median_is_robust_to_outlier() {
        // Geometric median barely moves with one far outlier, unlike the
        // centroid.
        let mut pts: Vec<Point> = (0..7)
            .map(|i| {
                let a = TAU * i as f64 / 7.0;
                Point::new(a.cos(), a.sin())
            })
            .collect();
        let w0 = weber_point(&pts);
        pts.push(Point::new(100.0, 0.0));
        let w1 = weber_point(&pts);
        assert!(w0.dist(w1) < 0.5);
        assert!(centroid(&pts).dist(w0) > 5.0);
    }

    #[test]
    fn vertex_can_be_the_median() {
        // Three points where the middle one is the median (collinear set).
        let pts = [Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        assert!(weber_point(&pts).approx_eq(Point::new(1.0, 0.0), &tol()));
    }

    #[test]
    fn invariance_under_radial_move_toward_weber() {
        // Move one point of an equiangular set straight toward the center:
        // the Weber point stays put (paper's Property: radial moves preserve
        // the regular center).
        let c = Point::ORIGIN;
        let mut pts: Vec<Point> = (0..7)
            .map(|i| {
                let a = TAU * i as f64 / 7.0;
                Point::new(2.0 * a.cos(), 2.0 * a.sin())
            })
            .collect();
        let before = weber_point(&pts);
        assert!(before.approx_eq(c, &tol()));
        // Pull one point inward along its ray.
        pts[3] = Point::new(pts[3].x * 0.25, pts[3].y * 0.25);
        let after = weber_point(&pts);
        assert!(after.approx_eq(c, &Tol::new(1e-5)), "after = {after}");
    }

    #[test]
    fn detailed_reports_convergence() {
        let pts: Vec<Point> = (0..9)
            .map(|i| {
                let a = TAU * i as f64 / 9.0;
                Point::new(a.cos() * (1.0 + 0.1 * i as f64), a.sin() * (1.0 + 0.1 * i as f64))
            })
            .collect();
        let r = weber_point_detailed(&pts, 1e-12, 10_000);
        assert!(r.residual <= 1e-10);
        assert!(r.iterations >= 1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        weber_point(&[]);
    }
}
