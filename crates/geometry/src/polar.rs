//! Polar coordinates around a configuration center.

use crate::angle::normalize_angle;
use crate::point::Point;
use crate::tol::Tol;

/// A point expressed in polar coordinates `(radius, angle)` around an
/// implicit center, with `angle ∈ [0, 2π)`.
///
/// Polar points are the working representation of the symmetry engine: views,
/// regularity checks and the deterministic formation phases all reason about
/// `(radius, angle)` pairs around `c(P)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolarPoint {
    /// Distance from the center (non-negative).
    pub radius: f64,
    /// Angle in `[0, 2π)` in the frame at hand.
    pub angle: f64,
}

impl PolarPoint {
    /// Creates a polar point, normalizing the angle to `[0, 2π)`.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(radius: f64, angle: f64) -> Self {
        assert!(radius.is_finite() && radius >= 0.0, "invalid polar radius {radius}");
        PolarPoint { radius, angle: normalize_angle(angle) }
    }

    /// Converts a Cartesian point to polar coordinates around `center`.
    ///
    /// A point coinciding with the center gets radius 0 and angle 0.
    pub fn from_cartesian(p: Point, center: Point) -> Self {
        let v = p - center;
        let r = v.norm();
        // apf-lint: allow(no-float-eq) — exact-zero guard: only r == 0 leaves the angle undefined
        if r == 0.0 {
            PolarPoint { radius: 0.0, angle: 0.0 }
        } else {
            PolarPoint { radius: r, angle: normalize_angle(v.angle()) }
        }
    }

    /// Converts back to Cartesian coordinates around `center`.
    pub fn to_cartesian(self, center: Point) -> Point {
        Point::new(
            center.x + self.radius * self.angle.cos(),
            center.y + self.radius * self.angle.sin(),
        )
    }

    /// Whether two polar points coincide within tolerance. Points at radius
    /// ~0 are equal regardless of angle.
    pub fn approx_eq(self, other: PolarPoint, tol: &Tol) -> bool {
        if tol.is_zero(self.radius) && tol.is_zero(other.radius) {
            return true;
        }
        tol.eq(self.radius, other.radius)
            && crate::angle::angle_dist(self.angle, other.angle) <= tol.angle_eps
    }
}

/// Converts a slice of Cartesian points to polar coordinates around `center`.
pub fn to_polar(points: &[Point], center: Point) -> Vec<PolarPoint> {
    points.iter().map(|&p| PolarPoint::from_cartesian(p, center)).collect()
}

/// Sorts indices of `polar` by angle (ascending), breaking ties by radius.
pub fn indices_by_angle(polar: &[PolarPoint]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..polar.len()).collect();
    idx.sort_by(|&a, &b| {
        polar[a].angle.total_cmp(&polar[b].angle).then(polar[a].radius.total_cmp(&polar[b].radius))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    const T: Tol = Tol { eps: 1e-9, angle_eps: 1e-9 };

    #[test]
    fn roundtrip_cartesian_polar() {
        let center = Point::new(1.0, -2.0);
        for &(x, y) in &[(3.0, -2.0), (1.0, 5.0), (-4.0, -3.5), (1.1, -2.1)] {
            let p = Point::new(x, y);
            let pp = PolarPoint::from_cartesian(p, center);
            assert!(pp.to_cartesian(center).approx_eq(p, &T));
        }
    }

    #[test]
    fn center_point_has_zero_radius() {
        let c = Point::new(2.0, 2.0);
        let pp = PolarPoint::from_cartesian(c, c);
        assert_eq!(pp.radius, 0.0);
        assert_eq!(pp.angle, 0.0);
    }

    #[test]
    fn angles_are_normalized() {
        let pp = PolarPoint::new(1.0, -FRAC_PI_2);
        assert!((pp.angle - 3.0 * FRAC_PI_2).abs() < 1e-12);
        let pp2 = PolarPoint::new(1.0, TAU + PI);
        assert!((pp2.angle - PI).abs() < 1e-12);
    }

    #[test]
    fn approx_eq_handles_wraparound_and_center() {
        let a = PolarPoint::new(1.0, 1e-10);
        let b = PolarPoint::new(1.0, TAU - 1e-10);
        assert!(a.approx_eq(b, &T));
        let z1 = PolarPoint::new(0.0, 0.0);
        let z2 = PolarPoint { radius: 0.0, angle: 2.0 };
        assert!(z1.approx_eq(z2, &T));
    }

    #[test]
    fn sorting_by_angle() {
        let pts =
            vec![PolarPoint::new(1.0, 3.0), PolarPoint::new(2.0, 1.0), PolarPoint::new(0.5, 2.0)];
        let idx = indices_by_angle(&pts);
        assert_eq!(idx, vec![1, 2, 0]);
    }

    #[test]
    fn sorting_ties_broken_by_radius() {
        let pts = vec![PolarPoint::new(2.0, 1.0), PolarPoint::new(1.0, 1.0)];
        let idx = indices_by_angle(&pts);
        assert_eq!(idx, vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "invalid polar radius")]
    fn negative_radius_panics() {
        PolarPoint::new(-1.0, 0.0);
    }
}
