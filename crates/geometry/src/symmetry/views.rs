//! Local views and the view order.
//!
//! The *local view* `Z_r` of a robot `r ≠ c(P)` is the multiset of robot
//! positions in the polar coordinate system centered at `c(P)` in which `r`
//! sits at `(1, 0)`, taken with the rotational orientation that maximizes the
//! view in the lexicographic order. Views are scale- and chirality-free, so
//! every robot computes the same view for the same robot regardless of its
//! local frame — they are the paper's (and the field's) standard mechanism
//! for anonymous robots to rank each other.
//!
//! # Implementation notes
//!
//! Views are *quantized* onto an integer grid derived from the tolerance
//! before comparison. This gives a genuine total order (`Ord`) — a naive
//! `f64`-with-epsilon comparison is not transitive and could make different
//! robots disagree on the ranking, which would break the algorithm's
//! agreement arguments.

use crate::angle::{normalize_angle, Orientation};
use crate::config::Configuration;
use crate::point::Point;
use crate::polar::PolarPoint;
use crate::tol::Tol;
use std::f64::consts::TAU;

/// A quantized local view: the lexicographically comparable fingerprint of
/// what one robot sees.
///
/// Views compare with the standard derived `Ord`; a larger view means a
/// "greater" robot in the paper's ordering. The empty view (robot exactly at
/// the center) is minimal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct View {
    /// Sorted `(angle, radius)` pairs on the quantization grid.
    coords: Vec<(i64, i64)>,
}

impl View {
    /// The coordinates (quantized `(angle, radius)` pairs, sorted).
    pub fn coords(&self) -> &[(i64, i64)] {
        &self.coords
    }

    /// Whether this is the distinguished minimal view of a center robot.
    pub fn is_center_view(&self) -> bool {
        self.coords.is_empty()
    }
}

/// Per-robot view information produced by [`ViewAnalysis`].
#[derive(Debug, Clone)]
pub struct RobotView {
    /// The maximal view over both orientations.
    pub view: View,
    /// Global orientation(s) attaining the maximum.
    pub ccw_max: bool,
    /// Whether the clockwise orientation also attains the maximum.
    pub cw_max: bool,
}

impl RobotView {
    /// Whether the robot's view is invariant under orientation flip — i.e.
    /// the robot lies on an axis of symmetry of the configuration.
    pub fn on_axis(&self) -> bool {
        self.ccw_max && self.cw_max
    }
}

/// View analysis of a whole configuration around a center.
///
/// # Example
///
/// ```
/// use apf_geometry::{Configuration, Point, Tol};
/// use apf_geometry::symmetry::ViewAnalysis;
///
/// // A square: all four robots are equivalent (same view).
/// let cfg = Configuration::new(vec![
///     Point::new(1.0, 0.0), Point::new(0.0, 1.0),
///     Point::new(-1.0, 0.0), Point::new(0.0, -1.0),
/// ]);
/// let va = ViewAnalysis::compute(&cfg, Point::new(0.0, 0.0), &Tol::default());
/// assert_eq!(va.equivalence_classes().len(), 1);
/// assert_eq!(va.max_view_indices(), vec![0, 1, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct ViewAnalysis {
    robots: Vec<RobotView>,
}

impl ViewAnalysis {
    /// Computes every robot's maximal local view around `center`.
    ///
    /// Robots located (within tolerance) at `center` receive the minimal
    /// "center view".
    pub fn compute(config: &Configuration, center: Point, tol: &Tol) -> Self {
        let _span = apf_trace::span::enter(apf_trace::SpanLabel::Views);
        let polar = config.polar_around(center);
        let robots = (0..config.len()).map(|i| robot_view(&polar, i, tol)).collect();
        ViewAnalysis { robots }
    }

    /// Per-robot views, indexed like the configuration.
    pub fn robots(&self) -> &[RobotView] {
        &self.robots
    }

    /// The view of robot `i`.
    pub fn view(&self, i: usize) -> &View {
        &self.robots[i].view
    }

    /// Indices of the robots whose view is maximal.
    pub fn max_view_indices(&self) -> Vec<usize> {
        let max = self.robots.iter().map(|r| &r.view).max();
        match max {
            None => vec![],
            Some(max) => self
                .robots
                .iter()
                .enumerate()
                .filter(|(_, r)| &r.view == max)
                .map(|(i, _)| i)
                .collect(),
        }
    }

    /// Robot indices sorted by view, *descending* (greatest view first).
    /// Ties are broken by index for determinism of iteration, but callers
    /// that need the paper's unique `Q_i` sequence must only cut at
    /// boundaries where the view changes — see
    /// [`Self::descending_class_boundaries`].
    pub fn indices_by_view_desc(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.robots.len()).collect();
        idx.sort_by(|&a, &b| self.robots[b].view.cmp(&self.robots[a].view).then(a.cmp(&b)));
        idx
    }

    /// Prefix lengths `i` of [`Self::indices_by_view_desc`] at which the view
    /// strictly drops — the only prefix sizes for which "the `i` robots with
    /// greatest view" is well defined.
    pub fn descending_class_boundaries(&self) -> Vec<usize> {
        let order = self.indices_by_view_desc();
        let mut cuts = Vec::new();
        for i in 0..order.len() {
            let last_of_class = i + 1 == order.len()
                || self.robots[order[i + 1]].view != self.robots[order[i]].view;
            if last_of_class {
                cuts.push(i + 1);
            }
        }
        cuts
    }

    /// Groups robots into equivalence classes: robots with the same view
    /// attained in the same orientation. Classes are returned largest view
    /// first.
    pub fn equivalence_classes(&self) -> Vec<Vec<usize>> {
        type ClassKey<'a> = (&'a View, bool, bool);
        let mut keys: Vec<(usize, ClassKey<'_>)> = self
            .robots
            .iter()
            .enumerate()
            .map(|(i, r)| (i, (&r.view, r.ccw_max, r.cw_max)))
            .collect();
        keys.sort_by(|a, b| b.1 .0.cmp(a.1 .0).then(a.0.cmp(&b.0)));
        let mut classes: Vec<(ClassKey<'_>, Vec<usize>)> = Vec::new();
        for (i, k) in keys {
            if let Some(c) = classes.iter_mut().find(|(ck, _)| *ck == k) {
                c.1.push(i);
            } else {
                classes.push((k, vec![i]));
            }
        }
        classes.into_iter().map(|(_, v)| v).collect()
    }

    /// Whether every robot has a distinct view (no two robots are
    /// equivalent and none shares a view with a different orientation).
    pub fn all_views_distinct(&self) -> bool {
        let mut vs: Vec<&View> = self.robots.iter().map(|r| &r.view).collect();
        vs.sort();
        vs.windows(2).all(|w| w[0] != w[1])
    }
}

/// Computes robot `i`'s maximal view over both orientations.
fn robot_view(polar: &[PolarPoint], i: usize, tol: &Tol) -> RobotView {
    let me = polar[i];
    if me.radius <= tol.eps {
        // Center robot: distinguished minimal view.
        return RobotView { view: View { coords: vec![] }, ccw_max: true, cw_max: true };
    }
    let ccw = oriented_view(polar, i, Orientation::Ccw, tol);
    let cw = oriented_view(polar, i, Orientation::Cw, tol);
    match ccw.cmp(&cw) {
        std::cmp::Ordering::Greater => RobotView { view: ccw, ccw_max: true, cw_max: false },
        std::cmp::Ordering::Less => RobotView { view: cw, ccw_max: false, cw_max: true },
        std::cmp::Ordering::Equal => RobotView { view: ccw, ccw_max: true, cw_max: true },
    }
}

/// The view of robot `i` in one fixed global orientation: all robots'
/// `(angle − angle_i, radius / radius_i)` pairs, quantized and sorted.
fn oriented_view(polar: &[PolarPoint], i: usize, orientation: Orientation, tol: &Tol) -> View {
    let me = polar[i];
    let mut coords: Vec<(i64, i64)> = polar
        .iter()
        .map(|p| {
            let rel_angle = if p.radius <= tol.eps {
                0.0 // center robots have no meaningful angle
            } else {
                normalize_angle(orientation.sign() * (p.angle - me.angle))
            };
            (quantize(rel_angle, tol.angle_eps, TAU), quantize(p.radius / me.radius, tol.eps, 0.0))
        })
        .collect();
    coords.sort();
    View { coords }
}

/// Quantizes `x` to an integer grid with step `4 * eps`, wrapping values that
/// round up to `wrap` (for angles) back to zero.
fn quantize(x: f64, eps: f64, wrap: f64) -> i64 {
    let step = 4.0 * eps;
    // apf-lint: allow(no-float-int-casts-in-digest-paths) — the audited quantizer itself: x/step is far below 2^53 and .round() lands on an exact integer
    let q = (x / step).round() as i64;
    if wrap > 0.0 {
        // apf-lint: allow(no-float-int-casts-in-digest-paths) — same audited quantizer, applied to the wrap period
        let wrap_q = (wrap / step).round() as i64;
        q.rem_euclid(wrap_q)
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn tol() -> Tol {
        Tol::default()
    }

    fn ring(n: usize, r: f64, phase: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = TAU * i as f64 / n as f64 + phase;
                Point::new(r * a.cos(), r * a.sin())
            })
            .collect()
    }

    #[test]
    fn square_all_equivalent() {
        let cfg = Configuration::new(ring(4, 1.0, 0.2));
        let va = ViewAnalysis::compute(&cfg, Point::ORIGIN, &tol());
        assert_eq!(va.equivalence_classes().len(), 1);
        assert_eq!(va.max_view_indices().len(), 4);
    }

    #[test]
    fn asymmetric_config_has_distinct_views() {
        let cfg = Configuration::new(vec![
            Point::new(1.0, 0.0),
            Point::new(0.3, 0.9),
            Point::new(-0.8, 0.1),
            Point::new(-0.2, -0.7),
            Point::new(0.5, -0.4),
        ]);
        let va = ViewAnalysis::compute(&cfg, cfg.sec().center, &tol());
        assert!(va.all_views_distinct());
        assert_eq!(va.max_view_indices().len(), 1);
    }

    #[test]
    fn mirror_partners_share_view_opposite_orientation() {
        // Axially symmetric (but not rotationally): an isoceles-like config.
        let pts = vec![
            Point::new(0.0, 1.0),   // apex on the axis
            Point::new(0.6, -0.4),  // mirror pair
            Point::new(-0.6, -0.4), // mirror pair
            Point::new(0.0, -0.9),  // on the axis
        ];
        let cfg = Configuration::new(pts);
        let va = ViewAnalysis::compute(&cfg, cfg.sec().center, &tol());
        let r = va.robots();
        assert_eq!(r[1].view, r[2].view);
        // The mirror pair attains its max in opposite orientations.
        assert_ne!(r[1].ccw_max, r[2].ccw_max);
        assert!(!r[1].on_axis() && !r[2].on_axis());
    }

    #[test]
    fn axis_robot_view_is_orientation_invariant() {
        let pts = vec![Point::new(0.0, 1.0), Point::new(0.6, -0.4), Point::new(-0.6, -0.4)];
        let cfg = Configuration::new(pts);
        let va = ViewAnalysis::compute(&cfg, cfg.sec().center, &tol());
        assert!(va.robots()[0].on_axis());
    }

    #[test]
    fn center_robot_has_minimal_view() {
        let mut pts = ring(5, 1.0, 0.0);
        pts.push(Point::ORIGIN);
        let cfg = Configuration::new(pts);
        let va = ViewAnalysis::compute(&cfg, Point::ORIGIN, &tol());
        assert!(va.view(5).is_center_view());
        assert!(va.robots().iter().take(5).all(|r| &r.view > va.view(5)));
    }

    #[test]
    fn rho_classes_in_rotational_config() {
        // Two concentric squares rotated relative to each other: ρ = 4, two
        // equivalence classes of 4.
        let mut pts = ring(4, 1.0, 0.0);
        pts.extend(ring(4, 0.5, 0.3));
        let cfg = Configuration::new(pts);
        let va = ViewAnalysis::compute(&cfg, Point::ORIGIN, &tol());
        let classes = va.equivalence_classes();
        assert_eq!(classes.len(), 2);
        assert!(classes.iter().all(|c| c.len() == 4));
    }

    #[test]
    fn class_boundaries_respect_ties() {
        let mut pts = ring(4, 1.0, 0.0);
        pts.extend(ring(4, 0.5, 0.3));
        let cfg = Configuration::new(pts);
        let va = ViewAnalysis::compute(&cfg, Point::ORIGIN, &tol());
        let cuts = va.descending_class_boundaries();
        assert_eq!(cuts, vec![4, 8]);
    }

    #[test]
    fn views_scale_invariant() {
        let a = Configuration::new(vec![
            Point::new(1.0, 0.0),
            Point::new(0.3, 0.9),
            Point::new(-0.8, 0.1),
            Point::new(-0.2, -0.7),
        ]);
        let scaled = Configuration::new(
            a.points().iter().map(|p| Point::new(p.x * 7.0 + 3.0, p.y * 7.0 - 1.0)).collect(),
        );
        let va = ViewAnalysis::compute(&a, a.sec().center, &tol());
        let vb = ViewAnalysis::compute(&scaled, scaled.sec().center, &tol());
        assert_eq!(va.indices_by_view_desc(), vb.indices_by_view_desc());
    }

    #[test]
    fn views_chirality_invariant_ranking() {
        // Mirroring the whole configuration must preserve the view ranking
        // (views try both orientations).
        let pts = vec![
            Point::new(1.0, 0.0),
            Point::new(0.3, 0.9),
            Point::new(-0.8, 0.1),
            Point::new(-0.2, -0.7),
            Point::new(0.5, -0.4),
        ];
        let mirrored: Vec<Point> = pts.iter().map(|p| Point::new(p.x, -p.y)).collect();
        let a = Configuration::new(pts);
        let b = Configuration::new(mirrored);
        let va = ViewAnalysis::compute(&a, a.sec().center, &tol());
        let vb = ViewAnalysis::compute(&b, b.sec().center, &tol());
        // Same robots (by index) have the same view either way.
        for i in 0..a.len() {
            assert_eq!(va.view(i), vb.view(i), "robot {i}");
        }
    }

    #[test]
    fn max_view_unique_in_near_symmetric_config() {
        // Break a square's symmetry by nudging one robot inward: that robot's
        // class splits off.
        let mut pts = ring(4, 1.0, 0.0);
        pts[0] = Point::new(0.8, 0.0);
        // Keep SEC stable with an extra anchor ring far out.
        pts.extend(ring(3, 2.0, 0.1));
        let cfg = Configuration::new(pts);
        let va = ViewAnalysis::compute(&cfg, cfg.sec().center, &tol());
        assert!(va.all_views_distinct() || va.equivalence_classes().len() > 2);
    }
}
