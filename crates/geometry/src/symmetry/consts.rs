//! The symmetry classifiers' tolerance constants, in one place.
//!
//! These bands and slack factors used to live as inline literals spread
//! across `rho.rs`, `regular.rs`, and `shifted.rs`; any drift between two
//! copies of the same epsilon is a latent classification bug, and the
//! geometry-space fuzzer (`apf-conformance::geometry_fuzz`) needs a single
//! addressable source of truth to aim perturbations at classifier
//! boundaries. Every constant documents which decision it parameterizes.

use crate::tol::Tol;

/// Multiplier applied to `Tol::angle_eps` for the coarse Weber-point
/// pre-check in [`super::regular::find_regular_center`]: the Weber point is
/// only an approximation of the true regular center, so the angular test is
/// loosened by this factor before the center is polished to full tolerance.
pub const COARSE_ANGLE_FACTOR: f64 = 1e3;

/// Absolute cap on the coarse angular tolerance (radians). Keeps the
/// pre-check meaningful even when the caller passes an unusually loose
/// `Tol` whose scaled angular epsilon would otherwise accept anything.
pub const COARSE_ANGLE_CAP: f64 = 1e-3;

/// Radius band for whole-configuration shifted-regular candidates
/// ([`super::shifted::find_shifted_regular`]): a robot is a candidate
/// shifted robot when its Weber-point radius is within this factor of the
/// minimum radius. Generous because the Weber point of the *shifted*
/// configuration only approximates the true center.
pub const SHIFTED_RADIUS_BAND: f64 = 1.25;

/// Loose pre-filter for the equiangular completion in
/// [`super::shifted::find_shifted_regular`]: under an approximate center,
/// each angular gap must be within this fraction of the equiangular gap
/// `alpha_eq` of its target before the exact fit is attempted.
pub const EQUIANGULAR_LOOSE_GAP_FRAC: f64 = 0.45;

/// Loose band for the biangular completion in
/// [`super::shifted::find_shifted_regular`]: gap estimates must agree with
/// the alternating means `a`, `b` within this fraction of `a + b` when the
/// center is approximate (full `Tol::angle_eps` once the center is exact).
pub const BIANGULAR_LOOSE_BAND_FRAC: f64 = 0.2;

/// The paper's upper bound on the shift fraction ε of an ε-shifted regular
/// set (Definition 3): ε ∈ (0, 1/4].
pub const EPSILON_MAX: f64 = 0.25;

/// Slack factor on [`EPSILON_MAX`] in units of `Tol::angle_eps`: a
/// recovered ε may exceed 1/4 by up to `EPSILON_SLACK_FACTOR * angle_eps`
/// to absorb the error of the numerically refined center.
pub const EPSILON_SLACK_FACTOR: f64 = 16.0;

/// The coarse tolerance used for the Weber-point pre-check: same linear
/// epsilon, angular epsilon loosened by [`COARSE_ANGLE_FACTOR`] and capped
/// at [`COARSE_ANGLE_CAP`].
pub fn coarse_tol(tol: &Tol) -> Tol {
    Tol { eps: tol.eps, angle_eps: (tol.angle_eps * COARSE_ANGLE_FACTOR).min(COARSE_ANGLE_CAP) }
}

/// Radius-aware angular slack for polar multiset matching
/// ([`super::rho::symmetricity`] and friends): at radius `r`, a linear
/// displacement of `Tol::eps` subtends an angle of `eps / r`, so the
/// angular comparison must accept at least that much; `Tol::angle_eps` is
/// the floor for large radii.
pub fn angular_slack(tol: &Tol, radius: f64) -> f64 {
    tol.angle_eps.max(tol.eps / radius)
}

/// The maximum ε accepted by shifted-regular verification under `tol`:
/// [`EPSILON_MAX`] plus the angular-slack allowance.
pub fn epsilon_cap(tol: &Tol) -> f64 {
    EPSILON_MAX + EPSILON_SLACK_FACTOR * tol.angle_eps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_tol_scales_and_caps() {
        let t = Tol::default();
        let c = coarse_tol(&t);
        assert_eq!(c.eps, t.eps);
        assert_eq!(c.angle_eps, t.angle_eps * COARSE_ANGLE_FACTOR);

        let loose = Tol { eps: 1e-5, angle_eps: 1e-5 };
        let c = coarse_tol(&loose);
        assert_eq!(c.angle_eps, COARSE_ANGLE_CAP, "cap must bound a loose Tol");
    }

    #[test]
    fn angular_slack_grows_at_small_radii() {
        let t = Tol::default();
        // Large radius: the floor wins.
        assert_eq!(angular_slack(&t, 10.0), t.angle_eps);
        // Tiny radius: the subtended angle of a linear eps wins.
        assert!(angular_slack(&t, 1e-3) > t.angle_eps);
        assert_eq!(angular_slack(&t, 1e-3), t.eps / 1e-3);
    }

    #[test]
    fn epsilon_cap_is_quarter_plus_slack() {
        let t = Tol::default();
        assert!(epsilon_cap(&t) > EPSILON_MAX);
        assert!(epsilon_cap(&t) - EPSILON_MAX <= EPSILON_SLACK_FACTOR * t.angle_eps + 1e-18);
    }
}
