//! Symmetry analysis of robot configurations.
//!
//! This module implements the paper's full symmetry toolbox:
//!
//! * [`views`] — local views `Z_r`, the view order, equivalence classes and
//!   maximal-view robots;
//! * [`rho`] — the symmetricity `ρ(P)` (rotational symmetry factor) and axes
//!   of symmetry;
//! * [`regular`] — `m`-regular (equiangular) and bi-angled (biangular) sets
//!   (Definition 1), center finding, and the regular set `reg(P)` of a
//!   configuration (Definition 2);
//! * [`shifted`] — ε-shifted regular sets (Definition 3) and the shifted
//!   robot recovery that powers the symmetry-breaking phase;
//! * [`consts`] — the classifiers' shared tolerance bands and slack
//!   factors, exposed so the geometry fuzzer can target their boundaries.

pub mod consts;
pub mod regular;
pub mod rho;
pub mod shifted;
pub mod views;

pub use regular::{
    check_regular_around, find_regular_center, regular_set_of, RegularKind, RegularSet,
};
pub use rho::{axes_of_symmetry, has_axis_of_symmetry, symmetricity};
pub use shifted::{find_shifted_regular, ShiftedRegularSet};
pub use views::{View, ViewAnalysis};
