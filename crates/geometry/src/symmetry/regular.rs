//! `m`-regular and bi-angled sets (Definition 1) and the regular set
//! `reg(P)` of a configuration (Definition 2).
//!
//! A set `M` of `m ≥ 2` robots is *`m`-regular* around a center `c` when the
//! half-lines from `c` through the robots have pairwise-equal consecutive
//! angles `α = 2π/m`, and *bi-angled* (the paper's "`m/2`-regular") when the
//! consecutive angles alternate between two values `α, β`. Exactly one robot
//! sits on each half-line; radii are arbitrary — which is what lets robots
//! move radially (toward/away from `c`) without destroying regularity.
//!
//! The center of a regular set is its Weber point (Anderegg–Cieliebak–
//! Prencipe); we find it with a fast path (the smallest-enclosing-circle
//! center), a Weiszfeld iteration fallback, and a Gauss–Newton polish, then
//! *verify* the angular structure around the candidate center, so a returned
//! center is always a checked one.

use crate::angle::{normalize_angle, signed_angle_diff};
use crate::circle::holds_sec;
use crate::config::Configuration;
use crate::point::Point;
use crate::polar::PolarPoint;
use crate::symmetry::consts::coarse_tol;
use crate::symmetry::rho::{reflection_maps_to_self, symmetricity};
use crate::symmetry::views::ViewAnalysis;
use crate::tol::Tol;
use crate::weber::weber_point;
use std::f64::consts::{PI, TAU};

/// The angular structure of a regular set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RegularKind {
    /// Equiangular: all consecutive half-line angles equal `alpha = 2π/m`.
    Equiangular {
        /// The common angle between consecutive half-lines.
        alpha: f64,
    },
    /// Bi-angled: consecutive angles alternate `alpha, beta` (with
    /// `alpha ≠ beta`); `first_gap_is_alpha` records the phase relative to
    /// the robots sorted by angle around the center.
    Biangular {
        /// Gap after the angularly-first robot (by convention).
        alpha: f64,
        /// The alternating gap.
        beta: f64,
    },
}

impl RegularKind {
    /// The minimum consecutive half-line angle of the set.
    pub fn min_gap(&self) -> f64 {
        match *self {
            RegularKind::Equiangular { alpha } => alpha,
            RegularKind::Biangular { alpha, beta } => alpha.min(beta),
        }
    }

    /// Whether the structure is bi-angled.
    pub fn is_biangular(&self) -> bool {
        matches!(self, RegularKind::Biangular { .. })
    }
}

/// A detected regular set inside a configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RegularSet {
    /// Indices (into the configuration) of the member robots, sorted by
    /// angle around [`Self::center`].
    pub indices: Vec<usize>,
    /// The regularity center (equals `c(P)` whenever the set is a strict
    /// subset of the configuration).
    pub center: Point,
    /// Angular structure.
    pub kind: RegularKind,
}

impl RegularSet {
    /// Number of member robots `m`.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Never empty (regular sets have `m ≥ 2`).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The paper's `m` for condition (b) of Definition 2: the rotational
    /// order of the half-line structure — the cardinality for equiangular
    /// sets, half of it for bi-angled sets (a bi-angled set of `q` robots is
    /// the paper's "`q/2`-regular" set).
    pub fn divisor_m(&self) -> usize {
        if self.kind.is_biangular() {
            self.indices.len() / 2
        } else {
            self.indices.len()
        }
    }

    /// Virtual axes of symmetry (bi-angled sets only): the bisector lines of
    /// consecutive half-line pairs, as angles in `[0, π)`.
    pub fn virtual_axes(&self, config: &Configuration, tol: &Tol) -> Vec<f64> {
        if !self.kind.is_biangular() {
            return vec![];
        }
        let polar: Vec<PolarPoint> = self
            .indices
            .iter()
            .map(|&i| PolarPoint::from_cartesian(config.point(i), self.center))
            .collect();
        let mut angles: Vec<f64> = polar.iter().map(|p| p.angle).collect();
        angles.sort_by(f64::total_cmp);
        let m = angles.len();
        let mut axes: Vec<f64> = (0..m)
            .map(|i| {
                let a = angles[i];
                let b = angles[(i + 1) % m];
                let gap = normalize_angle(b - a);
                normalize_angle(a + gap / 2.0) % PI
            })
            .collect();
        axes.sort_by(f64::total_cmp);
        axes.dedup_by(|a, b| (*a - *b).abs() <= tol.angle_eps);
        axes
    }

    /// Member positions, sorted by angle around the center.
    pub fn points(&self, config: &Configuration) -> Vec<Point> {
        self.indices.iter().map(|&i| config.point(i)).collect()
    }
}

/// Checks whether `points` form a regular (equiangular or bi-angled) set
/// around the given `center` (Definition 1).
///
/// Returns the detected [`RegularKind`], or `None` if the set is not regular
/// around that center: fewer than two points, a point on the center, two
/// points on one half-line, or irregular gaps.
pub fn check_regular_around(points: &[Point], center: Point, tol: &Tol) -> Option<RegularKind> {
    let m = points.len();
    if m < 2 {
        return None;
    }
    let mut polar: Vec<PolarPoint> =
        points.iter().map(|&p| PolarPoint::from_cartesian(p, center)).collect();
    if polar.iter().any(|p| tol.is_zero(p.radius)) {
        return None;
    }
    polar.sort_by(|a, b| a.angle.total_cmp(&b.angle));

    let gaps: Vec<f64> =
        (0..m).map(|i| normalize_angle(polar[(i + 1) % m].angle - polar[i].angle)).collect();
    // Two robots on one half-line make a (near-)zero gap.
    if gaps.iter().any(|&g| tol.ang_is_zero(g)) {
        return None;
    }
    debug_assert!((gaps.iter().sum::<f64>() - TAU).abs() < 1e-6);

    let alpha_eq = TAU / m as f64;
    if gaps.iter().all(|&g| tol.ang_eq(g, alpha_eq)) {
        return Some(RegularKind::Equiangular { alpha: alpha_eq });
    }

    if m.is_multiple_of(2) {
        let a = gaps[0];
        let b = gaps[1];
        let alternates = gaps.iter().enumerate().all(|(i, &g)| {
            if i % 2 == 0 {
                tol.ang_eq(g, a)
            } else {
                tol.ang_eq(g, b)
            }
        });
        if alternates && !tol.ang_eq(a, b) {
            return Some(RegularKind::Biangular { alpha: a, beta: b });
        }
    }
    None
}

/// Finds a center around which `points` form a regular set, if any.
///
/// Strategy: try the smallest-enclosing-circle center (exact for same-radius
/// regular sets), then the Weber point via Weiszfeld iteration with a
/// Gauss–Newton polish. Every candidate is *verified* with
/// [`check_regular_around`] before being returned.
pub fn find_regular_center(points: &[Point], tol: &Tol) -> Option<(Point, RegularKind)> {
    if points.len() < 2 {
        return None;
    }
    // Fast path: SEC center.
    let sec = crate::circle::smallest_enclosing_circle(points);
    if let Some(kind) = check_regular_around(points, sec.center, tol) {
        return Some((sec.center, kind));
    }
    if points.len() == 2 {
        // Any two distinct points are bi-angled around their midpoint — but a
        // 2-point set is only *equiangular* (α = π) around any point of the
        // open segment; the canonical center is the midpoint = SEC center,
        // already tried. Nothing else to find.
        return None;
    }

    // Weber point candidate.
    let w = weber_point(points);
    let coarse = coarse_tol(tol);
    if check_regular_around(points, w, &coarse).is_some() {
        // Polish to full tolerance.
        for biangular in [false, true] {
            if let Some(c) = polish_regular_center(points, w, biangular) {
                if let Some(kind) = check_regular_around(points, c, tol) {
                    return Some((c, kind));
                }
            }
        }
        // Maybe Weiszfeld already converged tightly enough.
        if let Some(kind) = check_regular_around(points, w, tol) {
            return Some((w, kind));
        }
    }
    None
}

/// Computes the regular set `reg(P)` of a configuration (Definition 2).
///
/// * If the whole configuration is regular (around *some* center — its Weber
///   point), `reg(P) = P`.
/// * Otherwise `reg(P)` is the largest candidate subset `Q` such that
///   (a) `Q` is regular around `c(P)`, (b) the rotational order `m` of `Q`
///   (its size for equiangular sets, half of it for bi-angled ones) divides
///   `ρ(P ∖ Q)`, and (c) if `Q` is bi-angled its virtual axes are axes of
///   symmetry of `P ∖ Q`.
///
/// # Candidate enumeration (engineering decision)
///
/// The paper enumerates prefixes of the robots ordered by decreasing local
/// view. That ordering is *not stable* under the radial election movements
/// the algorithm performs on the set (radial moves change views but must
/// preserve the detected set — paper Property 2). We therefore enumerate, in
/// order of preference:
///
/// 1. **radius prefixes** — the `j` robots closest to `c(P)` (well defined
///    only at strict radius boundaries). These are exactly the sets the
///    election manages: movements (M1)/(M4) keep members strictly inside the
///    innermost non-member (`D_max`), so membership is stable across steps;
/// 2. **view prefixes** — the paper's `Q_i` sequence (robots that do not
///    hold `C(P)`, ordered by decreasing view, cut at view-class
///    boundaries), as a fallback for configurations whose regular structure
///    is not radially innermost.
///
/// Both enumerations are computed identically by every robot from the
/// snapshot, so the choice is canonical. Within a family the *largest*
/// qualifying set wins, as in the paper.
///
/// Returns `None` when the configuration contains a robot at `c(P)` (the
/// paper's definitions assume `c(P) ∉ P`) or no candidate qualifies.
pub fn regular_set_of(config: &Configuration, tol: &Tol) -> Option<RegularSet> {
    let _span = apf_trace::span::enter(apf_trace::SpanLabel::Regular);
    let n = config.len();
    let c_sec = config.sec().center;
    if config.points().iter().any(|p| p.approx_eq(c_sec, tol)) {
        return None;
    }

    // Family 1: radius prefixes, largest first.
    //
    // Checked *before* the whole-configuration case (a deliberate deviation
    // from Definition 2's ordering): when a proper subset qualifies, the
    // election operates on it with the innermost non-member circle as a
    // hard outer barrier, which keeps the configuration's scale stable. A
    // whole-configuration regular set gives the election no barrier
    // (`d = ∞`), and the subsequent "descend to the shifted robot's circle"
    // stage then contracts the entire configuration — legitimate under
    // exact arithmetic, but it degrades the conditioning of every
    // tolerance-based predicate. See DESIGN.md.
    let mut by_radius: Vec<usize> = (0..n).collect();
    by_radius.sort_by(|&a, &b| {
        let ra = config.point(a).dist(c_sec);
        let rb = config.point(b).dist(c_sec);
        ra.total_cmp(&rb)
    });
    let radii: Vec<f64> = by_radius.iter().map(|&i| config.point(i).dist(c_sec)).collect();
    let mut radius_cuts: Vec<usize> = Vec::new();
    for j in 2..n {
        // Prefix of size j is well defined iff radius strictly increases.
        if tol.lt(radii[j - 1], radii[j]) {
            radius_cuts.push(j);
        }
    }
    for &j in radius_cuts.iter().rev() {
        if let Some(rs) = qualify_candidate(config, &by_radius[..j], c_sec, tol) {
            return Some(rs);
        }
    }

    // Whole-configuration regular set (center may differ from c(P)).
    if let Some((center, kind)) = find_regular_center(config.points(), tol) {
        let mut indices: Vec<usize> = (0..n).collect();
        sort_by_angle(&mut indices, config, center);
        return Some(RegularSet { indices, center, kind });
    }

    // Family 2: the paper's view-prefix sequence.
    let va = ViewAnalysis::compute(config, c_sec, tol);
    let holders: Vec<bool> = (0..n).map(|i| holds_sec(config.points(), i, tol)).collect();
    let eligible: Vec<usize> =
        va.indices_by_view_desc().into_iter().filter(|&i| !holders[i]).collect();
    let mut cuts: Vec<usize> = Vec::new();
    for i in 0..eligible.len() {
        let boundary = i + 1 == eligible.len() || va.view(eligible[i + 1]) != va.view(eligible[i]);
        if boundary {
            cuts.push(i + 1);
        }
    }
    for &sz in cuts.iter().rev() {
        if sz < 2 || sz >= n {
            continue;
        }
        if let Some(rs) = qualify_candidate(config, &eligible[..sz], c_sec, tol) {
            return Some(rs);
        }
    }
    None
}

/// Checks Definition 2's conditions (a)–(c) for one candidate member set.
fn qualify_candidate(
    config: &Configuration,
    q: &[usize],
    c_sec: Point,
    tol: &Tol,
) -> Option<RegularSet> {
    let n = config.len();
    if q.len() < 2 || q.len() >= n {
        return None;
    }
    let q_points: Vec<Point> = q.iter().map(|&i| config.point(i)).collect();
    let kind = check_regular_around(&q_points, c_sec, tol)?;

    let rest: Vec<Point> = (0..n).filter(|i| !q.contains(i)).map(|i| config.point(i)).collect();
    // Condition (b): the rotational order of the half-line structure divides
    // ρ(rest).
    let m = if kind.is_biangular() { q.len() / 2 } else { q.len() };
    if !rest.is_empty() && m > 1 {
        let rest_cfg = Configuration::new(rest.clone());
        let rho_rest = symmetricity(&rest_cfg, c_sec, tol);
        if !rho_rest.is_multiple_of(m) {
            return None;
        }
    }
    let mut idx_sorted = q.to_vec();
    sort_by_angle(&mut idx_sorted, config, c_sec);
    let candidate = RegularSet { indices: idx_sorted, center: c_sec, kind };
    // Condition (c): bi-angled virtual axes must be axes of the rest.
    if kind.is_biangular() && !rest.is_empty() {
        let axes = candidate.virtual_axes(config, tol);
        let rest_polar: Vec<PolarPoint> =
            rest.iter().map(|&p| PolarPoint::from_cartesian(p, c_sec)).collect();
        if !axes.iter().all(|&phi| reflection_maps_to_self(&rest_polar, phi, tol)) {
            return None;
        }
    }
    Some(candidate)
}

fn sort_by_angle(indices: &mut [usize], config: &Configuration, center: Point) {
    indices.sort_by(|&a, &b| {
        let pa = PolarPoint::from_cartesian(config.point(a), center);
        let pb = PolarPoint::from_cartesian(config.point(b), center);
        pa.angle.total_cmp(&pb.angle)
    });
}

/// Gauss–Newton refinement of a regular-set center from an initial guess.
///
/// Fits the model `θ_i(c) = φ + slot_i(α)` (slots fixed by the angular order
/// around the initial guess) for the unknowns `c = (cx, cy)`, the phase `φ`,
/// and — for bi-angled sets — the gap `α` (with `β = 4π/m − α`).
fn polish_regular_center(points: &[Point], init: Point, biangular: bool) -> Option<Point> {
    let m = points.len();
    if biangular && !m.is_multiple_of(2) {
        return None;
    }
    let slots: Vec<usize> = (0..m).collect();
    fit_slot_model(points, &slots, m, biangular, init).map(|fit| fit.center)
}

/// Result of a slot-model fit (see [`fit_slot_model`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotFit {
    /// Fitted center of regularity.
    pub center: Point,
    /// Fitted phase: the angle of slot 0.
    pub phi: f64,
    /// Fitted first gap `α` (equals `2π/total_slots` for equiangular fits).
    pub alpha: f64,
}

/// Fits the "regular set with slots" model: `points[i]` sits on the half-line
/// at angle `φ + slot_angle(slots[i])` from an unknown center, where the
/// full structure has `total_slots` half-lines with gap `α` (equiangular) or
/// alternating `α, β = 4π/total_slots − α` (biangular).
///
/// `points` are matched to `slots` in *angular order around `init`*; the
/// caller supplies `slots` sorted ascending (slot indices may skip values —
/// that is how a "regular set with a hole" is fitted for shifted-set
/// recovery).
///
/// Returns `None` when the system is singular, a point collapses onto the
/// center, or the iteration leaves the model's domain. The fit is *not*
/// verified here — callers must re-check regularity around the returned
/// center.
pub(crate) fn fit_slot_model(
    points: &[Point],
    slots: &[usize],
    total_slots: usize,
    biangular: bool,
    init: Point,
) -> Option<SlotFit> {
    assert_eq!(points.len(), slots.len());
    let m = total_slots;
    if biangular && !m.is_multiple_of(2) {
        return None;
    }
    // Order points by angle around the initial center; slots follow that
    // order.
    let mut order: Vec<usize> = (0..points.len()).collect();
    let init_polar: Vec<PolarPoint> =
        points.iter().map(|&p| PolarPoint::from_cartesian(p, init)).collect();
    order.sort_by(|&a, &b| init_polar[a].angle.total_cmp(&init_polar[b].angle));

    let mut c = init;
    let mut alpha = if biangular {
        // Initial guess: the gap between the first two points scaled to the
        // slot distance between them, clamped into the valid range.
        let g = normalize_angle(init_polar[order[1]].angle - init_polar[order[0]].angle);
        let span = (slots[1] - slots[0]).max(1);
        (g / span as f64).clamp(1e-3, 2.0 * TAU / m as f64 - 1e-3)
    } else {
        TAU / m as f64
    };
    let mut phi = init_polar[order[0]].angle - slot_angle(slots[0], m, alpha, biangular);

    let unknowns = if biangular { 4 } else { 3 };
    for _ in 0..80 {
        // Build normal equations J^T J x = J^T r.
        let mut ata = vec![vec![0.0; unknowns]; unknowns];
        let mut atb = vec![0.0; unknowns];
        let mut max_resid: f64 = 0.0;
        for (pos, &pi) in order.iter().enumerate() {
            let slot = slots[pos];
            let p = points[pi];
            let v = p - c;
            let r = v.norm();
            if r < 1e-12 {
                return None;
            }
            let theta = v.angle();
            let model = phi + slot_angle(slot, m, alpha, biangular);
            let resid = signed_angle_diff(normalize_angle(model), normalize_angle(theta));
            max_resid = max_resid.max(resid.abs());
            // d(theta)/d(cx) = sin(theta)/r ; d(theta)/d(cy) = -cos(theta)/r
            // residual = theta - model, so d(resid)/d(param):
            let mut jrow = vec![theta.sin() / r, -theta.cos() / r, -1.0];
            if biangular {
                jrow.push(-slot_alpha_derivative(slot, m));
            }
            for a in 0..unknowns {
                for b in 0..unknowns {
                    ata[a][b] += jrow[a] * jrow[b];
                }
                atb[a] += jrow[a] * resid;
            }
        }
        let dx = solve_linear(&mut ata, &mut atb)?;
        c = Point::new(c.x - dx[0], c.y - dx[1]);
        phi -= dx[2];
        if biangular {
            alpha -= dx[3];
            if !(1e-9..TAU).contains(&alpha) {
                return None;
            }
        }
        let step = (dx.iter().map(|d| d * d).sum::<f64>()).sqrt();
        if step < 1e-14 && max_resid < 1e-10 {
            break;
        }
    }
    Some(SlotFit { center: c, phi: normalize_angle(phi), alpha })
}

/// Angle offset of slot `i` from slot 0, under the gap model.
pub(crate) fn slot_angle(i: usize, m: usize, alpha: f64, biangular: bool) -> f64 {
    if !biangular {
        return i as f64 * alpha;
    }
    let beta = 2.0 * TAU / m as f64 - alpha;
    let a_count = i.div_ceil(2) as f64;
    let b_count = (i / 2) as f64;
    a_count * alpha + b_count * beta
}

/// `d(slot_angle)/d(alpha)` for the bi-angled model (`β = 4π/m − α`).
fn slot_alpha_derivative(i: usize, _m: usize) -> f64 {
    let a_count = i.div_ceil(2) as f64;
    let b_count = (i / 2) as f64;
    a_count - b_count
}

/// Solves a small dense linear system in place by Gaussian elimination with
/// partial pivoting. Returns `None` for (near-)singular systems.
fn solve_linear(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for row in (col + 1)..n {
            if a[row][col].abs() > a[piv][col].abs() {
                piv = row;
            }
        }
        if a[piv][col].abs() < 1e-14 {
            return None;
        }
        a.swap(col, piv);
        b.swap(col, piv);
        for row in (col + 1)..n {
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot = &pivot_rows[col];
            let cur = &mut rest[0];
            let f = cur[col] / pivot[col];
            // apf-lint: allow(zip-length-mismatch) — both sides are the col..n range of same-length matrix rows
            for (x, p) in cur[col..n].iter_mut().zip(&pivot[col..n]) {
                *x -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for k in (col + 1)..n {
            s -= a[col][k] * x[k];
        }
        x[col] = s / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tol() -> Tol {
        Tol::default()
    }

    fn equiangular(c: Point, m: usize, phase: f64, radii: &[f64]) -> Vec<Point> {
        (0..m)
            .map(|i| {
                let a = TAU * i as f64 / m as f64 + phase;
                let r = radii[i % radii.len()];
                Point::new(c.x + r * a.cos(), c.y + r * a.sin())
            })
            .collect()
    }

    fn biangular(c: Point, pairs: usize, alpha: f64, phase: f64, radii: &[f64]) -> Vec<Point> {
        let m = 2 * pairs;
        let beta = 2.0 * TAU / m as f64 - alpha;
        let mut angle = phase;
        (0..m)
            .map(|i| {
                let r = radii[i % radii.len()];
                let p = Point::new(c.x + r * angle.cos(), c.y + r * angle.sin());
                angle += if i % 2 == 0 { alpha } else { beta };
                p
            })
            .collect()
    }

    #[test]
    fn check_equiangular_same_radius() {
        let pts = equiangular(Point::ORIGIN, 5, 0.3, &[1.0]);
        let kind = check_regular_around(&pts, Point::ORIGIN, &tol()).unwrap();
        assert!(matches!(kind, RegularKind::Equiangular { .. }));
        assert!((kind.min_gap() - TAU / 5.0).abs() < 1e-9);
    }

    #[test]
    fn check_equiangular_mixed_radii() {
        let pts = equiangular(Point::new(2.0, -1.0), 7, 0.1, &[1.0, 2.5, 0.8]);
        assert!(check_regular_around(&pts, Point::new(2.0, -1.0), &tol()).is_some());
    }

    #[test]
    fn check_biangular() {
        let pts = biangular(Point::ORIGIN, 3, 0.5, 0.2, &[1.0, 1.7]);
        let kind = check_regular_around(&pts, Point::ORIGIN, &tol()).unwrap();
        assert!(kind.is_biangular());
        assert!((kind.min_gap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reject_irregular() {
        let pts = vec![
            Point::new(1.0, 0.0),
            Point::new(0.2, 0.9),
            Point::new(-1.0, 0.3),
            Point::new(0.1, -1.2),
            Point::new(0.8, -0.6),
        ];
        assert!(check_regular_around(&pts, Point::ORIGIN, &tol()).is_none());
    }

    #[test]
    fn reject_two_on_same_halfline() {
        let pts = vec![
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0), // same half-line as the first
            Point::new(-1.0, 1.0),
            Point::new(-1.0, -1.0),
        ];
        assert!(check_regular_around(&pts, Point::ORIGIN, &tol()).is_none());
    }

    #[test]
    fn reject_point_at_center() {
        let mut pts = equiangular(Point::ORIGIN, 4, 0.0, &[1.0]);
        pts.push(Point::ORIGIN);
        assert!(check_regular_around(&pts, Point::ORIGIN, &tol()).is_none());
    }

    #[test]
    fn find_center_same_radius_via_sec() {
        let c = Point::new(3.0, 4.0);
        let pts = equiangular(c, 6, 0.7, &[2.0]);
        let (found, kind) = find_regular_center(&pts, &tol()).unwrap();
        assert!(found.approx_eq(c, &Tol::new(1e-6)));
        assert!(matches!(kind, RegularKind::Equiangular { .. }));
    }

    #[test]
    fn find_center_mixed_radii_via_weber() {
        // Radii differ, so the SEC center is NOT the regular center; the
        // Weber path must recover it.
        let c = Point::new(-1.0, 2.0);
        let pts = equiangular(c, 7, 0.25, &[1.0, 2.0, 1.4, 0.7]);
        let (found, kind) = find_regular_center(&pts, &tol()).unwrap();
        assert!(found.approx_eq(c, &Tol::new(1e-6)), "found {found}");
        assert!(matches!(kind, RegularKind::Equiangular { .. }));
    }

    #[test]
    fn find_center_biangular_mixed_radii() {
        let c = Point::new(0.5, -0.5);
        // Symmetric radii pattern keeps the Weber point at the center.
        let pts = biangular(c, 4, 0.4, 0.15, &[1.0, 1.8]);
        let (found, kind) = find_regular_center(&pts, &tol()).unwrap();
        assert!(found.approx_eq(c, &Tol::new(1e-6)), "found {found}");
        assert!(kind.is_biangular());
    }

    #[test]
    fn find_center_none_for_random_points() {
        let pts = vec![
            Point::new(0.9, 0.1),
            Point::new(-0.3, 1.1),
            Point::new(-1.0, -0.4),
            Point::new(0.2, -0.8),
            Point::new(0.6, 0.7),
        ];
        assert!(find_regular_center(&pts, &tol()).is_none());
    }

    #[test]
    fn whole_config_regular_set() {
        // All robots on one circle around an off-origin center: no radius
        // prefix exists (no strict radius boundary), so the whole
        // configuration is returned with its true (Weber) center.
        let c = Point::new(1.0, 1.0);
        let pts = equiangular(c, 8, 0.0, &[1.0]);
        let cfg = Configuration::new(pts);
        let reg = regular_set_of(&cfg, &tol()).expect("whole config is regular");
        assert_eq!(reg.len(), 8);
        assert!(reg.center.approx_eq(c, &Tol::new(1e-6)));
    }

    #[test]
    fn radius_prefix_preferred_over_whole_config() {
        // Mixed radii: the innermost equiangular subset qualifies as a
        // radius prefix and is preferred over the whole-configuration set
        // (see the candidate-enumeration note on `regular_set_of`).
        let c = Point::new(1.0, 1.0);
        let pts = equiangular(c, 8, 0.0, &[1.0, 1.5]);
        let cfg = Configuration::new(pts);
        let reg = regular_set_of(&cfg, &tol()).expect("regular structure expected");
        // Whichever family wins, the result is a genuine regular set.
        let member_pts = reg.points(&cfg);
        assert!(check_regular_around(&member_pts, reg.center, &tol()).is_some());
        assert!(reg.len() == 4 || reg.len() == 8, "got {}", reg.len());
    }

    #[test]
    fn strict_subset_regular_set() {
        // Outer ring of 8 (holds the SEC, ρ = 8) + inner square rotated so it
        // is NOT part of the 8-fold symmetry: inner 4 have the greatest view
        // (closest to center ⇒ largest scaled radii? view order may vary) —
        // we only require that *a* regular set containing the inner square is
        // found with center c(P).
        let mut pts = equiangular(Point::ORIGIN, 8, 0.0, &[2.0]);
        pts.extend(equiangular(Point::ORIGIN, 4, 0.11, &[1.0]));
        let cfg = Configuration::new(pts);
        let reg = regular_set_of(&cfg, &tol()).expect("should contain a regular set");
        assert!(reg.center.approx_eq(Point::ORIGIN, &Tol::new(1e-6)));
        // |Q| divides rho(rest): 4 divides 8, or the whole 12 isn't regular.
        assert!(reg.len() == 4, "got {}", reg.len());
        assert!(matches!(reg.kind, RegularKind::Equiangular { .. }));
    }

    #[test]
    fn biangular_subset_with_virtual_axes() {
        // Figure 2a-style: an outer structure with ρ = 2 and axes + an inner
        // bi-angled 2-regular pair.
        // Outer: rectangle (ρ = 2, two axes).
        let mut pts = vec![
            Point::new(2.0, 1.0),
            Point::new(-2.0, 1.0),
            Point::new(-2.0, -1.0),
            Point::new(2.0, -1.0),
        ];
        // Inner pair on the x-axis, symmetric: bi-angled 2-regular set whose
        // virtual axes are the x and y axes = axes of the rectangle.
        pts.push(Point::new(0.5, 0.0));
        pts.push(Point::new(-0.5, 0.0));
        let cfg = Configuration::new(pts);
        let reg = regular_set_of(&cfg, &tol()).expect("regular set expected");
        assert!(reg.center.dist(Point::ORIGIN) < 1e-6);
        // Depending on the view order, reg(P) is either the inner 2-regular
        // pair (rest = rectangle, ρ = 2, 2 | 2) or the bi-angled rectangle
        // (m = 4/2 = 2 | ρ(pair) = 2, virtual axes = the two coordinate
        // axes, which are axes of the pair). Both satisfy Definition 2; the
        // construction picks the larger prefix when both qualify.
        assert!(reg.len() == 2 || reg.len() == 4, "got {}", reg.len());
    }

    #[test]
    fn no_regular_set_in_asymmetric_config() {
        let pts = vec![
            Point::new(1.0, 0.0),
            Point::new(0.32, 0.91),
            Point::new(-0.83, 0.14),
            Point::new(-0.21, -0.72),
            Point::new(0.55, -0.43),
            Point::new(0.05, 0.31),
            Point::new(-0.4, -0.2),
        ];
        let cfg = Configuration::new(pts);
        // Asymmetric configurations may still *contain* degenerate regular
        // subsets only if the divisibility conditions hold; for this config
        // none should.
        let reg = regular_set_of(&cfg, &tol());
        if let Some(r) = &reg {
            // If something is found it must genuinely satisfy (a): verify.
            let pts = r.points(&cfg);
            assert!(check_regular_around(&pts, r.center, &tol()).is_some());
        }
    }

    #[test]
    fn property1_symmetric_config_contains_regular_set() {
        // Property 1: ρ(P) > 1 ⇒ P contains a regular set.
        for m in [2usize, 3, 4] {
            let mut pts = Vec::new();
            // Two rings of m robots each (rotationally symmetric with ρ = m),
            // radii chosen so nobody is at the center.
            pts.extend(equiangular(Point::ORIGIN, m, 0.2, &[2.0]));
            pts.extend(equiangular(Point::ORIGIN, m, 0.9, &[1.0]));
            let cfg = Configuration::new(pts);
            assert!(symmetricity(&cfg, Point::ORIGIN, &tol()) >= m);
            assert!(
                regular_set_of(&cfg, &tol()).is_some(),
                "m = {m}: symmetric config must contain a regular set"
            );
        }
    }

    #[test]
    fn virtual_axes_of_biangular_square() {
        let pts = biangular(Point::ORIGIN, 2, 0.6, 0.0, &[1.0]);
        let cfg = Configuration::new(pts);
        let kind = check_regular_around(cfg.points(), Point::ORIGIN, &tol()).unwrap();
        let reg = RegularSet { indices: vec![0, 1, 2, 3], center: Point::ORIGIN, kind };
        let axes = reg.virtual_axes(&cfg, &tol());
        assert_eq!(axes.len(), 2);
    }

    #[test]
    fn radial_moves_preserve_regularity() {
        // Property 2 (M1): moving a member radially keeps the set regular
        // with the same center.
        let c = Point::new(1.0, 0.0);
        let mut pts = equiangular(c, 6, 0.5, &[1.0, 1.3]);
        let (c0, _) = find_regular_center(&pts, &tol()).unwrap();
        // Move robot 2 halfway toward the center.
        pts[2] = pts[2].lerp(c, 0.5);
        let (c1, _) = find_regular_center(&pts, &tol()).expect("still regular");
        assert!(c0.approx_eq(c1, &Tol::new(1e-5)));
    }

    #[test]
    fn solve_linear_small_system() {
        let mut a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let mut b = vec![5.0, 10.0];
        let x = solve_linear(&mut a, &mut b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_singular_is_none() {
        let mut a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut b = vec![1.0, 2.0];
        assert!(solve_linear(&mut a, &mut b).is_none());
    }
}
