//! Symmetricity `ρ(P)` and axes of symmetry.
//!
//! `ρ(P)` is the largest `m` such that rotating the configuration by `2π/m`
//! around its center maps it onto itself. The paper's key deterministic
//! impossibility result (Yamauchi & Yamashita) is phrased in terms of `ρ`:
//! deterministic oblivious robots can form `F` from `I` iff `ρ(I) | ρ(F)`,
//! which is exactly the restriction the probabilistic algorithm removes.

use crate::angle::{angle_dist, normalize_angle};
use crate::config::Configuration;
use crate::point::Point;
use crate::polar::PolarPoint;
use crate::symmetry::consts::angular_slack;
use crate::tol::Tol;
use std::f64::consts::TAU;

/// The symmetricity `ρ(P)` of the configuration around `center`.
///
/// A robot located at the center (if any) is rotation-invariant and does not
/// constrain `ρ`; the paper computes `ρ` of configurations with
/// `c(P) ∉ P`, and when `c(P) ∈ P` the result here is the symmetricity of
/// the remaining robots (the standard convention).
///
/// # Example
///
/// ```
/// use apf_geometry::{Configuration, Point, Tol};
/// use apf_geometry::symmetry::symmetricity;
/// use std::f64::consts::TAU;
///
/// let square: Vec<Point> = (0..4).map(|i| {
///     let a = TAU * i as f64 / 4.0;
///     Point::new(a.cos(), a.sin())
/// }).collect();
/// let cfg = Configuration::new(square);
/// assert_eq!(symmetricity(&cfg, Point::new(0.0, 0.0), &Tol::default()), 4);
/// ```
pub fn symmetricity(config: &Configuration, center: Point, tol: &Tol) -> usize {
    let _span = apf_trace::span::enter(apf_trace::SpanLabel::Rho);
    let polar: Vec<PolarPoint> =
        config.polar_around(center).into_iter().filter(|p| !tol.is_zero(p.radius)).collect();
    let n = polar.len();
    if n == 0 {
        return 1;
    }
    // Try divisors of n from largest to smallest.
    let mut best = 1;
    for m in (1..=n).rev() {
        if !n.is_multiple_of(m) {
            continue;
        }
        if rotation_maps_to_self(&polar, TAU / m as f64, tol) {
            best = m;
            break;
        }
    }
    best
}

/// Whether the configuration has at least one axis of (mirror) symmetry
/// through `center`.
pub fn has_axis_of_symmetry(config: &Configuration, center: Point, tol: &Tol) -> bool {
    !axes_of_symmetry(config, center, tol).is_empty()
}

/// All axes of mirror symmetry through `center`, as axis angles in `[0, π)`.
///
/// If the configuration has any axis, it has exactly `ρ(P)` of them (or
/// `2ρ(P)` counting each line once — we return each *line* once).
pub fn axes_of_symmetry(config: &Configuration, center: Point, tol: &Tol) -> Vec<f64> {
    let polar: Vec<PolarPoint> =
        config.polar_around(center).into_iter().filter(|p| !tol.is_zero(p.radius)).collect();
    if polar.is_empty() {
        return vec![];
    }

    // Candidate axes: through each robot, and through the angular midpoint of
    // each pair of robots. Reflection across axis angle φ maps (r, θ) to
    // (r, 2φ − θ); for the set to be invariant, some robot must map to a
    // robot, so φ = (θ_i + θ_j)/2 (mod π) for some i, j (possibly i = j).
    let mut candidates: Vec<f64> = Vec::new();
    for i in 0..polar.len() {
        for j in i..polar.len() {
            let phi = normalize_angle((polar[i].angle + polar[j].angle) / 2.0);
            candidates.push(phi % std::f64::consts::PI);
            candidates.push((phi + std::f64::consts::PI / 2.0) % std::f64::consts::PI);
        }
    }
    // Values within tolerance of π wrap to 0 (same line).
    for c in &mut candidates {
        if *c >= std::f64::consts::PI - tol.angle_eps {
            *c -= std::f64::consts::PI;
        }
    }
    candidates.sort_by(f64::total_cmp);
    candidates.dedup_by(|a, b| (*a - *b).abs() <= tol.angle_eps);

    candidates.into_iter().filter(|&phi| reflection_maps_to_self(&polar, phi, tol)).collect()
}

/// Whether rotating all polar points by `angle` yields the same multiset.
pub(crate) fn rotation_maps_to_self(polar: &[PolarPoint], angle: f64, tol: &Tol) -> bool {
    if tol.ang_is_zero(angle) || tol.ang_is_zero(TAU - angle) {
        return true;
    }
    let rotated: Vec<PolarPoint> = polar
        .iter()
        .map(|p| PolarPoint { radius: p.radius, angle: normalize_angle(p.angle + angle) })
        .collect();
    polar_multiset_eq(&rotated, polar, tol)
}

/// Whether reflecting all polar points across the axis at angle `phi` yields
/// the same multiset.
pub(crate) fn reflection_maps_to_self(polar: &[PolarPoint], phi: f64, tol: &Tol) -> bool {
    let reflected: Vec<PolarPoint> = polar
        .iter()
        .map(|p| PolarPoint { radius: p.radius, angle: normalize_angle(2.0 * phi - p.angle) })
        .collect();
    polar_multiset_eq(&reflected, polar, tol)
}

/// Multiset equality of polar point sets with tolerance (greedy matching —
/// adequate because matches are unambiguous at simulation tolerances).
pub(crate) fn polar_multiset_eq(a: &[PolarPoint], b: &[PolarPoint], tol: &Tol) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut used = vec![false; b.len()];
    'outer: for pa in a {
        for (j, pb) in b.iter().enumerate() {
            if used[j] {
                continue;
            }
            if tol.eq(pa.radius, pb.radius)
                && (tol.is_zero(pa.radius)
                    || angle_dist(pa.angle, pb.angle) <= angular_slack(tol, pa.radius))
            {
                used[j] = true;
                continue 'outer;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tol() -> Tol {
        Tol::default()
    }

    fn ring(n: usize, r: f64, phase: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = TAU * i as f64 / n as f64 + phase;
                Point::new(r * a.cos(), r * a.sin())
            })
            .collect()
    }

    #[test]
    fn ngon_symmetricity_is_n() {
        for n in [3usize, 4, 5, 6, 7, 12] {
            let cfg = Configuration::new(ring(n, 1.0, 0.3));
            assert_eq!(symmetricity(&cfg, Point::ORIGIN, &tol()), n, "n = {n}");
        }
    }

    #[test]
    fn two_rings_gcd_symmetricity() {
        // Ring of 6 and ring of 4 share rotational symmetry gcd(6,4) = 2.
        let mut pts = ring(6, 1.0, 0.0);
        pts.extend(ring(4, 0.5, 0.0));
        let cfg = Configuration::new(pts);
        assert_eq!(symmetricity(&cfg, Point::ORIGIN, &tol()), 2);
    }

    #[test]
    fn asymmetric_config_rho_one() {
        let cfg = Configuration::new(vec![
            Point::new(1.0, 0.0),
            Point::new(0.3, 0.9),
            Point::new(-0.8, 0.1),
            Point::new(-0.2, -0.7),
            Point::new(0.5, -0.4),
        ]);
        assert_eq!(symmetricity(&cfg, cfg.sec().center, &tol()), 1);
    }

    #[test]
    fn center_robot_does_not_block_rho() {
        let mut pts = ring(5, 1.0, 0.0);
        pts.push(Point::ORIGIN);
        let cfg = Configuration::new(pts);
        assert_eq!(symmetricity(&cfg, Point::ORIGIN, &tol()), 5);
    }

    #[test]
    fn ngon_has_n_axes() {
        let cfg = Configuration::new(ring(5, 1.0, 0.1));
        let axes = axes_of_symmetry(&cfg, Point::ORIGIN, &tol());
        assert_eq!(axes.len(), 5);
        assert!(has_axis_of_symmetry(&cfg, Point::ORIGIN, &tol()));
    }

    #[test]
    fn even_ngon_axes() {
        // A hexagon has 6 axes (3 through vertices, 3 through edges).
        let cfg = Configuration::new(ring(6, 1.0, 0.0));
        assert_eq!(axes_of_symmetry(&cfg, Point::ORIGIN, &tol()).len(), 6);
    }

    #[test]
    fn axial_but_not_rotational() {
        let cfg = Configuration::new(vec![
            Point::new(0.0, 1.0),
            Point::new(0.7, -0.2),
            Point::new(-0.7, -0.2),
            Point::new(0.0, -0.8),
        ]);
        assert_eq!(symmetricity(&cfg, cfg.sec().center, &tol()), 1);
        let axes = axes_of_symmetry(&cfg, cfg.sec().center, &tol());
        assert_eq!(axes.len(), 1);
        // The axis is vertical (angle π/2).
        assert!(angle_dist(axes[0], std::f64::consts::FRAC_PI_2) <= 1e-6);
    }

    #[test]
    fn rotational_without_axis() {
        // A "pinwheel": ρ = 3 but no mirror axis. Three pairs, each pair
        // rotated by 2π/3, with chiral offsets.
        let mut pts = Vec::new();
        for k in 0..3 {
            let base = TAU * k as f64 / 3.0;
            pts.push(Point::new((base).cos(), (base).sin()));
            pts.push(Point::new(0.6 * (base + 0.4).cos(), 0.6 * (base + 0.4).sin()));
        }
        let cfg = Configuration::new(pts);
        assert_eq!(symmetricity(&cfg, Point::ORIGIN, &tol()), 3);
        assert!(!has_axis_of_symmetry(&cfg, Point::ORIGIN, &tol()));
    }

    #[test]
    fn asymmetric_has_no_axis() {
        let cfg = Configuration::new(vec![
            Point::new(1.0, 0.0),
            Point::new(0.3, 0.9),
            Point::new(-0.8, 0.1),
            Point::new(-0.2, -0.7),
            Point::new(0.5, -0.4),
        ]);
        assert!(!has_axis_of_symmetry(&cfg, cfg.sec().center, &tol()));
    }

    #[test]
    fn biangular_config_rho_and_axes() {
        // Biangular set of 6 (alternating gaps 0.4 / (2π/3 − 0.4), equal
        // radii): ρ = 3, axes exist through the gap bisectors.
        let alpha = 0.4;
        let beta = TAU / 3.0 - alpha;
        let mut angle: f64 = 0.0;
        let mut pts = Vec::new();
        for i in 0..6 {
            pts.push(Point::new(angle.cos(), angle.sin()));
            angle += if i % 2 == 0 { alpha } else { beta };
        }
        let cfg = Configuration::new(pts);
        assert_eq!(symmetricity(&cfg, Point::ORIGIN, &tol()), 3);
        assert!(has_axis_of_symmetry(&cfg, Point::ORIGIN, &tol()));
    }

    #[test]
    fn rho_agrees_with_view_equivalence_classes() {
        use crate::symmetry::views::ViewAnalysis;
        let mut pts = ring(4, 1.0, 0.0);
        pts.extend(ring(4, 0.6, 0.5));
        pts.extend(ring(4, 0.3, 0.9));
        let cfg = Configuration::new(pts);
        let rho = symmetricity(&cfg, Point::ORIGIN, &tol());
        assert_eq!(rho, 4);
        let va = ViewAnalysis::compute(&cfg, Point::ORIGIN, &tol());
        for class in va.equivalence_classes() {
            assert_eq!(class.len() % rho, 0);
        }
    }
}
