//! ε-shifted regular sets (Definition 3).
//!
//! A configuration contains an *ε-shifted-m-regular set* when moving a single
//! robot `r` (one of the robots closest to the center) along its circle to a
//! position `r'` yields a configuration containing a regular set through
//! `r'`. The shift `ε = angmin(r, c, r') / α_min(P')` lives in `(0, 1/4]`.
//! The election phase of the algorithm communicates through shifts: a shift
//! of exactly `1/8` tells the other members to descend to the shifted
//! robot's circle; a growing shift toward `1/4` announces the final descent
//! of the elected robot toward the center.
//!
//! Detection recovers the associated regular position `r'` by *completing*
//! the regular structure of the other member robots (which sit at exact
//! regular positions — only the shifted robot deviates): the merged angular
//! gap left by the shifted robot is located and split according to the
//! equiangular or bi-angled gap model. For whole-configuration shifted sets
//! the center is unknown and is recovered with the Gauss–Newton slot fit of
//! [`super::regular`], seeded by the Weber point.

use crate::angle::{ang_min, normalize_angle, signed_angle_diff};
use crate::config::Configuration;
use crate::point::Point;
use crate::polar::PolarPoint;
use crate::symmetry::consts::{
    epsilon_cap, BIANGULAR_LOOSE_BAND_FRAC, EQUIANGULAR_LOOSE_GAP_FRAC, SHIFTED_RADIUS_BAND,
};
use crate::symmetry::regular::{
    check_regular_around, fit_slot_model, regular_set_of, slot_angle, RegularKind,
};
use crate::tol::Tol;
use crate::weber::weber_point;
use std::f64::consts::TAU;

/// A detected ε-shifted regular set.
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftedRegularSet {
    /// Member robot indices (including the shifted robot), sorted by angle
    /// around [`Self::center`].
    pub indices: Vec<usize>,
    /// Regularity center of the associated regular set.
    pub center: Point,
    /// Angular structure of the associated regular set.
    pub kind: RegularKind,
    /// Index of the shifted robot.
    pub shifted_robot: usize,
    /// The associated regular position `r'` of the shifted robot.
    pub associated_position: Point,
    /// The shift `ε ∈ (0, 1/4]`.
    pub epsilon: f64,
    /// `|r| = |r'|`: the minimal distance to the center.
    pub min_radius: f64,
}

impl ShiftedRegularSet {
    /// Number of members `m` (including the shifted robot).
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// Detects an ε-shifted regular set in the configuration (Definition 3).
///
/// Tries, in order: a shifted set that is a strict subset of the
/// configuration (center = `c(P)`), then a whole-configuration shifted set
/// (center recovered numerically). Returns the first verified detection;
/// by Theorem 1 the shifted set is unique for `n ≥ 7`, so the order only
/// matters for degenerate small configurations.
pub fn find_shifted_regular(config: &Configuration, tol: &Tol) -> Option<ShiftedRegularSet> {
    let _span = apf_trace::span::enter(apf_trace::SpanLabel::Shifted);
    find_shifted_subset(config, tol).or_else(|| find_shifted_whole(config, tol))
}

/// Subset case: the shifted regular set is a strict subset, center `c(P)`.
fn find_shifted_subset(config: &Configuration, tol: &Tol) -> Option<ShiftedRegularSet> {
    let n = config.len();
    if n < 3 {
        return None;
    }
    let c = config.sec().center;
    if config.points().iter().any(|p| p.approx_eq(c, tol)) {
        return None;
    }
    let radii: Vec<f64> = config.points().iter().map(|p| p.dist(c)).collect();
    let min_r = radii.iter().cloned().fold(f64::INFINITY, f64::min);

    // Candidate shifted robots: at minimal radius (Definition 3 (c)).
    let candidates: Vec<usize> = (0..n).filter(|&i| tol.eq(radii[i], min_r)).collect();

    for &r_idx in &candidates {
        // Member candidates: radius prefixes of the other robots (the
        // election keeps members strictly inside the innermost non-member).
        let mut others: Vec<usize> = (0..n).filter(|&i| i != r_idx).collect();
        others.sort_by(|&a, &b| radii[a].total_cmp(&radii[b]));
        for j in 1..others.len() {
            // Prefix of size j is well defined only at strict boundaries.
            if j < others.len() && !tol.lt(radii[others[j - 1]], radii[others[j]]) {
                continue;
            }
            let members = &others[..j];
            if let Some(found) = try_complete(config, c, r_idx, members, min_r, false, tol) {
                return Some(found);
            }
        }
    }
    None
}

/// Whole-configuration case: every robot is a member; the center must be
/// recovered numerically.
fn find_shifted_whole(config: &Configuration, tol: &Tol) -> Option<ShiftedRegularSet> {
    let n = config.len();
    if n < 4 {
        return None;
    }
    let c0 = weber_point(config.points());
    let radii: Vec<f64> = config.points().iter().map(|p| p.dist(c0)).collect();
    let min_r = radii.iter().cloned().fold(f64::INFINITY, f64::min);
    // Generous band: the Weber point of the shifted configuration is only an
    // approximation of the true center.
    let candidates: Vec<usize> =
        (0..n).filter(|&i| radii[i] <= min_r * SHIFTED_RADIUS_BAND + tol.eps).collect();

    for &r_idx in &candidates {
        let members: Vec<usize> = (0..n).filter(|&i| i != r_idx).collect();
        if let Some(found) = try_complete(config, c0, r_idx, &members, min_r, true, tol) {
            return Some(found);
        }
    }
    None
}

/// Attempts to complete `members ∪ {r'}` into a regular set around an (exact
/// or approximate) center, verifying all Definition 3 conditions.
///
/// `members` never contains `r_idx`. When `fit_center` is true, the center
/// is re-estimated with the slot model (whole-configuration case); otherwise
/// `center` is exact (`c(P)`).
fn try_complete(
    config: &Configuration,
    center: Point,
    r_idx: usize,
    members: &[usize],
    _min_r_hint: f64,
    fit_center: bool,
    tol: &Tol,
) -> Option<ShiftedRegularSet> {
    let k = members.len(); // q = k + 1 total members with r'
    let q = k + 1;
    if q < 2 {
        return None;
    }
    let member_pts: Vec<Point> = members.iter().map(|&i| config.point(i)).collect();
    // Members must all be off-center, on distinct half-lines.
    let mut polar: Vec<(usize, PolarPoint)> = member_pts
        .iter()
        .enumerate()
        .map(|(i, &p)| (i, PolarPoint::from_cartesian(p, center)))
        .collect();
    if polar.iter().any(|(_, pp)| tol.is_zero(pp.radius)) {
        return None;
    }
    polar.sort_by(|a, b| a.1.angle.total_cmp(&b.1.angle));
    let angles: Vec<f64> = polar.iter().map(|(_, pp)| pp.angle).collect();
    let gaps: Vec<f64> = (0..k).map(|i| normalize_angle(angles[(i + 1) % k] - angles[i])).collect();
    if k >= 2 && gaps.iter().any(|&g| tol.ang_is_zero(g)) {
        return None;
    }

    // Enumerate candidate insertion angles θ' for r'.
    let mut insertions: Vec<(f64, bool)> = Vec::new(); // (theta', biangular)

    if k == 1 {
        // Completing to a 2-regular (antipodal) pair.
        insertions.push((normalize_angle(angles[0] + std::f64::consts::PI), false));
    } else {
        // Equiangular completion: every gap but one ≈ α = 2π/q, the merged
        // gap ≈ 2α.
        let alpha_eq = TAU / q as f64;
        for (t, &angle_t) in angles.iter().enumerate().take(k) {
            let ok = (0..k).all(|i| {
                if i == t {
                    tol.ang_eq(gaps[i], 2.0 * alpha_eq) || fit_center
                } else {
                    tol.ang_eq(gaps[i], alpha_eq) || fit_center
                }
            });
            // Under an approximate center (whole-config case) the gaps are
            // only approximately right; use a loose pre-filter instead.
            let loose_ok = fit_center
                && (0..k).all(|i| {
                    let target = if i == t { 2.0 * alpha_eq } else { alpha_eq };
                    (gaps[i] - target).abs() < alpha_eq * EQUIANGULAR_LOOSE_GAP_FRAC
                });
            if ok || loose_ok {
                insertions.push((normalize_angle(angle_t + alpha_eq), false));
            }
        }
        // Bi-angled completion: gaps alternate a, b with one merged (a + b).
        if q >= 4 && q.is_multiple_of(2) {
            for t in 0..k {
                for first_sub_is_even in [true, false] {
                    if let Some(theta) = biangular_insertion(
                        &angles,
                        &gaps,
                        t,
                        q,
                        first_sub_is_even,
                        fit_center,
                        tol,
                    ) {
                        insertions.push((theta, true));
                    }
                }
            }
        }
    }

    let r_pos = config.point(r_idx);
    for (theta_raw, biangular) in insertions {
        // Refine the center (and θ') for whole-configuration sets.
        let (c_use, theta) = if fit_center {
            match refine_center(&member_pts, center, theta_raw, q, biangular) {
                Some(v) => v,
                None => continue,
            }
        } else {
            (center, theta_raw)
        };
        let r_radius = r_pos.dist(c_use);
        // Definition 3 (c): |r| must be minimal over P around the center.
        let min_all = config.points().iter().map(|p| p.dist(c_use)).fold(f64::INFINITY, f64::min);
        if !tol.eq(r_radius, min_all) {
            continue;
        }
        let r_prime =
            Point::new(c_use.x + r_radius * theta.cos(), c_use.y + r_radius * theta.sin());
        if let Some(found) = verify_shifted(config, c_use, r_idx, members, r_prime, tol) {
            return Some(found);
        }
    }
    None
}

/// Splits merged gap `t` under the bi-angled model and returns the insertion
/// angle, or `None` if the remaining gaps do not alternate consistently.
fn biangular_insertion(
    angles: &[f64],
    gaps: &[f64],
    t: usize,
    q: usize,
    first_sub_is_even: bool,
    loose: bool,
    tol: &Tol,
) -> Option<f64> {
    debug_assert_eq!(gaps.len(), q - 1);
    // Full gap sequence: positions 0..q-1; position of the first sub-gap of
    // the split is `t` (full index), second is t+1; gaps after the split
    // shift by one.
    // Parity classes: full[j] = a if j even else b. Collect constraints from
    // the k−1 unsplit gaps.
    let mut a_est: Vec<f64> = Vec::new();
    let mut b_est: Vec<f64> = Vec::new();
    for (i, &g) in gaps.iter().enumerate() {
        if i == t {
            continue;
        }
        // Full position of this gap.
        let full_pos = if i < t { i } else { i + 1 };
        // Parity convention: let the first sub-gap's parity be fixed by
        // `first_sub_is_even` and infer everything relative to position 0.
        let even = if first_sub_is_even { full_pos % 2 == 0 } else { full_pos % 2 == 1 };
        if even {
            a_est.push(g);
        } else {
            b_est.push(g);
        }
    }
    if a_est.is_empty() || b_est.is_empty() {
        return None;
    }
    let a = a_est.iter().sum::<f64>() / a_est.len() as f64;
    let b = b_est.iter().sum::<f64>() / b_est.len() as f64;
    let band = if loose { BIANGULAR_LOOSE_BAND_FRAC * (a + b) } else { tol.angle_eps };
    if a_est.iter().any(|&g| (g - a).abs() > band) || b_est.iter().any(|&g| (g - b).abs() > band) {
        return None;
    }
    // The two sub-gaps at full positions t and t+1.
    let sub_first = if t.is_multiple_of(2) == first_sub_is_even { a } else { b };
    let sub_second = if (t + 1).is_multiple_of(2) == first_sub_is_even { a } else { b };
    if (sub_first + sub_second - gaps[t]).abs() > band.max(tol.angle_eps) * 2.0 {
        return None;
    }
    // Sanity: the full structure must close up: q/2 * (a + b) = 2π.
    if ((q / 2) as f64 * (a + b) - TAU).abs() > band.max(tol.angle_eps) * q as f64 {
        return None;
    }
    // Equiangular degenerate case is handled elsewhere.
    if (a - b).abs() <= tol.angle_eps {
        return None;
    }
    Some(normalize_angle(angles[t] + sub_first))
}

/// Whole-configuration center refinement: fit the slot model to the members
/// (slots leave a hole where θ' goes) and return the polished center and
/// hole angle.
fn refine_center(
    member_pts: &[Point],
    init: Point,
    theta_hint: f64,
    q: usize,
    biangular: bool,
) -> Option<(Point, f64)> {
    // Build slot assignment: order members and the virtual hole by angle.
    let mut entries: Vec<(f64, Option<usize>)> = member_pts
        .iter()
        .enumerate()
        .map(|(i, &p)| (PolarPoint::from_cartesian(p, init).angle, Some(i)))
        .collect();
    entries.push((normalize_angle(theta_hint), None));
    entries.sort_by(|a, b| a.0.total_cmp(&b.0));
    let hole_slot = entries.iter().position(|(_, i)| i.is_none())?;
    let mut slots: Vec<usize> = Vec::with_capacity(member_pts.len());
    let mut ordered_pts: Vec<Point> = Vec::with_capacity(member_pts.len());
    for (slot, (_, idx)) in entries.iter().enumerate() {
        if let Some(i) = idx {
            slots.push(slot);
            ordered_pts.push(member_pts[*i]);
        }
    }
    let fit = fit_slot_model(&ordered_pts, &slots, q, biangular, init)?;
    let theta = normalize_angle(fit.phi + slot_angle(hole_slot, q, fit.alpha, biangular));
    Some((fit.center, theta))
}

/// Final verification of all Definition 3 conditions for a concrete `r'`.
fn verify_shifted(
    config: &Configuration,
    center: Point,
    r_idx: usize,
    members: &[usize],
    r_prime: Point,
    tol: &Tol,
) -> Option<ShiftedRegularSet> {
    let r_pos = config.point(r_idx);
    // Non-trivial shift.
    let shift_angle = ang_min(r_pos, center, r_prime);
    if shift_angle <= tol.angle_eps {
        return None;
    }

    // The completed member set must be regular around the center.
    let mut full_pts: Vec<Point> = members.iter().map(|&i| config.point(i)).collect();
    full_pts.push(r_prime);
    let kind = check_regular_around(&full_pts, center, tol)?;

    // Build P' and let the Definition 2 machinery confirm the regular set.
    let p_prime = config.with_point_moved(r_idx, r_prime);
    let reg = regular_set_of(&p_prime, tol)?;
    // The regular set of P' must be exactly the completed set (same size and
    // members: all `members` plus the moved robot).
    if reg.len() != members.len() + 1 {
        return None;
    }
    if !reg.indices.contains(&r_idx) {
        return None;
    }
    if !members.iter().all(|i| reg.indices.contains(i)) {
        return None;
    }

    // ε = angmin(r, c, r') / α_min(P'), must be in (0, 1/4].
    let alpha_min = alpha_min_config(&p_prime, center, tol)?;
    let epsilon = shift_angle / alpha_min;
    if epsilon <= 0.0 || epsilon > epsilon_cap(tol) {
        return None;
    }
    // Condition (b): the shift strictly decreased the robot's minimum angle.
    let amin_r = alpha_min_of_point(config, center, r_pos, r_idx, tol)?;
    let amin_rp = alpha_min_of_point(&p_prime, center, r_prime, r_idx, tol)?;
    if amin_r >= amin_rp {
        return None;
    }

    let mut indices: Vec<usize> = members.to_vec();
    indices.push(r_idx);
    indices.sort_by(|&a, &b| {
        let pa = PolarPoint::from_cartesian(config.point(a), center).angle;
        let pb = PolarPoint::from_cartesian(config.point(b), center).angle;
        pa.total_cmp(&pb)
    });
    Some(ShiftedRegularSet {
        indices,
        center,
        kind,
        shifted_robot: r_idx,
        associated_position: r_prime,
        epsilon,
        min_radius: r_pos.dist(center),
    })
}

/// `α_min(P)` around `center`: the minimum non-zero angle between two
/// half-lines through robots. Returns `None` if a robot is at the center.
fn alpha_min_config(config: &Configuration, center: Point, tol: &Tol) -> Option<f64> {
    let mut angles: Vec<f64> = Vec::with_capacity(config.len());
    for p in config.points() {
        let pp = PolarPoint::from_cartesian(*p, center);
        if tol.is_zero(pp.radius) {
            return None;
        }
        angles.push(pp.angle);
    }
    angles.sort_by(f64::total_cmp);
    let n = angles.len();
    let mut best = f64::INFINITY;
    for i in 0..n {
        let g = normalize_angle(angles[(i + 1) % n] - angles[i]);
        if g > tol.angle_eps && g < best {
            best = g;
        }
    }
    if best.is_finite() {
        Some(best)
    } else {
        None
    }
}

/// `α_min(p, M)` around `center`: the minimum non-zero angle between `p`'s
/// half-line and another robot's half-line. `self_idx` marks which robot in
/// the configuration *is* `p` (it is skipped).
fn alpha_min_of_point(
    config: &Configuration,
    center: Point,
    p: Point,
    self_idx: usize,
    tol: &Tol,
) -> Option<f64> {
    let pa = PolarPoint::from_cartesian(p, center);
    if tol.is_zero(pa.radius) {
        return None;
    }
    let mut best = f64::INFINITY;
    for (i, q) in config.points().iter().enumerate() {
        if i == self_idx {
            continue;
        }
        let qa = PolarPoint::from_cartesian(*q, center);
        if tol.is_zero(qa.radius) {
            continue;
        }
        let d = signed_angle_diff(pa.angle, qa.angle).abs();
        if d > tol.angle_eps && d < best {
            best = d;
        }
    }
    if best.is_finite() {
        Some(best)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tol() -> Tol {
        Tol::default()
    }

    /// An equiangular set of `m` robots around `c` with the given radii,
    /// where robot `shift_idx` is rotated by `shift_frac · α_min` on its
    /// circle (toward its successor), plus `outer` extra robots farther out
    /// forming an `m`-compatible ring when `outer > 0`.
    fn shifted_equiangular(
        c: Point,
        m: usize,
        radii: &[f64],
        shift_idx: usize,
        shift_frac: f64,
    ) -> Vec<Point> {
        let alpha = TAU / m as f64;
        (0..m)
            .map(|i| {
                let mut a = alpha * i as f64 + 0.3;
                if i == shift_idx {
                    a += shift_frac * alpha;
                }
                let r = radii[i % radii.len()];
                Point::new(c.x + r * a.cos(), c.y + r * a.sin())
            })
            .collect()
    }

    #[test]
    fn whole_config_shifted_equiangular_same_radius() {
        let c = Point::new(1.0, -2.0);
        let pts = shifted_equiangular(c, 8, &[2.0], 3, 0.125);
        let cfg = Configuration::new(pts);
        let s = find_shifted_regular(&cfg, &tol()).expect("shifted set expected");
        assert_eq!(s.shifted_robot, 3);
        assert_eq!(s.len(), 8);
        assert!(s.center.approx_eq(c, &Tol::new(1e-5)), "center {}", s.center);
        assert!((s.epsilon - 0.125).abs() < 1e-3, "epsilon {}", s.epsilon);
    }

    #[test]
    fn whole_config_shifted_detects_smallest_radius_condition() {
        // The shifted robot must be at minimal radius; here it is.
        let c = Point::ORIGIN;
        let mut pts = shifted_equiangular(c, 7, &[1.0], 2, 0.2);
        // Push all non-shifted robots out a bit so robot 2 is strictly
        // closest — radial moves preserve regularity.
        for (i, p) in pts.iter_mut().enumerate() {
            if i != 2 {
                *p = Point::new(p.x * 1.5, p.y * 1.5);
            }
        }
        let cfg = Configuration::new(pts);
        let s = find_shifted_regular(&cfg, &tol()).expect("shifted set expected");
        assert_eq!(s.shifted_robot, 2);
        assert!((s.epsilon - 0.2).abs() < 1e-3);
    }

    #[test]
    fn subset_shifted_set_around_sec_center() {
        // Outer ring of 6 at radius 2 (rest), inner shifted 3-set at radius
        // ~0.8 around the SEC center.
        let mut pts: Vec<Point> = Vec::new();
        // Inner equiangular 3-set with robot 0 shifted by ε = 1/8 of
        // α_min(P'). α_min(P') is set by the 0.05 offset between robot 0's
        // regular half-line and the outer robot at angle 0; the shift must
        // *decrease* that minimum angle (Definition 3 (b)), i.e. go toward
        // the outer robot's half-line.
        let alpha = TAU / 3.0;
        for i in 0..3 {
            let mut a = alpha * i as f64 + 0.05;
            if i == 0 {
                a -= 0.125 * 0.05;
            }
            pts.push(Point::new(0.8 * a.cos(), 0.8 * a.sin()));
        }
        // Outer ring of 6 (ρ = 6, 3 | 6).
        for i in 0..6 {
            let a = TAU * i as f64 / 6.0;
            pts.push(Point::new(2.0 * a.cos(), 2.0 * a.sin()));
        }
        let cfg = Configuration::new(pts);
        let s = find_shifted_regular(&cfg, &tol()).expect("subset shifted set expected");
        assert_eq!(s.shifted_robot, 0);
        assert_eq!(s.len(), 3);
        assert!(s.center.approx_eq(Point::ORIGIN, &Tol::new(1e-6)));
        assert!(s.epsilon > 0.0 && s.epsilon <= 0.25 + 1e-6);
    }

    #[test]
    fn unshifted_regular_config_is_not_shifted() {
        let pts = shifted_equiangular(Point::ORIGIN, 8, &[1.0, 1.5], 0, 0.0);
        let cfg = Configuration::new(pts);
        assert!(find_shifted_regular(&cfg, &tol()).is_none());
    }

    #[test]
    fn random_config_is_not_shifted() {
        let pts = vec![
            Point::new(0.9, 0.1),
            Point::new(-0.3, 1.1),
            Point::new(-1.0, -0.4),
            Point::new(0.2, -0.8),
            Point::new(0.6, 0.7),
            Point::new(-0.7, 0.5),
            Point::new(0.1, 0.4),
        ];
        let cfg = Configuration::new(pts);
        assert!(find_shifted_regular(&cfg, &tol()).is_none());
    }

    #[test]
    fn shift_beyond_quarter_is_rejected() {
        let pts = shifted_equiangular(Point::ORIGIN, 8, &[1.0], 3, 0.4);
        let cfg = Configuration::new(pts);
        assert!(find_shifted_regular(&cfg, &tol()).is_none());
    }

    #[test]
    fn biangular_whole_config_shifted() {
        // Bi-angled 8-set (pairs 0.35 / (π/2 − 0.35)), equal radii, robot 1
        // shifted by 1/8 of α_min = 1/8 · 0.35.
        let alpha = 0.35;
        let beta = TAU / 4.0 - alpha;
        let mut pts = Vec::new();
        let mut angle: f64 = 0.1;
        for i in 0..8 {
            let mut a = angle;
            if i == 1 {
                a -= alpha * 0.125; // shift toward predecessor
            }
            pts.push(Point::new(a.cos(), a.sin()));
            angle += if i % 2 == 0 { alpha } else { beta };
        }
        let cfg = Configuration::new(pts);
        let s = find_shifted_regular(&cfg, &tol()).expect("biangular shifted set");
        assert_eq!(s.shifted_robot, 1);
        assert!(s.kind.is_biangular());
        assert!((s.epsilon - 0.125).abs() < 1e-2, "epsilon {}", s.epsilon);
    }

    #[test]
    fn shifted_detection_unique_for_large_n() {
        // Theorem 1: uniqueness for n ≥ 7 — the detector must identify the
        // one true shifted robot, not an alternative completion.
        for m in [7usize, 9, 12] {
            let pts = shifted_equiangular(Point::new(0.5, 0.5), m, &[1.0], 1, 0.125);
            let cfg = Configuration::new(pts);
            let s = find_shifted_regular(&cfg, &tol()).expect("shifted set expected");
            assert_eq!(s.shifted_robot, 1, "m = {m}");
        }
    }

    #[test]
    fn alpha_min_helpers() {
        let pts = vec![Point::new(1.0, 0.0), Point::new(0.0, 1.0), Point::new(-1.0, 0.2)];
        let cfg = Configuration::new(pts);
        let am = alpha_min_config(&cfg, Point::ORIGIN, &tol()).unwrap();
        assert!(am > 0.0 && am <= TAU / 3.0 + 1.0);
        let ap = alpha_min_of_point(&cfg, Point::ORIGIN, Point::new(1.0, 0.0), 0, &tol()).unwrap();
        assert!((ap - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn radial_member_moves_preserve_shifted_detection() {
        // After the shift is created, members may move radially (M4): the
        // shifted set must remain detectable with the same shifted robot.
        let c = Point::ORIGIN;
        let mut pts = shifted_equiangular(c, 8, &[1.0], 3, 0.125);
        // Move two non-shifted members radially outwards.
        pts[0] = Point::new(pts[0].x * 1.4, pts[0].y * 1.4);
        pts[5] = Point::new(pts[5].x * 1.2, pts[5].y * 1.2);
        let cfg = Configuration::new(pts);
        let s = find_shifted_regular(&cfg, &tol()).expect("still shifted");
        assert_eq!(s.shifted_robot, 3);
    }
}
