//! Similarity of point sets (the paper's `A ≈ B` relation).
//!
//! Two sets are *similar* when one can be obtained from the other by
//! translation, uniform scaling, rotation, and/or reflection. The pattern
//! formation problem is exactly "reach a configuration similar to `F`".

use crate::angle::{angle_dist, normalize_angle};
use crate::circle::smallest_enclosing_circle;
use crate::point::Point;
use crate::polar::PolarPoint;
use crate::tol::Tol;

/// A concrete witness that `src ≈ dst`: the similarity transform mapping the
/// source set onto the destination set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityMap {
    /// Center of the source set (its smallest-enclosing-circle center).
    pub src_center: Point,
    /// Center of the destination set.
    pub dst_center: Point,
    /// Rotation applied after recentring, radians.
    pub rotation: f64,
    /// Scale factor `dst / src`.
    pub scale: f64,
    /// Whether a reflection (across the x-axis, pre-rotation) is applied.
    pub mirrored: bool,
}

impl SimilarityMap {
    /// Applies the transform to a point of the source set.
    pub fn apply(&self, p: Point) -> Point {
        let mut v = p - self.src_center;
        if self.mirrored {
            v.y = -v.y;
        }
        self.dst_center + v.rotate(self.rotation) * self.scale
    }
}

/// Whether `a ≈ b`: equal-size sets matching up to translation, scaling,
/// rotation and reflection (both orientations are always tried — similarity
/// is chirality-free, like the robots).
///
/// Duplicate points (multiplicity) are honored as multisets.
///
/// # Example
///
/// ```
/// use apf_geometry::{are_similar, Point, Tol};
/// let a = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(0.0, 1.0)];
/// // Scaled by 2, rotated 90° and translated:
/// let b = vec![Point::new(5.0, 5.0), Point::new(5.0, 7.0), Point::new(3.0, 5.0)];
/// assert!(are_similar(&a, &b, &Tol::default()));
/// ```
pub fn are_similar(a: &[Point], b: &[Point], tol: &Tol) -> bool {
    match_up_to_similarity(a, b, tol).is_some()
}

/// Finds a similarity transform mapping `a` onto `b` (as multisets), if one
/// exists.
///
/// Returns `None` when the sets have different sizes or no rotation /
/// reflection aligns them within tolerance.
pub fn match_up_to_similarity(a: &[Point], b: &[Point], tol: &Tol) -> Option<SimilarityMap> {
    if a.len() != b.len() {
        return None;
    }
    if a.is_empty() {
        return Some(SimilarityMap {
            src_center: Point::ORIGIN,
            dst_center: Point::ORIGIN,
            rotation: 0.0,
            scale: 1.0,
            mirrored: false,
        });
    }

    let ca = smallest_enclosing_circle(a);
    let cb = smallest_enclosing_circle(b);

    // Degenerate: all points coincide.
    if tol.is_zero(ca.radius) || tol.is_zero(cb.radius) {
        if tol.is_zero(ca.radius) && tol.is_zero(cb.radius) {
            return Some(SimilarityMap {
                src_center: ca.center,
                dst_center: cb.center,
                rotation: 0.0,
                scale: 1.0,
                mirrored: false,
            });
        }
        return None;
    }

    let scale = cb.radius / ca.radius;

    // Normalized polar coordinates (unit enclosing radius).
    let pa: Vec<PolarPoint> = a
        .iter()
        .map(|&p| {
            let pp = PolarPoint::from_cartesian(p, ca.center);
            PolarPoint { radius: pp.radius / ca.radius, angle: pp.angle }
        })
        .collect();
    let pb: Vec<PolarPoint> = b
        .iter()
        .map(|&p| {
            let pp = PolarPoint::from_cartesian(p, cb.center);
            PolarPoint { radius: pp.radius / cb.radius, angle: pp.angle }
        })
        .collect();

    // Anchor: a point of `a` with maximal radius (on the unit circle).
    let anchor =
        pa.iter().enumerate().max_by(|x, y| x.1.radius.total_cmp(&y.1.radius)).map(|(i, _)| i)?;
    let ra = pa[anchor].radius;

    for mirrored in [false, true] {
        let pa_m: Vec<PolarPoint> = pa
            .iter()
            .map(|pp| {
                if mirrored {
                    PolarPoint { radius: pp.radius, angle: normalize_angle(-pp.angle) }
                } else {
                    *pp
                }
            })
            .collect();
        // Try aligning the anchor with every point of b of matching radius.
        for target in pb.iter().filter(|pp| tol.eq(pp.radius, ra)) {
            let rot = normalize_angle(target.angle - pa_m[anchor].angle);
            if polar_multisets_match(&pa_m, &pb, rot, tol) {
                return Some(SimilarityMap {
                    src_center: ca.center,
                    dst_center: cb.center,
                    rotation: rot,
                    scale,
                    mirrored,
                });
            }
        }
    }
    None
}

/// Whether rotating every point of `a` by `rot` yields the multiset `b`
/// (both already normalized polar sets around their centers).
fn polar_multisets_match(a: &[PolarPoint], b: &[PolarPoint], rot: f64, tol: &Tol) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut used = vec![false; b.len()];
    for pa in a {
        let cand = PolarPoint { radius: pa.radius, angle: normalize_angle(pa.angle + rot) };
        let mut found = false;
        for (j, pb) in b.iter().enumerate() {
            if used[j] {
                continue;
            }
            let ok = if tol.is_zero(cand.radius) && tol.is_zero(pb.radius) {
                true
            } else {
                tol.eq(cand.radius, pb.radius)
                    && angle_dist(cand.angle, pb.angle) * cand.radius.max(pb.radius)
                        <= tol.eps.max(tol.angle_eps)
            };
            if ok {
                used[j] = true;
                found = true;
                break;
            }
        }
        if !found {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_3, TAU};

    fn tol() -> Tol {
        Tol::new(1e-6)
    }

    fn transform(
        pts: &[Point],
        rot: f64,
        scale: f64,
        dx: f64,
        dy: f64,
        mirror: bool,
    ) -> Vec<Point> {
        pts.iter()
            .map(|&p| {
                let mut v = p.to_vector();
                if mirror {
                    v.y = -v.y;
                }
                (v.rotate(rot) * scale).to_point() + crate::point::Vector::new(dx, dy)
            })
            .collect()
    }

    fn scalene() -> Vec<Point> {
        vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0), Point::new(1.0, 2.0), Point::new(2.5, 0.5)]
    }

    #[test]
    fn identical_sets_are_similar() {
        let a = scalene();
        assert!(are_similar(&a, &a, &tol()));
    }

    #[test]
    fn translation_scale_rotation() {
        let a = scalene();
        let b = transform(&a, 1.234, 3.5, -7.0, 2.0, false);
        let m = match_up_to_similarity(&a, &b, &tol()).expect("should match");
        assert!(!m.mirrored);
        assert_eq!(a.len(), b.len());
        // apf-lint: allow(zip-length-mismatch) — lengths asserted equal just above
        for (pa, pb_expect) in a.iter().zip(b.iter()) {
            // The map sends each source point to *some* point of b; for a
            // rigid transform of a scalene set it must be the corresponding
            // one.
            assert!(m.apply(*pa).approx_eq(*pb_expect, &Tol::new(1e-5)));
        }
    }

    #[test]
    fn reflection_is_similarity() {
        let a = scalene();
        let b = transform(&a, 0.0, 1.0, 0.0, 0.0, true);
        let m = match_up_to_similarity(&a, &b, &tol()).expect("mirror should match");
        assert!(m.mirrored);
    }

    #[test]
    fn different_shapes_are_not_similar() {
        let a = scalene();
        let mut b = scalene();
        b[2] = Point::new(1.1, 2.3); // perturb one point
        assert!(!are_similar(&a, &b, &tol()));
    }

    #[test]
    fn different_sizes_are_not_similar() {
        let a = scalene();
        let b = &a[..3];
        assert!(!are_similar(&a, b, &tol()));
    }

    #[test]
    fn regular_polygons_similar_across_rotations() {
        let hex_a: Vec<Point> = (0..6)
            .map(|i| {
                let t = TAU * i as f64 / 6.0;
                Point::new(t.cos(), t.sin())
            })
            .collect();
        let hex_b: Vec<Point> = (0..6)
            .map(|i| {
                let t = TAU * i as f64 / 6.0 + FRAC_PI_3 / 2.0;
                Point::new(10.0 + 5.0 * t.cos(), 3.0 + 5.0 * t.sin())
            })
            .collect();
        assert!(are_similar(&hex_a, &hex_b, &tol()));
    }

    #[test]
    fn polygon_vs_slightly_irregular_not_similar() {
        let hex: Vec<Point> = (0..6)
            .map(|i| {
                let t = TAU * i as f64 / 6.0;
                Point::new(t.cos(), t.sin())
            })
            .collect();
        let mut irr = hex.clone();
        let t = TAU / 6.0 + 0.1;
        irr[1] = Point::new(t.cos(), t.sin());
        assert!(!are_similar(&hex, &irr, &tol()));
    }

    #[test]
    fn multiset_multiplicity_respected() {
        // Scalene base (no mirror symmetry), one doubled point.
        let a = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 2.0),
            Point::new(1.0, 2.0), // doubled point
        ];
        let b_same = transform(&a, 0.4, 2.0, 1.0, 1.0, false);
        assert!(are_similar(&a, &b_same, &tol()));
        // Move the duplicate onto a different base point: multiplicities no
        // longer match (and the base has no symmetry to hide it).
        let mut b_diff = b_same.clone();
        b_diff[3] = b_diff[0];
        assert!(!are_similar(&a, &b_diff, &tol()));
    }

    #[test]
    fn coincident_sets() {
        let a = vec![Point::new(1.0, 1.0); 4];
        let b = vec![Point::new(-2.0, 5.0); 4];
        assert!(are_similar(&a, &b, &tol()));
        let c = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        assert!(!are_similar(&a[..2], &c, &tol()));
    }

    #[test]
    fn empty_sets_are_similar() {
        assert!(are_similar(&[], &[], &tol()));
    }

    #[test]
    fn center_point_plus_ring() {
        // A point at the very center plus a ring; rotation must still match.
        let mut a: Vec<Point> = (0..5)
            .map(|i| {
                let t = TAU * i as f64 / 5.0;
                Point::new(t.cos(), t.sin())
            })
            .collect();
        a.push(Point::ORIGIN);
        let b = transform(&a, 2.0, 0.5, 3.0, -1.0, false);
        assert!(are_similar(&a, &b, &tol()));
    }
}
