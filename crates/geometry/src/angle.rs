//! Angle arithmetic on the circle `[0, 2π)`.
//!
//! The paper manipulates three kinds of angular quantities:
//!
//! * `ang(u, v, w)` — the oriented angle at vertex `v` from `u` to `w`,
//!   in `[0, 2π)`, for a chosen [`Orientation`];
//! * `angmin(u, v, w)` — the minimum angle over both orientations, in
//!   `[0, π]`;
//! * angular *gaps* between consecutive half-lines around a center, used by
//!   the regularity detectors.

use crate::point::Point;
use std::f64::consts::TAU;

/// Rotational orientation of an angle measurement or an arc.
///
/// `Ccw` is the mathematically positive direction in the global frame. Local
/// robot frames may be mirrored, so no algorithm in this workspace may assume
/// that all robots agree on which direction is `Ccw` — that is precisely the
/// "no chirality" property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Counter-clockwise (positive) in the frame at hand.
    Ccw,
    /// Clockwise (negative) in the frame at hand.
    Cw,
}

impl Orientation {
    /// The opposite orientation.
    pub fn reversed(self) -> Orientation {
        match self {
            Orientation::Ccw => Orientation::Cw,
            Orientation::Cw => Orientation::Ccw,
        }
    }

    /// `+1.0` for `Ccw`, `-1.0` for `Cw`.
    pub fn sign(self) -> f64 {
        match self {
            Orientation::Ccw => 1.0,
            Orientation::Cw => -1.0,
        }
    }
}

/// Normalizes an angle to `[0, 2π)`.
///
/// # Example
///
/// ```
/// use apf_geometry::normalize_angle;
/// use std::f64::consts::{PI, TAU};
/// assert!((normalize_angle(-PI) - PI).abs() < 1e-12);
/// assert!(normalize_angle(TAU) < 1e-12);
/// ```
pub fn normalize_angle(a: f64) -> f64 {
    let mut r = a % TAU;
    if r < 0.0 {
        r += TAU;
    }
    // Guard against r == TAU after the addition due to rounding.
    if r >= TAU {
        r = 0.0;
    }
    r
}

/// The oriented angle `ang(u, v, w) ∈ [0, 2π)` at vertex `v`, measured from
/// ray `v→u` to ray `v→w` in the given orientation.
///
/// # Panics
///
/// Panics (in debug builds) if `u == v` or `w == v`, where the rays are
/// undefined.
pub fn ang(u: Point, v: Point, w: Point, orientation: Orientation) -> f64 {
    let a = (u - v).angle();
    let b = (w - v).angle();
    debug_assert!((u - v).norm_sq() > 0.0 && (w - v).norm_sq() > 0.0);
    match orientation {
        Orientation::Ccw => normalize_angle(b - a),
        Orientation::Cw => normalize_angle(a - b),
    }
}

/// The minimum angle `angmin(u, v, w) ∈ [0, π]` over both orientations.
pub fn ang_min(u: Point, v: Point, w: Point) -> f64 {
    let a = ang(u, v, w, Orientation::Ccw);
    a.min(TAU - a)
}

/// Signed shortest angular difference `b − a`, normalized to `(-π, π]`.
pub fn signed_angle_diff(a: f64, b: f64) -> f64 {
    let d = normalize_angle(b - a);
    if d > std::f64::consts::PI {
        d - TAU
    } else {
        d
    }
}

/// Absolute shortest angular distance between two angles, in `[0, π]`.
pub fn angle_dist(a: f64, b: f64) -> f64 {
    signed_angle_diff(a, b).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn normalize_wraps_both_directions() {
        assert!((normalize_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((normalize_angle(-FRAC_PI_2) - 3.0 * FRAC_PI_2).abs() < 1e-12);
        assert!(normalize_angle(0.0) == 0.0);
        assert!(normalize_angle(TAU - 1e-15) < TAU);
    }

    #[test]
    fn oriented_angle_at_vertex() {
        let v = Point::ORIGIN;
        let u = Point::new(1.0, 0.0);
        let w = Point::new(0.0, 1.0);
        assert!((ang(u, v, w, Orientation::Ccw) - FRAC_PI_2).abs() < 1e-12);
        assert!((ang(u, v, w, Orientation::Cw) - 3.0 * FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn ang_min_is_symmetric_and_bounded() {
        let v = Point::new(1.0, 1.0);
        let u = Point::new(2.0, 1.0);
        let w = Point::new(1.0, -3.0);
        let m = ang_min(u, v, w);
        assert!((m - FRAC_PI_2).abs() < 1e-12);
        assert!((ang_min(w, v, u) - m).abs() < 1e-12);
        assert!(m <= PI);
    }

    #[test]
    fn ang_min_collinear_opposite_is_pi() {
        let v = Point::ORIGIN;
        let u = Point::new(1.0, 0.0);
        let w = Point::new(-2.0, 0.0);
        assert!((ang_min(u, v, w) - PI).abs() < 1e-12);
    }

    #[test]
    fn signed_diff_shortest_path() {
        assert!((signed_angle_diff(0.1, 0.3) - 0.2).abs() < 1e-12);
        assert!((signed_angle_diff(0.3, 0.1) + 0.2).abs() < 1e-12);
        // Wraps around 2π.
        assert!((signed_angle_diff(TAU - 0.1, 0.1) - 0.2).abs() < 1e-12);
        assert!((signed_angle_diff(0.1, TAU - 0.1) + 0.2).abs() < 1e-12);
    }

    #[test]
    fn angle_dist_is_metric_like() {
        assert!((angle_dist(0.0, PI) - PI).abs() < 1e-12);
        assert!(angle_dist(1.0, 1.0) == 0.0);
        assert!((angle_dist(FRAC_PI_4, TAU - FRAC_PI_4) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn orientation_reversal() {
        assert_eq!(Orientation::Ccw.reversed(), Orientation::Cw);
        assert_eq!(Orientation::Cw.reversed(), Orientation::Ccw);
        assert_eq!(Orientation::Ccw.sign(), 1.0);
        assert_eq!(Orientation::Cw.sign(), -1.0);
    }

    #[test]
    fn oriented_angles_sum_to_tau() {
        let v = Point::ORIGIN;
        let u = Point::new(0.3, 0.8);
        let w = Point::new(-0.5, 0.2);
        let c = ang(u, v, w, Orientation::Ccw);
        let k = ang(u, v, w, Orientation::Cw);
        assert!((c + k - TAU).abs() < 1e-12 || (c == 0.0 && k == 0.0));
    }
}
