//! Local coordinate systems (similarity transforms, possibly mirrored).
//!
//! Each robot sees the world through its own ego-centered frame with an
//! arbitrary origin, rotation, uniform scale and — crucially — an arbitrary
//! *handedness*. The algorithm under study assumes **no common North and no
//! common chirality**, so the simulator gives every robot an independent
//! random [`Frame`] and the algorithm must produce the same global behavior
//! regardless.

use crate::angle::Orientation;
use crate::path::{Path, PathSegment};
use crate::point::{Point, Vector};

/// A similarity transform `global → local`: rotation (+ optional reflection),
/// uniform scaling, then translation.
///
/// `local = S · R · global + t` where `R` is a rotation possibly composed
/// with a reflection across the x-axis.
///
/// # Example
///
/// ```
/// use apf_geometry::{Frame, Point};
/// let f = Frame::new(Point::new(1.0, 0.0), std::f64::consts::FRAC_PI_2, 2.0, false);
/// let local = f.to_local(Point::new(2.0, 0.0));
/// let back = f.to_global(local);
/// assert!((back.x - 2.0).abs() < 1e-12 && back.y.abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frame {
    /// Global position of the local origin.
    pub origin: Point,
    /// Rotation from global axes to local axes, radians.
    pub rotation: f64,
    /// Uniform scale factor (local units per global unit), > 0.
    pub scale: f64,
    /// Whether the frame is mirrored (left-handed w.r.t. the global frame).
    pub mirrored: bool,
}

impl Frame {
    /// Identity frame: local coordinates equal global coordinates.
    pub fn identity() -> Self {
        Frame { origin: Point::ORIGIN, rotation: 0.0, scale: 1.0, mirrored: false }
    }

    /// Creates a frame.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive and finite.
    pub fn new(origin: Point, rotation: f64, scale: f64, mirrored: bool) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "invalid frame scale {scale}");
        Frame { origin, rotation, scale, mirrored }
    }

    /// Maps a global point to local coordinates.
    pub fn to_local(&self, p: Point) -> Point {
        let v = p - self.origin;
        let mut w = v.rotate(-self.rotation);
        if self.mirrored {
            w = Vector::new(w.x, -w.y);
        }
        (w * self.scale).to_point()
    }

    /// Maps a local point back to global coordinates.
    pub fn to_global(&self, p: Point) -> Point {
        let mut w = p.to_vector() / self.scale;
        if self.mirrored {
            w = Vector::new(w.x, -w.y);
        }
        self.origin + w.rotate(self.rotation)
    }

    /// Maps a global direction/displacement to local coordinates (no
    /// translation).
    pub fn dir_to_local(&self, v: Vector) -> Vector {
        let mut w = v.rotate(-self.rotation);
        if self.mirrored {
            w = Vector::new(w.x, -w.y);
        }
        w * self.scale
    }

    /// Maps a local direction/displacement back to global coordinates.
    pub fn dir_to_global(&self, v: Vector) -> Vector {
        let mut w = v / self.scale;
        if self.mirrored {
            w = Vector::new(w.x, -w.y);
        }
        w.rotate(self.rotation)
    }

    /// Maps an entire path from local to global coordinates.
    ///
    /// Arcs flip orientation when the frame is mirrored — this is exactly the
    /// mechanism by which a chirality assumption would leak into an
    /// algorithm, and why the simulator routes all robot output through this
    /// method.
    pub fn path_to_global(&self, path: &Path) -> Path {
        let segs = path
            .segments()
            .iter()
            .map(|seg| match *seg {
                PathSegment::Line { from, to } => {
                    PathSegment::line(self.to_global(from), self.to_global(to))
                }
                PathSegment::Arc { center, radius, start_angle, sweep, orientation } => {
                    let gcenter = self.to_global(center);
                    let start_pt = Point::new(
                        center.x + radius * start_angle.cos(),
                        center.y + radius * start_angle.sin(),
                    );
                    let gstart = self.to_global(start_pt);
                    let gstart_angle = (gstart - gcenter).angle();
                    let gorientation = if self.mirrored { flip(orientation) } else { orientation };
                    PathSegment::arc(
                        gcenter,
                        radius / self.scale,
                        gstart_angle,
                        sweep,
                        gorientation,
                    )
                }
            })
            .collect();
        Path::from_segments(segs)
    }

    /// Maps an entire path from global to local coordinates.
    pub fn path_to_local(&self, path: &Path) -> Path {
        let segs = path
            .segments()
            .iter()
            .map(|seg| match *seg {
                PathSegment::Line { from, to } => {
                    PathSegment::line(self.to_local(from), self.to_local(to))
                }
                PathSegment::Arc { center, radius, start_angle, sweep, orientation } => {
                    let lcenter = self.to_local(center);
                    let start_pt = Point::new(
                        center.x + radius * start_angle.cos(),
                        center.y + radius * start_angle.sin(),
                    );
                    let lstart = self.to_local(start_pt);
                    let lstart_angle = (lstart - lcenter).angle();
                    let lorientation = if self.mirrored { flip(orientation) } else { orientation };
                    PathSegment::arc(
                        lcenter,
                        radius * self.scale,
                        lstart_angle,
                        sweep,
                        lorientation,
                    )
                }
            })
            .collect();
        Path::from_segments(segs)
    }
}

fn flip(o: Orientation) -> Orientation {
    o.reversed()
}

impl Default for Frame {
    fn default() -> Self {
        Frame::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tol::Tol;
    use std::f64::consts::{FRAC_PI_2, PI};

    const T: Tol = Tol { eps: 1e-9, angle_eps: 1e-9 };

    #[test]
    fn identity_roundtrip() {
        let f = Frame::identity();
        let p = Point::new(3.0, -2.0);
        assert!(f.to_local(p).approx_eq(p, &T));
        assert!(f.to_global(p).approx_eq(p, &T));
    }

    #[test]
    fn roundtrip_arbitrary_frame() {
        let f = Frame::new(Point::new(2.0, 1.0), 0.7, 3.0, true);
        for &(x, y) in &[(0.0, 0.0), (1.0, 2.0), (-5.0, 3.3)] {
            let p = Point::new(x, y);
            assert!(f.to_global(f.to_local(p)).approx_eq(p, &T));
            assert!(f.to_local(f.to_global(p)).approx_eq(p, &T));
        }
    }

    #[test]
    fn translation_only() {
        let f = Frame::new(Point::new(1.0, 1.0), 0.0, 1.0, false);
        assert!(f.to_local(Point::new(1.0, 1.0)).approx_eq(Point::ORIGIN, &T));
        assert!(f.to_local(Point::new(2.0, 1.0)).approx_eq(Point::new(1.0, 0.0), &T));
    }

    #[test]
    fn rotation_only() {
        let f = Frame::new(Point::ORIGIN, FRAC_PI_2, 1.0, false);
        // Global +y axis is the local +x axis.
        assert!(f.to_local(Point::new(0.0, 1.0)).approx_eq(Point::new(1.0, 0.0), &T));
    }

    #[test]
    fn mirrored_frame_flips_y() {
        let f = Frame::new(Point::ORIGIN, 0.0, 1.0, true);
        assert!(f.to_local(Point::new(1.0, 1.0)).approx_eq(Point::new(1.0, -1.0), &T));
        // Distances are preserved (scale 1) even when mirrored.
        let a = f.to_local(Point::new(0.0, 0.0));
        let b = f.to_local(Point::new(3.0, 4.0));
        assert!(T.eq(a.dist(b), 5.0));
    }

    #[test]
    fn scale_scales_distances() {
        let f = Frame::new(Point::ORIGIN, 0.3, 2.0, false);
        let a = f.to_local(Point::new(0.0, 0.0));
        let b = f.to_local(Point::new(1.0, 0.0));
        assert!(T.eq(a.dist(b), 2.0));
    }

    #[test]
    fn direction_mapping_ignores_translation() {
        let f = Frame::new(Point::new(10.0, 10.0), PI, 1.0, false);
        let v = f.dir_to_local(Vector::new(1.0, 0.0));
        assert!(T.eq(v.x, -1.0) && T.is_zero(v.y));
        let w = f.dir_to_global(v);
        assert!(T.eq(w.x, 1.0) && T.is_zero(w.y));
    }

    #[test]
    fn path_roundtrip_with_arcs() {
        let f = Frame::new(Point::new(1.0, -1.0), 1.1, 2.5, true);
        let gpath = crate::path::rotate_on_circle(Point::new(2.0, 2.0), Point::new(3.0, 2.0), 1.0);
        let lpath = f.path_to_local(&gpath);
        let back = f.path_to_global(&lpath);
        for i in 0..=16 {
            let d = gpath.length() * i as f64 / 16.0;
            let d2 = back.length() * i as f64 / 16.0;
            assert!(gpath.point_at(d).approx_eq(back.point_at(d2), &Tol::new(1e-6)));
        }
    }

    #[test]
    fn mirrored_path_flips_arc_orientation() {
        let f = Frame::new(Point::ORIGIN, 0.0, 1.0, true);
        let local = crate::path::rotate_on_circle(Point::ORIGIN, Point::new(1.0, 0.0), FRAC_PI_2);
        // In local coordinates this ends at (0, 1); a mirrored robot's global
        // effect ends at (0, -1).
        let global = f.path_to_global(&local);
        assert!(global.destination().approx_eq(Point::new(0.0, -1.0), &T));
    }

    #[test]
    #[should_panic(expected = "invalid frame scale")]
    fn zero_scale_panics() {
        Frame::new(Point::ORIGIN, 0.0, 0.0, false);
    }
}
