//! Robust 2-D computational geometry and symmetry analysis for mobile-robot
//! pattern formation.
//!
//! This crate is the geometric substrate of the APF (arbitrary pattern
//! formation) workspace. It provides everything the Bramas–Tixeuil algorithm
//! needs to *look* at a configuration of robots and reason about it:
//!
//! * primitive types: [`Point`], [`Vector`], [`Angle`] helpers, [`Circle`],
//!   polyline-with-arcs [`Path`]s, and similarity [`Frame`]s (local coordinate
//!   systems including mirrored ones — chirality is *not* assumed anywhere);
//! * the smallest enclosing circle ([`smallest_enclosing_circle`], Welzl's
//!   algorithm);
//! * the Weber point / geometric median ([`weber_point`], Weiszfeld
//!   iteration), which is the invariant center of (bi)angular configurations;
//! * the symmetry engine ([`symmetry`]): local views and the view order,
//!   symmetricity `ρ(P)`, axes of symmetry, `m`-regular and bi-angled set
//!   detection, the regular set `reg(P)` of a configuration (Definition 2 of
//!   the paper) and ε-shifted regular sets (Definition 3);
//! * pattern similarity testing up to translation, scaling, rotation and
//!   reflection ([`similarity`]).
//!
//! All predicates are tolerance-parameterized through [`Tol`]; the crate never
//! compares floating point values for exact equality when a geometric decision
//! is being made.
//!
//! # Example
//!
//! ```
//! use apf_geometry::{Point, Tol, smallest_enclosing_circle};
//!
//! let pts = vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(2.0, 0.0),
//!     Point::new(1.0, 1.0),
//! ];
//! let sec = smallest_enclosing_circle(&pts);
//! let tol = Tol::default();
//! assert!(tol.eq(sec.center.x, 1.0));
//! assert!(tol.eq(sec.center.y, 0.0));
//! assert!(tol.eq(sec.radius, 1.0));
//! ```

#![forbid(unsafe_code)]

pub mod angle;
pub mod circle;
pub mod config;
pub mod frame;
pub mod path;
pub mod point;
pub mod polar;
pub mod similarity;
pub mod symmetry;
pub mod tol;
pub mod weber;

pub use angle::{ang, ang_min, normalize_angle, Orientation};
pub use circle::{smallest_enclosing_circle, Circle};
pub use config::Configuration;
pub use frame::Frame;
pub use path::{Path, PathSegment};
pub use point::{Point, Vector};
pub use polar::PolarPoint;
pub use similarity::{are_similar, match_up_to_similarity};
pub use tol::Tol;
pub use weber::weber_point;
