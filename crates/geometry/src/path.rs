//! Movement paths: polylines mixing straight segments and circular arcs.
//!
//! In the ASYNC model a robot *Computes a path* and then *Moves* along it; the
//! adversary may stop it anywhere after a progress of at least `δ`, and may
//! pause it arbitrarily long mid-path. The Bramas–Tixeuil algorithm issues
//! compound movements ("move a little toward the center, then along the
//! circle, then radially out"), so paths are sequences of [`PathSegment`]s.

use crate::angle::{normalize_angle, Orientation};
use crate::point::Point;
use crate::tol::Tol;
use std::f64::consts::TAU;

/// One leg of a movement path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathSegment {
    /// Straight-line movement from `from` to `to`.
    Line {
        /// Start point.
        from: Point,
        /// End point.
        to: Point,
    },
    /// Circular-arc movement around `center` at distance `radius`, from
    /// `start_angle` sweeping `sweep ≥ 0` radians in the given orientation.
    Arc {
        /// Arc center.
        center: Point,
        /// Arc radius.
        radius: f64,
        /// Starting angle in `[0, 2π)`.
        start_angle: f64,
        /// Non-negative sweep in radians (may exceed 2π only by caller error;
        /// the algorithm never issues sweeps ≥ 2π).
        sweep: f64,
        /// Direction of travel along the arc.
        orientation: Orientation,
    },
}

impl PathSegment {
    /// A straight segment.
    pub fn line(from: Point, to: Point) -> Self {
        PathSegment::Line { from, to }
    }

    /// An arc from `start_angle`, sweeping `sweep` radians around `center`.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative/non-finite or `sweep` is negative.
    pub fn arc(
        center: Point,
        radius: f64,
        start_angle: f64,
        sweep: f64,
        orientation: Orientation,
    ) -> Self {
        assert!(radius.is_finite() && radius >= 0.0, "invalid arc radius {radius}");
        assert!(sweep.is_finite() && sweep >= 0.0, "invalid arc sweep {sweep}");
        PathSegment::Arc {
            center,
            radius,
            start_angle: normalize_angle(start_angle),
            sweep,
            orientation,
        }
    }

    /// Arc length of the segment.
    pub fn length(&self) -> f64 {
        match *self {
            PathSegment::Line { from, to } => from.dist(to),
            PathSegment::Arc { radius, sweep, .. } => radius * sweep,
        }
    }

    /// Start point of the segment.
    pub fn start(&self) -> Point {
        match *self {
            PathSegment::Line { from, .. } => from,
            PathSegment::Arc { center, radius, start_angle, .. } => Point::new(
                center.x + radius * start_angle.cos(),
                center.y + radius * start_angle.sin(),
            ),
        }
    }

    /// End point of the segment.
    pub fn end(&self) -> Point {
        self.point_at(self.length())
    }

    /// Point at curvilinear distance `d` from the start (clamped to the
    /// segment).
    pub fn point_at(&self, d: f64) -> Point {
        let d = d.clamp(0.0, self.length());
        match *self {
            PathSegment::Line { from, to } => {
                let len = from.dist(to);
                // apf-lint: allow(no-float-eq) — exact-zero guard against 0/0 in the lerp below
                if len == 0.0 {
                    from
                } else {
                    from.lerp(to, d / len)
                }
            }
            PathSegment::Arc { center, radius, start_angle, orientation, .. } => {
                // apf-lint: allow(no-float-eq) — exact-zero guard against d / radius below
                if radius == 0.0 {
                    return center;
                }
                let a = start_angle + orientation.sign() * d / radius;
                Point::new(center.x + radius * a.cos(), center.y + radius * a.sin())
            }
        }
    }
}

/// A movement path: a chain of segments, each starting where the previous one
/// ended.
///
/// # Example
///
/// ```
/// use apf_geometry::{Path, PathSegment, Point};
/// let p = Path::from_segments(vec![
///     PathSegment::line(Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
///     PathSegment::line(Point::new(1.0, 0.0), Point::new(1.0, 2.0)),
/// ]);
/// assert_eq!(p.length(), 3.0);
/// assert_eq!(p.point_at(2.0), Point::new(1.0, 1.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    segments: Vec<PathSegment>,
}

impl Path {
    /// An empty path anchored at `at` (a robot that decides not to move).
    pub fn stay(at: Point) -> Self {
        Path { segments: vec![PathSegment::line(at, at)] }
    }

    /// A single straight-line path.
    pub fn straight(from: Point, to: Point) -> Self {
        Path { segments: vec![PathSegment::line(from, to)] }
    }

    /// Builds a path from segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty or consecutive segments are not
    /// (approximately) contiguous.
    pub fn from_segments(segments: Vec<PathSegment>) -> Self {
        assert!(!segments.is_empty(), "a path needs at least one segment");
        for w in segments.windows(2) {
            let gap = w[0].end().dist(w[1].start());
            assert!(gap < 1e-6, "path segments are not contiguous (gap {gap})");
        }
        Path { segments }
    }

    /// The segments of the path.
    pub fn segments(&self) -> &[PathSegment] {
        &self.segments
    }

    /// Total curvilinear length.
    pub fn length(&self) -> f64 {
        self.segments.iter().map(PathSegment::length).sum()
    }

    /// Start point.
    pub fn start(&self) -> Point {
        self.segments[0].start()
    }

    /// Final destination.
    pub fn destination(&self) -> Point {
        // apf-lint: allow(panic-policy) — Path is only constructible non-empty
        self.segments.last().unwrap().end()
    }

    /// Point at curvilinear distance `d` from the start (clamped to the
    /// path).
    pub fn point_at(&self, d: f64) -> Point {
        let mut remaining = d.max(0.0);
        for seg in &self.segments {
            let len = seg.length();
            if remaining <= len {
                return seg.point_at(remaining);
            }
            remaining -= len;
        }
        self.destination()
    }

    /// Whether the path never leaves the closed disc of radius `r` around
    /// `center` (checked by sampling; used by safety invariants in tests).
    pub fn within_disc(&self, center: Point, r: f64, tol: &Tol) -> bool {
        let total = self.length();
        let steps = 64;
        (0..=steps).all(|i| {
            let p = self.point_at(total * i as f64 / steps as f64);
            tol.le(center.dist(p), r)
        })
    }
}

/// Convenience: an arc path along the circle of `p` around `center`, rotating
/// by `delta` radians (sign selects direction: positive = CCW).
pub fn rotate_on_circle(center: Point, p: Point, delta: f64) -> Path {
    let v = p - center;
    let radius = v.norm();
    let start_angle = normalize_angle(v.angle());
    let (sweep, orientation) = if delta >= 0.0 {
        (delta % TAU, Orientation::Ccw)
    } else {
        ((-delta) % TAU, Orientation::Cw)
    };
    Path { segments: vec![PathSegment::arc(center, radius, start_angle, sweep, orientation)] }
}

/// Convenience: a radial path moving `p` to distance `target_radius` from
/// `center` along its half-line.
///
/// # Panics
///
/// Panics if `p` coincides with `center` (the half-line is undefined) while
/// `target_radius > 0`.
pub fn radial_to(center: Point, p: Point, target_radius: f64) -> Path {
    let v = p - center;
    // apf-lint: allow(no-float-eq) — exact-zero target: walking to the center itself is fine
    if target_radius == 0.0 {
        return Path::straight(p, center);
    }
    // apf-lint: allow(panic-policy) — documented panic (see # Panics): p == center is a caller bug
    let u = v.normalized().expect("radial movement from the center is undefined");
    Path::straight(p, center + u * target_radius)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const T: Tol = Tol { eps: 1e-9, angle_eps: 1e-9 };

    #[test]
    fn line_segment_basics() {
        let s = PathSegment::line(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert!(T.eq(s.length(), 5.0));
        assert!(s.point_at(2.5).approx_eq(Point::new(1.5, 2.0), &T));
        assert!(s.point_at(99.0).approx_eq(Point::new(3.0, 4.0), &T));
        assert!(s.point_at(-1.0).approx_eq(Point::new(0.0, 0.0), &T));
    }

    #[test]
    fn arc_segment_quarter_circle() {
        let s = PathSegment::arc(Point::ORIGIN, 2.0, 0.0, FRAC_PI_2, Orientation::Ccw);
        assert!(T.eq(s.length(), PI));
        assert!(s.start().approx_eq(Point::new(2.0, 0.0), &T));
        assert!(s.end().approx_eq(Point::new(0.0, 2.0), &T));
        assert!(s.point_at(PI / 2.0).approx_eq(
            Point::new(2.0 * (FRAC_PI_2 / 2.0).cos(), 2.0 * (FRAC_PI_2 / 2.0).sin()),
            &T
        ));
    }

    #[test]
    fn arc_clockwise_goes_negative() {
        let s = PathSegment::arc(Point::ORIGIN, 1.0, 0.0, FRAC_PI_2, Orientation::Cw);
        assert!(s.end().approx_eq(Point::new(0.0, -1.0), &T));
    }

    #[test]
    fn path_concatenation_and_interpolation() {
        let p = Path::from_segments(vec![
            PathSegment::line(Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
            PathSegment::arc(Point::new(1.0, 1.0), 1.0, -FRAC_PI_2, FRAC_PI_2, Orientation::Ccw),
        ]);
        assert!(T.eq(p.length(), 1.0 + FRAC_PI_2));
        assert!(p.start().approx_eq(Point::new(0.0, 0.0), &T));
        assert!(p.destination().approx_eq(Point::new(2.0, 1.0), &T));
        assert!(p.point_at(0.5).approx_eq(Point::new(0.5, 0.0), &T));
        // Past the end clamps.
        assert!(p.point_at(10.0).approx_eq(p.destination(), &T));
    }

    #[test]
    #[should_panic(expected = "not contiguous")]
    fn discontiguous_path_panics() {
        Path::from_segments(vec![
            PathSegment::line(Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
            PathSegment::line(Point::new(2.0, 0.0), Point::new(3.0, 0.0)),
        ]);
    }

    #[test]
    fn stay_path_has_zero_length() {
        let p = Path::stay(Point::new(1.0, 1.0));
        assert_eq!(p.length(), 0.0);
        assert!(p.destination().approx_eq(Point::new(1.0, 1.0), &T));
    }

    #[test]
    fn rotate_on_circle_both_directions() {
        let c = Point::new(1.0, 0.0);
        let p = Point::new(2.0, 0.0);
        let ccw = rotate_on_circle(c, p, FRAC_PI_2);
        assert!(ccw.destination().approx_eq(Point::new(1.0, 1.0), &T));
        let cw = rotate_on_circle(c, p, -FRAC_PI_2);
        assert!(cw.destination().approx_eq(Point::new(1.0, -1.0), &T));
        // Radius is preserved along the way.
        assert!(T.eq(c.dist(ccw.point_at(0.3)), 1.0));
    }

    #[test]
    fn radial_movement() {
        let c = Point::ORIGIN;
        let p = Point::new(0.0, 4.0);
        let inward = radial_to(c, p, 1.0);
        assert!(inward.destination().approx_eq(Point::new(0.0, 1.0), &T));
        let outward = radial_to(c, p, 6.0);
        assert!(outward.destination().approx_eq(Point::new(0.0, 6.0), &T));
        let to_center = radial_to(c, p, 0.0);
        assert!(to_center.destination().approx_eq(c, &T));
    }

    #[test]
    fn within_disc_detects_escapes() {
        let tol = Tol::default();
        let inside = rotate_on_circle(Point::ORIGIN, Point::new(1.0, 0.0), PI);
        assert!(inside.within_disc(Point::ORIGIN, 1.0 + 1e-6, &tol));
        let escape = Path::straight(Point::new(0.0, 0.0), Point::new(3.0, 0.0));
        assert!(!escape.within_disc(Point::ORIGIN, 1.0, &tol));
    }
}
