//! Pattern and initial-configuration generators.
//!
//! The pattern formation problem is parameterized by an initial configuration
//! `I` and a target pattern `F`. This crate generates both:
//!
//! * arbitrary (asymmetric) configurations and patterns — the general case;
//! * configurations with a prescribed symmetricity `ρ(I)` — the hard inputs
//!   for symmetry breaking, and the inputs deterministic algorithms provably
//!   cannot handle unless `ρ(I) | ρ(F)`;
//! * regular polygons, bi-angled configurations, lines, grids, stars — the
//!   structured workloads of the experiment harness;
//! * patterns with multiplicity points (Section 5 extension).
//!
//! All generators are deterministic in their `seed` so every experiment is
//! reproducible.

#![forbid(unsafe_code)]

use apf_geometry::symmetry::{has_axis_of_symmetry, symmetricity};
use apf_geometry::{Configuration, Point, Tol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::TAU;

/// A regular `n`-gon of the given radius centered at the origin, starting at
/// angle `phase`.
///
/// # Panics
///
/// Panics if `n == 0` or `radius <= 0`.
pub fn regular_polygon(n: usize, radius: f64, phase: f64) -> Vec<Point> {
    assert!(n > 0, "polygon needs at least one vertex");
    assert!(radius > 0.0, "radius must be positive");
    (0..n)
        .map(|i| {
            let a = TAU * i as f64 / n as f64 + phase;
            Point::new(radius * a.cos(), radius * a.sin())
        })
        .collect()
}

/// A bi-angled configuration: `pairs * 2` robots on a circle with
/// alternating angular gaps `alpha` and `4π/(2·pairs) − alpha`.
///
/// # Panics
///
/// Panics if `pairs == 0`, `radius <= 0`, or `alpha` is not in
/// `(0, 2π/pairs)`.
pub fn biangular(pairs: usize, radius: f64, alpha: f64, phase: f64) -> Vec<Point> {
    assert!(pairs > 0, "needs at least one pair");
    assert!(radius > 0.0, "radius must be positive");
    let m = 2 * pairs;
    let beta = 2.0 * TAU / m as f64 - alpha;
    assert!(alpha > 0.0 && beta > 0.0, "alpha out of range");
    let mut angle = phase;
    (0..m)
        .map(|i| {
            let p = Point::new(radius * angle.cos(), radius * angle.sin());
            angle += if i % 2 == 0 { alpha } else { beta };
            p
        })
        .collect()
}

/// `n` collinear points with unit spacing (a "line" pattern).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn line(n: usize) -> Vec<Point> {
    assert!(n > 0);
    (0..n).map(|i| Point::new(i as f64, 0.0)).collect()
}

/// A `rows × cols` unit grid pattern.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Vec<Point> {
    assert!(rows > 0 && cols > 0);
    let mut pts = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            pts.push(Point::new(c as f64, r as f64));
        }
    }
    pts
}

/// A star: `spikes` outer vertices interleaved with `spikes` inner vertices.
///
/// # Panics
///
/// Panics if `spikes < 2` or radii are non-positive or `inner >= outer`.
pub fn star(spikes: usize, outer: f64, inner: f64) -> Vec<Point> {
    assert!(spikes >= 2, "a star needs at least two spikes");
    assert!(inner > 0.0 && outer > inner, "need 0 < inner < outer");
    (0..2 * spikes)
        .map(|i| {
            let a = TAU * i as f64 / (2 * spikes) as f64;
            let r = if i % 2 == 0 { outer } else { inner };
            Point::new(r * a.cos(), r * a.sin())
        })
        .collect()
}

/// An arbitrary pattern of `n` distinct points (general position, no
/// multiplicity), deterministic in `seed`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_pattern(n: usize, seed: u64) -> Vec<Point> {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let tol = Tol::default();
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    while pts.len() < n {
        let p = Point::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
        // Keep points well separated so tolerance decisions are easy.
        if pts.iter().all(|q| q.dist(p) > 0.05) && !p.approx_eq(Point::ORIGIN, &tol) {
            pts.push(p);
        }
    }
    pts
}

/// An asymmetric initial configuration: `n` distinct points with `ρ = 1` and
/// no axis of symmetry, nobody at the center of the smallest enclosing
/// circle. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `n < 3` (smaller sets are always symmetric).
pub fn asymmetric_configuration(n: usize, seed: u64) -> Vec<Point> {
    assert!(n >= 3, "asymmetry needs at least three robots");
    let tol = Tol::default();
    for attempt in 0..256 {
        let pts = random_pattern(n, seed.wrapping_add(attempt * 0x9E37_79B9));
        let cfg = Configuration::new(pts.clone());
        let c = cfg.sec().center;
        if pts.iter().any(|p| p.approx_eq(c, &tol)) {
            continue;
        }
        if symmetricity(&cfg, c, &tol) == 1 && !has_axis_of_symmetry(&cfg, c, &tol) {
            return pts;
        }
    }
    unreachable!("random point sets are asymmetric with overwhelming probability");
}

/// A configuration with symmetricity **exactly** `rho`: `n / rho` random
/// orbit seeds replicated by rotation around the origin. Deterministic in
/// `seed`.
///
/// # Panics
///
/// Panics if `rho < 2`, or `rho` does not divide `n`, or `n / rho < 1`.
pub fn symmetric_configuration(n: usize, rho: usize, seed: u64) -> Vec<Point> {
    assert!(rho >= 2, "use asymmetric_configuration for rho = 1");
    assert!(n.is_multiple_of(rho) && n / rho >= 1, "rho must divide n");
    let orbits = n / rho;
    let tol = Tol::default();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..256 {
        // Random orbit seeds in the fundamental sector, distinct radii so
        // orbits do not merge and the symmetry is not accidentally larger.
        let mut pts = Vec::with_capacity(n);
        let mut radii: Vec<f64> = Vec::new();
        for _ in 0..orbits {
            let mut r;
            loop {
                r = rng.gen_range(0.3..1.5);
                if radii.iter().all(|&q: &f64| (q - r).abs() > 0.05) {
                    break;
                }
            }
            radii.push(r);
            let a = rng.gen_range(0.02..(TAU / rho as f64 - 0.02));
            for k in 0..rho {
                let t = a + TAU * k as f64 / rho as f64;
                pts.push(Point::new(r * t.cos(), r * t.sin()));
            }
        }
        let cfg = Configuration::new(pts.clone());
        if symmetricity(&cfg, Point::ORIGIN, &tol) == rho
            && !has_axis_of_symmetry(&cfg, Point::ORIGIN, &tol)
        {
            return pts;
        }
    }
    unreachable!("random orbit seeds realize exact symmetricity with overwhelming probability");
}

/// A pattern containing multiplicity points: `n` total robots over
/// `distinct` distinct positions (the surplus doubles up on the first
/// positions).
///
/// # Panics
///
/// Panics if `distinct < 2` or `n < distinct`.
pub fn pattern_with_multiplicity(n: usize, distinct: usize, seed: u64) -> Vec<Point> {
    assert!(distinct >= 2, "need at least two distinct positions");
    assert!(n >= distinct, "n must cover all distinct positions");
    let base = random_pattern(distinct, seed);
    let mut pts = base.clone();
    let mut i = 0;
    while pts.len() < n {
        pts.push(base[i % distinct]);
        i += 1;
    }
    pts
}

/// Scales and translates a point set so its smallest enclosing circle is the
/// unit circle at the origin.
///
/// # Panics
///
/// Panics if all points coincide.
pub fn normalize(points: &[Point]) -> Vec<Point> {
    Configuration::new(points.to_vec()).normalized().points().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tol() -> Tol {
        Tol::default()
    }

    #[test]
    fn polygon_has_full_symmetry() {
        for n in [3usize, 5, 8] {
            let cfg = Configuration::new(regular_polygon(n, 1.0, 0.3));
            assert_eq!(symmetricity(&cfg, Point::ORIGIN, &tol()), n);
        }
    }

    #[test]
    fn biangular_structure() {
        let pts = biangular(3, 1.0, 0.4, 0.1);
        assert_eq!(pts.len(), 6);
        let cfg = Configuration::new(pts);
        use apf_geometry::symmetry::check_regular_around;
        let kind = check_regular_around(cfg.points(), Point::ORIGIN, &tol()).unwrap();
        assert!(kind.is_biangular());
    }

    #[test]
    fn random_pattern_is_distinct_and_deterministic() {
        let a = random_pattern(20, 99);
        let b = random_pattern(20, 99);
        assert_eq!(a, b);
        for i in 0..a.len() {
            for j in (i + 1)..a.len() {
                assert!(a[i].dist(a[j]) > 0.04);
            }
        }
        assert_ne!(random_pattern(20, 100), a);
    }

    #[test]
    fn asymmetric_configuration_has_trivial_symmetry() {
        for seed in [1u64, 2, 3] {
            let pts = asymmetric_configuration(9, seed);
            let cfg = Configuration::new(pts);
            let c = cfg.sec().center;
            assert_eq!(symmetricity(&cfg, c, &tol()), 1);
            assert!(!has_axis_of_symmetry(&cfg, c, &tol()));
        }
    }

    #[test]
    fn symmetric_configuration_exact_rho() {
        for (n, rho) in [(8usize, 2usize), (9, 3), (12, 4), (12, 6)] {
            let pts = symmetric_configuration(n, rho, 5);
            assert_eq!(pts.len(), n);
            let cfg = Configuration::new(pts);
            assert_eq!(symmetricity(&cfg, Point::ORIGIN, &tol()), rho, "n={n} rho={rho}");
        }
    }

    #[test]
    fn multiplicity_pattern_counts() {
        let pts = pattern_with_multiplicity(10, 6, 3);
        assert_eq!(pts.len(), 10);
        let cfg = Configuration::new(pts);
        assert!(cfg.has_multiplicity(&tol()));
        assert_eq!(cfg.multiplicity_groups(&tol()).len(), 6);
    }

    #[test]
    fn normalize_unit_sec() {
        let pts = normalize(&grid(3, 4));
        let cfg = Configuration::new(pts);
        assert!(cfg.sec().center.approx_eq(Point::ORIGIN, &tol()));
        assert!(tol().eq(cfg.sec().radius, 1.0));
    }

    #[test]
    fn line_grid_star_shapes() {
        assert_eq!(line(5).len(), 5);
        assert_eq!(grid(2, 3).len(), 6);
        let s = star(5, 2.0, 1.0);
        assert_eq!(s.len(), 10);
        let cfg = Configuration::new(s);
        assert_eq!(symmetricity(&cfg, Point::ORIGIN, &tol()), 5);
    }

    #[test]
    #[should_panic(expected = "rho must divide")]
    fn symmetric_config_bad_rho_panics() {
        symmetric_configuration(10, 3, 0);
    }
}
