//! SVG and ASCII rendering of robot configurations and execution traces.
//!
//! Used by the examples to regenerate the paper's illustrative figures
//! (regular sets, shifted sets, the selected robot) and to visualize
//! simulation traces.

#![forbid(unsafe_code)]

pub mod ascii;
pub mod svg;

pub use ascii::ascii_plot;
pub use svg::{Style, SvgScene};
