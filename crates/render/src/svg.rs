//! Minimal SVG scene builder (no external dependencies).

use apf_geometry::{Circle, Point};
use std::fmt::Write as _;

/// Visual style of a rendered element.
#[derive(Debug, Clone)]
pub struct Style {
    /// Stroke color (CSS color string).
    pub stroke: String,
    /// Fill color (CSS color string, or "none").
    pub fill: String,
    /// Stroke width in user units.
    pub stroke_width: f64,
    /// Opacity in `[0, 1]`.
    pub opacity: f64,
}

impl Default for Style {
    fn default() -> Self {
        Style { stroke: "#333".into(), fill: "none".into(), stroke_width: 0.01, opacity: 1.0 }
    }
}

impl Style {
    /// A filled dot style with the given color.
    pub fn dot(color: &str) -> Self {
        Style { stroke: "none".into(), fill: color.into(), stroke_width: 0.0, opacity: 1.0 }
    }

    /// A thin outline style with the given color.
    pub fn outline(color: &str) -> Self {
        Style { stroke: color.into(), ..Style::default() }
    }
}

/// An SVG document accumulating shapes in *world* coordinates; the viewport
/// is fitted at [`SvgScene::finish`].
///
/// # Example
///
/// ```
/// use apf_render::{SvgScene, Style};
/// use apf_geometry::Point;
///
/// let mut scene = SvgScene::new();
/// scene.point(Point::new(0.0, 0.0), 0.05, &Style::dot("#d33"));
/// scene.segment(Point::new(0.0, 0.0), Point::new(1.0, 1.0), &Style::default());
/// let svg = scene.finish();
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("circle"));
/// ```
#[derive(Debug, Default)]
pub struct SvgScene {
    body: String,
    min: Option<Point>,
    max: Option<Point>,
}

impl SvgScene {
    /// Creates an empty scene.
    pub fn new() -> Self {
        SvgScene::default()
    }

    fn grow(&mut self, p: Point, pad: f64) {
        let lo = Point::new(p.x - pad, p.y - pad);
        let hi = Point::new(p.x + pad, p.y + pad);
        self.min = Some(match self.min {
            None => lo,
            Some(m) => Point::new(m.x.min(lo.x), m.y.min(lo.y)),
        });
        self.max = Some(match self.max {
            None => hi,
            Some(m) => Point::new(m.x.max(hi.x), m.y.max(hi.y)),
        });
    }

    /// Draws a dot of the given radius at `p`.
    pub fn point(&mut self, p: Point, radius: f64, style: &Style) {
        self.grow(p, radius * 2.0);
        let _ = write!(
            self.body,
            r#"<circle cx="{:.6}" cy="{:.6}" r="{:.6}" fill="{}" stroke="{}" stroke-width="{:.6}" opacity="{}"/>"#,
            p.x, -p.y, radius, style.fill, style.stroke, style.stroke_width, style.opacity
        );
        self.body.push('\n');
    }

    /// Draws a circle outline.
    pub fn circle(&mut self, c: &Circle, style: &Style) {
        self.grow(c.center, c.radius * 1.1);
        let _ = write!(
            self.body,
            r#"<circle cx="{:.6}" cy="{:.6}" r="{:.6}" fill="none" stroke="{}" stroke-width="{:.6}" opacity="{}"/>"#,
            c.center.x, -c.center.y, c.radius, style.stroke, style.stroke_width, style.opacity
        );
        self.body.push('\n');
    }

    /// Draws a line segment.
    pub fn segment(&mut self, a: Point, b: Point, style: &Style) {
        self.grow(a, 0.02);
        self.grow(b, 0.02);
        let _ = write!(
            self.body,
            r#"<line x1="{:.6}" y1="{:.6}" x2="{:.6}" y2="{:.6}" stroke="{}" stroke-width="{:.6}" opacity="{}"/>"#,
            a.x, -a.y, b.x, -b.y, style.stroke, style.stroke_width, style.opacity
        );
        self.body.push('\n');
    }

    /// Draws a text label at `p`.
    pub fn label(&mut self, p: Point, text: &str, size: f64) {
        self.grow(p, size * 2.0);
        let escaped = text.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;");
        let _ = write!(
            self.body,
            r##"<text x="{:.6}" y="{:.6}" font-size="{:.6}" font-family="sans-serif" fill="#222">{}</text>"##,
            p.x, -p.y, size, escaped
        );
        self.body.push('\n');
    }

    /// Draws a whole configuration: robots as dots plus the smallest
    /// enclosing circle.
    pub fn configuration(&mut self, points: &[Point], robot_color: &str) {
        if points.is_empty() {
            return;
        }
        let sec = apf_geometry::smallest_enclosing_circle(points);
        self.circle(&sec, &Style::outline("#bbb"));
        let r = (sec.radius * 0.02).max(1e-3);
        for &p in points {
            self.point(p, r, &Style::dot(robot_color));
        }
    }

    /// Draws a faded trajectory (polyline through the given points).
    pub fn trajectory(&mut self, points: &[Point], color: &str) {
        for w in points.windows(2) {
            self.segment(
                w[0],
                w[1],
                &Style { stroke: color.into(), opacity: 0.5, ..Style::default() },
            );
        }
    }

    /// Fits the viewport and returns the SVG document.
    pub fn finish(self) -> String {
        let (min, max) = match (self.min, self.max) {
            (Some(a), Some(b)) => (a, b),
            _ => (Point::new(-1.0, -1.0), Point::new(1.0, 1.0)),
        };
        let w = (max.x - min.x).max(1e-6);
        let h = (max.y - min.y).max(1e-6);
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"{:.6} {:.6} {:.6} {:.6}\" width=\"640\" height=\"640\">\n{}</svg>\n",
            min.x,
            -max.y,
            w,
            h,
            self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_scene_has_default_viewport() {
        let svg = SvgScene::new().finish();
        assert!(svg.contains("viewBox"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn configuration_renders_all_robots() {
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i as f64, (i % 2) as f64)).collect();
        let mut s = SvgScene::new();
        s.configuration(&pts, "#d33");
        let svg = s.finish();
        // 5 robot dots + 1 SEC circle.
        assert_eq!(svg.matches("<circle").count(), 6);
    }

    #[test]
    fn labels_are_escaped() {
        let mut s = SvgScene::new();
        s.label(Point::ORIGIN, "a<b&c>", 0.1);
        let svg = s.finish();
        assert!(svg.contains("a&lt;b&amp;c&gt;"));
    }

    #[test]
    fn trajectory_draws_segments() {
        let pts: Vec<Point> = (0..4).map(|i| Point::new(i as f64, 0.0)).collect();
        let mut s = SvgScene::new();
        s.trajectory(&pts, "#00f");
        assert_eq!(s.finish().matches("<line").count(), 3);
    }

    #[test]
    fn y_axis_is_flipped_for_svg() {
        let mut s = SvgScene::new();
        s.point(Point::new(0.0, 2.0), 0.01, &Style::dot("#000"));
        let svg = s.finish();
        assert!(svg.contains(r#"cy="-2.000000""#));
    }
}
