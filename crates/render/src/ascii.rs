//! Terminal-friendly ASCII plots of configurations.

use apf_geometry::Point;

/// Renders points into a `width × height` character grid. Robots are `o`,
/// the grid origin is `+` (if visible), overlapping robots render `@`.
///
/// # Example
///
/// ```
/// use apf_render::ascii_plot;
/// use apf_geometry::Point;
/// let art = ascii_plot(&[Point::new(0.0, 0.0), Point::new(1.0, 1.0)], 21, 11);
/// assert!(art.contains('o'));
/// ```
pub fn ascii_plot(points: &[Point], width: usize, height: usize) -> String {
    assert!(width >= 3 && height >= 3, "grid too small");
    if points.is_empty() {
        return String::new();
    }
    let min_x = points.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
    let max_x = points.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
    let min_y = points.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
    let max_y = points.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max);
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);

    let mut grid = vec![vec![' '; width]; height];
    // Mark the origin if inside the bounding box.
    if (min_x..=max_x).contains(&0.0) && (min_y..=max_y).contains(&0.0) {
        let cx = ((0.0 - min_x) / span_x * (width - 1) as f64).round() as usize;
        let cy = ((max_y - 0.0) / span_y * (height - 1) as f64).round() as usize;
        grid[cy][cx] = '+';
    }
    for p in points {
        let cx = ((p.x - min_x) / span_x * (width - 1) as f64).round() as usize;
        let cy = ((max_y - p.y) / span_y * (height - 1) as f64).round() as usize;
        grid[cy][cx] = match grid[cy][cx] {
            'o' | '@' => '@',
            _ => 'o',
        };
    }
    let mut out = String::with_capacity((width + 1) * height);
    for row in grid {
        out.extend(row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plots_correct_dimensions() {
        let art = ascii_plot(&[Point::new(0.0, 0.0), Point::new(2.0, 1.0)], 20, 10);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.chars().count() == 20));
    }

    #[test]
    fn overlap_renders_at_sign() {
        let art =
            ascii_plot(&[Point::new(0.0, 0.0), Point::new(0.0, 0.0), Point::new(5.0, 5.0)], 11, 11);
        assert!(art.contains('@'));
        assert!(art.contains('o'));
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(ascii_plot(&[], 10, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn tiny_grid_panics() {
        ascii_plot(&[Point::ORIGIN], 2, 2);
    }
}
