//! Integration tests driving the campaign service over a real TCP socket:
//! raw HTTP/1.1 client, job lifecycle, digest parity with direct engine
//! runs, backpressure, cancellation, metrics, and graceful shutdown.

use apf_serve::json::{self, Json};
use apf_serve::{Server, ServerConfig, ShutdownHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

struct TestServer {
    addr: SocketAddr,
    handle: ShutdownHandle,
    join: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start(cfg: ServerConfig) -> TestServer {
    let server = Server::bind(cfg).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    TestServer { addr, handle, join }
}

impl TestServer {
    fn stop(self) {
        self.handle.shutdown();
        self.join.join().expect("server thread").expect("clean shutdown");
    }
}

/// A raw one-shot HTTP/1.1 exchange.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    request_with_headers(addr, method, path, &[], body)
}

/// A raw exchange with extra request headers.
fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let extra: String = headers.iter().map(|(n, v)| format!("{n}: {v}\r\n")).collect();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\n{extra}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8(response).expect("UTF-8 response");
    let (head, payload) = text.split_once("\r\n\r\n").expect("framed response");
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, head.to_string(), payload.to_string())
}

fn get_json(addr: SocketAddr, path: &str) -> (u16, Json) {
    let (status, _head, body) = request(addr, "GET", path, "");
    (status, json::parse(&body).unwrap_or(Json::Null))
}

fn submit(addr: SocketAddr, body: &str) -> (u16, Json) {
    let (status, _head, payload) = request(addr, "POST", "/v1/jobs", body);
    (status, json::parse(&payload).unwrap_or(Json::Null))
}

/// Polls `GET /v1/jobs/{id}` until its status satisfies `pred`.
fn wait_for_status(addr: SocketAddr, id: u64, pred: impl Fn(&str) -> bool) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, v) = get_json(addr, &format!("/v1/jobs/{id}"));
        assert_eq!(status, 200, "job {id} disappeared");
        let s = v.get("status").and_then(Json::as_str).expect("status field").to_string();
        if pred(&s) {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting on job {id} (last: {s})");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn terminal(s: &str) -> bool {
    matches!(s, "done" | "cancelled" | "failed")
}

#[test]
fn healthz_routes_and_errors() {
    let ts = start(ServerConfig::default());

    // Infrastructure endpoints answer both bare and under /v1.
    for path in ["/healthz", "/v1/healthz"] {
        let (status, v) = get_json(ts.addr, path);
        assert_eq!(status, 200);
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    }

    let (status, _, _) = request(ts.addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _, _) = request(ts.addr, "DELETE", "/metrics", "");
    assert_eq!(status, 405);
    let (status, _, _) = request(ts.addr, "GET", "/v1/jobs/7", "");
    assert_eq!(status, 404);
    let (status, _, _) = request(ts.addr, "GET", "/v1/jobs/bogus", "");
    assert_eq!(status, 404);

    // Legacy unversioned job paths answer 308 with the /v1 location —
    // method-preserving, so clients that follow redirects keep working.
    for (method, path) in
        [("POST", "/jobs"), ("GET", "/jobs"), ("GET", "/jobs/7"), ("GET", "/jobs/7/result")]
    {
        let (status, head, _) = request(ts.addr, method, path, "");
        assert_eq!(status, 308, "{method} {path}: {head}");
        assert!(head.contains(&format!("Location: /v1{path}")), "{head}");
    }

    let (status, v) = submit(ts.addr, "this is not json");
    assert_eq!(status, 400);
    assert!(v.get("error").is_some());
    let (status, _) = submit(ts.addr, r#"{"n":4}"#);
    assert_eq!(status, 400);

    // A malformed request line is a 400, not a dropped connection.
    let mut stream = TcpStream::connect(ts.addr).expect("connect");
    stream.write_all(b"TOTALLY WRONG\r\n\r\n").expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 400 "), "{response}");

    ts.stop();
}

#[test]
fn http_job_reproduces_direct_engine_digests() {
    let ts = start(ServerConfig::default());

    let body = r#"{"name":"parity","trials":3,"seed":1,"n":8,"rho":4,"budget":2000000}"#;
    let (status, v) = submit(ts.addr, body);
    assert_eq!(status, 202, "{v:?}");
    let id = v.get("id").and_then(Json::as_u64).expect("job id");

    let v = wait_for_status(ts.addr, id, terminal);
    assert_eq!(v.get("status").and_then(Json::as_str), Some("done"));

    let (status, result) = get_json(ts.addr, &format!("/v1/jobs/{id}/result"));
    assert_eq!(status, 200);
    let server_digests: Vec<u64> = result
        .get("result")
        .and_then(|r| r.get("digests"))
        .and_then(Json::as_arr)
        .expect("digests array")
        .iter()
        .map(|d| d.as_u64().expect("u64 digest"))
        .collect();
    assert_eq!(server_digests.len(), 3);

    // The same spec executed directly through the engine — the path
    // `apf-cli job-digest` takes — must produce identical trace digests.
    let spec = apf_serve::JobSpec {
        canonical: apf_bench::spec::CanonicalSpec {
            name: "parity".to_string(),
            trials: 3,
            ..apf_bench::spec::CanonicalSpec::default()
        },
        ..apf_serve::JobSpec::default()
    };
    let report =
        apf_bench::engine::Engine::new().jobs(2).trace_digests(true).run(&spec.to_campaign());
    assert_eq!(report.digests.as_deref().expect("local digests"), &server_digests[..]);

    // The live counters and the result agree on trial counts.
    let trials =
        result.get("result").and_then(|r| r.get("trials")).and_then(Json::as_u64).expect("trials");
    assert_eq!(trials, 3);

    ts.stop();
}

#[test]
fn queue_backpressure_and_cancellation() {
    let ts = start(ServerConfig { workers: 1, queue_depth: 1, ..ServerConfig::default() });

    // A long job occupies the single worker; the next fills the queue; the
    // third must bounce with 429 + Retry-After.
    let long = r#"{"name":"long","trials":800,"budget":2000000}"#;
    let (status, a) = submit(ts.addr, long);
    assert_eq!(status, 202);
    let id_a = a.get("id").and_then(Json::as_u64).expect("id");
    wait_for_status(ts.addr, id_a, |s| s == "running");

    let (status, b) = submit(ts.addr, long);
    assert_eq!(status, 202);
    let id_b = b.get("id").and_then(Json::as_u64).expect("id");

    let (status, head, _) = request(ts.addr, "POST", "/v1/jobs", long);
    assert_eq!(status, 429, "{head}");
    assert!(head.contains("Retry-After:"), "{head}");

    // A result query on an unfinished job is a 409.
    let (status, _, _) = request(ts.addr, "GET", &format!("/v1/jobs/{id_a}/result"), "");
    assert_eq!(status, 409);

    // Cancel both; the running one keeps a well-formed partial prefix.
    let (status, _, _) = request(ts.addr, "DELETE", &format!("/v1/jobs/{id_a}"), "");
    assert_eq!(status, 200);
    let (status, _, _) = request(ts.addr, "DELETE", &format!("/v1/jobs/{id_b}"), "");
    assert_eq!(status, 200);

    let va = wait_for_status(ts.addr, id_a, terminal);
    let vb = wait_for_status(ts.addr, id_b, terminal);
    assert_eq!(vb.get("status").and_then(Json::as_str), Some("cancelled"));
    let sa = va.get("status").and_then(Json::as_str).expect("status");
    assert!(terminal(sa) && sa != "failed", "job A ended as {sa}");
    if sa == "cancelled" {
        let result = va.get("result").expect("partial result recorded");
        let trials = result.get("trials").and_then(Json::as_u64).expect("trials");
        let digests = result.get("digests").and_then(Json::as_arr).expect("digests");
        assert!(trials < 800, "cancelled job ran everything");
        assert_eq!(digests.len() as u64, trials, "digest vector matches executed prefix");
    }

    ts.stop();
}

#[test]
fn metrics_scrape_is_valid_prometheus_text() {
    let ts = start(ServerConfig::default());

    let (status, _) = submit(ts.addr, r#"{"name":"m","trials":2,"budget":2000000}"#);
    assert_eq!(status, 202);
    wait_for_status(ts.addr, 1, terminal);

    let (status, head, body) = request(ts.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");

    // Structural validation: samples only for TYPE-announced names, every
    // value a float, labels well-formed.
    let mut announced = std::collections::BTreeSet::new();
    let mut samples = 0usize;
    for line in body.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().expect("type name");
            let kind = it.next().expect("type kind");
            assert!(matches!(kind, "counter" | "gauge" | "histogram"), "{line}");
            announced.insert(name.to_string());
            if kind == "histogram" {
                // Histogram samples use derived names.
                announced.insert(format!("{name}_bucket"));
                announced.insert(format!("{name}_sum"));
                announced.insert(format!("{name}_count"));
            }
        } else if !line.starts_with('#') {
            let (name_labels, value) = line.rsplit_once(' ').expect("sample line");
            let name = name_labels.split('{').next().expect("name");
            assert!(announced.contains(name), "sample before TYPE: {line}");
            value.parse::<f64>().unwrap_or_else(|_| panic!("bad value: {line}"));
            samples += 1;
        }
    }
    assert!(samples >= 10, "suspiciously few samples:\n{body}");

    // The counters reflect the finished job.
    assert!(body.contains("apf_jobs_total{state=\"submitted\"} 1"), "{body}");
    assert!(body.contains("apf_jobs_total{state=\"done\"} 1"), "{body}");
    assert!(body.contains("apf_trials_total 2"), "{body}");
    assert!(body.contains("apf_queue_depth 0"), "{body}");
    assert!(body.contains("apf_phase_cycles_total"), "{body}");

    // The latency histograms saw the HTTP traffic and the job's lifecycle.
    assert!(body.contains("# TYPE apf_http_request_seconds histogram"), "{body}");
    assert!(body.contains("apf_http_request_seconds_bucket{le=\"+Inf\"}"), "{body}");
    assert!(body.contains("apf_job_queue_wait_seconds_count 1"), "{body}");
    assert!(body.contains("apf_job_exec_seconds_count 1"), "{body}");

    ts.stop();
}

#[test]
fn submit_echoes_and_generates_request_ids() {
    let ts = start(ServerConfig::default());

    // A well-formed client-supplied id is echoed back verbatim.
    let (status, head, _) = request_with_headers(
        ts.addr,
        "POST",
        "/v1/jobs",
        &[("X-Apf-Request-Id", "coord-7f.3")],
        r#"{"name":"rid","trials":1,"budget":2000000}"#,
    );
    assert_eq!(status, 202);
    assert!(head.contains("X-Apf-Request-Id: coord-7f.3"), "{head}");

    // A malformed id is replaced by a fresh 16-hex-digit one.
    let (status, head, _) = request_with_headers(
        ts.addr,
        "POST",
        "/v1/jobs",
        &[("X-Apf-Request-Id", "bad id with spaces")],
        r#"{"name":"rid2","trials":1,"budget":2000000}"#,
    );
    assert_eq!(status, 202);
    let rid = head
        .lines()
        .find_map(|l| l.strip_prefix("X-Apf-Request-Id: "))
        .expect("generated request id")
        .trim();
    assert_eq!(rid.len(), 16, "{head}");
    assert!(rid.bytes().all(|b| b.is_ascii_hexdigit()), "{head}");

    ts.stop();
}

#[test]
fn graceful_shutdown_drains_running_job() {
    let ts = start(ServerConfig { workers: 1, ..ServerConfig::default() });

    let (status, v) = submit(ts.addr, r#"{"name":"drain","trials":800,"budget":2000000}"#);
    assert_eq!(status, 202);
    let id = v.get("id").and_then(Json::as_u64).expect("id");
    wait_for_status(ts.addr, id, |s| s == "running");

    // Shut down mid-job: run() must drain the in-flight trial, record the
    // partial result, and return cleanly.
    ts.handle.shutdown();
    ts.join.join().expect("server thread").expect("clean shutdown");

    // New connections are refused once the listener is gone.
    assert!(
        TcpStream::connect(ts.addr).is_err() || {
            // The OS may accept briefly on some platforms; a request must fail.
            let mut s = TcpStream::connect(ts.addr).expect("connect");
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").ok();
            let mut out = String::new();
            s.read_to_string(&mut out).map(|n| n == 0).unwrap_or(true)
        }
    );
}

#[test]
fn spec_digest_endpoint_matches_canonicalization() {
    let ts = start(ServerConfig::default());

    // Field order must not matter — both orderings canonicalize to the
    // same digest, and the digest matches the library's own computation.
    let (status, _, a) =
        request(ts.addr, "POST", "/v1/spec-digest", r#"{"seed":7,"trials":4,"name":"x"}"#);
    assert_eq!(status, 200);
    let (status, _, b) =
        request(ts.addr, "POST", "/v1/spec-digest", r#"{"name":"x","trials":4,"seed":7}"#);
    assert_eq!(status, 200);
    let a = json::parse(&a).expect("json");
    let b = json::parse(&b).expect("json");
    let digest = a.get("digest").and_then(Json::as_str).expect("digest").to_string();
    assert_eq!(Some(digest.as_str()), b.get("digest").and_then(Json::as_str));
    assert_eq!(a.get("cacheable"), Some(&Json::Bool(true)));

    let expected = apf_bench::spec::CanonicalSpec {
        name: "x".to_string(),
        seed: 7,
        trials: 4,
        ..apf_bench::spec::CanonicalSpec::default()
    };
    assert_eq!(digest, format!("{:016x}", expected.digest()));
    assert_eq!(a.get("canonical").and_then(|c| c.get("seed")).and_then(Json::as_u64), Some(7));

    // Sharded/detail specs canonicalize to the same digest but are not
    // cacheable.
    let (status, _, c) = request(
        ts.addr,
        "POST",
        "/v1/spec-digest",
        r#"{"seed":7,"trials":4,"name":"x","range":[0,2],"detail":true}"#,
    );
    assert_eq!(status, 200);
    let c = json::parse(&c).expect("json");
    assert_eq!(c.get("digest").and_then(Json::as_str), Some(digest.as_str()));
    assert_eq!(c.get("cacheable"), Some(&Json::Bool(false)));

    let (status, _, _) = request(ts.addr, "POST", "/v1/spec-digest", "not json");
    assert_eq!(status, 400);

    ts.stop();
}

#[test]
fn per_client_quota_rejects_with_429() {
    let ts = start(ServerConfig { quota_per_minute: 2, ..ServerConfig::default() });

    // The test's connections all come from loopback, so distinct client
    // identities need the x-client-id header.
    let send = |client: &str| {
        let mut stream = TcpStream::connect(ts.addr).expect("connect");
        let body = r#"{"name":"q","trials":1}"#;
        let req = format!(
            "POST /v1/jobs HTTP/1.1\r\nHost: t\r\nx-client-id: {client}\r\nContent-Length: \
             {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(req.as_bytes()).expect("send");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out.split(' ').nth(1).and_then(|s| s.parse::<u16>().ok()).expect("status")
    };
    assert_eq!(send("alice"), 202);
    assert_eq!(send("alice"), 202);
    assert_eq!(send("alice"), 429, "third submission in the window must bounce");
    assert_eq!(send("bob"), 202, "quota is per client");

    let (_, _, metrics) = request(ts.addr, "GET", "/metrics", "");
    assert!(metrics.contains("apf_quota_rejected_total 1"), "{metrics}");

    ts.stop();
}

#[test]
fn submissions_during_shutdown_are_rejected() {
    let ts = start(ServerConfig::default());
    ts.handle.shutdown();
    // The accept loop may serve a final connection before it notices the
    // flag; either the connect fails (listener closed) or the server
    // answers 503.
    for _ in 0..50 {
        let Ok(mut stream) = TcpStream::connect(ts.addr) else { break };
        let body = r#"{"name":"x"}"#;
        let req = format!(
            "POST /v1/jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        if stream.write_all(req.as_bytes()).is_err() {
            break;
        }
        let mut out = String::new();
        if stream.read_to_string(&mut out).unwrap_or(0) == 0 {
            break;
        }
        assert!(out.starts_with("HTTP/1.1 503 "), "accepted a job during shutdown: {out}");
        std::thread::sleep(Duration::from_millis(10));
    }
    ts.join.join().expect("server thread").expect("clean shutdown");
}
