//! Integration tests for coordinator mode and the content-addressed result
//! cache, over real TCP sockets: shard fan-out merged bit-identically to a
//! single-process engine run, retry after backend loss without
//! double-counting, cache hits with integrity re-verification, and the
//! cache-vs-engine equality property.

use apf_bench::engine::Engine;
use apf_bench::spec::CanonicalSpec;
use apf_serve::cache::{CacheConfig, ResultCache};
use apf_serve::coordinator::CoordinatorConfig;
use apf_serve::json::{self, Json};
use apf_serve::{JobOutcome, Server, ServerConfig, ShutdownHandle};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

struct TestServer {
    addr: SocketAddr,
    handle: ShutdownHandle,
    join: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start(cfg: ServerConfig) -> TestServer {
    let server = Server::bind(cfg).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    TestServer { addr, handle, join }
}

impl TestServer {
    fn stop(self) {
        self.handle.shutdown();
        self.join.join().expect("server thread").expect("clean shutdown");
    }
}

fn backend_config() -> ServerConfig {
    ServerConfig { workers: 2, queue_depth: 32, ..ServerConfig::default() }
}

fn coordinator_config(backends: &[&TestServer]) -> ServerConfig {
    ServerConfig {
        workers: 1,
        coordinator: CoordinatorConfig {
            backends: backends.iter().map(|b| b.addr.to_string()).collect(),
            poll_interval: Duration::from_millis(10),
            ..CoordinatorConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8(response).expect("UTF-8 response");
    let (head, payload) = text.split_once("\r\n\r\n").expect("framed response");
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, head.to_string(), payload.to_string())
}

fn submit(addr: SocketAddr, body: &str) -> Json {
    let (status, _head, payload) = request(addr, "POST", "/v1/jobs", body);
    let v = json::parse(&payload).unwrap_or(Json::Null);
    assert_eq!(status, 202, "{v:?}");
    v
}

fn wait_done(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, _, body) = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "job {id} disappeared");
        let v = json::parse(&body).expect("status json");
        let s = v.get("status").and_then(Json::as_str).expect("status field").to_string();
        if matches!(s.as_str(), "done" | "cancelled" | "failed") {
            assert_eq!(s, "done", "job {id} ended as {s}: {v:?}");
            return v;
        }
        assert!(Instant::now() < deadline, "timed out on job {id} (last: {s})");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn fetch_outcome(addr: SocketAddr, id: u64) -> JobOutcome {
    let (status, _, body) = request(addr, "GET", &format!("/v1/jobs/{id}/result"), "");
    assert_eq!(status, 200);
    let v = json::parse(&body).expect("result json");
    JobOutcome::from_json(v.get("result").expect("result member")).expect("parse outcome")
}

/// The single-process ground truth for `spec`, via the same construction
/// path `apf-cli job-digest` uses.
fn direct_run(spec: &CanonicalSpec) -> (Vec<u64>, apf_bench::Aggregate, u64) {
    let report = Engine::new().jobs(2).trace_digests(true).run(&spec.to_campaign());
    (report.digests.clone().expect("digests"), report.aggregate(), report.stats.formed())
}

/// Bitwise equality between a coordinator outcome and the direct run.
fn assert_bit_identical(outcome: &JobOutcome, spec: &CanonicalSpec) {
    let (digests, agg, formed) = direct_run(spec);
    assert_eq!(outcome.digests, digests, "per-trial digests diverged");
    assert_eq!(outcome.trials as u64, spec.trials);
    assert_eq!(outcome.formed, formed);
    assert_eq!(outcome.success.to_bits(), agg.success.to_bits());
    assert_eq!(outcome.mean_cycles.to_bits(), agg.mean_cycles.to_bits());
    assert_eq!(outcome.median_cycles.to_bits(), agg.median_cycles.to_bits());
    assert_eq!(outcome.p95_cycles.to_bits(), agg.p95_cycles.to_bits());
    assert_eq!(outcome.mean_bits.to_bits(), agg.mean_bits.to_bits());
    assert_eq!(outcome.bits_per_cycle.to_bits(), agg.bits_per_cycle.to_bits());
}

#[test]
fn coordinator_merge_is_bit_identical_to_single_process_run() {
    let b1 = start(backend_config());
    let b2 = start(backend_config());
    let coord = start(coordinator_config(&[&b1, &b2]));

    // 7 trials over 2 backends x 2 shards = shards of 2,2,2,1 — uneven
    // split including a single-trial shard.
    let spec = CanonicalSpec { name: "dist".to_string(), trials: 7, ..CanonicalSpec::default() };
    let v = submit(coord.addr, r#"{"name":"dist","trials":7}"#);
    let id = v.get("id").and_then(Json::as_u64).expect("id");
    wait_done(coord.addr, id);
    let outcome = fetch_outcome(coord.addr, id);
    assert_bit_identical(&outcome, &spec);
    assert!(!outcome.cached);
    // The coordinator records its own wall clock (sharding + dispatch +
    // merge), not a placeholder.
    assert!(outcome.wall_secs > 0.0, "coordinated outcome must carry real wall time");

    // The fan-out's shard round-trips landed in the latency histogram.
    let (_, _, metrics) = request(coord.addr, "GET", "/metrics", "");
    let roundtrips = metrics
        .lines()
        .find_map(|l| l.strip_prefix("apf_shard_roundtrip_seconds_count "))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("shard round-trip histogram");
    assert!(roundtrips >= 4, "expected >= 4 shard round-trips, saw {roundtrips}:\n{metrics}");

    // A single-trial campaign: fewer trials than shard slots.
    let spec1 = CanonicalSpec { name: "one".to_string(), trials: 1, ..CanonicalSpec::default() };
    let v = submit(coord.addr, r#"{"name":"one","trials":1}"#);
    let id = v.get("id").and_then(Json::as_u64).expect("id");
    wait_done(coord.addr, id);
    assert_bit_identical(&fetch_outcome(coord.addr, id), &spec1);

    // An empty shard range executes zero trials and still completes.
    let v = submit(coord.addr, r#"{"name":"dist","trials":7,"range":[3,3],"detail":true}"#);
    let id = v.get("id").and_then(Json::as_u64).expect("id");
    wait_done(coord.addr, id);
    let empty = fetch_outcome(coord.addr, id);
    assert_eq!(empty.trials, 0);
    assert_eq!(empty.requested, 0);
    assert!(empty.digests.is_empty());
    assert_eq!(empty.detail.as_deref(), Some(&[][..]));

    // A sub-range equals the same slice of the full run.
    let v = submit(coord.addr, r#"{"name":"dist","trials":7,"range":[2,6]}"#);
    let id = v.get("id").and_then(Json::as_u64).expect("id");
    wait_done(coord.addr, id);
    let sliced = fetch_outcome(coord.addr, id);
    let (full_digests, _, _) = direct_run(&spec);
    assert_eq!(sliced.digests, full_digests[2..6]);

    coord.stop();
    b1.stop();
    b2.stop();
}

#[test]
fn dead_backend_shards_are_retried_on_survivors_without_double_count() {
    // A backend address that refuses connections: bind an ephemeral port,
    // then drop the listener before anything connects.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let live = start(backend_config());
    let coord = start(ServerConfig {
        workers: 1,
        coordinator: CoordinatorConfig {
            backends: vec![dead_addr, live.addr.to_string()],
            poll_interval: Duration::from_millis(10),
            request_timeout: Duration::from_secs(2),
            ..CoordinatorConfig::default()
        },
        ..ServerConfig::default()
    });

    let spec = CanonicalSpec { name: "retry".to_string(), trials: 5, ..CanonicalSpec::default() };
    let v = submit(coord.addr, r#"{"name":"retry","trials":5}"#);
    let id = v.get("id").and_then(Json::as_u64).expect("id");
    wait_done(coord.addr, id);
    let outcome = fetch_outcome(coord.addr, id);

    // Every shard landed exactly once (digest vector length == trials) and
    // the merge is still bit-identical — re-dispatch did not double-count.
    assert_bit_identical(&outcome, &spec);

    // The dead backend's failures are visible as retries.
    let (_, _, metrics) = request(coord.addr, "GET", "/metrics", "");
    let retried = metrics
        .lines()
        .find_map(|l| l.strip_prefix("apf_shards_total{event=\"retried\"} "))
        .and_then(|v| v.parse::<f64>().ok())
        .expect("retry counter");
    assert!(retried >= 1.0, "expected retries against the dead backend:\n{metrics}");

    coord.stop();
    live.stop();
}

#[test]
fn backend_shutdown_mid_job_moves_work_to_survivor() {
    let b1 = start(backend_config());
    let b2 = start(backend_config());
    let coord = start(coordinator_config(&[&b1, &b2]));

    // Enough trials that the job outlives the backend we take down.
    let spec = CanonicalSpec { name: "mid".to_string(), trials: 64, ..CanonicalSpec::default() };
    let v = submit(coord.addr, r#"{"name":"mid","trials":64}"#);
    let id = v.get("id").and_then(Json::as_u64).expect("id");

    // Take a backend down while (most likely) mid-shard. Its in-flight
    // shard reports backend-side cancellation, which the coordinator must
    // treat as retryable — never as a legitimate partial result.
    std::thread::sleep(Duration::from_millis(50));
    b2.stop();

    wait_done(coord.addr, id);
    let outcome = fetch_outcome(coord.addr, id);
    assert_bit_identical(&outcome, &spec);

    coord.stop();
    b1.stop();
}

#[test]
fn dead_backend_mid_soak_shards_are_retried_without_double_count() {
    // A backend address that refuses connections: bind an ephemeral port,
    // then drop the listener before anything connects.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let live = start(backend_config());
    let coord = start(ServerConfig {
        workers: 1,
        coordinator: CoordinatorConfig {
            backends: vec![dead_addr, live.addr.to_string()],
            poll_interval: Duration::from_millis(10),
            request_timeout: Duration::from_secs(2),
            ..CoordinatorConfig::default()
        },
        ..ServerConfig::default()
    });

    let (status, head, payload) =
        request(coord.addr, "POST", "/v1/soak", r#"{"seed":5,"cases":12,"robots":8}"#);
    assert_eq!(status, 202, "{head}\n{payload}");
    let v = json::parse(&payload).expect("submit json");
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("soak"));
    let id = v.get("id").and_then(Json::as_u64).expect("id");
    wait_done(coord.addr, id);

    // Exactly the requested case count survives the dead backend's
    // retries: shards moved to the survivor land once each, never twice.
    let (status, _, body) = request(coord.addr, "GET", &format!("/v1/jobs/{id}/result"), "");
    assert_eq!(status, 200);
    let v = json::parse(&body).expect("result json");
    let outcome = apf_serve::SoakOutcome::from_json(v.get("result").expect("result member"))
        .expect("parse soak outcome");
    assert_eq!(outcome.cases, 12, "retries must not drop or double-count cases");
    assert_eq!(outcome.violations, 0, "real classifiers must fuzz clean");
    assert_eq!(outcome.clean, 12);
    assert!(outcome.wall_secs > 0.0);

    // The coordinator's own soak counter agrees (each shard is counted at
    // most once, on acceptance), and the dead backend's connection
    // failures are visible as shard retries.
    let (_, _, metrics) = request(coord.addr, "GET", "/metrics", "");
    let soaked = metrics
        .lines()
        .find_map(|l| l.strip_prefix("apf_soak_cases_total "))
        .and_then(|v| v.parse::<f64>().ok())
        .expect("soak case counter");
    assert!((soaked - 12.0).abs() < f64::EPSILON, "coordinator counted {soaked} cases");
    let retried = metrics
        .lines()
        .find_map(|l| l.strip_prefix("apf_shards_total{event=\"retried\"} "))
        .and_then(|v| v.parse::<f64>().ok())
        .expect("retry counter");
    assert!(retried >= 1.0, "expected retries against the dead backend:\n{metrics}");

    coord.stop();
    live.stop();
}

#[test]
fn repeated_spec_is_answered_from_cache_and_reverified() {
    let ts = start(ServerConfig {
        workers: 1,
        cache: CacheConfig { dir: None, max_entries: 16, verify_every: 1 },
        ..ServerConfig::default()
    });

    let body = r#"{"name":"cache","trials":2,"seed":3}"#;
    let v = submit(ts.addr, body);
    let id = v.get("id").and_then(Json::as_u64).expect("id");
    assert_ne!(v.get("cached"), Some(&Json::Bool(true)), "first run cannot be cached");
    wait_done(ts.addr, id);
    let first = fetch_outcome(ts.addr, id);

    // The repeat is terminal on arrival, marked cached, and bit-identical.
    let v = submit(ts.addr, body);
    assert_eq!(v.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(v.get("cached"), Some(&Json::Bool(true)));
    let id2 = v.get("id").and_then(Json::as_u64).expect("id");
    let second = fetch_outcome(ts.addr, id2);
    assert!(second.cached);
    assert_eq!(second.digests, first.digests);
    assert_eq!(second.success.to_bits(), first.success.to_bits());
    assert_eq!(second.mean_cycles.to_bits(), first.mean_cycles.to_bits());

    // verify_every=1 enqueued an integrity replay (job id2+1); it must
    // complete and agree with the cached bytes.
    wait_done(ts.addr, id2 + 1);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, _, metrics) = request(ts.addr, "GET", "/metrics", "");
        assert!(
            !metrics.contains("apf_cache_total{event=\"verify_fail\"} 1"),
            "cache verification failed:\n{metrics}"
        );
        if metrics.contains("apf_cache_total{event=\"verify_ok\"} 1") {
            assert!(metrics.contains("apf_cache_total{event=\"hit\"} 1"), "{metrics}");
            assert!(metrics.contains("apf_cache_total{event=\"store\"}"), "{metrics}");
            break;
        }
        assert!(Instant::now() < deadline, "verify_ok never appeared:\n{metrics}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Shard/detail submissions bypass the cache even when the canonical
    // spec matches.
    let v = submit(ts.addr, r#"{"name":"cache","trials":2,"seed":3,"range":[0,1]}"#);
    assert_eq!(v.get("status").and_then(Json::as_str), Some("queued"));

    ts.stop();
}

#[test]
fn cache_persists_across_server_restarts() {
    let dir = std::env::temp_dir().join(format!("apf-serve-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = CacheConfig { dir: Some(dir.clone()), max_entries: 16, verify_every: 0 };
    let body = r#"{"name":"persist","trials":2,"seed":9}"#;

    let first = {
        let ts = start(ServerConfig { cache: cache.clone(), ..ServerConfig::default() });
        let v = submit(ts.addr, body);
        let id = v.get("id").and_then(Json::as_u64).expect("id");
        wait_done(ts.addr, id);
        let outcome = fetch_outcome(ts.addr, id);
        ts.stop();
        outcome
    };

    // A fresh process over the same directory answers from disk.
    let ts = start(ServerConfig { cache, ..ServerConfig::default() });
    let v = submit(ts.addr, body);
    assert_eq!(v.get("cached"), Some(&Json::Bool(true)), "{v:?}");
    let id = v.get("id").and_then(Json::as_u64).expect("id");
    let outcome = fetch_outcome(ts.addr, id);
    assert_eq!(outcome.digests, first.digests);
    assert_eq!(outcome.mean_cycles.to_bits(), first.mean_cycles.to_bits());
    ts.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The cache-hit-equals-engine-run property: storing a run's outcome
    /// through the cache's disk format and reading it back yields exactly
    /// what a fresh engine run of the same spec produces — digests and
    /// statistics bit for bit, for arbitrary specs.
    #[test]
    fn cache_hit_equals_fresh_engine_run(
        seed in any::<u64>(),
        trials in 1u64..4,
        generator_sym in any::<bool>(),
    ) {
        let spec = CanonicalSpec {
            name: "prop".to_string(),
            seed,
            trials,
            generator: if generator_sym {
                apf_bench::spec::Generator::Symmetric
            } else {
                apf_bench::spec::Generator::Asymmetric
            },
            budget: 500_000,
            ..CanonicalSpec::default()
        };
        prop_assert!(spec.validate().is_ok());

        let report = Engine::new().trace_digests(true).run(&spec.to_campaign());
        let agg = report.aggregate();
        let outcome = JobOutcome {
            trials: report.trials,
            requested: report.requested,
            formed: report.stats.formed(),
            success: agg.success,
            mean_cycles: agg.mean_cycles,
            median_cycles: agg.median_cycles,
            p95_cycles: agg.p95_cycles,
            mean_bits: agg.mean_bits,
            bits_per_cycle: agg.bits_per_cycle,
            digests: report.digests.clone().expect("digests"),
            wall_secs: report.wall.as_secs_f64(),
            detail: None,
            cached: false,
        };

        let dir = std::env::temp_dir()
            .join(format!("apf-cache-prop-{}-{seed:016x}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CacheConfig { dir: Some(dir.clone()), max_entries: 4, verify_every: 0 };
        ResultCache::open(cfg.clone()).expect("open").store(&spec, &outcome);

        // Reopen (forcing the disk round trip) and compare the hit against
        // a second, independent engine run.
        let cache = ResultCache::open(cfg).expect("reopen");
        let hit = cache.lookup(spec.digest()).expect("hit");
        let fresh = Engine::new().jobs(2).trace_digests(true).run(&spec.to_campaign());
        let fresh_agg = fresh.aggregate();
        prop_assert_eq!(&hit.outcome.digests, fresh.digests.as_ref().expect("digests"));
        prop_assert_eq!(hit.outcome.success.to_bits(), fresh_agg.success.to_bits());
        prop_assert_eq!(hit.outcome.mean_cycles.to_bits(), fresh_agg.mean_cycles.to_bits());
        prop_assert_eq!(hit.outcome.median_cycles.to_bits(), fresh_agg.median_cycles.to_bits());
        prop_assert_eq!(hit.outcome.p95_cycles.to_bits(), fresh_agg.p95_cycles.to_bits());
        prop_assert_eq!(hit.outcome.mean_bits.to_bits(), fresh_agg.mean_bits.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
