//! Property tests for the wire formats the content-addressed cache and the
//! coordinator's bitwise merge depend on.
//!
//! Two load-bearing claims are checked here under adversarial inputs:
//!
//! 1. **Content-address stability** — `CanonicalSpec::canonical_json` is a
//!    pure function of the spec's *values*: submitting the same values in
//!    any field order (and with arbitrary inter-token whitespace) parses to
//!    a spec whose canonical form is byte-identical, so the FNV digest the
//!    result cache keys on cannot be perturbed by serialization choices.
//! 2. **Bitwise float round-trips** — every `f64` that crosses the wire
//!    (`JobOutcome` aggregates, per-trial `distance`, `SoakOutcome`
//!    wall-clock) survives render → parse with `to_bits` equality, even for
//!    adversarial values: `-0.0`, subnormals, and values needing the full
//!    17 significant digits. The coordinator's shard merge and the cache
//!    verifier both compare these bit for bit.

use apf_bench::spec::{scheduler_from_label, CanonicalSpec, Generator};
use apf_bench::RunResult;
use apf_serve::json::{self, Json};
use apf_serve::{JobOutcome, JobSpec, SoakOutcome};
use apf_trace::PhaseKind;
use proptest::prelude::*;

/// Finite `f64`s biased toward the adversarial corners: signed zeros,
/// subnormals (including the smallest positive value `5e-324`), values
/// whose shortest decimal form needs the full 17 significant digits, and
/// uniformly random bit patterns (non-finite patterns fall back to a fixed
/// 17-digit stress value rather than rejecting the whole draw).
fn adversarial_f64() -> impl Strategy<Value = f64> {
    (0u8..8, any::<u64>()).prop_map(|(which, bits)| match which {
        0 => 0.0,
        1 => -0.0,
        // Subnormal: zero exponent field, random non-zero mantissa.
        2 => f64::from_bits((bits % ((1 << 52) - 1)) + 1),
        3 => -f64::from_bits((bits % ((1 << 52) - 1)) + 1),
        4 => 5e-324,
        // 0.1 + 0.2: the classic shortest-repr 17-digit stress value.
        5 => 0.300_000_000_000_000_04,
        6 => f64::MAX,
        _ => {
            let x = f64::from_bits(bits);
            if x.is_finite() {
                x
            } else {
                2.225_073_858_507_201e-308
            }
        }
    })
}

/// A spec whose values satisfy `CanonicalSpec::validate` (n ≥ 7, rho ≥ 2
/// dividing n for the symmetric generator), kept small so the validation
/// pass that builds every trial's world stays cheap.
fn valid_spec() -> impl Strategy<Value = CanonicalSpec> {
    const CHARSET: &[u8] = b"abcXYZ059 _-\"\\/";
    // rho < n throughout: one orbit of n equally spaced points (rho = n)
    // is a regular n-gon, which always has an axis of symmetry, and the
    // symmetric generator rejects axially symmetric configurations.
    const SHAPES: [(usize, usize); 4] = [(8, 2), (8, 4), (9, 3), (12, 4)];
    const SCHEDULERS: [&str; 4] = ["fsync", "ssync", "async", "round_robin"];
    (
        proptest::collection::vec(0usize..CHARSET.len(), 1..=24),
        any::<u64>(),
        1u64..=3,
        (0usize..SHAPES.len(), 0usize..SCHEDULERS.len(), 0u8..2),
        1u64..=2_000_000,
    )
        .prop_map(|(name_idx, seed, trials, (shape, sched, gen), budget)| {
            let (n, rho) = SHAPES[shape];
            CanonicalSpec {
                name: name_idx.iter().map(|&i| CHARSET[i] as char).collect(),
                seed,
                trials,
                n,
                rho,
                generator: if gen == 0 { Generator::Symmetric } else { Generator::Asymmetric },
                scheduler: scheduler_from_label(SCHEDULERS[sched])
                    .expect("label table matches the parser"),
                budget,
            }
        })
}

/// A permutation of `0..n` derived from `seed` (Fisher–Yates with a
/// splitmix-style step; the vendored proptest has no `prop_shuffle`).
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03);
        let j = (seed >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

/// Renders `spec` as a submission body with the given field order and
/// per-boundary whitespace — the degrees of freedom a client has that must
/// NOT affect the canonical form.
fn render_submission(spec: &CanonicalSpec, order: &[usize], pad: &str) -> String {
    let scheduler = apf_bench::spec::scheduler_label(spec.scheduler);
    let mut name = String::new();
    apf_trace::escape_json_str(&spec.name, &mut name);
    let fields: [(&str, String); 8] = [
        ("name", format!("\"{name}\"")),
        ("seed", spec.seed.to_string()),
        ("trials", spec.trials.to_string()),
        ("n", spec.n.to_string()),
        ("rho", spec.rho.to_string()),
        ("generator", format!("\"{}\"", spec.generator.label())),
        ("scheduler", format!("\"{scheduler}\"")),
        ("budget", spec.budget.to_string()),
    ];
    let mut out = String::from("{");
    for (k, &i) in order.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let (key, value) = &fields[i];
        out.push_str(pad);
        out.push('"');
        out.push_str(key);
        out.push_str("\":");
        out.push_str(pad);
        out.push_str(value);
    }
    out.push_str(pad);
    out.push('}');
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn float_fields_round_trip_bitwise(x in adversarial_f64()) {
        let body = Json::obj([("x", Json::f64(x))]).render();
        let v = json::parse(&body).expect("rendered JSON parses");
        let back = v.get("x").and_then(Json::as_f64).expect("x is a number");
        prop_assert_eq!(
            back.to_bits(),
            x.to_bits(),
            "float {} re-read as {} ({})",
            x,
            back,
            body
        );
    }

    #[test]
    fn job_outcome_round_trips_bitwise(
        aggregates in (
            adversarial_f64(),
            adversarial_f64(),
            adversarial_f64(),
            adversarial_f64(),
            adversarial_f64(),
            adversarial_f64(),
        ),
        distance in adversarial_f64(),
        wall in adversarial_f64(),
        digests in proptest::collection::vec(any::<u64>(), 0..4),
        cached in 0u8..2,
    ) {
        let (success, mean_cycles, median_cycles, p95_cycles, mean_bits, bits_per_cycle) =
            aggregates;
        let outcome = JobOutcome {
            trials: 3,
            requested: 4,
            formed: 2,
            success,
            mean_cycles,
            median_cycles,
            p95_cycles,
            mean_bits,
            bits_per_cycle,
            digests,
            wall_secs: wall,
            detail: Some(vec![RunResult {
                formed: true,
                steps: 11,
                cycles: 7,
                bits: 3,
                distance,
                phase_cycles: [1; PhaseKind::COUNT],
                phase_bits: [0; PhaseKind::COUNT],
            }]),
            cached: cached == 1,
        };
        let v = json::parse(&outcome.to_json().render()).expect("rendered JSON parses");
        let back = JobOutcome::from_json(&v).expect("outcome parses back");
        prop_assert_eq!(back.success.to_bits(), success.to_bits());
        prop_assert_eq!(back.mean_cycles.to_bits(), mean_cycles.to_bits());
        prop_assert_eq!(back.median_cycles.to_bits(), median_cycles.to_bits());
        prop_assert_eq!(back.p95_cycles.to_bits(), p95_cycles.to_bits());
        prop_assert_eq!(back.mean_bits.to_bits(), mean_bits.to_bits());
        prop_assert_eq!(back.bits_per_cycle.to_bits(), bits_per_cycle.to_bits());
        prop_assert_eq!(back.wall_secs.to_bits(), wall.to_bits());
        let detail = back.detail.as_ref().expect("detail survives");
        prop_assert_eq!(detail[0].distance.to_bits(), distance.to_bits());
        prop_assert_eq!(&back.digests, &outcome.digests);
        prop_assert_eq!((back.trials, back.requested, back.formed), (3, 4, 2));
        prop_assert_eq!(back.cached, cached == 1);
    }

    #[test]
    fn soak_outcome_wall_clock_round_trips_bitwise(wall in adversarial_f64()) {
        let outcome = SoakOutcome {
            cases: 9,
            clean: 8,
            violations: 1,
            shrink_steps: 40,
            wall_secs: wall,
        };
        let v = json::parse(&outcome.to_json().render()).expect("rendered JSON parses");
        let back = SoakOutcome::from_json(&v).expect("outcome parses back");
        prop_assert_eq!(back.wall_secs.to_bits(), wall.to_bits());
        prop_assert_eq!(
            (back.cases, back.clean, back.violations, back.shrink_steps),
            (9, 8, 1, 40)
        );
    }

    #[test]
    fn canonical_form_ignores_field_order_and_whitespace(
        spec in valid_spec(),
        order_seed in any::<u64>(),
        pad_pick in 0usize..3,
    ) {
        let order = permutation(8, order_seed);
        let pad = ["", " ", "\n\t "][pad_pick];
        let body = render_submission(&spec, &order, pad);
        let parsed = JobSpec::from_json_bytes(body.as_bytes())
            .unwrap_or_else(|e| panic!("valid spec rejected: {e}\n{body}"));
        prop_assert_eq!(parsed.canonical.canonical_json(), spec.canonical_json());
        prop_assert_eq!(parsed.canonical.digest(), spec.digest());
        prop_assert!(parsed.cacheable());

        // Idempotence: the canonical form re-parses to itself byte for byte.
        let again = JobSpec::from_json_bytes(spec.canonical_json().as_bytes())
            .expect("canonical form parses");
        prop_assert_eq!(again.canonical.canonical_json(), spec.canonical_json());
    }
}
