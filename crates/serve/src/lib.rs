//! `apf-serve` — a long-running campaign service over the deterministic
//! trial engine.
//!
//! The experiment harness runs campaigns one process at a time; this crate
//! turns the same `RunSpec`/`Campaign`/`Engine` machinery into a daemon
//! with a queue, so large randomized validation campaigns (the workload the
//! paper's claims are checked by) can be submitted, watched, cancelled, and
//! scraped continuously:
//!
//! * **Job API** — `POST /jobs` submits a campaign spec (JSON),
//!   `GET /jobs/{id}` returns status plus live streaming counters,
//!   `GET /jobs/{id}/result` the final report (per-trial FNV trace digests
//!   included), `DELETE /jobs/{id}` cancels cooperatively.
//! * **Determinism preserved** — a job's campaign is constructed exactly
//!   like a CLI run of the same spec, so server-side results and digests
//!   are bit-identical to `apf-cli job-digest` output. The service adds
//!   scheduling, never randomness.
//! * **Backpressure** — the queue is bounded; a full queue answers 429 with
//!   `Retry-After` instead of buffering unboundedly.
//! * **Metrics** — `GET /metrics` renders Prometheus text format 0.0.4:
//!   queue/worker gauges, job/HTTP counters, trial/cycle/random-bit totals,
//!   per-phase breakdowns, worker utilization, longest-trial gauge.
//! * **Graceful lifecycle** — SIGTERM/SIGINT (or a [`ShutdownHandle`])
//!   stops accepting, fires every job's [`apf_bench::engine::CancelToken`],
//!   lets in-flight trials finish, records partial (well-formed, prefix)
//!   results, and returns from [`Server::run`] so the process exits 0.
//!
//! The HTTP/1.1 transport and JSON codec are hand-rolled std-only subsets —
//! this workspace is offline and vendors no server or serde dependencies.
//!
//! The crate contains the workspace's only `unsafe` block (the `signal(2)`
//! registration in [`signal`]); everything else inherits the workspace-wide
//! `unsafe_code = "deny"`.

pub mod http;
pub mod job;
pub mod json;
pub mod metrics;
pub mod server;
pub mod signal;

pub use job::{Generator, Job, JobOutcome, JobSpec, JobStatus};
pub use json::Json;
pub use metrics::{LiveView, Metrics};
pub use server::{Server, ServerConfig, ShutdownHandle};
