//! `apf-serve` — a long-running campaign service over the deterministic
//! trial engine.
//!
//! The experiment harness runs campaigns one process at a time; this crate
//! turns the same `RunSpec`/`Campaign`/`Engine` machinery into a daemon
//! with a queue, so large randomized validation campaigns (the workload the
//! paper's claims are checked by) can be submitted, watched, cancelled, and
//! scraped continuously:
//!
//! * **Versioned job API** — `POST /v1/jobs` submits a campaign spec
//!   (JSON), `GET /v1/jobs/{id}` returns status plus live streaming
//!   counters, `GET /v1/jobs/{id}/result` the final report (per-trial FNV
//!   trace digests included), `DELETE /v1/jobs/{id}` cancels cooperatively,
//!   and `GET|POST /v1/spec-digest` canonicalizes a spec without running
//!   it. The legacy unversioned `/jobs*` paths answer 308 redirects.
//! * **Determinism preserved** — a job's campaign is constructed through
//!   the shared [`apf_bench::spec::CanonicalSpec`] path, exactly like a CLI
//!   run of the same spec, so server-side results and digests are
//!   bit-identical to `apf-cli job-digest` output. The service adds
//!   scheduling, never randomness.
//! * **Coordinator mode** — with backends configured, jobs are split into
//!   trial-range shards, fanned out to backend `apf-serve` processes, and
//!   merged **bit-identically** to a single-process run ([`coordinator`]).
//! * **Content-addressed result cache** — a repeated cacheable spec is
//!   answered from the cache keyed by its canonical digest, with every Nth
//!   hit re-verified by an engine replay ([`cache`]).
//! * **Backpressure** — the queue is bounded and submissions are quota'd
//!   per client; rejection answers 429 with `Retry-After` instead of
//!   buffering unboundedly.
//! * **Soak campaigns** — `POST /v1/soak` (or `serve --soak SECS`, which
//!   self-submits a timed run at startup) executes geometry-fuzz sweeps
//!   from `apf-conformance` as background jobs ([`soak`]): case-bounded or
//!   timed, cancellable, SIGTERM-drainable, with `apf_soak_*` counters and
//!   case-range sharding across coordinator backends (deterministic per
//!   `(seed, index)`, so retries never double-count).
//! * **Metrics** — `GET /metrics` renders Prometheus text format 0.0.4:
//!   queue/worker gauges, job/HTTP/cache/shard counters, trial/cycle/
//!   random-bit totals, per-phase breakdowns, worker utilization.
//! * **Graceful lifecycle** — SIGTERM/SIGINT (or a [`ShutdownHandle`])
//!   stops accepting, fires every job's [`apf_bench::engine::CancelToken`],
//!   lets in-flight trials finish, records partial (well-formed, prefix)
//!   results, and returns from [`Server::run`] so the process exits 0.
//!
//! The HTTP/1.1 transport (server and client sides) and JSON codec are
//! hand-rolled std-only subsets — this workspace is offline and vendors no
//! server or serde dependencies.
//!
//! The crate contains the workspace's only `unsafe` block (the `signal(2)`
//! registration in [`signal`]); everything else inherits the workspace-wide
//! `unsafe_code = "deny"`.

pub mod cache;
pub mod client;
pub mod coordinator;
pub mod http;
pub mod job;
pub mod json;
pub mod metrics;
pub mod server;
pub mod shard;
pub mod signal;
pub mod soak;

pub use cache::{CacheConfig, ClientQuotas, ResultCache};
pub use coordinator::CoordinatorConfig;
pub use job::{Job, JobOutcome, JobSpec, JobStatus};
pub use json::Json;
pub use metrics::{LiveView, Metrics};
pub use server::{Server, ServerConfig, ShutdownHandle};
pub use soak::{SoakOutcome, SoakSpec};
