//! A minimal JSON value: parser and deterministic renderer.
//!
//! The workspace is offline (no serde); the service's request and response
//! bodies are small and flat, so both directions are hand-rolled like the
//! trace codec in `apf-trace`. Two properties matter here and shaped the
//! design:
//!
//! * **Numbers keep their source token.** Seeds and trace digests are full
//!   `u64`s; routing them through `f64` would silently round anything above
//!   2^53. [`Json::Num`] stores the validated token text and converts on
//!   access, so `18446744073709551615` round-trips exactly.
//! * **Objects render in key order.** [`Json::Obj`] is a `BTreeMap`, so a
//!   response body is a deterministic function of its contents — the same
//!   discipline the trace JSONL codec follows.

use std::collections::BTreeMap;

/// Maximum nesting depth the parser accepts (the API uses flat objects; the
/// cap only bounds hostile input).
const MAX_DEPTH: u32 = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its (validated) source token.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, ordered by key.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// A number value from a `u64` (exact).
    pub fn u64(x: u64) -> Json {
        Json::Num(x.to_string())
    }

    /// A number value from a `usize` (exact).
    pub fn usize(x: usize) -> Json {
        Json::Num(x.to_string())
    }

    /// A number value from a finite `f64` (`null` otherwise, like the trace
    /// codec's float convention).
    pub fn f64(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(format!("{x}"))
        } else {
            Json::Null
        }
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from key/value pairs (keys sort automatically).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a `u64` (exact; rejects floats and out-of-range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (deterministic: object keys are
    /// already sorted).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64);
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(t) => out.push_str(t),
            Json::Str(s) => {
                out.push('"');
                apf_trace::escape_json_str(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    apf_trace::escape_json_str(k, out);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Why parsing failed, with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable explanation.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input, nesting beyond [`MAX_DEPTH`],
/// or invalid escapes.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { message: message.into(), at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The scanned run is valid UTF-8 because the input is &str and
            // we only stopped on ASCII boundaries.
            s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| {
                self.err("invalid UTF-8 in string") // unreachable; satisfies the type
            })?);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut s)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, s: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => s.push('"'),
            b'\\' => s.push('\\'),
            b'/' => s.push('/'),
            b'b' => s.push('\u{08}'),
            b'f' => s.push('\u{0C}'),
            b'n' => s.push('\n'),
            b'r' => s.push('\r'),
            b't' => s.push('\t'),
            b'u' => {
                let hex = self
                    .bytes
                    .get(self.pos..self.pos + 4)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .ok_or_else(|| self.err("truncated \\u escape"))?;
                let code =
                    u32::from_str_radix(hex, 16).map_err(|_| self.err("non-hex \\u escape"))?;
                self.pos += 4;
                // Surrogates are rejected rather than paired: the API never
                // emits them and accepting lone halves would make rendering
                // produce invalid UTF-8-adjacent output.
                let ch = char::from_u32(code)
                    .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                s.push(ch);
            }
            other => return Err(self.err(format!("unknown escape \\{}", other as char))),
        }
        Ok(())
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits0 = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits0 {
            return Err(self.err("number has no digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac0 = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac0 {
                return Err(self.err("number has an empty fraction"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp0 = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp0 {
                return Err(self.err("number has an empty exponent"));
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        Ok(Json::Num(token.to_string()))
    }
}

/// Convenience: a `u64` rendered exactly, for digest lists.
pub fn u64_array(xs: &[u64]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::u64(x)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_job_object() {
        let v = parse(r#"{"experiment":"e1","trials":8,"seed":1,"n":8,"rho":4}"#).unwrap();
        assert_eq!(v.get("experiment").and_then(Json::as_str), Some("e1"));
        assert_eq!(v.get("trials").and_then(Json::as_u64), Some(8));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn u64_round_trips_exactly() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.render(), "18446744073709551615");
    }

    #[test]
    fn renders_sorted_and_escaped() {
        let v = Json::obj([("b", Json::u64(2)), ("a", Json::str("x\"\n"))]);
        assert_eq!(v.render(), "{\"a\":\"x\\\"\\n\",\"b\":2}");
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "01e",
            "1.",
            "1e",
            "\"\\q\"",
            "\"\\ud800\"",
            "nul",
            "{\"a\":1} x",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn depth_cap_rejects_hostile_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(8) + "1" + &"]".repeat(8);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn parse_render_round_trip_is_stable() {
        let src = r#"{"arr":[1,2.5,null,true],"name":"e1","nested":{"k":"v"}}"#;
        let v = parse(src).unwrap();
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
        assert_eq!(parse(&rendered).unwrap().render(), rendered);
    }
}
