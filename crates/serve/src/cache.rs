//! Content-addressed result cache and per-client submission quotas.
//!
//! # Content addressing
//!
//! The cache key is [`CanonicalSpec::digest`] — FNV-1a 64 over the spec's
//! canonical JSON. Engine determinism turns that key into a soundness
//! argument: equal digests ⇒ equal canonical specs ⇒ bit-identical
//! campaign results, so answering a repeated spec from the cache returns
//! exactly the bytes a fresh run would have produced (modulo `wall_secs`,
//! which records the original run). Only whole-campaign, no-detail
//! submissions are cached (`JobSpec::cacheable`).
//!
//! # Trust, but re-verify
//!
//! Disk bytes rot and code changes; a cache serving stale results would
//! silently violate the reproducibility story. Every `verify_every`-th hit
//! therefore also enqueues a **replay**: a real engine run of the same
//! spec whose digests are compared against the cached outcome. A mismatch
//! evicts the entry and increments `apf_cache_total{event="verify_fail"}`
//! (a page-worthy signal — it means cached bytes and the engine disagree).
//!
//! # Quotas
//!
//! Submissions are budgeted per client (the `x-client-id` header, falling
//! back to the peer IP) over a fixed one-minute window — enough to keep a
//! single classroom script from monopolizing the queue while staying
//! entirely in-memory.

use crate::job::JobOutcome;
use crate::json::{self, Json};
use apf_bench::spec::CanonicalSpec;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Cache shape; every knob has a CLI flag.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Directory for persisted entries (`None` = in-memory only).
    pub dir: Option<PathBuf>,
    /// Maximum retained entries; the least-recently-used entry is evicted
    /// (and its file removed) beyond this.
    pub max_entries: usize,
    /// Re-verify every Nth cache hit by replaying the spec against the
    /// engine (0 = never).
    pub verify_every: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { dir: None, max_entries: 256, verify_every: 16 }
    }
}

#[derive(Debug)]
struct Entry {
    outcome: JobOutcome,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: BTreeMap<u64, Entry>,
    seq: u64,
    hits: u64,
}

/// The content-addressed result cache.
#[derive(Debug)]
pub struct ResultCache {
    cfg: CacheConfig,
    inner: Mutex<Inner>,
}

/// What a cache lookup produced.
#[derive(Debug)]
pub struct CacheHit {
    /// The cached outcome (with `cached: true` set).
    pub outcome: JobOutcome,
    /// Whether this hit was selected for integrity re-verification (the
    /// caller enqueues a replay job).
    pub verify: bool,
}

impl ResultCache {
    /// Opens the cache, creating the directory and loading persisted
    /// entries (oldest filenames first, then LRU-trimmed to `max_entries`).
    /// Unparsable files are skipped (and deleted), never fatal: a corrupt
    /// cache must degrade to a miss, not take the service down.
    ///
    /// # Errors
    ///
    /// Propagates directory creation/listing errors.
    pub fn open(cfg: CacheConfig) -> std::io::Result<ResultCache> {
        let cache = ResultCache { cfg, inner: Mutex::new(Inner::default()) };
        if let Some(dir) = &cache.cfg.dir {
            std::fs::create_dir_all(dir)?;
            let mut names: Vec<PathBuf> = std::fs::read_dir(dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect();
            names.sort();
            let mut inner = cache.lock();
            for path in names {
                match Self::load_entry(&path) {
                    Some((digest, outcome)) => {
                        inner.seq += 1;
                        let last_used = inner.seq;
                        inner.entries.insert(digest, Entry { outcome, last_used });
                    }
                    None => {
                        let _ = std::fs::remove_file(&path);
                    }
                }
            }
            drop(inner);
            cache.trim();
        }
        Ok(cache)
    }

    fn load_entry(path: &PathBuf) -> Option<(u64, JobOutcome)> {
        let digest = u64::from_str_radix(path.file_stem()?.to_str()?, 16).ok()?;
        let text = std::fs::read_to_string(path).ok()?;
        let v = json::parse(&text).ok()?;
        let outcome = JobOutcome::from_json(v.get("result")?).ok()?;
        Some((digest, outcome))
    }

    /// Looks up a spec's digest; a hit bumps recency, marks the outcome
    /// `cached`, and flags every `verify_every`-th hit for replay.
    pub fn lookup(&self, digest: u64) -> Option<CacheHit> {
        let mut inner = self.lock();
        inner.seq += 1;
        let seq = inner.seq;
        let verify_every = self.cfg.verify_every;
        let entry = inner.entries.get_mut(&digest)?;
        entry.last_used = seq;
        let mut outcome = entry.outcome.clone();
        outcome.cached = true;
        inner.hits += 1;
        let verify = verify_every > 0 && inner.hits.is_multiple_of(verify_every);
        Some(CacheHit { outcome, verify })
    }

    /// Inserts (or refreshes) an entry and persists it; evicts beyond the
    /// capacity. The stored outcome keeps `cached: false` — the flag
    /// describes a *response*, not the entry.
    pub fn store(&self, spec: &CanonicalSpec, outcome: &JobOutcome) {
        let digest = spec.digest();
        let mut stored = outcome.clone();
        stored.cached = false;
        stored.detail = None;
        if let Some(dir) = &self.cfg.dir {
            let body = Json::obj([
                ("canonical", json::parse(&spec.canonical_json()).unwrap_or(Json::Null)),
                ("digest", Json::str(format!("{digest:016x}"))),
                ("result", stored.to_json()),
            ])
            .render();
            // Persistence is best-effort: a full disk degrades to an
            // in-memory entry, not an error path the submitter sees.
            let _ = std::fs::write(dir.join(format!("{digest:016x}.json")), body);
        }
        let mut inner = self.lock();
        inner.seq += 1;
        let last_used = inner.seq;
        inner.entries.insert(digest, Entry { outcome: stored, last_used });
        drop(inner);
        self.trim();
    }

    /// Reads an entry without touching recency or the hit counter — the
    /// verify path's comparison read, which must not itself count as a hit
    /// (that would perturb the verify cadence it is part of).
    pub fn peek(&self, digest: u64) -> Option<JobOutcome> {
        self.lock().entries.get(&digest).map(|e| e.outcome.clone())
    }

    /// Removes an entry (verification mismatch) and its file.
    pub fn evict(&self, digest: u64) {
        self.lock().entries.remove(&digest);
        if let Some(dir) = &self.cfg.dir {
            let _ = std::fs::remove_file(dir.join(format!("{digest:016x}.json")));
        }
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn trim(&self) {
        loop {
            let evicted = {
                let mut inner = self.lock();
                if inner.entries.len() <= self.cfg.max_entries.max(1) {
                    break;
                }
                let oldest = inner
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(&digest, _)| digest);
                match oldest {
                    Some(digest) => {
                        inner.entries.remove(&digest);
                        digest
                    }
                    None => break,
                }
            };
            if let Some(dir) = &self.cfg.dir {
                let _ = std::fs::remove_file(dir.join(format!("{evicted:016x}.json")));
            }
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // apf-lint: allow(panic-policy, panic-reachability) — no code path panics while holding this lock, so poisoning is impossible; if it happens anyway the cache is corrupt and the worker must die
        self.inner.lock().expect("cache lock poisoned")
    }
}

/// Fixed-window per-client submission quotas (0 = unlimited).
#[derive(Debug)]
pub struct ClientQuotas {
    per_minute: u64,
    windows: Mutex<BTreeMap<String, (Instant, u64)>>,
}

impl ClientQuotas {
    /// A quota of `per_minute` submissions per client per minute.
    pub fn new(per_minute: u64) -> ClientQuotas {
        ClientQuotas { per_minute, windows: Mutex::new(BTreeMap::new()) }
    }

    /// Records a submission attempt by `client`; `false` means the quota is
    /// exhausted (the caller answers 429).
    pub fn admit(&self, client: &str) -> bool {
        if self.per_minute == 0 {
            return true;
        }
        let now = Instant::now();
        // apf-lint: allow(panic-policy) — no code path panics while holding this lock
        let mut windows = self.windows.lock().expect("quota lock poisoned");
        // Bound memory under client-id churn: drop expired windows once the
        // table gets large.
        if windows.len() > 4096 {
            windows.retain(|_, (start, _)| now.duration_since(*start).as_secs() < 60);
        }
        let slot = windows.entry(client.to_string()).or_insert((now, 0));
        if now.duration_since(slot.0).as_secs() >= 60 {
            *slot = (now, 0);
        }
        slot.1 += 1;
        slot.1 <= self.per_minute
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(trials: usize) -> JobOutcome {
        JobOutcome {
            trials,
            requested: trials,
            formed: trials as u64,
            success: 1.0,
            mean_cycles: 10.5,
            median_cycles: 10.0,
            p95_cycles: 12.0,
            mean_bits: 3.0,
            bits_per_cycle: 0.2857142857142857,
            digests: vec![1, 2, 3],
            wall_secs: 0.1,
            detail: None,
            cached: false,
        }
    }

    fn spec(seed: u64) -> CanonicalSpec {
        CanonicalSpec { seed, ..CanonicalSpec::default() }
    }

    #[test]
    fn hit_miss_and_verify_cadence() {
        let cache =
            ResultCache::open(CacheConfig { dir: None, max_entries: 8, verify_every: 2 }).unwrap();
        let s = spec(1);
        assert!(cache.lookup(s.digest()).is_none());
        cache.store(&s, &outcome(8));
        let first = cache.lookup(s.digest()).unwrap();
        assert!(first.outcome.cached);
        assert_eq!(first.outcome.digests, vec![1, 2, 3]);
        assert!(!first.verify, "first hit should not verify");
        let second = cache.lookup(s.digest()).unwrap();
        assert!(second.verify, "every 2nd hit must verify");
        assert!(!cache.lookup(s.digest()).unwrap().verify);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache =
            ResultCache::open(CacheConfig { dir: None, max_entries: 2, verify_every: 0 }).unwrap();
        let (a, b, c) = (spec(1), spec(2), spec(3));
        cache.store(&a, &outcome(1));
        cache.store(&b, &outcome(2));
        assert!(cache.lookup(a.digest()).is_some()); // a is now fresher than b
        cache.store(&c, &outcome(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(b.digest()).is_none(), "b was LRU and must be gone");
        assert!(cache.lookup(a.digest()).is_some());
        assert!(cache.lookup(c.digest()).is_some());
    }

    #[test]
    fn disk_round_trip_and_corrupt_file_tolerance() {
        let dir = std::env::temp_dir().join(format!("apf-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CacheConfig { dir: Some(dir.clone()), max_entries: 8, verify_every: 0 };
        let s = spec(7);
        {
            let cache = ResultCache::open(cfg.clone()).unwrap();
            cache.store(&s, &outcome(4));
        }
        // Corruption next to a good entry must not poison the reload.
        std::fs::write(dir.join("zzzz.json"), b"not json").unwrap();
        {
            let cache = ResultCache::open(cfg.clone()).unwrap();
            assert_eq!(cache.len(), 1);
            let hit = cache.lookup(s.digest()).unwrap();
            assert_eq!(hit.outcome.trials, 4);
            assert_eq!(hit.outcome.digests, vec![1, 2, 3]);
            // The corrupt file was cleaned up.
            assert!(!dir.join("zzzz.json").exists());
            cache.evict(s.digest());
            assert!(cache.is_empty());
            assert!(!dir.join(format!("{:016x}.json", s.digest())).exists());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quotas_admit_within_budget_and_reject_beyond() {
        let q = ClientQuotas::new(2);
        assert!(q.admit("alice"));
        assert!(q.admit("alice"));
        assert!(!q.admit("alice"), "third submission in the window must be rejected");
        assert!(q.admit("bob"), "quotas are per client");
        let unlimited = ClientQuotas::new(0);
        for _ in 0..100 {
            assert!(unlimited.admit("alice"));
        }
    }
}
