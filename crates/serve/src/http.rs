//! Minimal HTTP/1.1 request parsing and response rendering.
//!
//! The service speaks a deliberately small subset: one request per
//! connection (`Connection: close` on every response), bounded header and
//! body sizes, and a read timeout so a stalled client cannot wedge the
//! accept loop. Anything outside the subset maps to a 4xx, never a panic.

use crate::json::Json;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum bytes of request line + headers.
pub const MAX_HEAD: usize = 8 * 1024;
/// Maximum request body size.
pub const MAX_BODY: usize = 1024 * 1024;
/// Per-connection read timeout.
pub const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// The path, query string stripped.
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be served at the transport level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// Malformed request line, header syntax, or missing/invalid framing.
    BadRequest(&'static str),
    /// Head exceeded [`MAX_HEAD`].
    HeadTooLarge,
    /// Declared body exceeded [`MAX_BODY`].
    BodyTooLarge,
    /// Socket error or timeout.
    Io(std::io::ErrorKind),
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// Returns [`RecvError`] on malformed input, oversized head/body, or I/O
/// failure (including the read timeout).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RecvError> {
    stream.set_read_timeout(Some(READ_TIMEOUT)).map_err(|e| RecvError::Io(e.kind()))?;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() > MAX_HEAD {
            return Err(RecvError::HeadTooLarge);
        }
        let mut chunk = [0u8; 1024];
        let got = stream.read(&mut chunk).map_err(|e| RecvError::Io(e.kind()))?;
        if got == 0 {
            return Err(RecvError::BadRequest("connection closed before head"));
        }
        buf.extend_from_slice(&chunk[..got]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RecvError::BadRequest("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(RecvError::BadRequest("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().ok_or(RecvError::BadRequest("missing request target"))?;
    let version = parts.next().ok_or(RecvError::BadRequest("missing HTTP version"))?;
    if method.is_empty() || parts.next().is_some() {
        return Err(RecvError::BadRequest("malformed request line"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::BadRequest("unsupported HTTP version"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return Err(RecvError::BadRequest("request target is not origin-form"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) =
            line.split_once(':').ok_or(RecvError::BadRequest("header without ':'"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => {
            v.parse::<usize>().map_err(|_| RecvError::BadRequest("bad Content-Length"))?
        }
        None => 0,
    };
    if content_length > MAX_BODY {
        return Err(RecvError::BodyTooLarge);
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let want = (content_length - body.len()).min(chunk.len());
        let got = stream.read(&mut chunk[..want]).map_err(|e| RecvError::Io(e.kind()))?;
        if got == 0 {
            return Err(RecvError::BadRequest("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..got]);
    }
    body.truncate(content_length);

    Ok(Request { method, path, headers, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the defaults.
    pub headers: Vec<(&'static str, String)>,
    /// Content type of `body`.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: &Json) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.render().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error body `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, &Json::obj([("error", Json::str(message))]))
    }

    /// Appends a header.
    pub fn header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// The standard reason phrase for the codes this service emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            202 => "Accepted",
            308 => "Permanent Redirect",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "",
        }
    }

    /// Serializes the response (always `Connection: close`).
    pub fn render(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 256);
        let _ = write!(
            HttpWrite(&mut out),
            "HTTP/1.1 {} {}\r\nConnection: close\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            Response::reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            let _ = write!(HttpWrite(&mut out), "{name}: {value}\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the response to `stream` and flushes.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (the caller logs and drops the connection).
    pub fn send(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        stream.write_all(&self.render())?;
        stream.flush()
    }
}

/// Adapter: `fmt::Write` onto a byte buffer (headers are ASCII).
struct HttpWrite<'a>(&'a mut Vec<u8>);

impl std::fmt::Write for HttpWrite<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_renders_with_framing() {
        let r = Response::text(200, "hi").header("Retry-After", "1");
        let bytes = r.render();
        let s = String::from_utf8(bytes).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("Connection: close\r\n"));
        assert!(s.contains("Content-Length: 2\r\n"));
        assert!(s.contains("Retry-After: 1\r\n"));
        assert!(s.ends_with("\r\n\r\nhi"));
    }

    #[test]
    fn error_bodies_are_json() {
        let r = Response::error(400, "bad \"spec\"");
        assert_eq!(r.content_type, "application/json");
        assert_eq!(String::from_utf8(r.body).unwrap(), "{\"error\":\"bad \\\"spec\\\"\"}");
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
