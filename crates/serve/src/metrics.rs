//! Prometheus text-format metrics for the campaign service.
//!
//! The exposition follows the text format version 0.0.4: `# HELP` and
//! `# TYPE` comment lines, then one sample per line, label values escaped.
//! Counters are monotonic for the life of the process; gauges describe the
//! current queue/worker state. Trial-level counters come from summing every
//! job's [`apf_bench::engine::LiveStats`] snapshot (jobs are retained for
//! the life of the process, so the sums never go backwards); per-phase
//! totals and the longest-trial gauge are folded in when a job finishes.

use apf_bench::engine::StreamingAggregate;
use apf_trace::PhaseKind;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Process-wide counters the request path and workers update.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Jobs accepted by `POST /jobs`.
    pub jobs_submitted: AtomicU64,
    /// Jobs finished successfully.
    pub jobs_done: AtomicU64,
    /// Jobs cancelled (queued or mid-run).
    pub jobs_cancelled: AtomicU64,
    /// Jobs whose worker panicked.
    pub jobs_failed: AtomicU64,
    /// Submissions rejected with 429 (queue full).
    pub jobs_rejected: AtomicU64,
    /// Submissions rejected with 429 (per-client quota exhausted).
    pub quota_rejected: AtomicU64,
    /// Cache lookups that answered a submission without running.
    pub cache_hits: AtomicU64,
    /// Cache lookups that missed (cacheable specs only).
    pub cache_misses: AtomicU64,
    /// Results stored into the cache.
    pub cache_stores: AtomicU64,
    /// Integrity replays whose digests matched the cached outcome.
    pub cache_verify_ok: AtomicU64,
    /// Integrity replays that contradicted the cache (entry evicted).
    pub cache_verify_fail: AtomicU64,
    /// Shards dispatched to backends (coordinator mode).
    pub shards_dispatched: AtomicU64,
    /// Shards requeued after a backend error (coordinator mode).
    pub shard_retries: AtomicU64,
    /// HTTP responses by status class: 2xx, 4xx, 5xx.
    pub http_2xx: AtomicU64,
    /// 4xx responses.
    pub http_4xx: AtomicU64,
    /// 5xx responses.
    pub http_5xx: AtomicU64,
    folded: Mutex<Folded>,
}

/// Totals folded in at job completion (needs the merged aggregate, which
/// only exists once a campaign ends).
#[derive(Debug, Default)]
struct Folded {
    phase_cycles: [f64; PhaseKind::COUNT],
    phase_bits: [f64; PhaseKind::COUNT],
    longest_trial_secs: f64,
}

impl Metrics {
    /// Folds a finished job's aggregate into the per-phase totals and the
    /// longest-trial gauge.
    pub fn fold_report(&self, stats: &StreamingAggregate, longest_trial: Option<Duration>) {
        let mut f = self.folded();
        for kind in PhaseKind::ALL {
            f.phase_cycles[kind.index()] += stats.phase_cycles_total(kind);
            f.phase_bits[kind.index()] += stats.phase_bits_total(kind);
        }
        if let Some(d) = longest_trial {
            if d.as_secs_f64() > f.longest_trial_secs {
                f.longest_trial_secs = d.as_secs_f64();
            }
        }
    }

    /// Counts one HTTP response toward its status class.
    pub fn count_response(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.http_2xx,
            500..=599 => &self.http_5xx,
            _ => &self.http_4xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn folded(&self) -> std::sync::MutexGuard<'_, Folded> {
        // apf-lint: allow(panic-policy) — no code path panics while holding this lock
        self.folded.lock().expect("metrics lock poisoned")
    }

    /// Renders the exposition body. The caller supplies the live queue and
    /// worker state plus the summed trial counters.
    pub fn render(&self, live: &LiveView) -> String {
        let mut out = String::with_capacity(2048);

        counter(
            &mut out,
            "apf_jobs_total",
            "Jobs by terminal or queue-transition state.",
            &[
                ("state", "submitted", self.jobs_submitted.load(Ordering::Relaxed) as f64),
                ("state", "done", self.jobs_done.load(Ordering::Relaxed) as f64),
                ("state", "cancelled", self.jobs_cancelled.load(Ordering::Relaxed) as f64),
                ("state", "failed", self.jobs_failed.load(Ordering::Relaxed) as f64),
                ("state", "rejected", self.jobs_rejected.load(Ordering::Relaxed) as f64),
            ],
        );
        counter(
            &mut out,
            "apf_cache_total",
            "Content-addressed result cache events.",
            &[
                ("event", "hit", self.cache_hits.load(Ordering::Relaxed) as f64),
                ("event", "miss", self.cache_misses.load(Ordering::Relaxed) as f64),
                ("event", "store", self.cache_stores.load(Ordering::Relaxed) as f64),
                ("event", "verify_ok", self.cache_verify_ok.load(Ordering::Relaxed) as f64),
                ("event", "verify_fail", self.cache_verify_fail.load(Ordering::Relaxed) as f64),
            ],
        );
        counter(
            &mut out,
            "apf_shards_total",
            "Coordinator shard dispatch events.",
            &[
                ("event", "dispatched", self.shards_dispatched.load(Ordering::Relaxed) as f64),
                ("event", "retried", self.shard_retries.load(Ordering::Relaxed) as f64),
            ],
        );
        simple_counter(
            &mut out,
            "apf_quota_rejected_total",
            "Submissions rejected by the per-client quota.",
            self.quota_rejected.load(Ordering::Relaxed) as f64,
        );
        counter(
            &mut out,
            "apf_http_responses_total",
            "HTTP responses by status class.",
            &[
                ("class", "2xx", self.http_2xx.load(Ordering::Relaxed) as f64),
                ("class", "4xx", self.http_4xx.load(Ordering::Relaxed) as f64),
                ("class", "5xx", self.http_5xx.load(Ordering::Relaxed) as f64),
            ],
        );

        gauge(&mut out, "apf_queue_depth", "Jobs waiting in the queue.", live.queued as f64);
        gauge(&mut out, "apf_jobs_running", "Jobs currently executing.", live.running as f64);
        gauge(&mut out, "apf_workers", "Worker threads in the pool.", live.workers as f64);
        gauge(
            &mut out,
            "apf_worker_utilization",
            "Fraction of worker wall-clock spent inside trials since start.",
            live.utilization,
        );

        simple_counter(
            &mut out,
            "apf_trials_total",
            "Trials completed across all jobs.",
            live.trials as f64,
        );
        simple_counter(
            &mut out,
            "apf_trials_formed_total",
            "Trials that formed the pattern.",
            live.formed as f64,
        );
        simple_counter(
            &mut out,
            "apf_cycles_total",
            "LCM cycles across all completed trials.",
            live.cycles as f64,
        );
        simple_counter(
            &mut out,
            "apf_random_bits_total",
            "Random bits drawn across all completed trials.",
            live.bits as f64,
        );
        simple_counter(
            &mut out,
            "apf_worker_busy_seconds_total",
            "Worker time spent inside trials.",
            live.busy_secs,
        );

        let f = self.folded();
        let phase_cycles: Vec<(&str, &str, f64)> = PhaseKind::ALL
            .into_iter()
            .map(|k| ("phase", k.label(), f.phase_cycles[k.index()]))
            .filter(|&(_, _, v)| v > 0.0)
            .collect();
        if !phase_cycles.is_empty() {
            counter(
                &mut out,
                "apf_phase_cycles_total",
                "Cycles successful trials spent per algorithm phase (finished jobs).",
                &phase_cycles,
            );
        }
        let phase_bits: Vec<(&str, &str, f64)> = PhaseKind::ALL
            .into_iter()
            .map(|k| ("phase", k.label(), f.phase_bits[k.index()]))
            .filter(|&(_, _, v)| v > 0.0)
            .collect();
        if !phase_bits.is_empty() {
            counter(
                &mut out,
                "apf_phase_random_bits_total",
                "Random bits successful trials drew per algorithm phase (finished jobs).",
                &phase_bits,
            );
        }
        gauge(
            &mut out,
            "apf_longest_trial_seconds",
            "Wall time of the slowest single trial seen in any finished job.",
            f.longest_trial_secs,
        );
        drop(f);

        gauge(
            &mut out,
            "apf_trials_per_second",
            "Trial throughput since process start.",
            if live.uptime_secs > 0.0 { live.trials as f64 / live.uptime_secs } else { 0.0 },
        );
        gauge(
            &mut out,
            "apf_uptime_seconds",
            "Seconds since the server started.",
            live.uptime_secs,
        );

        out
    }
}

/// The point-in-time state the server computes for a scrape.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveView {
    /// Jobs waiting in the queue.
    pub queued: usize,
    /// Jobs currently running.
    pub running: usize,
    /// Worker threads.
    pub workers: usize,
    /// Trials completed across all jobs.
    pub trials: u64,
    /// Successful trials across all jobs.
    pub formed: u64,
    /// Cycles across all completed trials.
    pub cycles: u64,
    /// Random bits across all completed trials.
    pub bits: u64,
    /// Worker busy seconds across all jobs.
    pub busy_secs: f64,
    /// busy / (workers × uptime), clamped to [0, 1].
    pub utilization: f64,
    /// Seconds since server start.
    pub uptime_secs: f64,
}

fn simple_counter(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {}", num(value));
}

fn counter(out: &mut String, name: &str, help: &str, samples: &[(&str, &str, f64)]) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    for (label, label_value, value) in samples {
        let _ = writeln!(out, "{name}{{{label}=\"{label_value}\"}} {}", num(*value));
    }
}

fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {}", num(value));
}

/// Prometheus floats: finite values with Rust's shortest formatting.
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny structural validator for the exposition format: every
    /// non-comment line is `name[{label="value"}] number`, and every metric
    /// name is introduced by HELP and TYPE lines first.
    fn assert_valid_prometheus(text: &str) {
        let mut announced: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# ") {
                let mut parts = rest.splitn(3, ' ');
                let kw = parts.next().unwrap_or("");
                let name = parts.next().unwrap_or("");
                assert!(kw == "HELP" || kw == "TYPE", "bad comment: {line}");
                assert!(!name.is_empty(), "comment without metric name: {line}");
                if kw == "TYPE" {
                    let t = parts.next().unwrap_or("");
                    assert!(t == "counter" || t == "gauge", "bad type: {line}");
                    announced.insert(name.to_string());
                }
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("{line}"));
            let name = name_part.split('{').next().unwrap_or(name_part);
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name: {line}"
            );
            assert!(announced.contains(name), "sample before TYPE: {line}");
            assert!(value.parse::<f64>().is_ok(), "bad value: {line}");
            if let Some(labels) = name_part.strip_prefix(name) {
                if !labels.is_empty() {
                    assert!(labels.starts_with('{') && labels.ends_with('}'), "bad labels: {line}");
                }
            }
        }
        assert!(!announced.is_empty());
    }

    #[test]
    fn renders_valid_exposition_format() {
        let m = Metrics::default();
        m.jobs_submitted.fetch_add(3, Ordering::Relaxed);
        m.count_response(200);
        m.count_response(404);
        let view = LiveView {
            queued: 1,
            running: 2,
            workers: 2,
            trials: 40,
            formed: 39,
            cycles: 1200,
            bits: 600,
            busy_secs: 1.25,
            utilization: 0.625,
            uptime_secs: 2.0,
        };
        let text = m.render(&view);
        assert_valid_prometheus(&text);
        assert!(text.contains("apf_jobs_total{state=\"submitted\"} 3"), "{text}");
        assert!(text.contains("apf_queue_depth 1"));
        assert!(text.contains("apf_trials_total 40"));
        assert!(text.contains("apf_trials_per_second 20"));
    }

    #[test]
    fn phase_totals_appear_after_fold() {
        use apf_bench::engine::StreamingAggregate;
        use apf_bench::RunResult;
        let m = Metrics::default();
        let mut agg = StreamingAggregate::default();
        let mut r = RunResult { formed: true, cycles: 10, bits: 5, ..RunResult::default() };
        r.phase_cycles[PhaseKind::RsbElection.index()] = 7;
        agg.push(&r);
        m.fold_report(&agg, Some(Duration::from_millis(250)));
        let text = m.render(&LiveView::default());
        assert_valid_prometheus(&text);
        assert!(text.contains("apf_phase_cycles_total{phase=\"rsb-election\"} 7"), "{text}");
        assert!(text.contains("apf_longest_trial_seconds 0.25"));
    }
}
