//! Prometheus text-format metrics for the campaign service.
//!
//! The exposition follows the text format version 0.0.4: `# HELP` and
//! `# TYPE` comment lines, then one sample per line, label values escaped.
//! Counters are monotonic for the life of the process; gauges describe the
//! current queue/worker state. Trial-level counters come from summing every
//! job's [`apf_bench::engine::LiveStats`] snapshot (jobs are retained for
//! the life of the process, so the sums never go backwards); per-phase
//! totals and the longest-trial gauge are folded in when a job finishes.
//!
//! Latency is tracked by [`Histo`]: fixed log-2 second buckets (the same
//! power-of-two bucketing the engine's span profiler uses) over atomics, so
//! `observe` is lock-free on the request path and a scrape renders the
//! cumulative `_bucket{le=...}` / `_sum` / `_count` triplet Prometheus
//! expects from a `histogram`.

use apf_bench::engine::StreamingAggregate;
use apf_trace::PhaseKind;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Log-2 bucket count for [`Histo`]: bounds 2⁻¹⁴ s (~61 µs) … 2¹ s, then
/// `+Inf`. Doubling bounds keep the bucket table tiny while spanning
/// sub-millisecond HTTP handling and multi-second campaign execution.
const HISTO_BUCKETS: usize = 16;

/// A lock-free wall-time histogram with fixed log-2 second buckets.
///
/// Buckets store per-band counts; [`Histo::render`] emits the cumulative
/// counts the Prometheus `histogram` type requires. Observations beyond the
/// last finite bound land only in `+Inf` (i.e. `_count`).
#[derive(Debug)]
pub struct Histo {
    buckets: [AtomicU64; HISTO_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histo {
    fn default() -> Self {
        Histo {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl Histo {
    /// The `le` bound of bucket `i`, in seconds: `2^(i - 14)`.
    fn bound(i: usize) -> f64 {
        f64::powi(2.0, i as i32 - 14)
    }

    /// Records one duration. Lock-free; relaxed ordering is fine because a
    /// scrape only needs eventually-consistent totals.
    pub fn observe(&self, took: Duration) {
        self.count.fetch_add(1, Ordering::Relaxed);
        let ns = u64::try_from(took.as_nanos()).unwrap_or(u64::MAX);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        let secs = took.as_secs_f64();
        for (i, bucket) in self.buckets.iter().enumerate() {
            if secs <= Self::bound(i) {
                bucket.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Renders the `# HELP`/`# TYPE histogram` block with cumulative
    /// buckets, `+Inf`, `_sum` (seconds), and `_count`.
    fn render(&self, out: &mut String, name: &str, help: &str) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", num(Self::bound(i)));
        }
        let count = self.count.load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
        let sum_secs = self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9;
        let _ = writeln!(out, "{name}_sum {}", num(sum_secs));
        let _ = writeln!(out, "{name}_count {count}");
    }
}

/// Process-wide counters the request path and workers update.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Jobs accepted by `POST /jobs`.
    pub jobs_submitted: AtomicU64,
    /// Jobs finished successfully.
    pub jobs_done: AtomicU64,
    /// Jobs cancelled (queued or mid-run).
    pub jobs_cancelled: AtomicU64,
    /// Jobs whose worker panicked.
    pub jobs_failed: AtomicU64,
    /// Submissions rejected with 429 (queue full).
    pub jobs_rejected: AtomicU64,
    /// Submissions rejected with 429 (per-client quota exhausted).
    pub quota_rejected: AtomicU64,
    /// Cache lookups that answered a submission without running.
    pub cache_hits: AtomicU64,
    /// Cache lookups that missed (cacheable specs only).
    pub cache_misses: AtomicU64,
    /// Results stored into the cache.
    pub cache_stores: AtomicU64,
    /// Integrity replays whose digests matched the cached outcome.
    pub cache_verify_ok: AtomicU64,
    /// Integrity replays that contradicted the cache (entry evicted).
    pub cache_verify_fail: AtomicU64,
    /// Shards dispatched to backends (coordinator mode).
    pub shards_dispatched: AtomicU64,
    /// Shards requeued after a backend error (coordinator mode).
    pub shard_retries: AtomicU64,
    /// Geometry-fuzz cases executed by soak jobs.
    pub soak_cases: AtomicU64,
    /// Minimized counterexamples soak jobs found (0 on a healthy stack).
    pub soak_violations: AtomicU64,
    /// Shrink candidates soak jobs evaluated while minimizing violations.
    pub soak_shrink_steps: AtomicU64,
    /// Soak wall time in microseconds (rendered as seconds).
    pub soak_wall_micros: AtomicU64,
    /// HTTP responses by status class: 2xx, 4xx, 5xx.
    pub http_2xx: AtomicU64,
    /// 4xx responses.
    pub http_4xx: AtomicU64,
    /// 5xx responses.
    pub http_5xx: AtomicU64,
    /// Wall time from accepting a connection to having its response ready.
    pub http_request_seconds: Histo,
    /// Wall time jobs spent queued before a worker claimed them.
    pub job_queue_wait_seconds: Histo,
    /// Wall time workers spent executing jobs (local engine or coordinated).
    pub job_exec_seconds: Histo,
    /// Wall time of one successful shard round-trip: submit, poll to
    /// completion, fetch the detail result (coordinator mode).
    pub shard_roundtrip_seconds: Histo,
    folded: Mutex<Folded>,
}

/// Totals folded in at job completion (needs the merged aggregate, which
/// only exists once a campaign ends).
#[derive(Debug, Default)]
struct Folded {
    phase_cycles: [f64; PhaseKind::COUNT],
    phase_bits: [f64; PhaseKind::COUNT],
    longest_trial_secs: f64,
}

impl Metrics {
    /// Folds a finished job's aggregate into the per-phase totals and the
    /// longest-trial gauge.
    pub fn fold_report(&self, stats: &StreamingAggregate, longest_trial: Option<Duration>) {
        let mut f = self.folded();
        for kind in PhaseKind::ALL {
            f.phase_cycles[kind.index()] += stats.phase_cycles_total(kind);
            f.phase_bits[kind.index()] += stats.phase_bits_total(kind);
        }
        if let Some(d) = longest_trial {
            if d.as_secs_f64() > f.longest_trial_secs {
                f.longest_trial_secs = d.as_secs_f64();
            }
        }
    }

    /// Counts one HTTP response toward its status class.
    pub fn count_response(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.http_2xx,
            500..=599 => &self.http_5xx,
            _ => &self.http_4xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn folded(&self) -> std::sync::MutexGuard<'_, Folded> {
        // apf-lint: allow(panic-policy, panic-reachability) — no code path panics while holding this lock, so poisoning is impossible; losing metrics integrity should kill the worker
        self.folded.lock().expect("metrics lock poisoned")
    }

    /// Renders the exposition body. The caller supplies the live queue and
    /// worker state plus the summed trial counters.
    pub fn render(&self, live: &LiveView) -> String {
        let mut out = String::with_capacity(2048);

        counter(
            &mut out,
            "apf_jobs_total",
            "Jobs by terminal or queue-transition state.",
            &[
                ("state", "submitted", self.jobs_submitted.load(Ordering::Relaxed) as f64),
                ("state", "done", self.jobs_done.load(Ordering::Relaxed) as f64),
                ("state", "cancelled", self.jobs_cancelled.load(Ordering::Relaxed) as f64),
                ("state", "failed", self.jobs_failed.load(Ordering::Relaxed) as f64),
                ("state", "rejected", self.jobs_rejected.load(Ordering::Relaxed) as f64),
            ],
        );
        counter(
            &mut out,
            "apf_cache_total",
            "Content-addressed result cache events.",
            &[
                ("event", "hit", self.cache_hits.load(Ordering::Relaxed) as f64),
                ("event", "miss", self.cache_misses.load(Ordering::Relaxed) as f64),
                ("event", "store", self.cache_stores.load(Ordering::Relaxed) as f64),
                ("event", "verify_ok", self.cache_verify_ok.load(Ordering::Relaxed) as f64),
                ("event", "verify_fail", self.cache_verify_fail.load(Ordering::Relaxed) as f64),
            ],
        );
        counter(
            &mut out,
            "apf_shards_total",
            "Coordinator shard dispatch events.",
            &[
                ("event", "dispatched", self.shards_dispatched.load(Ordering::Relaxed) as f64),
                ("event", "retried", self.shard_retries.load(Ordering::Relaxed) as f64),
            ],
        );
        simple_counter(
            &mut out,
            "apf_soak_cases_total",
            "Geometry-fuzz cases executed by soak jobs.",
            self.soak_cases.load(Ordering::Relaxed) as f64,
        );
        simple_counter(
            &mut out,
            "apf_soak_violations_total",
            "Minimized soak counterexamples (0 on a healthy stack).",
            self.soak_violations.load(Ordering::Relaxed) as f64,
        );
        simple_counter(
            &mut out,
            "apf_soak_shrink_steps_total",
            "Shrink candidates evaluated while minimizing soak violations.",
            self.soak_shrink_steps.load(Ordering::Relaxed) as f64,
        );
        simple_counter(
            &mut out,
            "apf_soak_wall_seconds_total",
            "Wall time soak jobs spent fuzzing.",
            self.soak_wall_micros.load(Ordering::Relaxed) as f64 / 1e6,
        );
        simple_counter(
            &mut out,
            "apf_quota_rejected_total",
            "Submissions rejected by the per-client quota.",
            self.quota_rejected.load(Ordering::Relaxed) as f64,
        );
        counter(
            &mut out,
            "apf_http_responses_total",
            "HTTP responses by status class.",
            &[
                ("class", "2xx", self.http_2xx.load(Ordering::Relaxed) as f64),
                ("class", "4xx", self.http_4xx.load(Ordering::Relaxed) as f64),
                ("class", "5xx", self.http_5xx.load(Ordering::Relaxed) as f64),
            ],
        );

        self.http_request_seconds.render(
            &mut out,
            "apf_http_request_seconds",
            "HTTP request handling latency (accept to response ready).",
        );
        self.job_queue_wait_seconds.render(
            &mut out,
            "apf_job_queue_wait_seconds",
            "Time jobs waited in the queue before a worker claimed them.",
        );
        self.job_exec_seconds.render(
            &mut out,
            "apf_job_exec_seconds",
            "Job execution wall time (local engine run or coordinated fan-out).",
        );
        self.shard_roundtrip_seconds.render(
            &mut out,
            "apf_shard_roundtrip_seconds",
            "Successful shard round-trips: submit, poll, result fetch (coordinator mode).",
        );

        gauge(&mut out, "apf_queue_depth", "Jobs waiting in the queue.", live.queued as f64);
        gauge(&mut out, "apf_jobs_running", "Jobs currently executing.", live.running as f64);
        gauge(&mut out, "apf_workers", "Worker threads in the pool.", live.workers as f64);
        gauge(
            &mut out,
            "apf_worker_utilization",
            "Fraction of worker wall-clock spent inside trials since start.",
            live.utilization,
        );

        simple_counter(
            &mut out,
            "apf_trials_total",
            "Trials completed across all jobs.",
            live.trials as f64,
        );
        simple_counter(
            &mut out,
            "apf_trials_formed_total",
            "Trials that formed the pattern.",
            live.formed as f64,
        );
        simple_counter(
            &mut out,
            "apf_cycles_total",
            "LCM cycles across all completed trials.",
            live.cycles as f64,
        );
        simple_counter(
            &mut out,
            "apf_random_bits_total",
            "Random bits drawn across all completed trials.",
            live.bits as f64,
        );
        simple_counter(
            &mut out,
            "apf_worker_busy_seconds_total",
            "Worker time spent inside trials.",
            live.busy_secs,
        );

        let f = self.folded();
        let phase_cycles: Vec<(&str, &str, f64)> = PhaseKind::ALL
            .into_iter()
            .map(|k| ("phase", k.label(), f.phase_cycles[k.index()]))
            .filter(|&(_, _, v)| v > 0.0)
            .collect();
        if !phase_cycles.is_empty() {
            counter(
                &mut out,
                "apf_phase_cycles_total",
                "Cycles successful trials spent per algorithm phase (finished jobs).",
                &phase_cycles,
            );
        }
        let phase_bits: Vec<(&str, &str, f64)> = PhaseKind::ALL
            .into_iter()
            .map(|k| ("phase", k.label(), f.phase_bits[k.index()]))
            .filter(|&(_, _, v)| v > 0.0)
            .collect();
        if !phase_bits.is_empty() {
            counter(
                &mut out,
                "apf_phase_random_bits_total",
                "Random bits successful trials drew per algorithm phase (finished jobs).",
                &phase_bits,
            );
        }
        gauge(
            &mut out,
            "apf_longest_trial_seconds",
            "Wall time of the slowest single trial seen in any finished job.",
            f.longest_trial_secs,
        );
        drop(f);

        gauge(
            &mut out,
            "apf_trials_per_second",
            "Trial throughput since process start.",
            if live.uptime_secs > 0.0 { live.trials as f64 / live.uptime_secs } else { 0.0 },
        );
        gauge(
            &mut out,
            "apf_uptime_seconds",
            "Seconds since the server started.",
            live.uptime_secs,
        );

        out
    }
}

/// The point-in-time state the server computes for a scrape.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveView {
    /// Jobs waiting in the queue.
    pub queued: usize,
    /// Jobs currently running.
    pub running: usize,
    /// Worker threads.
    pub workers: usize,
    /// Trials completed across all jobs.
    pub trials: u64,
    /// Successful trials across all jobs.
    pub formed: u64,
    /// Cycles across all completed trials.
    pub cycles: u64,
    /// Random bits across all completed trials.
    pub bits: u64,
    /// Worker busy seconds across all jobs.
    pub busy_secs: f64,
    /// busy / (workers × uptime), clamped to [0, 1].
    pub utilization: f64,
    /// Seconds since server start.
    pub uptime_secs: f64,
}

fn simple_counter(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {}", num(value));
}

fn counter(out: &mut String, name: &str, help: &str, samples: &[(&str, &str, f64)]) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    for (label, label_value, value) in samples {
        let _ = writeln!(out, "{name}{{{label}=\"{label_value}\"}} {}", num(*value));
    }
}

fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {}", num(value));
}

/// Prometheus floats: finite values with Rust's shortest formatting.
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny structural validator for the exposition format: every
    /// non-comment line is `name[{label="value"}] number`, and every metric
    /// name is introduced by HELP and TYPE lines first.
    fn assert_valid_prometheus(text: &str) {
        let mut announced: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# ") {
                let mut parts = rest.splitn(3, ' ');
                let kw = parts.next().unwrap_or("");
                let name = parts.next().unwrap_or("");
                assert!(kw == "HELP" || kw == "TYPE", "bad comment: {line}");
                assert!(!name.is_empty(), "comment without metric name: {line}");
                if kw == "TYPE" {
                    let t = parts.next().unwrap_or("");
                    assert!(t == "counter" || t == "gauge" || t == "histogram", "bad type: {line}");
                    announced.insert(name.to_string());
                    if t == "histogram" {
                        // A histogram's samples use derived names.
                        announced.insert(format!("{name}_bucket"));
                        announced.insert(format!("{name}_sum"));
                        announced.insert(format!("{name}_count"));
                    }
                }
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("{line}"));
            let name = name_part.split('{').next().unwrap_or(name_part);
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name: {line}"
            );
            assert!(announced.contains(name), "sample before TYPE: {line}");
            assert!(value.parse::<f64>().is_ok(), "bad value: {line}");
            if let Some(labels) = name_part.strip_prefix(name) {
                if !labels.is_empty() {
                    assert!(labels.starts_with('{') && labels.ends_with('}'), "bad labels: {line}");
                }
            }
        }
        assert!(!announced.is_empty());
    }

    #[test]
    fn renders_valid_exposition_format() {
        let m = Metrics::default();
        m.jobs_submitted.fetch_add(3, Ordering::Relaxed);
        m.count_response(200);
        m.count_response(404);
        let view = LiveView {
            queued: 1,
            running: 2,
            workers: 2,
            trials: 40,
            formed: 39,
            cycles: 1200,
            bits: 600,
            busy_secs: 1.25,
            utilization: 0.625,
            uptime_secs: 2.0,
        };
        m.soak_cases.fetch_add(16, Ordering::Relaxed);
        m.soak_wall_micros.fetch_add(2_500_000, Ordering::Relaxed);
        let text = m.render(&view);
        assert_valid_prometheus(&text);
        assert!(text.contains("apf_jobs_total{state=\"submitted\"} 3"), "{text}");
        assert!(text.contains("apf_queue_depth 1"));
        assert!(text.contains("apf_trials_total 40"));
        assert!(text.contains("apf_trials_per_second 20"));
        // The soak counters are always announced, even before any soak job
        // runs — check.sh's mini-soak gate greps for them.
        assert!(text.contains("apf_soak_cases_total 16"), "{text}");
        assert!(text.contains("apf_soak_violations_total 0"), "{text}");
        assert!(text.contains("apf_soak_shrink_steps_total 0"), "{text}");
        assert!(text.contains("apf_soak_wall_seconds_total 2.5"), "{text}");
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let m = Metrics::default();
        m.http_request_seconds.observe(Duration::from_micros(50)); // below first bound
        m.http_request_seconds.observe(Duration::from_millis(3)); // mid-table
        m.http_request_seconds.observe(Duration::from_secs(60)); // beyond last bound
        let text = m.render(&LiveView::default());
        assert_valid_prometheus(&text);
        assert!(text.contains("# TYPE apf_http_request_seconds histogram"), "{text}");

        // Cumulative bucket counts never decrease, and +Inf equals _count.
        let mut prev = 0u64;
        let mut finite_buckets = 0;
        for line in text.lines().filter(|l| l.starts_with("apf_http_request_seconds_bucket")) {
            let v: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(v >= prev, "non-monotonic cumulative bucket: {line}");
            prev = v;
            if !line.contains("+Inf") {
                finite_buckets += 1;
            }
        }
        assert_eq!(finite_buckets, HISTO_BUCKETS);
        assert!(text.contains("apf_http_request_seconds_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("apf_http_request_seconds_count 3"), "{text}");
        // The 60s observation overflows every finite bucket.
        let last_finite = format!("{{le=\"{}\"}} 2", num(Histo::bound(HISTO_BUCKETS - 1)));
        assert!(text.contains(&last_finite), "{text}");
        assert_eq!(m.http_request_seconds.count(), 3);

        // The other three histograms are always announced, even when empty,
        // so scrapers (and check.sh) can rely on their presence.
        for name in
            ["apf_job_queue_wait_seconds", "apf_job_exec_seconds", "apf_shard_roundtrip_seconds"]
        {
            assert!(text.contains(&format!("# TYPE {name} histogram")), "{name} missing");
            assert!(text.contains(&format!("{name}_count 0")), "{name} should be empty");
        }
    }

    #[test]
    fn histogram_sum_accumulates_seconds() {
        let h = Histo::default();
        h.observe(Duration::from_millis(250));
        h.observe(Duration::from_millis(750));
        let mut out = String::new();
        h.render(&mut out, "x_seconds", "test");
        assert!(out.contains("x_seconds_sum 1"), "{out}");
        assert!(out.contains("x_seconds_count 2"), "{out}");
    }

    #[test]
    fn phase_totals_appear_after_fold() {
        use apf_bench::engine::StreamingAggregate;
        use apf_bench::RunResult;
        let m = Metrics::default();
        let mut agg = StreamingAggregate::default();
        let mut r = RunResult { formed: true, cycles: 10, bits: 5, ..RunResult::default() };
        r.phase_cycles[PhaseKind::RsbElection.index()] = 7;
        agg.push(&r);
        m.fold_report(&agg, Some(Duration::from_millis(250)));
        let text = m.render(&LiveView::default());
        assert_valid_prometheus(&text);
        assert!(text.contains("apf_phase_cycles_total{phase=\"rsb-election\"} 7"), "{text}");
        assert!(text.contains("apf_longest_trial_seconds 0.25"));
    }
}
