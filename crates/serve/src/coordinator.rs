//! Coordinator mode: fan a campaign out over backend `apf-serve` workers
//! and merge the shards bit-identically to a single-process run.
//!
//! # Why this is sound
//!
//! The engine's determinism makes trials embarrassingly distributable: a
//! trial's entire behaviour is a function of its spec (absolute index ⇒
//! derived seed and generator offsets), never of which process runs it. A
//! shard `[lo, hi)` therefore produces per-trial results and digests equal
//! to the corresponding slice of a full run, no matter which backend
//! executes it — or re-executes it after a disconnect.
//!
//! # Why the merge transports per-trial records
//!
//! Welford/percentile merges are order-sensitive in the last ulps, so
//! merging shard-*level* aggregates would NOT reproduce a single-process
//! run bit for bit. Backends instead return per-trial [`RunResult`]s
//! (`detail: true`), and the coordinator replays the engine's exact fold
//! over the concatenation in shard order
//! ([`StreamingAggregate::replay`]) — same chunking, same merge order,
//! bitwise-equal statistics. Digests concatenate in shard order, which is
//! trial order. `check.sh` gates on both equalities over real sockets.
//!
//! # Failure handling
//!
//! Each backend gets one dispatch thread feeding from a shared shard
//! queue. A transport error, backend-side failure, or malformed payload
//! requeues the shard — whichever live backend drains it next re-runs it.
//! Re-execution cannot double-count: every shard has exactly one result
//! slot, filled once, and determinism makes any re-run bit-identical. A
//! backend with several consecutive transport failures is retired; the job
//! fails only if a shard exhausts its attempt budget or no backend remains.

use crate::client::{self, ClientError};
use crate::job::{JobOutcome, JobSpec};
use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::shard::{split_trials, Shard};
use crate::soak::{SoakOutcome, SoakSpec};
use apf_bench::engine::{CancelToken, LiveStats, StreamingAggregate};
use apf_bench::RunResult;
use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The header carrying the coordinator-generated request id to backends,
/// tying one submission's shard jobs together across process boundaries.
pub const REQUEST_ID_HEADER: &str = "X-Apf-Request-Id";

/// Consecutive transport failures after which a backend is retired.
const BACKEND_STRIKES: usize = 3;

/// How the coordinator is shaped; every knob has a CLI flag.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Backend `host:port` addresses (non-empty ⇒ coordinator mode).
    pub backends: Vec<String>,
    /// Shards created per backend (load-balancing granularity; the shard
    /// count is capped by the trial count).
    pub shards_per_backend: usize,
    /// Backend status-poll interval.
    pub poll_interval: Duration,
    /// Per-request timeout for backend calls.
    pub request_timeout: Duration,
    /// Dispatch attempts per shard before the job fails.
    pub max_attempts: usize,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            backends: Vec::new(),
            shards_per_backend: 2,
            poll_interval: Duration::from_millis(50),
            request_timeout: client::REQUEST_TIMEOUT,
            max_attempts: 8,
        }
    }
}

/// A coordinated campaign's merged outcome.
#[derive(Debug)]
pub struct CoordReport {
    /// The merged outcome (digests and statistics bit-identical to a
    /// single-process run of the executed prefix).
    pub outcome: JobOutcome,
    /// Whether cancellation stopped the run before completing every shard.
    pub cancelled: bool,
}

/// One shard's execution record.
#[derive(Debug)]
struct ShardResult {
    digests: Vec<u64>,
    records: Vec<RunResult>,
    /// Executed < requested (backend was cancelled mid-shard).
    partial: bool,
}

/// Shared shard-dispatch state, generic over the per-shard result payload
/// (campaign shards carry records and digests; soak shards carry counts).
/// Exactly one result slot per shard — the no-double-count invariant for
/// both job kinds.
struct Dispatch<R> {
    queue: VecDeque<usize>,
    attempts: Vec<usize>,
    results: Vec<Option<R>>,
    live_backends: usize,
    failure: Option<String>,
}

impl<R> Dispatch<R> {
    fn new(shards: usize, backends: usize) -> Dispatch<R> {
        Dispatch {
            queue: (0..shards).collect(),
            attempts: vec![0; shards],
            results: (0..shards).map(|_| None).collect(),
            live_backends: backends,
            failure: None,
        }
    }

    fn abort(&mut self, why: String) {
        if self.failure.is_none() {
            self.failure = Some(why);
        }
        self.queue.clear();
    }
}

/// Runs `spec` by sharding it across `cfg.backends`.
///
/// Progress folds into `live` per completed shard; `cancel` stops dispatch
/// at the next poll and cancels in-flight backend jobs. `request_id` is
/// forwarded to every backend call as [`REQUEST_ID_HEADER`] so backend
/// request logs correlate with the coordinator submission.
///
/// # Errors
///
/// Returns the failure description when a shard exhausts its attempts, all
/// backends are retired, or a backend reports a failed job.
pub fn run_job(
    cfg: &CoordinatorConfig,
    spec: &JobSpec,
    request_id: &str,
    cancel: &CancelToken,
    live: &LiveStats,
    metrics: &Metrics,
) -> Result<CoordReport, String> {
    assert!(!cfg.backends.is_empty(), "coordinator mode needs at least one backend");
    let t0 = Instant::now();
    let (lo, hi) = spec.range.unwrap_or((0, spec.canonical.trials));
    let shards = split_trials(hi - lo, cfg.backends.len() * cfg.shards_per_backend.max(1))
        .into_iter()
        .map(|s| Shard { lo: lo + s.lo, hi: lo + s.hi })
        .collect::<Vec<_>>();

    let dispatch = Mutex::new(Dispatch::new(shards.len(), cfg.backends.len()));

    std::thread::scope(|scope| {
        for backend in &cfg.backends {
            let dispatch = &dispatch;
            let shards = &shards;
            scope.spawn(move || {
                backend_loop(
                    cfg, spec, request_id, backend, shards, dispatch, cancel, live, metrics,
                )
            });
        }
    });

    let mut d = lock(&dispatch);
    let cancelled = cancel.is_cancelled();
    if let Some(why) = d.failure.take() {
        return Err(why);
    }
    if !cancelled {
        if let Some(k) = d.results.iter().position(Option::is_none) {
            // Only cancellation may leave holes; anything else is a retired
            // backend set, which must have recorded a failure above.
            return Err(format!("shard {k} never completed (all backends retired)"));
        }
    }

    // Merge the longest contiguous prefix of completed shards (all of them,
    // unless cancelled) — mirroring the engine's cancelled-run guarantee
    // that executed trials form a contiguous prefix in trial order.
    let mut digests = Vec::with_capacity((hi - lo) as usize);
    let mut records: Vec<RunResult> = Vec::with_capacity((hi - lo) as usize);
    for slot in d.results.iter_mut() {
        let Some(result) = slot.take() else { break };
        digests.extend(&result.digests);
        records.extend(result.records);
        if result.partial {
            break;
        }
    }
    drop(d);

    let stats = StreamingAggregate::replay(&records, 1 << 16);
    let agg = stats.to_aggregate();
    let executed = records.len();
    let outcome = JobOutcome {
        trials: executed,
        requested: (hi - lo) as usize,
        formed: stats.formed(),
        success: agg.success,
        mean_cycles: agg.mean_cycles,
        median_cycles: agg.median_cycles,
        p95_cycles: agg.p95_cycles,
        mean_bits: agg.mean_bits,
        bits_per_cycle: agg.bits_per_cycle,
        digests,
        // The coordinator's own wall clock: sharding, dispatch, polling, and
        // the merge — what the submitter actually waited for.
        wall_secs: t0.elapsed().as_secs_f64(),
        detail: spec.detail.then_some(records),
        cached: false,
    };
    let cancelled = cancelled && executed < outcome.requested;
    Ok(CoordReport { outcome, cancelled })
}

fn lock<R>(dispatch: &Mutex<Dispatch<R>>) -> MutexGuard<'_, Dispatch<R>> {
    // apf-lint: allow(panic-policy, panic-reachability) — poisoning means a dispatch thread already panicked; propagating the crash is the intended semantics
    dispatch.lock().expect("dispatch lock poisoned")
}

#[allow(clippy::too_many_arguments)]
fn backend_loop(
    cfg: &CoordinatorConfig,
    spec: &JobSpec,
    request_id: &str,
    backend: &str,
    shards: &[Shard],
    dispatch: &Mutex<Dispatch<ShardResult>>,
    cancel: &CancelToken,
    live: &LiveStats,
    metrics: &Metrics,
) {
    let mut strikes = 0;
    loop {
        if cancel.is_cancelled() {
            return;
        }
        let popped = {
            let mut d = lock(dispatch);
            match d.queue.pop_front() {
                Some(k) => {
                    d.attempts[k] += 1;
                    if d.attempts[k] > cfg.max_attempts {
                        d.abort(format!("shard {k} failed {} dispatch attempts", cfg.max_attempts));
                        return;
                    }
                    Some(k)
                }
                None => {
                    // The queue is empty, but a shard in flight on another
                    // backend may yet fail and be requeued — exit only once
                    // every slot is filled or the job aborted; otherwise
                    // stay alive to pick up requeued work.
                    if d.failure.is_some() || d.results.iter().all(Option::is_some) {
                        return;
                    }
                    None
                }
            }
        };
        let Some(k) = popped else {
            std::thread::sleep(cfg.poll_interval);
            continue;
        };
        let shard = shards[k];
        metrics.shards_dispatched.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let shard_t0 = Instant::now();
        match run_shard(cfg, spec, request_id, backend, shard, cancel) {
            Ok(result) => {
                metrics.shard_roundtrip_seconds.observe(shard_t0.elapsed());
                strikes = 0;
                for r in &result.records {
                    // Busy time is a backend-side quantity the shard result
                    // does not carry per trial; zero keeps utilization
                    // honest (coordinator workers are not busy *executing*).
                    live.record(r, Duration::ZERO);
                }
                lock(dispatch).results[k] = Some(result);
            }
            Err(ShardError::Cancelled) => {
                // Leave the shard unfinished; run_job merges the completed
                // prefix. (Do not requeue: the whole job is stopping.)
                return;
            }
            Err(ShardError::Fatal(why)) => {
                lock(dispatch).abort(format!("shard {k} on {backend}: {why}"));
                return;
            }
            Err(ShardError::Transient(why)) => {
                metrics.shard_retries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                strikes += 1;
                let mut d = lock(dispatch);
                d.queue.push_back(k);
                if strikes >= BACKEND_STRIKES {
                    // Retire this backend; the shard stays queued for the
                    // survivors.
                    d.live_backends -= 1;
                    if d.live_backends == 0 {
                        d.abort(format!("no live backends remain (last error: {why})"));
                    }
                    return;
                }
                drop(d);
                std::thread::sleep(cfg.poll_interval);
            }
        }
    }
}

enum ShardError {
    /// Retry-able: backend unreachable, overloaded, or mid-shard disconnect.
    Transient(String),
    /// The job is stopping; leave the shard unfinished.
    Cancelled,
    /// Deterministic failure (a backend worker panic is a bug, not noise).
    Fatal(String),
}

/// Submits one shard to `backend`, polls it to completion, and fetches the
/// detail result. Every call carries the coordinator's request id.
fn run_shard(
    cfg: &CoordinatorConfig,
    spec: &JobSpec,
    request_id: &str,
    backend: &str,
    shard: Shard,
    cancel: &CancelToken,
) -> Result<ShardResult, ShardError> {
    let shard_spec = JobSpec {
        canonical: spec.canonical.clone(),
        range: Some((shard.lo, shard.hi)),
        detail: true,
    };
    let body = shard_spec.to_json().render();

    let transient = |why: String| ShardError::Transient(why);
    let submit =
        call(cfg, backend, request_id, "POST", "/v1/jobs", body.as_bytes()).map_err(transient)?;
    if submit.0 == 429 || submit.0 == 503 {
        return Err(ShardError::Transient(format!("backend busy ({})", submit.0)));
    }
    if submit.0 != 202 {
        // A 4xx on a spec the coordinator itself validated is a protocol
        // bug; retrying elsewhere would loop forever.
        return Err(ShardError::Fatal(format!("submit returned {}", submit.0)));
    }
    let id = submit
        .1
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| ShardError::Fatal("submit response missing id".to_string()))?;
    let job_path = format!("/v1/jobs/{id}");

    loop {
        if cancel.is_cancelled() {
            // Best effort: stop the backend's work too, then bail.
            let headers = [(REQUEST_ID_HEADER, request_id)];
            let _ =
                client::request(backend, "DELETE", &job_path, &headers, b"", cfg.request_timeout);
            return Err(ShardError::Cancelled);
        }
        let (status, v) =
            call(cfg, backend, request_id, "GET", &job_path, b"").map_err(transient)?;
        if status != 200 {
            return Err(ShardError::Transient(format!("status poll returned {status}")));
        }
        match v.get("status").and_then(Json::as_str) {
            Some("done") => break,
            Some("cancelled") => {
                if cancel.is_cancelled() {
                    break; // our own cancellation propagated; keep the prefix
                }
                // The backend cancelled unilaterally (it is shutting down):
                // the shard must be re-run in full on a surviving backend.
                return Err(ShardError::Transient(
                    "backend cancelled the shard (backend shutting down?)".to_string(),
                ));
            }
            Some("failed") => {
                return Err(ShardError::Fatal("backend reports a failed job".to_string()))
            }
            Some(_) => std::thread::sleep(cfg.poll_interval),
            None => return Err(ShardError::Transient("status poll missing status".to_string())),
        }
    }

    let (status, v) = call(cfg, backend, request_id, "GET", &format!("{job_path}/result"), b"")
        .map_err(transient)?;
    if status != 200 {
        return Err(ShardError::Transient(format!("result fetch returned {status}")));
    }
    let result = v
        .get("result")
        .ok_or_else(|| ShardError::Transient("result fetch missing result".to_string()))?;
    let outcome = JobOutcome::from_json(result).map_err(ShardError::Transient)?;
    let records = outcome
        .detail
        .ok_or_else(|| ShardError::Transient("shard result missing detail".to_string()))?;
    let executed = outcome.trials;
    if executed > shard.len() as usize
        || records.len() != executed
        || outcome.digests.len() != executed
    {
        return Err(ShardError::Transient(format!(
            "shard payload inconsistent: {executed} trials, {} records, {} digests",
            records.len(),
            outcome.digests.len()
        )));
    }
    Ok(ShardResult { digests: outcome.digests, records, partial: executed < shard.len() as usize })
}

/// Runs a soak job by sharding its case range across `cfg.backends`. A
/// timed soak (`seconds > 0`) dispatches successive case-range rounds
/// until the deadline; a case-bounded soak dispatches one round covering
/// `range` (or all cases). Returns whether cancellation cut it short, plus
/// the summed outcome.
///
/// Re-execution cannot double-count cases: every shard has exactly one
/// result slot, filled once, and each case is deterministic in
/// `(seed, index)` — the same invariant the campaign path relies on.
///
/// # Errors
///
/// Returns the failure description when a shard exhausts its attempts, all
/// backends are retired, or a backend reports a failed job.
pub fn run_soak_job(
    cfg: &CoordinatorConfig,
    spec: &SoakSpec,
    request_id: &str,
    cancel: &CancelToken,
    metrics: &Metrics,
) -> Result<(bool, SoakOutcome), String> {
    assert!(!cfg.backends.is_empty(), "coordinator mode needs at least one backend");
    let t0 = Instant::now();
    let mut total = SoakOutcome::default();
    let mut cancelled = false;

    if spec.seconds == 0 {
        let (lo, hi) = spec.range.unwrap_or((0, spec.cases));
        let (c, outcome) = run_soak_round(cfg, spec, request_id, lo, hi - lo, cancel, metrics)?;
        total.absorb(&outcome);
        cancelled = c;
    } else {
        let deadline = t0 + Duration::from_secs(spec.seconds);
        let round = (cfg.backends.len() * cfg.shards_per_backend.max(1)) as u64 * 8;
        let mut next = 0u64;
        loop {
            if cancel.is_cancelled() {
                cancelled = true;
                break;
            }
            if Instant::now() >= deadline {
                break;
            }
            let (c, outcome) = run_soak_round(cfg, spec, request_id, next, round, cancel, metrics)?;
            next += round;
            total.absorb(&outcome);
            if c {
                cancelled = true;
                break;
            }
        }
    }
    // The coordinator's own clock, not the sum of backend clocks: what the
    // submitter actually waited for.
    total.wall_secs = t0.elapsed().as_secs_f64();
    Ok((cancelled, total))
}

/// Dispatches one round of soak shards covering cases `first..first+count`
/// and sums the results.
fn run_soak_round(
    cfg: &CoordinatorConfig,
    spec: &SoakSpec,
    request_id: &str,
    first: u64,
    count: u64,
    cancel: &CancelToken,
    metrics: &Metrics,
) -> Result<(bool, SoakOutcome), String> {
    let shards = split_trials(count, cfg.backends.len() * cfg.shards_per_backend.max(1))
        .into_iter()
        .map(|s| Shard { lo: first + s.lo, hi: first + s.hi })
        .collect::<Vec<_>>();
    let dispatch = Mutex::new(Dispatch::new(shards.len(), cfg.backends.len()));

    std::thread::scope(|scope| {
        for backend in &cfg.backends {
            let dispatch = &dispatch;
            let shards = &shards;
            scope.spawn(move || {
                soak_backend_loop(cfg, spec, request_id, backend, shards, dispatch, cancel, metrics)
            });
        }
    });

    let mut d = lock(&dispatch);
    let cancelled = cancel.is_cancelled();
    if let Some(why) = d.failure.take() {
        return Err(why);
    }
    if !cancelled {
        if let Some(k) = d.results.iter().position(Option::is_none) {
            return Err(format!("soak shard {k} never completed (all backends retired)"));
        }
    }
    let mut total = SoakOutcome::default();
    for outcome in d.results.iter_mut().filter_map(Option::take) {
        total.absorb(&outcome);
    }
    Ok((cancelled, total))
}

#[allow(clippy::too_many_arguments)]
fn soak_backend_loop(
    cfg: &CoordinatorConfig,
    spec: &SoakSpec,
    request_id: &str,
    backend: &str,
    shards: &[Shard],
    dispatch: &Mutex<Dispatch<SoakOutcome>>,
    cancel: &CancelToken,
    metrics: &Metrics,
) {
    let mut strikes = 0;
    loop {
        if cancel.is_cancelled() {
            return;
        }
        let popped = {
            let mut d = lock(dispatch);
            match d.queue.pop_front() {
                Some(k) => {
                    d.attempts[k] += 1;
                    if d.attempts[k] > cfg.max_attempts {
                        d.abort(format!(
                            "soak shard {k} failed {} dispatch attempts",
                            cfg.max_attempts
                        ));
                        return;
                    }
                    Some(k)
                }
                None => {
                    if d.failure.is_some() || d.results.iter().all(Option::is_some) {
                        return;
                    }
                    None
                }
            }
        };
        let Some(k) = popped else {
            std::thread::sleep(cfg.poll_interval);
            continue;
        };
        let shard = shards[k];
        metrics.shards_dispatched.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let shard_t0 = Instant::now();
        match run_soak_shard(cfg, spec, request_id, backend, shard, cancel) {
            Ok(outcome) => {
                metrics.shard_roundtrip_seconds.observe(shard_t0.elapsed());
                strikes = 0;
                metrics.soak_cases.fetch_add(outcome.cases, std::sync::atomic::Ordering::Relaxed);
                metrics
                    .soak_violations
                    .fetch_add(outcome.violations, std::sync::atomic::Ordering::Relaxed);
                metrics
                    .soak_shrink_steps
                    .fetch_add(outcome.shrink_steps, std::sync::atomic::Ordering::Relaxed);
                lock(dispatch).results[k] = Some(outcome);
            }
            Err(ShardError::Cancelled) => {
                return;
            }
            Err(ShardError::Fatal(why)) => {
                lock(dispatch).abort(format!("soak shard {k} on {backend}: {why}"));
                return;
            }
            Err(ShardError::Transient(why)) => {
                metrics.shard_retries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                strikes += 1;
                let mut d = lock(dispatch);
                d.queue.push_back(k);
                if strikes >= BACKEND_STRIKES {
                    d.live_backends -= 1;
                    if d.live_backends == 0 {
                        d.abort(format!("no live backends remain (last error: {why})"));
                    }
                    return;
                }
                drop(d);
                std::thread::sleep(cfg.poll_interval);
            }
        }
    }
}

/// Submits one soak shard to `backend`, polls it to completion, and
/// fetches the result. Mirrors [`run_shard`]'s transient/fatal taxonomy.
fn run_soak_shard(
    cfg: &CoordinatorConfig,
    spec: &SoakSpec,
    request_id: &str,
    backend: &str,
    shard: Shard,
    cancel: &CancelToken,
) -> Result<SoakOutcome, ShardError> {
    let shard_spec = SoakSpec {
        seed: spec.seed,
        cases: shard.hi,
        seconds: 0,
        robots: spec.robots,
        range: Some((shard.lo, shard.hi)),
    };
    let body = shard_spec.to_json().render();

    let transient = |why: String| ShardError::Transient(why);
    let submit =
        call(cfg, backend, request_id, "POST", "/v1/soak", body.as_bytes()).map_err(transient)?;
    if submit.0 == 429 || submit.0 == 503 {
        return Err(ShardError::Transient(format!("backend busy ({})", submit.0)));
    }
    if submit.0 != 202 {
        return Err(ShardError::Fatal(format!("soak submit returned {}", submit.0)));
    }
    let id = submit
        .1
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| ShardError::Fatal("soak submit response missing id".to_string()))?;
    let job_path = format!("/v1/jobs/{id}");

    loop {
        if cancel.is_cancelled() {
            let headers = [(REQUEST_ID_HEADER, request_id)];
            let _ =
                client::request(backend, "DELETE", &job_path, &headers, b"", cfg.request_timeout);
            return Err(ShardError::Cancelled);
        }
        let (status, v) =
            call(cfg, backend, request_id, "GET", &job_path, b"").map_err(transient)?;
        if status != 200 {
            return Err(ShardError::Transient(format!("status poll returned {status}")));
        }
        match v.get("status").and_then(Json::as_str) {
            Some("done") => break,
            Some("cancelled") => {
                if cancel.is_cancelled() {
                    break;
                }
                // The backend cancelled unilaterally (it is shutting down):
                // re-run the shard in full on a surviving backend. The
                // partial counts are discarded, never merged — which is
                // what keeps re-execution from double-counting.
                return Err(ShardError::Transient(
                    "backend cancelled the soak shard (backend shutting down?)".to_string(),
                ));
            }
            Some("failed") => {
                return Err(ShardError::Fatal("backend reports a failed soak job".to_string()))
            }
            Some(_) => std::thread::sleep(cfg.poll_interval),
            None => return Err(ShardError::Transient("status poll missing status".to_string())),
        }
    }

    let (status, v) = call(cfg, backend, request_id, "GET", &format!("{job_path}/result"), b"")
        .map_err(transient)?;
    if status != 200 {
        return Err(ShardError::Transient(format!("result fetch returned {status}")));
    }
    let result = v
        .get("result")
        .ok_or_else(|| ShardError::Transient("result fetch missing result".to_string()))?;
    let outcome = SoakOutcome::from_json(result).map_err(ShardError::Transient)?;
    if outcome.cases > shard.len() || outcome.clean > outcome.cases {
        return Err(ShardError::Transient(format!(
            "soak shard payload inconsistent: {} cases of {}, {} clean",
            outcome.cases,
            shard.len(),
            outcome.clean
        )));
    }
    Ok(outcome)
}

/// One backend call returning the parsed JSON body, tagged with the
/// coordinator's request id.
fn call(
    cfg: &CoordinatorConfig,
    backend: &str,
    request_id: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<(u16, Json), String> {
    let headers = [(REQUEST_ID_HEADER, request_id)];
    let resp = client::request(backend, method, path, &headers, body, cfg.request_timeout)
        .map_err(|e: ClientError| format!("{method} {path}: {e}"))?;
    let text =
        std::str::from_utf8(&resp.body).map_err(|_| format!("{method} {path}: non-UTF-8 body"))?;
    let v = json::parse(text).map_err(|e| format!("{method} {path}: {e}"))?;
    Ok((resp.status, v))
}
