//! Trial-range sharding for coordinator mode.
//!
//! A campaign of `trials` trials is split into contiguous ranges
//! `[lo, hi)`; each shard executes independently on a backend and, because
//! per-trial seeds and generator offsets are functions of the absolute
//! trial index, produces results bit-identical to the corresponding slice
//! of a single-process run. Shards are merged back **in shard order**,
//! which is trial order, so concatenated digests and the replayed aggregate
//! match a direct run exactly (see `apf_bench::engine::StreamingAggregate::replay`).

/// One contiguous shard: trials `lo..hi` of the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// First trial index (inclusive).
    pub lo: u64,
    /// One past the last trial index.
    pub hi: u64,
}

impl Shard {
    /// Number of trials in the shard.
    pub fn len(self) -> u64 {
        self.hi - self.lo
    }

    /// Whether the shard holds no trials.
    pub fn is_empty(self) -> bool {
        self.lo == self.hi
    }
}

/// Splits `trials` into at most `shards` contiguous, non-empty,
/// near-equal ranges covering `0..trials` in order.
///
/// The first `trials % shards` shards get one extra trial, so sizes differ
/// by at most one. Fewer trials than shards yields one single-trial shard
/// per trial; zero trials yields no shards. `shards == 0` is treated as 1.
pub fn split_trials(trials: u64, shards: usize) -> Vec<Shard> {
    let shards = (shards.max(1) as u64).min(trials);
    let mut out = Vec::with_capacity(shards as usize);
    if trials == 0 {
        return out;
    }
    let base = trials / shards;
    let extra = trials % shards;
    let mut lo = 0;
    for k in 0..shards {
        let len = base + u64::from(k < extra);
        out.push(Shard { lo, hi: lo + len });
        lo += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers(trials: u64, shards: &[Shard]) {
        let mut next = 0;
        for s in shards {
            assert_eq!(s.lo, next, "gap or overlap at {next}");
            assert!(s.hi > s.lo, "empty shard {s:?}");
            next = s.hi;
        }
        assert_eq!(next, trials, "shards do not cover 0..{trials}");
    }

    #[test]
    fn splits_cover_in_order_with_near_equal_sizes() {
        for trials in [1u64, 2, 3, 7, 8, 100, 4095, 4096] {
            for shards in [1usize, 2, 3, 4, 7, 16] {
                let split = split_trials(trials, shards);
                covers(trials, &split);
                assert!(split.len() <= shards.max(1));
                let min = split.iter().map(|s| s.len()).min().unwrap();
                let max = split.iter().map(|s| s.len()).max().unwrap();
                assert!(max - min <= 1, "uneven split {split:?}");
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(split_trials(0, 4).is_empty());
        assert_eq!(split_trials(3, 0), split_trials(3, 1));
        // Fewer trials than shards: one single-trial shard per trial.
        let split = split_trials(2, 8);
        assert_eq!(split, vec![Shard { lo: 0, hi: 1 }, Shard { lo: 1, hi: 2 }]);
    }
}
