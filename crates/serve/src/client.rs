//! A minimal HTTP/1.1 client for coordinator → backend calls.
//!
//! Mirrors the server's transport subset (`crate::http`): one request per
//! connection, `Connection: close`, bounded response size, read timeout.
//! The coordinator only ever talks to other `apf-serve` processes, so the
//! client parses exactly what `crate::http::Response::render` emits and
//! treats anything else as a transport error (which shard dispatch handles
//! by retrying on another backend).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum response body the client accepts. Shard results carry per-trial
/// detail records (~200 bytes each, ≤ 4096 trials), so this is generous.
pub const MAX_RESPONSE: usize = 16 * 1024 * 1024;

/// Default per-request timeout (connect, and each read).
pub const REQUEST_TIMEOUT: Duration = Duration::from_secs(10);

/// Why a backend call failed at the transport level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// TCP connect failed (backend down or address unresolvable).
    Connect(std::io::ErrorKind),
    /// Socket error or timeout mid-request.
    Io(std::io::ErrorKind),
    /// The response did not parse as the expected HTTP/1.1 subset.
    BadResponse(&'static str),
    /// Response exceeded [`MAX_RESPONSE`].
    TooLarge,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(kind) => write!(f, "connect failed: {kind:?}"),
            ClientError::Io(kind) => write!(f, "socket error: {kind:?}"),
            ClientError::BadResponse(why) => write!(f, "malformed response: {why}"),
            ClientError::TooLarge => write!(f, "response too large"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A parsed response: status code and body bytes.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// The body.
    pub body: Vec<u8>,
}

/// Issues one request to `addr` (a `host:port` string) and reads the full
/// response. `headers` are extra `(name, value)` pairs appended to the
/// request head verbatim (the coordinator uses this to propagate
/// `X-Apf-Request-Id` to backends).
///
/// # Errors
///
/// Returns [`ClientError`] on connect/socket failure, timeout, a malformed
/// response, or an oversized body. HTTP error statuses are **not** errors —
/// the caller inspects `status`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> Result<ClientResponse, ClientError> {
    let mut stream = TcpStream::connect(addr).map_err(|e| ClientError::Connect(e.kind()))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| ClientError::Io(e.kind()))?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| ClientError::Io(e.kind()))?;

    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n",
        body.len()
    );
    if !body.is_empty() {
        head.push_str("Content-Type: application/json\r\n");
    }
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).map_err(|e| ClientError::Io(e.kind()))?;
    stream.write_all(body).map_err(|e| ClientError::Io(e.kind()))?;
    stream.flush().map_err(|e| ClientError::Io(e.kind()))?;

    // Read the whole response (the server always closes after one).
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 8192];
    loop {
        let got = stream.read(&mut chunk).map_err(|e| ClientError::Io(e.kind()))?;
        if got == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..got]);
        if buf.len() > MAX_RESPONSE {
            return Err(ClientError::TooLarge);
        }
        // Stop early once the declared body is complete; waiting for the
        // peer's close would work but costs a round trip on lingering
        // sockets.
        if let Some((head_end, content_length)) = parse_frame(&buf) {
            if buf.len() >= head_end + 4 + content_length {
                break;
            }
        }
    }

    let (head_end, content_length) =
        parse_frame(&buf).ok_or(ClientError::BadResponse("missing or unframed head"))?;
    let status = parse_status(&buf[..head_end])?;
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Err(ClientError::BadResponse("connection closed mid-body"));
    }
    Ok(ClientResponse { status, body: buf[body_start..body_start + content_length].to_vec() })
}

/// Finds the head terminator and the declared `Content-Length`, if the head
/// is complete.
fn parse_frame(buf: &[u8]) -> Option<(usize, usize)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let mut content_length = 0;
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    Some((head_end, content_length))
}

fn parse_status(head: &[u8]) -> Result<u16, ClientError> {
    let head = std::str::from_utf8(head).map_err(|_| ClientError::BadResponse("non-UTF-8 head"))?;
    let line = head.split("\r\n").next().unwrap_or("");
    let mut parts = line.split(' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(ClientError::BadResponse("not an HTTP/1.x status line"));
    }
    parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(ClientError::BadResponse("unparsable status code"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn round_trips_against_a_canned_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let mut seen = Vec::new();
            // Read until the request frame (head + declared body) is in.
            loop {
                let got = s.read(&mut buf).unwrap();
                seen.extend_from_slice(&buf[..got]);
                if let Some((head_end, len)) = parse_frame(&seen) {
                    if seen.len() >= head_end + 4 + len {
                        break;
                    }
                }
            }
            let req = String::from_utf8(seen).unwrap();
            assert!(req.starts_with("POST /v1/jobs HTTP/1.1\r\n"), "{req}");
            assert!(req.contains("\r\nX-Apf-Request-Id: rid-42\r\n"), "{req}");
            assert!(req.ends_with("{\"trials\":1}"), "{req}");
            s.write_all(b"HTTP/1.1 202 Accepted\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: 8\r\n\r\n{\"id\":1}")
                .unwrap();
        });
        let headers = [("X-Apf-Request-Id", "rid-42")];
        let resp = request(&addr, "POST", "/v1/jobs", &headers, b"{\"trials\":1}", REQUEST_TIMEOUT)
            .unwrap();
        assert_eq!(resp.status, 202);
        assert_eq!(resp.body, b"{\"id\":1}");
        server.join().unwrap();
    }

    #[test]
    fn connect_refused_is_a_connect_error() {
        // Bind-then-drop guarantees an unused port.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        match request(&addr, "GET", "/healthz", &[], b"", Duration::from_secs(1)) {
            Err(ClientError::Connect(_)) => {}
            other => panic!("expected Connect error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_a_bad_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = s.read(&mut buf);
            s.write_all(b"SMTP ready\r\n\r\n").unwrap();
        });
        let err = request(&addr, "GET", "/healthz", &[], b"", Duration::from_secs(2)).unwrap_err();
        assert!(matches!(err, ClientError::BadResponse(_)), "{err:?}");
        server.join().unwrap();
    }
}
