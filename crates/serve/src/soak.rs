//! Soak jobs: long-running geometry-fuzz campaigns as a background job
//! type (`POST /v1/soak`).
//!
//! A soak job churns the service's queue, cancellation, and SIGTERM-drain
//! paths while adversarially fuzzing the geometry classifiers
//! ([`apf_conformance::geometry_fuzz`]). It is bounded either by a case
//! count (`cases`, shardable across coordinator backends by case range) or
//! by wall time (`seconds`), and reports cases / violations / shrink steps
//! rather than trial statistics. Every case is deterministic in
//! `(seed, case index)`, so a shard re-run after a backend death produces
//! identical counts — the coordinator's no-double-count property for soak
//! shards rests on exactly this.
//!
//! Soak results never enter the content-addressed result cache: the cache
//! is keyed on campaign specs, and a soak outcome describes a fuzz sweep,
//! not a campaign.

use crate::json::{self, Json};
use crate::metrics::Metrics;
use apf_bench::engine::CancelToken;
use apf_conformance::geometry_fuzz::{geo_fuzz_rounds, GeoFuzzConfig, GeoOracle};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Hard cap on a case-bounded soak.
pub const MAX_SOAK_CASES: u64 = 1_000_000;
/// Hard cap on a time-bounded soak (one day).
pub const MAX_SOAK_SECONDS: u64 = 24 * 3600;
/// Robot-count bounds per generated instance.
pub const MIN_SOAK_ROBOTS: usize = 4;
/// Upper robot bound (fuzz instances beyond this are slow without finding
/// qualitatively new boundaries).
pub const MAX_SOAK_ROBOTS: usize = 64;

/// Cases per scheduling chunk: the granularity at which a soak loop checks
/// cancellation, the deadline, and publishes metrics.
const CHUNK_CASES: u64 = 8;

/// A validated soak-job description, as submitted over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakSpec {
    /// Campaign seed; case `i` derives its instance seed from `(seed, i)`.
    pub seed: u64,
    /// Case-count bound (ignored when `seconds > 0`).
    pub cases: u64,
    /// Wall-time bound in seconds; `0` means case-bounded.
    pub seconds: u64,
    /// Robots per generated instance.
    pub robots: usize,
    /// Execute only case indices `lo..hi` (a coordinator shard). Absolute
    /// indices: case `i` here is bit-identical to case `i` of the full
    /// soak. `None` = all cases.
    pub range: Option<(u64, u64)>,
}

impl Default for SoakSpec {
    fn default() -> Self {
        SoakSpec { seed: 0, cases: 256, seconds: 0, robots: 8, range: None }
    }
}

impl SoakSpec {
    /// Parses and validates a soak spec from a request body.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (the 400 body) on malformed JSON,
    /// unknown fields, or out-of-range values.
    pub fn from_json_bytes(body: &[u8]) -> Result<SoakSpec, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let Json::Obj(map) = &v else {
            return Err("body must be a JSON object".to_string());
        };
        let req_u64 = |value: &Json, key: &str| {
            value.as_u64().ok_or_else(|| format!("{key:?} must be a non-negative integer"))
        };
        let mut spec = SoakSpec::default();
        for (key, value) in map {
            match key.as_str() {
                "seed" => spec.seed = req_u64(value, "seed")?,
                "cases" => spec.cases = req_u64(value, "cases")?,
                "seconds" => spec.seconds = req_u64(value, "seconds")?,
                "robots" => spec.robots = req_u64(value, "robots")? as usize,
                "range" => {
                    let arr = value.as_arr().ok_or("\"range\" must be [lo, hi]")?;
                    let [lo, hi] = arr else {
                        return Err("\"range\" must be [lo, hi]".to_string());
                    };
                    spec.range = Some((req_u64(lo, "range[0]")?, req_u64(hi, "range[1]")?));
                }
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Range-checks the spec.
    ///
    /// # Errors
    ///
    /// Returns the 400 body text.
    pub fn validate(&self) -> Result<(), String> {
        if self.robots < MIN_SOAK_ROBOTS || self.robots > MAX_SOAK_ROBOTS {
            return Err(format!(
                "\"robots\" must be in [{MIN_SOAK_ROBOTS}, {MAX_SOAK_ROBOTS}] (got {})",
                self.robots
            ));
        }
        if self.seconds > MAX_SOAK_SECONDS {
            return Err(format!(
                "\"seconds\" must be <= {MAX_SOAK_SECONDS} (got {})",
                self.seconds
            ));
        }
        if self.seconds > 0 {
            if self.range.is_some() {
                return Err("a timed soak (\"seconds\" > 0) cannot carry a \"range\"".to_string());
            }
            return Ok(());
        }
        if self.cases == 0 || self.cases > MAX_SOAK_CASES {
            return Err(format!("\"cases\" must be in [1, {MAX_SOAK_CASES}] (got {})", self.cases));
        }
        if let Some((lo, hi)) = self.range {
            if lo > hi || hi > self.cases {
                return Err(format!(
                    "\"range\" [{lo}, {hi}] must satisfy lo <= hi <= cases ({})",
                    self.cases
                ));
            }
        }
        Ok(())
    }

    /// The spec as response JSON (echoed in job status). `range` only when
    /// set, mirroring [`crate::job::JobSpec::to_json`].
    pub fn to_json(&self) -> Json {
        let mut obj = match Json::obj([
            ("seed", Json::u64(self.seed)),
            ("cases", Json::u64(self.cases)),
            ("seconds", Json::u64(self.seconds)),
            ("robots", Json::usize(self.robots)),
        ]) {
            Json::Obj(m) => m,
            // apf-lint: allow(panic-reachability) — Json::obj always returns Json::Obj; the arm is statically dead
            _ => unreachable!("Json::obj returns an object"),
        };
        if let Some((lo, hi)) = self.range {
            obj.insert("range".to_string(), Json::Arr(vec![Json::u64(lo), Json::u64(hi)]));
        }
        Json::Obj(obj)
    }
}

/// The final outcome a soak worker records. All counts are deterministic in
/// the spec; only `wall_secs` is timing-noisy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SoakOutcome {
    /// Fuzz cases executed.
    pub cases: u64,
    /// Cases with no violation.
    pub clean: u64,
    /// Minimized counterexamples found (0 on a healthy stack).
    pub violations: u64,
    /// Shrink candidates evaluated while minimizing violations.
    pub shrink_steps: u64,
    /// Soak wall-clock seconds.
    pub wall_secs: f64,
}

impl SoakOutcome {
    /// Folds a shard or chunk outcome into this one (counts sum; wall time
    /// accumulates the executing side's clock).
    pub fn absorb(&mut self, other: &SoakOutcome) {
        self.cases += other.cases;
        self.clean += other.clean;
        self.violations += other.violations;
        self.shrink_steps += other.shrink_steps;
        self.wall_secs += other.wall_secs;
    }

    /// The outcome as response JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cases", Json::u64(self.cases)),
            ("clean", Json::u64(self.clean)),
            ("violations", Json::u64(self.violations)),
            ("shrink_steps", Json::u64(self.shrink_steps)),
            ("wall_secs", Json::f64(self.wall_secs)),
        ])
    }

    /// Parses an outcome back from its [`SoakOutcome::to_json`] form (how
    /// the coordinator reads backend soak-shard results).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<SoakOutcome, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("soak result missing {k:?}"));
        let u = |k: &str| field(k)?.as_u64().ok_or_else(|| format!("{k:?} must be a u64"));
        Ok(SoakOutcome {
            cases: u("cases")?,
            clean: u("clean")?,
            violations: u("violations")?,
            shrink_steps: u("shrink_steps")?,
            wall_secs: field("wall_secs")?.as_f64().ok_or("\"wall_secs\" must be a number")?,
        })
    }
}

/// Runs a soak job on the local machine: chunks of geometry-fuzz cases,
/// with cancellation, the deadline, and `apf_soak_*` metrics checked and
/// published between chunks. Returns whether cancellation cut it short,
/// plus the outcome.
pub fn run_soak(
    spec: &SoakSpec,
    jobs: usize,
    cancel: &CancelToken,
    metrics: &Metrics,
) -> (bool, SoakOutcome) {
    let t0 = Instant::now();
    let cfg = GeoFuzzConfig { robots: spec.robots, ..GeoFuzzConfig::default() };
    let oracle = GeoOracle::default();
    let deadline = (spec.seconds > 0).then(|| t0 + Duration::from_secs(spec.seconds));
    let (mut next, target) = match (deadline.is_some(), spec.range) {
        // Timed soaks run contiguous case indices until the clock runs out.
        (true, _) => (0, u64::MAX),
        (false, Some((lo, hi))) => (lo, hi),
        (false, None) => (0, spec.cases),
    };

    let mut outcome = SoakOutcome::default();
    let mut cancelled = false;
    while next < target {
        if cancel.is_cancelled() {
            cancelled = true;
            break;
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                break;
            }
        }
        let chunk_t0 = Instant::now();
        let count = CHUNK_CASES.min(target - next);
        let report = geo_fuzz_rounds(&cfg, &oracle, spec.seed, next, count, jobs);
        next += count;
        outcome.cases += report.cases;
        outcome.clean += report.clean;
        outcome.violations += report.counterexamples.len() as u64;
        outcome.shrink_steps += report.shrink_steps;
        metrics.soak_cases.fetch_add(report.cases, Ordering::Relaxed);
        metrics.soak_violations.fetch_add(report.counterexamples.len() as u64, Ordering::Relaxed);
        metrics.soak_shrink_steps.fetch_add(report.shrink_steps, Ordering::Relaxed);
        let micros = u64::try_from(chunk_t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        metrics.soak_wall_micros.fetch_add(micros, Ordering::Relaxed);
    }
    outcome.wall_secs = t0.elapsed().as_secs_f64();
    (cancelled, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = SoakSpec::default();
        let body = spec.to_json().render();
        assert_eq!(SoakSpec::from_json_bytes(body.as_bytes()).unwrap(), spec);

        let sharded = SoakSpec { cases: 64, range: Some((8, 24)), ..SoakSpec::default() };
        let body = sharded.to_json().render();
        assert_eq!(SoakSpec::from_json_bytes(body.as_bytes()).unwrap(), sharded);
    }

    #[test]
    fn rejects_bad_specs() {
        for (body, why) in [
            (r#"[]"#, "not an object"),
            (r#"{"cases":0}"#, "zero cases"),
            (r#"{"cases":10000000}"#, "too many cases"),
            (r#"{"robots":2}"#, "too few robots"),
            (r#"{"robots":1000}"#, "too many robots"),
            (r#"{"seconds":100000}"#, "seconds beyond cap"),
            (r#"{"seconds":5,"range":[0,2]}"#, "timed soak with a range"),
            (r#"{"range":[9,3]}"#, "backwards range"),
            (r#"{"cases":4,"range":[0,9]}"#, "range beyond cases"),
            (r#"{"bogus":1}"#, "unknown field"),
            (r#"{"seed":-1}"#, "negative seed"),
        ] {
            assert!(SoakSpec::from_json_bytes(body.as_bytes()).is_err(), "accepted {why}: {body}");
        }
    }

    #[test]
    fn outcome_round_trips_through_json() {
        let outcome = SoakOutcome {
            cases: 40,
            clean: 39,
            violations: 1,
            shrink_steps: 123,
            wall_secs: 0.1 + 0.2,
        };
        let back = SoakOutcome::from_json(&outcome.to_json()).unwrap();
        assert_eq!(back, outcome);
        assert_eq!(back.wall_secs.to_bits(), outcome.wall_secs.to_bits());
    }

    #[test]
    fn run_soak_executes_and_counts_deterministically() {
        let spec = SoakSpec { cases: 4, robots: 8, ..SoakSpec::default() };
        let metrics = Metrics::default();
        let (cancelled, a) = run_soak(&spec, 2, &CancelToken::new(), &metrics);
        assert!(!cancelled);
        assert_eq!(a.cases, 4);
        assert_eq!(a.clean + a_dirty(&a), 4);
        assert_eq!(metrics.soak_cases.load(Ordering::Relaxed), 4);
        // Same spec, different jobs value: identical counts.
        let (_, b) = run_soak(&spec, 1, &CancelToken::new(), &Metrics::default());
        assert_eq!(
            (a.cases, a.clean, a.violations, a.shrink_steps),
            (b.cases, b.clean, b.violations, b.shrink_steps)
        );
    }

    fn a_dirty(o: &SoakOutcome) -> u64 {
        o.cases - o.clean
    }

    #[test]
    fn shard_counts_equal_whole_slice() {
        // A shard [lo, hi) of a soak counts exactly like the same index
        // slice of a whole run — the coordinator merge's soundness.
        let whole = SoakSpec { cases: 6, robots: 8, seed: 5, ..SoakSpec::default() };
        let shard_a = SoakSpec { range: Some((0, 3)), ..whole.clone() };
        let shard_b = SoakSpec { range: Some((3, 6)), ..whole.clone() };
        let cancel = CancelToken::new();
        let (_, w) = run_soak(&whole, 2, &cancel, &Metrics::default());
        let (_, a) = run_soak(&shard_a, 2, &cancel, &Metrics::default());
        let (_, b) = run_soak(&shard_b, 2, &cancel, &Metrics::default());
        let mut merged = SoakOutcome::default();
        merged.absorb(&a);
        merged.absorb(&b);
        assert_eq!(
            (w.cases, w.clean, w.violations, w.shrink_steps),
            (merged.cases, merged.clean, merged.violations, merged.shrink_steps)
        );
    }

    #[test]
    fn cancellation_stops_between_chunks() {
        let spec = SoakSpec { cases: 1000, robots: 8, ..SoakSpec::default() };
        let cancel = CancelToken::new();
        cancel.cancel();
        let (cancelled, outcome) = run_soak(&spec, 2, &cancel, &Metrics::default());
        assert!(cancelled);
        assert_eq!(outcome.cases, 0, "pre-cancelled soak must not run cases");
    }
}
